//! # egd-chase
//!
//! Facade crate re-exporting the whole `egd-chase` workspace: a Rust reproduction of
//! Calautti, Greco, Molinaro, Trubitsyna — *Exploiting Equality Generating Dependencies
//! in Checking Chase Termination*, PVLDB 9(5):396–407, 2016.
//!
//! The workspace is organised as follows:
//!
//! * [`core`](chase_core) — the dependency language (TGDs, EGDs), instances,
//!   homomorphisms, satisfaction and a textual parser;
//! * [`trigger`](chase_trigger) — the delta-driven incremental trigger engine:
//!   indexed fact storage ([`FactIndex`](chase_trigger::FactIndex)), the delta
//!   worklist and semi-naive trigger discovery that the chase variants and the
//!   MFA saturation loop run on (full re-scans remain available as
//!   [`TriggerDiscovery::NaiveRescan`](chase_engine::TriggerDiscovery));
//! * [`engine`](chase_engine) — the chase behind the unified
//!   [`Chase`](chase_engine::Chase) session builder: standard, oblivious,
//!   semi-oblivious and core variants under one
//!   [`ChaseBudget`](chase_engine::ChaseBudget) / [`ChaseObserver`](chase_engine::ChaseObserver)
//!   vocabulary and an opt-in round-parallel execution mode
//!   ([`Chase::workers`](chase_engine::Chase::workers)), plus core computation,
//!   universal models and certain answers;
//! * [`criteria`](chase_criteria) — baseline termination criteria (weak acyclicity,
//!   safety, stratification, c-stratification, super-weak acyclicity, MFA) as
//!   witness-producing [`TerminationCriterion`](chase_criteria::TerminationCriterion)
//!   structs, and the EGD→TGD simulations;
//! * [`termination`](chase_termination) — the paper's contribution: the firing graph,
//!   semi-stratification, the `Adn∃` adornment algorithm, semi-acyclicity, the
//!   `Adn∃-C` combinator — and the
//!   [`TerminationAnalyzer`](chase_termination::TerminationAnalyzer) running the whole
//!   hierarchy cheapest-first;
//! * [`ivm`](chase_ivm) — incremental view maintenance: keep a completed
//!   (semi-)oblivious chase live under base-fact inserts and retracts
//!   ([`ChaseMaterialization`](chase_ivm::ChaseMaterialization)), with
//!   semi-naive forward repair, DRed overdelete/rederive on a support ledger,
//!   and a full-replay fallback when a retraction invalidates an EGD rewrite;
//! * [`ontology`](chase_ontology) — a synthetic ontology-style workload generator
//!   reproducing the corpus shape of the paper's evaluation, plus seeded
//!   base-update streams for exercising the maintenance path;
//! * [`obs`](chase_obs) — the dependency-free observability layer: a
//!   [`MetricsRegistry`](chase_obs::MetricsRegistry) of counters, gauges and
//!   log-bucketed duration histograms, phase timing
//!   ([`PhaseTimes`](chase_obs::PhaseTimes)) and the
//!   [`RunReport`](chase_obs::RunReport) JSON run-report schema, wired into the
//!   engine by [`MetricsObserver`](chase_engine::MetricsObserver) and into the
//!   analyzer by
//!   [`TerminationReport::verdict_rows`](chase_termination::TerminationReport::verdict_rows).
//!
//! ## Quickstart
//!
//! ```
//! use egd_chase::prelude::*;
//!
//! // Σ1 of Example 1 in the paper, plus the database D = {N(a)}.
//! let program = parse_program(
//!     r#"
//!     r1: N(?x) -> exists ?y: E(?x, ?y).
//!     r2: E(?x, ?y) -> N(?y).
//!     r3: E(?x, ?y) -> ?x = ?y.
//!     N(a).
//!     "#,
//! )
//! .unwrap();
//!
//! // One call answers "can the chase be used here?": the analyzer runs the whole
//! // criteria hierarchy cheapest-first; the classical criteria reject Σ1, the
//! // paper's adornment algorithm recognises it, and every verdict carries a
//! // machine-readable witness.
//! let report = TerminationAnalyzer::new().analyze(&program.dependencies);
//! assert!(report.is_terminating());
//! assert_eq!(report.accepted().unwrap().criterion, "SAC");
//! assert!(!report.verdict_for("Str").unwrap().accepted);
//!
//! // And indeed a terminating standard chase sequence exists: one session builder
//! // serves every variant, with budgets and failure diagnostics built in.
//! let result = Chase::standard(&program.dependencies)
//!     .with_order(StepOrder::EgdsFirst)
//!     .with_budget(ChaseBudget::default().with_max_steps(1_000))
//!     .run(&program.database);
//! assert!(result.is_terminating());
//!
//! // Attach a MetricsObserver instead of `run` to get counters, per-phase
//! // wall-clock and a JSON-serializable RunReport — including the analyzer's
//! // verdict table — out of the same session.
//! let mut metrics = MetricsObserver::new();
//! let observed = Chase::standard(&program.dependencies)
//!     .with_budget(ChaseBudget::default().with_max_steps(1_000))
//!     .run_observed(&program.database, &mut metrics);
//! let mut run_report = metrics.report("sigma1", &observed);
//! run_report.verdicts = report.verdict_rows();
//! assert_eq!(run_report.outcome, "terminated");
//! assert_eq!(RunReport::parse(&run_report.to_json_string()).unwrap(), run_report);
//! ```
//!
//! ## Incremental maintenance
//!
//! When the base changes faster than you want to re-chase it, materialize the
//! run once and repair it per batch:
//!
//! ```
//! use egd_chase::prelude::*;
//! use egd_chase::chase_ivm::ChaseMaterialization;
//! use egd_chase::chase_core::{Constant, GroundTerm};
//!
//! let p = parse_program(
//!     "t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z). E(a, b). E(b, c).",
//! )
//! .unwrap();
//! let run = Chase::semi_oblivious(&p.dependencies)
//!     .materialize(&p.database)
//!     .unwrap();
//! let mut live = ChaseMaterialization::from_run(&p.dependencies, run).unwrap();
//!
//! let c = |s| GroundTerm::Const(Constant::new(s));
//! let stats = live.insert([Fact::from_parts("E", vec![c("c"), c("d")])]).unwrap();
//! assert_eq!(stats.triggers_fired, 2); // repair cost, not a full re-chase
//! let stats = live.retract([Fact::from_parts("E", vec![c("a"), c("b")])]).unwrap();
//! assert_eq!(stats.overdeleted, 3); // E(a,b), E(a,c), E(a,d)
//! ```
//!
//! ## Snapshots and million-fact instances
//!
//! Instances persist to a versioned, self-checking binary snapshot —
//! `Instance::save` / `Instance::load`, no serde involved — and bulk loads go
//! through the columnar store's batched interning. Pre-size with
//! `Instance::with_capacity` and feed batches via `extend_parts`; chase the
//! result now or reload it later instead of regenerating:
//!
//! ```
//! use egd_chase::prelude::*;
//! use egd_chase::chase_ontology::{data_exchange_instance, ScaleProfile};
//!
//! // A deterministic data-exchange base (the gated bench runs this at 10M).
//! let base = data_exchange_instance(&ScaleProfile::new(5_000));
//! assert_eq!(base.len(), 5_000);
//!
//! let path = std::env::temp_dir().join("egd_chase_quickstart.chasefs");
//! base.save(&path).unwrap();
//! let reloaded = Instance::load(&path).unwrap();
//! std::fs::remove_file(&path).ok();
//!
//! // The roundtrip is lossless down to fact ids, so it composes with
//! // id-holding machinery (indexes, the IVM support ledger).
//! assert_eq!(reloaded, base);
//! assert_eq!(reloaded.sorted_fact_ids(), base.sorted_fact_ids());
//! ```
//!
//! ## Migrating from the legacy API
//!
//! The pre-redesign entry points remain as `#[deprecated]` shims delegating to the
//! new implementation:
//!
//! | old call | new call |
//! |---|---|
//! | `StandardChase::new(σ).with_max_steps(n)` | [`Chase::standard`](chase_engine::Chase::standard)`(σ).with_budget(ChaseBudget::unlimited().with_max_steps(n))` |
//! | `ObliviousChase::new(σ, v)` | [`Chase::oblivious`](chase_engine::Chase::oblivious)`(σ, v)` |
//! | `CoreChase::new(σ).with_max_rounds(n)` | [`Chase::core`](chase_engine::Chase::core)`(σ).with_budget(ChaseBudget::unlimited().with_max_rounds(n))` |
//! | `runner.run_with_trace(db, closure)` | `session.run_observed(db, &mut observer)` with a [`ChaseObserver`](chase_engine::ChaseObserver) |
//! | `is_weakly_acyclic(σ)`, `is_safe(σ)`, … | `WeakAcyclicity.accepts(σ)`, `Safety.accepts(σ)`, … (`.verdict(σ)` for the witness) |
//! | nine separate `is_*` calls | [`TerminationAnalyzer`](chase_termination::TerminationAnalyzer)`::new().analyze(σ)` |

pub use chase_core;
pub use chase_criteria;
pub use chase_engine;
pub use chase_ivm;
pub use chase_obs;
pub use chase_ontology;
pub use chase_termination;
pub use chase_trigger;

/// Convenience re-exports for the most common entry points.
pub mod prelude {
    pub use chase_core::builder::{atom, cst, egd, tgd, var};
    pub use chase_core::parser::{parse_database, parse_dependencies, parse_program};
    pub use chase_core::{
        Atom, DepId, Dependency, DependencySet, Fact, FactId, FactStore, Instance, Predicate,
        PredicateId, Term, Variable,
    };
    pub use chase_criteria::prelude::*;
    pub use chase_engine::prelude::*;
    pub use chase_ivm::{BatchStats, ChaseMaterialization, IvmError};
    pub use chase_obs::prelude::*;
    pub use chase_ontology::prelude::*;
    pub use chase_termination::prelude::*;
    pub use chase_trigger::prelude::*;
}
