//! # egd-chase
//!
//! Facade crate re-exporting the whole `egd-chase` workspace: a Rust reproduction of
//! Calautti, Greco, Molinaro, Trubitsyna — *Exploiting Equality Generating Dependencies
//! in Checking Chase Termination*, PVLDB 9(5):396–407, 2016.
//!
//! The workspace is organised as follows:
//!
//! * [`core`](chase_core) — the dependency language (TGDs, EGDs), instances,
//!   homomorphisms, satisfaction and a textual parser;
//! * [`trigger`](chase_trigger) — the delta-driven incremental trigger engine:
//!   indexed fact storage ([`FactIndex`](chase_trigger::FactIndex)), the delta
//!   worklist and semi-naive trigger discovery that the chase variants and the
//!   MFA saturation loop run on (full re-scans remain available as
//!   [`TriggerDiscovery::NaiveRescan`](chase_engine::TriggerDiscovery));
//! * [`engine`](chase_engine) — the chase: standard, oblivious, semi-oblivious and
//!   core variants, core computation, universal models and certain answers;
//! * [`criteria`](chase_criteria) — baseline termination criteria (weak acyclicity,
//!   safety, stratification, c-stratification, super-weak acyclicity, MFA) and the
//!   EGD→TGD simulations;
//! * [`termination`](chase_termination) — the paper's contribution: the firing graph,
//!   semi-stratification, the `Adn∃` adornment algorithm, semi-acyclicity and the
//!   `Adn∃-C` combinator;
//! * [`ontology`](chase_ontology) — a synthetic ontology-style workload generator
//!   reproducing the corpus shape of the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use egd_chase::prelude::*;
//!
//! // Σ1 of Example 1 in the paper, plus the database D = {N(a)}.
//! let program = parse_program(
//!     r#"
//!     r1: N(?x) -> exists ?y: E(?x, ?y).
//!     r2: E(?x, ?y) -> N(?y).
//!     r3: E(?x, ?y) -> ?x = ?y.
//!     N(a).
//!     "#,
//! )
//! .unwrap();
//!
//! // Current criteria that require *all* chase sequences to terminate reject Σ1,
//! // but the adornment algorithm recognises it as semi-acyclic, hence CT_std_∃.
//! assert!(!is_stratified(&program.dependencies));
//! assert!(is_semi_acyclic(&program.dependencies));
//!
//! // And indeed a terminating standard chase sequence exists.
//! let result = StandardChase::new(&program.dependencies)
//!     .with_egd_priority(true)
//!     .run(&program.database);
//! assert!(result.is_terminating());
//! ```

pub use chase_core;
pub use chase_criteria;
pub use chase_engine;
pub use chase_ontology;
pub use chase_termination;
pub use chase_trigger;

/// Convenience re-exports for the most common entry points.
pub mod prelude {
    pub use chase_core::builder::{atom, cst, egd, tgd, var};
    pub use chase_core::parser::{parse_database, parse_dependencies, parse_program};
    pub use chase_core::{
        Atom, DepId, Dependency, DependencySet, Fact, Instance, Predicate, Term, Variable,
    };
    pub use chase_criteria::prelude::*;
    pub use chase_engine::prelude::*;
    pub use chase_ontology::prelude::*;
    pub use chase_termination::prelude::*;
    pub use chase_trigger::prelude::*;
}
