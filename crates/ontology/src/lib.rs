//! # chase-ontology
//!
//! A seeded, deterministic generator of ontology-style dependency sets that reproduces
//! the *shape* of the corpus used in the experimental evaluation of Calautti et al.
//! (PVLDB 2016): 178 real-world ontologies (Gardiner corpus, LUBM, Phenoscape, OBO)
//! partitioned into eight classes by the number of existentially quantified TGDs and
//! the number of EGDs (Table 2(a) of the paper).
//!
//! The real corpus is not redistributable here, so the generator emits dependency sets
//! with the same statistics — class sizes, `|Σ|`, `|Σ∃|`, `|Σegd|`, `|Σ∀|/|Σ∃|` ratios —
//! using the rule shapes that dominate OWL-derived dependency sets: concept
//! inclusions, role domains and ranges, existential restrictions, role inverses,
//! functional roles and keys (as EGDs). A configurable fraction of the generated sets
//! contains a genuine null-propagation cycle, mirroring the non-terminating ontologies
//! of the original corpus. See DESIGN.md §3 for the substitution rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod families;
pub mod generator;
pub mod scale;
pub mod updates;

pub use corpus::{paper_corpus, scaled_paper_corpus, CorpusClass, GeneratedOntology};
pub use families::{atlas_corpus, families, generate_family, AtlasProgram, FamilySpec};
pub use generator::{generate, generate_database, OntologyProfile};
pub use scale::{
    data_exchange_dependencies, data_exchange_instance, for_each_scale_fact, ScaleProfile,
};
pub use updates::{update_stream, UpdateBatch, UpdateStreamProfile};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::corpus::{paper_corpus, scaled_paper_corpus, CorpusClass, GeneratedOntology};
    pub use crate::families::{atlas_corpus, families, generate_family, AtlasProgram, FamilySpec};
    pub use crate::generator::{generate, generate_database, OntologyProfile};
    pub use crate::scale::{
        data_exchange_dependencies, data_exchange_instance, for_each_scale_fact, ScaleProfile,
    };
    pub use crate::updates::{update_stream, UpdateBatch, UpdateStreamProfile};
}
