//! Seeded base-update streams: workloads for the incremental maintenance path.
//!
//! [`update_stream`] turns an ontology's schema plus an initial database into
//! a deterministic sequence of [`UpdateBatch`]es. The generator simulates the
//! live base as it goes, so the stream is **consistent by construction**:
//! every retraction names a fact that is actually in the base at that point
//! (inserted earlier in the stream or present initially and not yet
//! retracted), and inserts mix fresh individuals with constants already in
//! play (so new facts both extend and join the existing instance).
//!
//! Equal `(sigma, base, profile)` inputs generate identical streams — the
//! differential suite replays the same stream against the incremental and the
//! from-scratch path.

use chase_core::{Constant, DependencySet, Fact, GroundTerm, Instance};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

/// One batch of base changes: retractions are applied before insertions
/// (matching `chase_ivm::ChaseMaterialization::update`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct UpdateBatch {
    /// Base facts added by the batch.
    pub inserts: Vec<Fact>,
    /// Base facts removed by the batch (guaranteed live at application time).
    pub retracts: Vec<Fact>,
}

impl UpdateBatch {
    /// Total change count of the batch.
    pub fn len(&self) -> usize {
        self.inserts.len() + self.retracts.len()
    }

    /// `true` iff the batch changes nothing.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.retracts.is_empty()
    }
}

/// Shape of a generated update stream.
#[derive(Clone, Debug, PartialEq)]
pub struct UpdateStreamProfile {
    /// Number of batches in the stream.
    pub batches: usize,
    /// Changes (inserts + retracts) per batch.
    pub batch_size: usize,
    /// Probability that a single change is a retraction (`0.0` = insert-only
    /// stream, `1.0` = retract-only while live facts remain).
    pub retract_fraction: f64,
    /// RNG seed; equal inputs generate identical streams.
    pub seed: u64,
}

impl Default for UpdateStreamProfile {
    fn default() -> Self {
        UpdateStreamProfile {
            batches: 4,
            batch_size: 16,
            retract_fraction: 0.25,
            seed: 0,
        }
    }
}

/// A process-independent sort key for a fact: names instead of symbol ids.
fn fact_name_key(f: &Fact) -> (String, Vec<(u8, String, u64)>) {
    let terms = f
        .terms
        .iter()
        .map(|t| match t {
            GroundTerm::Const(c) => (0u8, c.name(), 0u64),
            GroundTerm::Null(n) => (1u8, String::new(), n.0),
        })
        .collect();
    (f.predicate.name.as_str(), terms)
}

/// Generates a consistent, seeded update stream over `sigma`'s schema,
/// starting from `base` (see the module docs for the consistency guarantee).
pub fn update_stream(
    sigma: &DependencySet,
    base: &Instance,
    profile: &UpdateStreamProfile,
) -> Vec<UpdateBatch> {
    let mut rng = StdRng::seed_from_u64(profile.seed);
    // Name order, not `Ord` (interner-id) order: symbol ids depend on
    // process-global interning history, and a seeded stream must not.
    let mut predicates: Vec<_> = sigma.predicates().into_iter().collect();
    predicates.sort_by_key(|p| (p.name.as_str(), p.arity));
    // The simulated live base: retraction candidates, kept in a Vec for O(1)
    // uniform sampling, with a set alongside to keep it duplicate-free. The
    // initial order is name-based for the same reason as above (`facts()`
    // iterates a hash set, and `Fact`'s own `Ord` goes through symbol ids).
    let mut live: Vec<Fact> = base.facts().collect();
    live.sort_by_key(fact_name_key);
    let mut live_set: HashSet<Fact> = live.iter().cloned().collect();
    // Constants in play (for joining inserts) plus a fresh-individual counter.
    let mut pool: Vec<Constant> = base.constants().into_iter().collect();
    pool.sort_by_key(Constant::name);
    let mut fresh = 0usize;

    let mut stream = Vec::with_capacity(profile.batches);
    for _ in 0..profile.batches {
        let mut batch = UpdateBatch::default();
        let ops: Vec<bool> = (0..profile.batch_size)
            .map(|_| rng.random_bool(profile.retract_fraction))
            .collect();
        // Retractions first, then insertions — the order the maintenance
        // path applies them in — so a batch never retracts a fact it also
        // inserts (the pair would silently cancel instead of exercising the
        // repair it claims to). A retraction with nothing left to retract is
        // dropped, shortening the batch.
        let mut retracted: HashSet<Fact> = HashSet::new();
        for &is_retract in &ops {
            if is_retract && !live.is_empty() {
                let i = rng.random_range(0..live.len());
                let fact = live.swap_remove(i);
                live_set.remove(&fact);
                retracted.insert(fact.clone());
                batch.retracts.push(fact);
            }
        }
        for &is_retract in &ops {
            if is_retract || predicates.is_empty() {
                continue;
            }
            let p = predicates[rng.random_range(0..predicates.len())];
            let terms: Vec<GroundTerm> = (0..p.arity)
                .map(|_| {
                    // Mostly joinable constants, sometimes a fresh one (a
                    // growing domain keeps streams from saturating).
                    let c = if pool.is_empty() || rng.random_bool(0.3) {
                        fresh += 1;
                        let c = Constant::new(&format!("upd{fresh}"));
                        pool.push(c);
                        c
                    } else {
                        pool[rng.random_range(0..pool.len())]
                    };
                    GroundTerm::Const(c)
                })
                .collect();
            let fact = Fact {
                predicate: p,
                terms,
            };
            if !live_set.contains(&fact) && !retracted.contains(&fact) {
                live_set.insert(fact.clone());
                live.push(fact.clone());
                batch.inserts.push(fact);
            }
        }
        stream.push(batch);
    }
    stream
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, generate_database, OntologyProfile};

    fn setup() -> (DependencySet, Instance) {
        let profile = OntologyProfile {
            existential: 4,
            full: 8,
            egds: 2,
            cyclic: false,
            seed: 11,
        };
        let sigma = generate(&profile);
        let base = generate_database(&sigma, 60, 12);
        (sigma, base)
    }

    #[test]
    fn streams_are_deterministic() {
        let (sigma, base) = setup();
        let profile = UpdateStreamProfile::default();
        let a = update_stream(&sigma, &base, &profile);
        let b = update_stream(&sigma, &base, &profile);
        assert_eq!(a, b);
        assert_eq!(a.len(), profile.batches);
        let c = update_stream(
            &sigma,
            &base,
            &UpdateStreamProfile {
                seed: 99,
                ..profile
            },
        );
        assert_ne!(a, c, "different seeds must differ");
    }

    #[test]
    fn retractions_always_name_live_base_facts() {
        let (sigma, base) = setup();
        let stream = update_stream(
            &sigma,
            &base,
            &UpdateStreamProfile {
                batches: 10,
                batch_size: 12,
                retract_fraction: 0.5,
                seed: 3,
            },
        );
        let mut live: HashSet<Fact> = base.facts().collect();
        let mut retracted_any = false;
        for batch in &stream {
            for f in &batch.retracts {
                retracted_any = true;
                assert!(
                    live.remove(f),
                    "retraction of a fact not in the base: {f:?}"
                );
                assert!(
                    !batch.inserts.contains(f),
                    "a batch must not retract and insert the same fact"
                );
            }
            for f in &batch.inserts {
                assert!(
                    live.insert(f.clone()),
                    "insert of an already-live fact: {f:?}"
                );
            }
        }
        assert!(retracted_any);
    }

    #[test]
    fn retract_fraction_extremes_behave() {
        let (sigma, base) = setup();
        let inserts_only = update_stream(
            &sigma,
            &base,
            &UpdateStreamProfile {
                retract_fraction: 0.0,
                ..UpdateStreamProfile::default()
            },
        );
        assert!(inserts_only.iter().all(|b| b.retracts.is_empty()));
        assert!(inserts_only.iter().any(|b| !b.inserts.is_empty()));
        let retracts_only = update_stream(
            &sigma,
            &base,
            &UpdateStreamProfile {
                retract_fraction: 1.0,
                batches: 2,
                batch_size: 10,
                seed: 0,
            },
        );
        assert!(retracts_only.iter().all(|b| b.inserts.is_empty()));
        assert_eq!(
            retracts_only.iter().map(UpdateBatch::len).sum::<usize>(),
            20,
            "the base is large enough to serve every retraction"
        );
    }
}
