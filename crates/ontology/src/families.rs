//! Named dependency-set families for the termination-criteria atlas.
//!
//! Each family is a parametric generator: `(size, seed) → Σ` with roughly `size`
//! dependencies, scaling from a handful to thousands. Every family carries a
//! ground truth established *by construction* — either every generated set has a
//! terminating standard chase sequence for every database
//! ([`FamilySpec::expected_terminating`] is `true`), or the set embeds a genuine
//! null-propagation cycle on an otherwise unconstrained role and no terminating
//! sequence exists (`false`). The atlas runner (`table2` in `chase-bench`) uses
//! this as a soundness oracle: a criterion accepting a program from a
//! non-terminating family, or an accepted program exhausting a generous chase
//! budget, is a hard failure.
//!
//! The non-terminating families deliberately reproduce the shape of the
//! historical `adorn_with` soundness gap (a cyclic gadget plus unrelated
//! functional-role EGDs and enough copy-flow for a θ-merge), fencing that bug
//! class off empirically at scale.

use crate::generator::{generate, OntologyProfile};
use chase_core::builder::{atom, var};
use chase_core::{Dependency, DependencySet, Egd, Tgd, Variable};

/// Metadata of one atlas family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FamilySpec {
    /// Stable family name (kebab-case, used as the atlas matrix key).
    pub name: &'static str,
    /// One-line description of the generated shape.
    pub description: &'static str,
    /// Ground truth by construction: `true` iff every generated set has a
    /// terminating standard chase sequence for every database (`CT_std_∃`).
    pub expected_terminating: bool,
}

/// One generated atlas program: a family member at a concrete size.
#[derive(Clone, Debug)]
pub struct AtlasProgram {
    /// The family it was drawn from.
    pub family: &'static str,
    /// The requested size parameter (the actual dependency count is
    /// `sigma.len()`, within a constant factor of this).
    pub size: usize,
    /// Ground truth inherited from the family.
    pub expected_terminating: bool,
    /// The generated dependency set.
    pub sigma: DependencySet,
}

/// All atlas families, terminating first.
pub fn families() -> Vec<FamilySpec> {
    vec![
        FamilySpec {
            name: "transitive-closure",
            description: "layered transitive roles with copy edges (full TGDs only)",
            expected_terminating: true,
        },
        FamilySpec {
            name: "role-chains",
            description: "existential role chains C_i ⊑ ∃R_i, range(R_i) ⊑ C_{i+1}",
            expected_terminating: true,
        },
        FamilySpec {
            name: "functional-roles",
            description: "existential role intros with functional EGDs, forward-flowing ranges",
            expected_terminating: true,
        },
        FamilySpec {
            name: "egd-collapse-cycles",
            description: "Σ1-style loops N_i ⊑ ∃E_i, range(E_i) ⊑ N_i, E_i ⊑ id — only EGD-aware criteria accept",
            expected_terminating: true,
        },
        FamilySpec {
            name: "egd-heavy",
            description: "many functional/key EGDs per role plus acyclic existential intros",
            expected_terminating: true,
        },
        FamilySpec {
            name: "gav-lav-acyclic",
            description: "random forward-flowing GAV+LAV mix from the ontology generator",
            expected_terminating: true,
        },
        FamilySpec {
            name: "gav-lav-cyclic",
            description: "the same mix plus the generator's non-terminating Rcyc gadget",
            expected_terminating: false,
        },
        FamilySpec {
            name: "egd-laundering",
            description: "copies of the minimal adorn_with reproducer: cyclic gadget + unrelated functional EGD + copy chain",
            expected_terminating: false,
        },
    ]
}

fn tgd(body: Vec<chase_core::Atom>, head: Vec<chase_core::Atom>) -> Dependency {
    Dependency::Tgd(Tgd::new(None, body, head).expect("well-formed family TGD"))
}

fn functional_egd(role: &str) -> Dependency {
    Dependency::Egd(
        Egd::new(
            None,
            vec![
                atom(role, vec![var("x"), var("y")]),
                atom(role, vec![var("x"), var("z")]),
            ],
            Variable::new("y"),
            Variable::new("z"),
        )
        .expect("well-formed functional EGD"),
    )
}

fn key_egd(role: &str) -> Dependency {
    Dependency::Egd(
        Egd::new(
            None,
            vec![
                atom(role, vec![var("x"), var("y")]),
                atom(role, vec![var("z"), var("y")]),
            ],
            Variable::new("x"),
            Variable::new("z"),
        )
        .expect("well-formed key EGD"),
    )
}

/// `E_i` transitive plus a copy edge into the next layer: full TGDs only, so the
/// chase never invents nulls and terminates on every database.
fn transitive_closure(size: usize) -> Vec<Dependency> {
    let layers = (size / 2).max(1);
    let mut deps = Vec::with_capacity(2 * layers);
    for i in 0..layers {
        let e = format!("E{i}");
        let next = format!("E{}", i + 1);
        deps.push(tgd(
            vec![
                atom(&e, vec![var("x"), var("y")]),
                atom(&e, vec![var("y"), var("z")]),
            ],
            vec![atom(&e, vec![var("x"), var("z")])],
        ));
        deps.push(tgd(
            vec![atom(&e, vec![var("x"), var("y")])],
            vec![atom(&next, vec![var("x"), var("y")])],
        ));
    }
    deps
}

/// `C_i(x) → ∃y R_i(x,y)` and `R_i(x,y) → C_{i+1}(y)`: nulls flow strictly
/// forward along the chain, so the set is weakly acyclic and terminating.
fn role_chains(size: usize) -> Vec<Dependency> {
    let links = (size / 2).max(1);
    let mut deps = Vec::with_capacity(2 * links);
    for i in 0..links {
        let c = format!("C{i}");
        let r = format!("R{i}");
        let next = format!("C{}", i + 1);
        deps.push(tgd(
            vec![atom(&c, vec![var("x")])],
            vec![atom(&r, vec![var("x"), var("y")])],
        ));
        deps.push(tgd(
            vec![atom(&r, vec![var("x"), var("y")])],
            vec![atom(&next, vec![var("y")])],
        ));
    }
    deps
}

/// Existential role intros with functional EGDs; every range flows into a
/// dedicated sink concept, so there is no feedback and the set is weakly
/// acyclic.
fn functional_roles(size: usize) -> Vec<Dependency> {
    let groups = (size / 4).max(1);
    let mut deps = Vec::with_capacity(4 * groups);
    for i in 0..groups {
        let c = format!("C{i}");
        let r = format!("R{i}");
        let d = format!("D{i}");
        let sink = format!("S{i}");
        deps.push(tgd(
            vec![atom(&c, vec![var("x")])],
            vec![atom(&r, vec![var("x"), var("y")])],
        ));
        deps.push(tgd(
            vec![atom(&r, vec![var("x"), var("y")])],
            vec![atom(&d, vec![var("y")])],
        ));
        deps.push(tgd(
            vec![atom(&d, vec![var("x")])],
            vec![atom(&sink, vec![var("x")])],
        ));
        deps.push(functional_egd(&r));
    }
    deps
}

/// Disjoint copies of the paper's Σ1: `N_i(x) → ∃y E_i(x,y)`,
/// `E_i(x,y) → N_i(y)` and `E_i(x,y) → x = y`. The null-propagation cycle makes
/// every EGD-blind criterion reject, but enforcing the EGD first collapses each
/// invented null into its parent, so an EGD-first sequence terminates
/// (`CT_std_∃`): only the EGD-aware criteria (SAC, Adn∃-C) accept. This family
/// exercises the fixed τ substitution path of `adorn_with` at scale.
fn egd_collapse_cycles(size: usize) -> Vec<Dependency> {
    let copies = (size / 3).max(1);
    let mut deps = Vec::with_capacity(3 * copies);
    for i in 0..copies {
        let n = format!("N{i}");
        let e = format!("E{i}");
        deps.push(tgd(
            vec![atom(&n, vec![var("x")])],
            vec![atom(&e, vec![var("x"), var("y")])],
        ));
        deps.push(tgd(
            vec![atom(&e, vec![var("x"), var("y")])],
            vec![atom(&n, vec![var("y")])],
        ));
        deps.push(Dependency::Egd(
            Egd::new(
                None,
                vec![atom(&e, vec![var("x"), var("y")])],
                Variable::new("x"),
                Variable::new("y"),
            )
            .expect("well-formed Σ1 EGD"),
        ));
    }
    deps
}

/// Functional and key EGDs on every role, role domains into per-role concepts,
/// and a sparse set of existential intros rooted on dedicated source concepts:
/// EGDs dominate the count and the TGD flow is strictly forward.
fn egd_heavy(size: usize) -> Vec<Dependency> {
    let roles = (size / 4).max(1);
    let mut deps = Vec::with_capacity(4 * roles);
    for i in 0..roles {
        let r = format!("R{i}");
        let d = format!("D{i}");
        deps.push(functional_egd(&r));
        deps.push(key_egd(&r));
        deps.push(tgd(
            vec![atom(&r, vec![var("x"), var("y")])],
            vec![atom(&d, vec![var("x")])],
        ));
        // One existential intro per four roles keeps EGDs the dominant share.
        if i % 4 == 0 {
            let src = format!("Src{i}");
            deps.push(tgd(
                vec![atom(&src, vec![var("x")])],
                vec![atom(&r, vec![var("x"), var("y")])],
            ));
        }
    }
    deps
}

fn gav_lav_profile(size: usize, seed: u64, cyclic: bool) -> OntologyProfile {
    OntologyProfile {
        existential: (size / 4).max(1),
        full: (size / 2).max(2),
        egds: (size / 8).max(1),
        cyclic,
        seed,
    }
}

/// Disjoint copies of the minimal `adorn_with` reproducer (see
/// `tests/adornment_regression.rs`): a cyclic gadget, an unrelated functional
/// EGD and the copy chain that historically enabled the unsound θ-merge. No
/// terminating chase sequence exists for any database touching a gadget
/// concept.
fn egd_laundering(size: usize) -> Vec<Dependency> {
    let copies = (size / 6).max(1);
    let mut deps = Vec::with_capacity(6 * copies);
    for i in 0..copies {
        let c0 = format!("C0v{i}");
        let c2 = format!("C2v{i}");
        let c3 = format!("C3v{i}");
        let r0 = format!("R0v{i}");
        let rcyc = format!("Rcycv{i}");
        deps.push(tgd(
            vec![atom(&c0, vec![var("x")])],
            vec![atom(&r0, vec![var("y"), var("x")])],
        ));
        deps.push(tgd(
            vec![atom(&r0, vec![var("x"), var("y")])],
            vec![atom(&c2, vec![var("x")])],
        ));
        deps.push(tgd(
            vec![atom(&c2, vec![var("x")])],
            vec![atom(&c3, vec![var("x")])],
        ));
        deps.push(tgd(
            vec![atom(&c0, vec![var("x")])],
            vec![atom(&rcyc, vec![var("x"), var("y")])],
        ));
        deps.push(tgd(
            vec![atom(&rcyc, vec![var("x"), var("y")])],
            vec![atom(&c0, vec![var("y")])],
        ));
        deps.push(functional_egd(&r0));
    }
    deps
}

fn label_all(deps: Vec<Dependency>) -> DependencySet {
    DependencySet::from_vec(
        deps.into_iter()
            .enumerate()
            .map(|(i, d)| d.with_label(&format!("r{}", i + 1)))
            .collect(),
    )
}

/// Generates one family member, or `None` for an unknown family name.
///
/// All families are deterministic in `(size, seed)`; the hand-built ones ignore
/// the seed entirely (their structure is fixed by `size`), the generator-backed
/// GAV+LAV mixes thread it through [`OntologyProfile::seed`].
pub fn generate_family(name: &str, size: usize, seed: u64) -> Option<DependencySet> {
    match name {
        "transitive-closure" => Some(label_all(transitive_closure(size))),
        "role-chains" => Some(label_all(role_chains(size))),
        "functional-roles" => Some(label_all(functional_roles(size))),
        "egd-collapse-cycles" => Some(label_all(egd_collapse_cycles(size))),
        "egd-heavy" => Some(label_all(egd_heavy(size))),
        "gav-lav-acyclic" => Some(generate(&gav_lav_profile(size, seed, false))),
        "gav-lav-cyclic" => Some(generate(&gav_lav_profile(size, seed, true))),
        "egd-laundering" => Some(label_all(egd_laundering(size))),
        _ => None,
    }
}

/// The full atlas corpus: every family at every requested size.
pub fn atlas_corpus(sizes: &[usize], seed: u64) -> Vec<AtlasProgram> {
    let mut programs = Vec::with_capacity(families().len() * sizes.len());
    for family in families() {
        for &size in sizes {
            let sigma =
                generate_family(family.name, size, seed).expect("families() names are generatable");
            programs.push(AtlasProgram {
                family: family.name,
                size,
                expected_terminating: family.expected_terminating,
                sigma,
            });
        }
    }
    programs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_family_generates_near_the_requested_size() {
        for family in families() {
            for size in [6, 24, 120] {
                let sigma = generate_family(family.name, size, 7).unwrap();
                assert!(
                    sigma.len() >= size / 2 && sigma.len() <= 2 * size + 6,
                    "{} at size {size} generated {} dependencies",
                    family.name,
                    sigma.len()
                );
            }
        }
    }

    #[test]
    fn generation_is_deterministic_in_size_and_seed() {
        for family in families() {
            let a = generate_family(family.name, 30, 11).unwrap();
            let b = generate_family(family.name, 30, 11).unwrap();
            assert_eq!(
                a.iter().map(|(_, d)| d.to_string()).collect::<Vec<_>>(),
                b.iter().map(|(_, d)| d.to_string()).collect::<Vec<_>>(),
                "{} must be deterministic",
                family.name
            );
        }
    }

    #[test]
    fn non_terminating_families_embed_a_cyclic_gadget() {
        for family in families().iter().filter(|f| !f.expected_terminating) {
            let sigma = generate_family(family.name, 12, 3).unwrap();
            assert!(
                sigma
                    .predicates()
                    .iter()
                    .any(|p| p.to_string().starts_with("Rcyc")),
                "{} must contain the Rcyc gadget role",
                family.name
            );
        }
    }

    #[test]
    fn unknown_family_names_are_rejected() {
        assert!(generate_family("no-such-family", 10, 0).is_none());
    }

    #[test]
    fn family_names_are_unique() {
        let mut names: Vec<&str> = families().iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), families().len());
    }
}
