//! The `data-exchange` scale family: million-fact base instances for exercising
//! the columnar fact store.
//!
//! Every other generator in this crate targets the *dependency-set* statistics
//! of the paper's corpus; this module targets **instance size**. It emits a
//! deterministic, seeded data-exchange source schema —
//!
//! * `person(p, name, city)` — ~40% of facts,
//! * `company(c, city)`      — ~20% of facts,
//! * `works_for(p, c)`       — ~40% of facts,
//!
//! average arity ≈ 2.4 — over a constant universe sized so that terms repeat
//! heavily (cities ~ `facts/100`, names ~ `facts/10`): exactly the workload
//! dictionary compression is for. Every generated fact is unique by
//! construction (person/company facts carry a fresh entity id; `works_for`
//! facts carry a distinct person per row), so an instance built from a
//! [`ScaleProfile`] has **exactly** `profile.facts` facts — bench rates divide
//! by a known denominator.
//!
//! The generator is exposed two ways:
//!
//! * [`for_each_scale_fact`] — a streaming per-fact callback, so bench loaders
//!   can time generation and interning separately and a 10M-fact load never
//!   materialises 10M [`Fact`](chase_core::Fact) values (~1 GB of term
//!   vectors);
//! * [`data_exchange_instance`] — the convenience builder, pre-sized via
//!   [`Instance::with_capacity`] so the load performs no rehash doubling.
//!
//! [`data_exchange_dependencies`] supplies a small terminating st-tgd program
//! over the schema, so the scale instances also drive end-to-end chase and
//! save/load-then-chase scenarios.

use chase_core::builder::{atom, tgd, var};
use chase_core::term::Constant;
use chase_core::{DependencySet, GroundTerm, Instance, Predicate};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Size and seed of one data-exchange scale instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScaleProfile {
    /// Exact number of facts the profile generates.
    pub facts: usize,
    /// RNG seed; equal profiles generate identical instances.
    pub seed: u64,
}

impl ScaleProfile {
    /// A profile of `facts` facts with the default seed.
    pub fn new(facts: usize) -> Self {
        ScaleProfile { facts, seed: 7 }
    }

    /// Number of `person` facts (~40%).
    pub fn persons(&self) -> usize {
        self.facts * 2 / 5
    }

    /// Number of `company` facts (~20%).
    pub fn companies(&self) -> usize {
        self.facts / 5
    }

    /// Number of `works_for` facts (the remainder, ~40%).
    pub fn works_for(&self) -> usize {
        self.facts - self.persons() - self.companies()
    }

    /// Size of the city universe (~`facts/100`): the heavy-repetition column.
    pub fn cities(&self) -> usize {
        (self.facts / 100).max(1)
    }

    /// Size of the name universe (~`facts/10`).
    pub fn names(&self) -> usize {
        (self.facts / 10).max(1)
    }

    /// Number of predicates in the schema (for [`Instance::with_capacity`]).
    pub fn predicate_estimate(&self) -> usize {
        3
    }

    /// Upper estimate of distinct ground terms (for
    /// [`Instance::with_capacity`]): entity ids plus the constant universes.
    pub fn term_estimate(&self) -> usize {
        self.persons() + self.companies() + self.cities() + self.names()
    }
}

/// The `person/3` predicate of the schema.
pub fn person_predicate() -> Predicate {
    Predicate::new("person", 3)
}

/// The `company/2` predicate of the schema.
pub fn company_predicate() -> Predicate {
    Predicate::new("company", 2)
}

/// The `works_for/2` predicate of the schema.
pub fn works_for_predicate() -> Predicate {
    Predicate::new("works_for", 2)
}

/// Streams the profile's facts in a deterministic order, invoking `visit` with
/// `(predicate, terms)` for each — the allocation-light surface bench loaders
/// intern from directly. Facts are emitted grouped by predicate (`person`,
/// then `company`, then `works_for`); every fact is unique.
pub fn for_each_scale_fact(
    profile: &ScaleProfile,
    mut visit: impl FnMut(Predicate, &[GroundTerm]),
) {
    let mut rng = StdRng::seed_from_u64(profile.seed);
    let cities: Vec<GroundTerm> = (0..profile.cities())
        .map(|i| GroundTerm::Const(Constant::new(&format!("city{i}"))))
        .collect();
    let names: Vec<GroundTerm> = (0..profile.names())
        .map(|i| GroundTerm::Const(Constant::new(&format!("n{i}"))))
        .collect();
    let persons: Vec<GroundTerm> = (0..profile.persons())
        .map(|i| GroundTerm::Const(Constant::new(&format!("p{i}"))))
        .collect();
    let companies: Vec<GroundTerm> = (0..profile.companies())
        .map(|i| GroundTerm::Const(Constant::new(&format!("c{i}"))))
        .collect();

    let person = person_predicate();
    for p in &persons {
        let name = names[rng.random_range(0..names.len())];
        let city = cities[rng.random_range(0..cities.len())];
        visit(person, &[*p, name, city]);
    }
    let company = company_predicate();
    for c in &companies {
        let city = cities[rng.random_range(0..cities.len())];
        visit(company, &[*c, city]);
    }
    // `works_for` facts stay unique without dedup bookkeeping: each row pairs a
    // distinct person (cycling if works_for() > persons()) with a random company.
    let works_for = works_for_predicate();
    let n_works = profile.works_for();
    for i in 0..n_works {
        let p = if persons.is_empty() {
            GroundTerm::Const(Constant::new(&format!("p{i}")))
        } else if n_works <= persons.len() {
            persons[i]
        } else {
            // More rows than persons: suffix the overflow to keep rows unique.
            GroundTerm::Const(Constant::new(&format!("p{}x{}", i % persons.len(), i)))
        };
        let c = if companies.is_empty() {
            GroundTerm::Const(Constant::new(&format!("c{i}")))
        } else {
            companies[rng.random_range(0..companies.len())]
        };
        visit(works_for, &[p, c]);
    }
}

/// Builds the profile's base instance, pre-sized with
/// [`Instance::with_capacity`] so the load is rehash-free.
pub fn data_exchange_instance(profile: &ScaleProfile) -> Instance {
    let mut instance = Instance::with_capacity(
        profile.predicate_estimate(),
        profile.facts,
        profile.term_estimate(),
    );
    for_each_scale_fact(profile, |p, terms| {
        instance.insert_parts(p, terms);
    });
    instance
}

/// A small terminating st-tgd program over the data-exchange schema: every
/// person gets an existentially invented home office, every employment is
/// reflected into the target `employed` relation together with the employer's
/// city.
pub fn data_exchange_dependencies() -> DependencySet {
    DependencySet::from_vec(vec![
        // `h` occurs only in the head: existentially quantified (a fresh home
        // per person).
        tgd(
            "scale_home",
            vec![atom("person", vec![var("p"), var("n"), var("c")])],
            vec![atom("home", vec![var("p"), var("h")])],
        ),
        tgd(
            "scale_employed",
            vec![
                atom("works_for", vec![var("p"), var("co")]),
                atom("company", vec![var("co"), var("city")]),
            ],
            vec![atom("employed", vec![var("p"), var("city")])],
        ),
        tgd(
            "scale_hub",
            vec![atom("company", vec![var("c"), var("city")])],
            vec![atom("hub", vec![var("city")])],
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_has_exactly_the_requested_facts() {
        for n in [0usize, 1, 10, 1000, 5000] {
            let k = data_exchange_instance(&ScaleProfile::new(n));
            assert_eq!(k.len(), n, "profile of {n} facts");
            assert_eq!(k.store().len(), n, "no duplicate interning at {n}");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = data_exchange_instance(&ScaleProfile::new(2000));
        let b = data_exchange_instance(&ScaleProfile::new(2000));
        assert_eq!(a.sorted_fact_ids(), b.sorted_fact_ids());
        assert_eq!(a, b);
        let c = data_exchange_instance(&ScaleProfile {
            facts: 2000,
            seed: 99,
        });
        assert_ne!(a, c, "a different seed draws different cities/names");
    }

    #[test]
    fn dictionary_compression_bites_on_the_scale_schema() {
        let k = data_exchange_instance(&ScaleProfile::new(10_000));
        let store = k.store();
        assert!(
            store.term_count() < store.arena_len() / 2,
            "terms repeat: {} distinct terms over {} cells",
            store.term_count(),
            store.arena_len()
        );
        let fp = store.footprint();
        assert!(fp.columnar_bytes() < fp.row_equivalent_bytes);
    }

    #[test]
    fn streaming_and_instance_builders_agree() {
        let profile = ScaleProfile::new(3000);
        let mut streamed = Instance::new();
        for_each_scale_fact(&profile, |p, terms| {
            streamed.insert_parts(p, terms);
        });
        assert_eq!(streamed, data_exchange_instance(&profile));
    }

    #[test]
    fn dependencies_chase_a_small_scale_instance() {
        use chase_core::builder::{atom, var};
        use chase_core::homomorphism::exists_homomorphism;
        let k = data_exchange_instance(&ScaleProfile::new(500));
        // The program is satisfiable machinery-wise: its bodies match the base.
        assert!(exists_homomorphism(
            &[atom("person", vec![var("p"), var("n"), var("c")])],
            &k
        ));
        assert_eq!(data_exchange_dependencies().len(), 3);
    }
}
