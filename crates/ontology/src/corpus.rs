//! The eight-class corpus of Table 2(a), reproduced synthetically.
//!
//! The paper partitions its 178 ontologies by the number of existentially quantified
//! TGDs (`|Σ∃|` in `[1,10]`, `[11,100]`, `[101,1000]`, `[1001,5000]`) and the number of
//! EGDs (`|Σegd|` in `[1,10]`, `[11,100]`), reporting per class the number of
//! ontologies (`#tests`) and the average total size `|Σ|`. [`paper_corpus`] emits a
//! corpus with exactly those class cardinalities and target sizes;
//! [`scaled_paper_corpus`] shrinks every size by a scale factor (keeping the class
//! structure) so the full experiment pipeline can be re-run quickly on a laptop.

use crate::generator::{generate, OntologyProfile};
use chase_core::DependencySet;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One of the eight corpus classes of Table 2(a).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CorpusClass {
    /// Inclusive range of `|Σ∃|`.
    pub existential_range: (usize, usize),
    /// Inclusive range of `|Σegd|`.
    pub egd_range: (usize, usize),
    /// Number of ontologies in the class (the paper's `#tests` column).
    pub tests: usize,
    /// Average total number of dependencies (the paper's `|Σ|` column).
    pub average_size: usize,
}

impl CorpusClass {
    /// A short identifier such as `"E[1,10]xG[1,10]"`.
    pub fn id(&self) -> String {
        format!(
            "E[{},{}]xG[{},{}]",
            self.existential_range.0, self.existential_range.1, self.egd_range.0, self.egd_range.1
        )
    }
}

/// The eight classes with the paper's `#tests` and average `|Σ|` (Table 2(a)).
pub fn paper_classes() -> Vec<CorpusClass> {
    vec![
        CorpusClass {
            existential_range: (1, 10),
            egd_range: (1, 10),
            tests: 50,
            average_size: 86,
        },
        CorpusClass {
            existential_range: (1, 10),
            egd_range: (11, 100),
            tests: 7,
            average_size: 451,
        },
        CorpusClass {
            existential_range: (11, 100),
            egd_range: (1, 10),
            tests: 15,
            average_size: 406,
        },
        CorpusClass {
            existential_range: (11, 100),
            egd_range: (11, 100),
            tests: 26,
            average_size: 1_210,
        },
        CorpusClass {
            existential_range: (101, 1000),
            egd_range: (1, 10),
            tests: 51,
            average_size: 3_113,
        },
        CorpusClass {
            existential_range: (101, 1000),
            egd_range: (11, 100),
            tests: 13,
            average_size: 3_176,
        },
        CorpusClass {
            existential_range: (1001, 5000),
            egd_range: (1, 10),
            tests: 9,
            average_size: 9_117,
        },
        CorpusClass {
            existential_range: (1001, 5000),
            egd_range: (11, 100),
            tests: 7,
            average_size: 19_587,
        },
    ]
}

/// A generated ontology together with its provenance.
#[derive(Clone, Debug)]
pub struct GeneratedOntology {
    /// Index of the class in [`paper_classes`].
    pub class_index: usize,
    /// Identifier of the class.
    pub class_id: String,
    /// The profile the set was generated from.
    pub profile: OntologyProfile,
    /// The dependency set itself.
    pub sigma: DependencySet,
}

/// Generates the full corpus at the paper's sizes. **Warning**: the two largest classes
/// contain sets with thousands of dependencies; prefer [`scaled_paper_corpus`] for
/// interactive use.
pub fn paper_corpus(seed: u64, cyclic_fraction: f64) -> Vec<GeneratedOntology> {
    scaled_paper_corpus(seed, cyclic_fraction, 1.0)
}

/// Generates the corpus with every size multiplied by `scale` (clamped below by small
/// minima so that every class stays non-degenerate). `cyclic_fraction` is the fraction
/// of ontologies per class that receive a non-terminating gadget — the paper observed
/// that a bit more than half of its corpus had non-terminating (or not-terminating-
/// within-24h) chases.
pub fn scaled_paper_corpus(seed: u64, cyclic_fraction: f64, scale: f64) -> Vec<GeneratedOntology> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for (class_index, class) in paper_classes().iter().enumerate() {
        for t in 0..class.tests {
            let ex_lo = scale_count(class.existential_range.0, scale);
            let ex_hi = scale_count(class.existential_range.1, scale).max(ex_lo + 1);
            let egd_lo = scale_count(class.egd_range.0, scale);
            let egd_hi = scale_count(class.egd_range.1, scale).max(egd_lo + 1);
            let existential = rng.random_range(ex_lo..=ex_hi);
            let egds = rng.random_range(egd_lo..=egd_hi);
            let target_size = scale_count(class.average_size, scale).max(existential + egds + 2);
            let full = target_size.saturating_sub(existential + egds).max(1);
            let cyclic = rng.random_range(0.0..1.0) < cyclic_fraction;
            let profile = OntologyProfile {
                existential,
                full,
                egds,
                cyclic,
                seed: seed
                    .wrapping_mul(1_000_003)
                    .wrapping_add((class_index * 1_000 + t) as u64),
            };
            let sigma = generate(&profile);
            out.push(GeneratedOntology {
                class_index,
                class_id: class.id(),
                profile,
                sigma,
            });
        }
    }
    out
}

fn scale_count(n: usize, scale: f64) -> usize {
    ((n as f64) * scale).round().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_classes_match_table_2a() {
        let classes = paper_classes();
        assert_eq!(classes.len(), 8);
        let total: usize = classes.iter().map(|c| c.tests).sum();
        assert_eq!(total, 178, "the corpus has 178 ontologies");
        assert_eq!(classes[0].tests, 50);
        assert_eq!(classes[7].average_size, 19_587);
    }

    #[test]
    fn scaled_corpus_has_the_right_class_cardinalities() {
        let corpus = scaled_paper_corpus(1, 0.5, 0.02);
        assert_eq!(corpus.len(), 178);
        let per_class: Vec<usize> = (0..8)
            .map(|i| corpus.iter().filter(|o| o.class_index == i).count())
            .collect();
        assert_eq!(per_class, vec![50, 7, 15, 26, 51, 13, 9, 7]);
    }

    #[test]
    fn scaled_corpus_respects_scaled_ranges() {
        let scale = 0.1;
        let corpus = scaled_paper_corpus(3, 0.4, scale);
        for ont in &corpus {
            let class = paper_classes()[ont.class_index];
            let ex = ont.sigma.existential_ids().len();
            let hi = scale_count(class.existential_range.1, scale).max(2) + 2;
            assert!(
                ex <= hi + 1,
                "class {} generated {ex} existential rules (cap {hi})",
                ont.class_id
            );
            assert!(!ont.sigma.egd_ids().is_empty(), "every class has EGDs");
        }
    }

    #[test]
    fn corpus_generation_is_deterministic() {
        let a = scaled_paper_corpus(9, 0.5, 0.02);
        let b = scaled_paper_corpus(9, 0.5, 0.02);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.profile, y.profile);
            assert_eq!(x.sigma.len(), y.sigma.len());
        }
    }

    #[test]
    fn cyclic_fraction_zero_and_one_are_respected() {
        let none = scaled_paper_corpus(5, 0.0, 0.02);
        assert!(none.iter().all(|o| !o.profile.cyclic));
        let all = scaled_paper_corpus(5, 1.0, 0.02);
        assert!(all.iter().all(|o| o.profile.cyclic));
    }
}
