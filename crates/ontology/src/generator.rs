//! The dependency-set generator: ontology-like rule shapes over a synthetic schema.
//!
//! Concepts are arranged in a total order ("specific" concepts first, "general"
//! concepts later). Non-cyclic profiles only generate rules whose values flow forward
//! along this order — existential restrictions are rooted in the specific half and
//! their invented individuals only reach the general half, which contains no
//! existential restrictions — so the resulting set has a terminating chase for every
//! database. The cyclic gadget deliberately violates this discipline, reproducing the
//! non-terminating ontologies of the original corpus.

use chase_core::builder::{atom, var};
use chase_core::{Dependency, DependencySet, Egd, Fact, GroundTerm, Instance, Tgd, Variable};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Parameters of one generated ontology.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OntologyProfile {
    /// Number of existentially quantified TGDs (`|Σ∃|`).
    pub existential: usize,
    /// Number of full TGDs.
    pub full: usize,
    /// Number of EGDs (`|Σegd|`).
    pub egds: usize,
    /// Whether to inject a genuine null-propagation cycle (a non-terminating gadget in
    /// the style of the Σ′ of Example 9: an existential restriction whose role feeds its
    /// own source concept back).
    pub cyclic: bool,
    /// RNG seed; equal profiles with equal seeds generate identical sets.
    pub seed: u64,
}

impl OntologyProfile {
    /// Total number of dependencies this profile generates.
    pub fn total(&self) -> usize {
        self.existential + self.full + self.egds + if self.cyclic { 2 } else { 0 }
    }
}

fn concept(i: usize) -> String {
    format!("C{i}")
}

fn role(i: usize) -> String {
    format!("R{i}")
}

/// Generates an ontology-style dependency set from a profile.
pub fn generate(profile: &OntologyProfile) -> DependencySet {
    let mut rng = StdRng::seed_from_u64(profile.seed);
    let total = profile.total().max(1);
    let n_concepts = (total / 2).clamp(4, 4000);
    let n_roles = (total / 3).clamp(2, 4000);
    let specific = n_concepts / 2; // concepts [0, specific) are "specific", the rest "general"
    let mut deps: Vec<Dependency> = Vec::with_capacity(total);

    // Full TGDs: concept inclusions (forward), role domains/ranges (into the general
    // half), role inverses, guarded conjunctions.
    for _ in 0..profile.full {
        let kind = rng.random_range(0..5u32);
        let d = match kind {
            0 => {
                // Concept inclusion C_i(x) -> C_j(x) with i ≤ j (hierarchies flow towards
                // more general concepts).
                let i = rng.random_range(0..n_concepts);
                let j = rng.random_range(i..n_concepts);
                Dependency::Tgd(
                    Tgd::new(
                        None,
                        vec![atom(&concept(i), vec![var("x")])],
                        vec![atom(&concept(j), vec![var("x")])],
                    )
                    .expect("well-formed"),
                )
            }
            1 => {
                // Role domain R(x,y) -> C(x), C in the general half.
                let r = rng.random_range(0..n_roles);
                let c = rng.random_range(specific..n_concepts);
                Dependency::Tgd(
                    Tgd::new(
                        None,
                        vec![atom(&role(r), vec![var("x"), var("y")])],
                        vec![atom(&concept(c), vec![var("x")])],
                    )
                    .expect("well-formed"),
                )
            }
            2 => {
                // Role range R(x,y) -> C(y), C in the general half.
                let r = rng.random_range(0..n_roles);
                let c = rng.random_range(specific..n_concepts);
                Dependency::Tgd(
                    Tgd::new(
                        None,
                        vec![atom(&role(r), vec![var("x"), var("y")])],
                        vec![atom(&concept(c), vec![var("y")])],
                    )
                    .expect("well-formed"),
                )
            }
            3 => {
                // Inverse / symmetric role R(x,y) -> S(y,x).
                let r = rng.random_range(0..n_roles);
                let s = rng.random_range(0..n_roles);
                Dependency::Tgd(
                    Tgd::new(
                        None,
                        vec![atom(&role(r), vec![var("x"), var("y")])],
                        vec![atom(&role(s), vec![var("y"), var("x")])],
                    )
                    .expect("well-formed"),
                )
            }
            _ => {
                // Guarded conjunction: C(x), R(x,y) -> D(y), D in the general half.
                let c = rng.random_range(0..n_concepts);
                let d = rng.random_range(specific..n_concepts);
                let r = rng.random_range(0..n_roles);
                Dependency::Tgd(
                    Tgd::new(
                        None,
                        vec![
                            atom(&concept(c), vec![var("x")]),
                            atom(&role(r), vec![var("x"), var("y")]),
                        ],
                        vec![atom(&concept(d), vec![var("y")])],
                    )
                    .expect("well-formed"),
                )
            }
        };
        deps.push(d);
    }

    // Existential TGDs: existential restrictions C(x) -> ∃y R(x,y) [, D(y)] rooted in
    // the specific half, with the optional range concept in the general half.
    for _ in 0..profile.existential {
        let src = rng.random_range(0..specific.max(1));
        let dst = rng.random_range(specific..n_concepts);
        let r = rng.random_range(0..n_roles);
        let with_range = rng.random_range(0..2u32) == 0;
        let mut head = vec![atom(&role(r), vec![var("x"), var("y")])];
        if with_range {
            head.push(atom(&concept(dst), vec![var("y")]));
        }
        deps.push(Dependency::Tgd(
            Tgd::new(None, vec![atom(&concept(src), vec![var("x")])], head).expect("well-formed"),
        ));
    }

    // EGDs: functional roles and keys (inverse-functional roles).
    for _ in 0..profile.egds {
        let r = rng.random_range(0..n_roles);
        let d = if rng.random_range(0..2u32) == 0 {
            // Functional role: R(x,y), R(x,z) -> y = z.
            Dependency::Egd(
                Egd::new(
                    None,
                    vec![
                        atom(&role(r), vec![var("x"), var("y")]),
                        atom(&role(r), vec![var("x"), var("z")]),
                    ],
                    Variable::new("y"),
                    Variable::new("z"),
                )
                .expect("well-formed"),
            )
        } else {
            // Inverse-functional role (key): R(x,y), R(z,y) -> x = z.
            Dependency::Egd(
                Egd::new(
                    None,
                    vec![
                        atom(&role(r), vec![var("x"), var("y")]),
                        atom(&role(r), vec![var("z"), var("y")]),
                    ],
                    Variable::new("x"),
                    Variable::new("z"),
                )
                .expect("well-formed"),
            )
        };
        deps.push(d);
    }

    // Optional non-terminating gadget: an existential restriction on a *specific*
    // concept whose role feeds that same concept back. The gadget uses a dedicated
    // role (never constrained by the functional-role EGDs above) so that the cycle is
    // genuinely non-terminating for every database with a matching fact.
    if profile.cyclic {
        let c = rng.random_range(0..specific.max(1));
        let r = format!("Rcyc{}", rng.random_range(0..n_roles));
        deps.push(Dependency::Tgd(
            Tgd::new(
                None,
                vec![atom(&concept(c), vec![var("x")])],
                vec![atom(&r, vec![var("x"), var("y")])],
            )
            .expect("well-formed"),
        ));
        deps.push(Dependency::Tgd(
            Tgd::new(
                None,
                vec![atom(&r, vec![var("x"), var("y")])],
                vec![atom(&concept(c), vec![var("y")])],
            )
            .expect("well-formed"),
        ));
    }

    let deps = deps
        .into_iter()
        .enumerate()
        .map(|(i, d)| d.with_label(&format!("r{}", i + 1)))
        .collect();
    DependencySet::from_vec(deps)
}

/// Generates a small database over the schema of `sigma`: `facts` facts over randomly
/// chosen predicates with constants drawn from a domain of `facts / 2 + 2` individuals.
pub fn generate_database(sigma: &DependencySet, facts: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    // Order predicates by *name*, not by their `Ord` (interner id): symbol ids
    // depend on process-global interning history, so sampling from id order
    // made "seeded" databases differ between runs of the same seed.
    let mut predicates: Vec<_> = sigma.predicates().into_iter().collect();
    predicates.sort_by_key(|p| (p.name.as_str(), p.arity));
    let mut db = Instance::new();
    if predicates.is_empty() {
        return db;
    }
    let domain = facts / 2 + 2;
    for _ in 0..facts {
        let p = predicates[rng.random_range(0..predicates.len())];
        let terms: Vec<GroundTerm> = (0..p.arity)
            .map(|_| {
                GroundTerm::Const(chase_core::Constant::new(&format!(
                    "ind{}",
                    rng.random_range(0..domain)
                )))
            })
            .collect();
        db.insert(Fact {
            predicate: p,
            terms,
        });
    }
    db
}

/// A convenience constructor mirroring the critical-instance idea: one fact per
/// predicate, all positions filled with the same constant. Useful as a worst-case
/// database when probing chase termination behaviour.
pub fn critical_database(sigma: &DependencySet) -> Instance {
    let mut db = Instance::new();
    let mut predicates: Vec<_> = sigma.predicates().into_iter().collect();
    predicates.sort_by_key(|p| (p.name.as_str(), p.arity));
    for p in predicates {
        let terms = vec![GroundTerm::Const(chase_core::Constant::new("star")); p.arity];
        db.insert(Fact {
            predicate: p,
            terms,
        });
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(existential: usize, full: usize, egds: usize, cyclic: bool) -> OntologyProfile {
        OntologyProfile {
            existential,
            full,
            egds,
            cyclic,
            seed: 42,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = profile(5, 10, 3, false);
        let a = generate(&p);
        let b = generate(&p);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn profile_counts_are_respected() {
        let p = profile(7, 12, 4, false);
        let sigma = generate(&p);
        assert_eq!(sigma.len(), 23);
        assert_eq!(sigma.existential_ids().len(), 7);
        assert_eq!(sigma.egd_ids().len(), 4);
        assert_eq!(sigma.tgd_ids().len(), 19);
    }

    #[test]
    fn cyclic_gadget_adds_two_rules() {
        let p = profile(2, 2, 1, true);
        let sigma = generate(&p);
        assert_eq!(sigma.len(), p.total());
        assert_eq!(sigma.len(), 7);
    }

    #[test]
    fn different_seeds_give_different_sets() {
        let a = generate(&OntologyProfile {
            seed: 1,
            ..profile(5, 10, 3, false)
        });
        let b = generate(&OntologyProfile {
            seed: 2,
            ..profile(5, 10, 3, false)
        });
        assert_eq!(a.len(), b.len());
        assert!(
            a.as_slice().iter().zip(b.as_slice()).any(|(x, y)| x != y),
            "different seeds should not generate identical ontologies"
        );
    }

    #[test]
    fn generated_databases_are_databases() {
        let sigma = generate(&profile(3, 6, 2, false));
        let db = generate_database(&sigma, 20, 7);
        assert!(db.is_database());
        assert!(db.len() <= 20);
        assert!(!db.is_empty());
    }

    #[test]
    fn critical_database_covers_every_predicate() {
        let sigma = generate(&profile(3, 6, 2, false));
        let db = critical_database(&sigma);
        assert_eq!(db.len(), sigma.predicates().len());
    }

    #[test]
    fn non_cyclic_ontologies_have_terminating_chases() {
        // The forward-flow discipline makes non-cyclic profiles terminate: verify by
        // actually running the standard chase on generated databases.
        use chase_engine::{Chase, ChaseBudget};
        for seed in 0..5 {
            let sigma = generate(&OntologyProfile {
                existential: 4,
                full: 8,
                egds: 2,
                cyclic: false,
                seed,
            });
            let db = generate_database(&sigma, 15, seed);
            let out = Chase::standard(&sigma)
                .with_budget(ChaseBudget::unlimited().with_max_steps(20_000))
                .run(&db);
            assert!(
                !out.is_budget_exhausted(),
                "non-cyclic ontology (seed {seed}) did not terminate"
            );
        }
    }

    #[test]
    fn acyclic_profiles_are_mostly_recognised_by_the_adornment_algorithm() {
        use chase_termination::adornment::{adorn_with, AdnConfig, FireableMode};
        let mut accepted = 0;
        let total = 10;
        for seed in 0..total {
            let sigma = generate(&OntologyProfile {
                existential: 4,
                full: 8,
                egds: 2,
                cyclic: false,
                seed,
            });
            let cfg = AdnConfig {
                fireable_mode: FireableMode::PredicateOverlap,
                ..AdnConfig::default()
            };
            if adorn_with(&sigma, &cfg).acyclic {
                accepted += 1;
            }
        }
        assert!(accepted >= 7, "only {accepted}/{total} accepted");
    }

    #[test]
    fn cyclic_profiles_are_rejected_by_the_adornment_algorithm() {
        use chase_termination::adornment::{adorn_with, AdnConfig, FireableMode};
        // Every seed must be rejected — seed 3 included, which used to trip the
        // historical `adorn_with` per-symbol-null soundness gap (an unrelated
        // functional-role EGD joining two distinct Dµ facts through a shared null).
        for seed in 0..8 {
            let sigma = generate(&OntologyProfile {
                existential: 2,
                full: 4,
                egds: 1,
                cyclic: true,
                seed,
            });
            let cfg = AdnConfig {
                fireable_mode: FireableMode::PredicateOverlap,
                ..AdnConfig::default()
            };
            assert!(
                !adorn_with(&sigma, &cfg).acyclic,
                "cyclic ontology (seed {seed}) must be rejected"
            );
        }
    }
}
