//! The [`TerminationAnalyzer`]: one front door for the whole criteria hierarchy.
//!
//! The analyzer runs the registered criteria **cheapest-first** (weak acyclicity
//! before safety before the graph-based criteria before the saturation- and
//! adornment-based ones) and, by default, **short-circuits** at the first acceptance
//! — every registered criterion is sound for `CT_std_∃`, so one acceptance settles
//! the question "can the chase be used on this set?". The produced
//! [`TerminationReport`] retains every verdict computed (each with its
//! machine-readable witness and elapsed time) and the names of the criteria that were
//! skipped, and renders as the report tables printed by the `termination_report`
//! example and the `table1` experiment binary.
//!
//! ```
//! use chase_core::parser::parse_dependencies;
//! use chase_termination::TerminationAnalyzer;
//!
//! // Σ1 of Example 1: only the adornment algorithm accepts it.
//! let sigma1 = parse_dependencies(
//!     "r1: N(?x) -> exists ?y: E(?x, ?y).
//!      r2: E(?x, ?y) -> N(?y).
//!      r3: E(?x, ?y) -> ?x = ?y.",
//! )
//! .unwrap();
//! let report = TerminationAnalyzer::new().analyze(&sigma1);
//! assert!(report.is_terminating());
//! assert_eq!(report.accepted().unwrap().criterion, "SAC");
//! ```

use crate::combined::all_criteria;
use chase_core::DependencySet;
use chase_criteria::criterion::{Guarantee, NamedCriterion, TerminationCriterion, Verdict};
use std::fmt;
use std::time::{Duration, Instant};

/// One analyzed criterion inside a [`TerminationReport`].
#[derive(Clone, Debug)]
pub struct AnalysisEntry {
    /// The criterion's verdict, witness included.
    pub verdict: Verdict,
    /// Wall-clock time the criterion took.
    pub elapsed: Duration,
}

/// The result of a [`TerminationAnalyzer`] run: every verdict computed, in execution
/// (cheapest-first) order, plus the criteria skipped by short-circuiting.
#[derive(Clone, Debug, Default)]
pub struct TerminationReport {
    /// The verdicts computed, in execution order.
    pub entries: Vec<AnalysisEntry>,
    /// Criteria that were not run because an earlier one already accepted.
    pub skipped: Vec<&'static str>,
}

impl TerminationReport {
    /// The first accepting verdict, if any.
    pub fn accepted(&self) -> Option<&Verdict> {
        self.entries.iter().map(|e| &e.verdict).find(|v| v.accepted)
    }

    /// Returns `true` iff some criterion accepted: for every database at least one
    /// standard chase sequence terminates (`CT_std_∃` or stronger).
    pub fn is_terminating(&self) -> bool {
        self.accepted().is_some()
    }

    /// The strongest termination guarantee established by an accepting criterion:
    /// [`Guarantee::AllSequences`] beats [`Guarantee::SomeSequence`].
    pub fn guarantee(&self) -> Option<Guarantee> {
        let accepted: Vec<&Verdict> = self
            .entries
            .iter()
            .map(|e| &e.verdict)
            .filter(|v| v.accepted)
            .collect();
        if accepted.is_empty() {
            None
        } else if accepted
            .iter()
            .any(|v| v.guarantee == Guarantee::AllSequences)
        {
            Some(Guarantee::AllSequences)
        } else {
            Some(Guarantee::SomeSequence)
        }
    }

    /// The verdict of a specific criterion, if it ran.
    pub fn verdict_for(&self, criterion: &str) -> Option<&Verdict> {
        self.entries
            .iter()
            .map(|e| &e.verdict)
            .find(|v| v.criterion == criterion)
    }

    /// A one-line summary: the accepting criterion and its guarantee, or a rejection
    /// note. Used by the experiment binaries' table cells.
    pub fn summary(&self) -> String {
        match self.accepted() {
            Some(v) => format!("{} ({})", v.criterion, v.guarantee),
            None => "rejected by all".to_string(),
        }
    }

    /// Total wall-clock spent across every criterion that ran.
    pub fn total_elapsed(&self) -> Duration {
        self.entries.iter().map(|e| e.elapsed).sum()
    }

    /// The report as [`chase_obs`] verdict rows, one per registered criterion:
    /// the verdicts that ran (status `accepts`/`rejects`, with guarantee,
    /// per-criterion wall-clock and rendered witness) followed by the criteria
    /// skipped by short-circuiting (status `skipped`). This is the verdict
    /// table a [`chase_obs::RunReport`] carries.
    pub fn verdict_rows(&self) -> Vec<chase_obs::VerdictRow> {
        let mut rows: Vec<chase_obs::VerdictRow> = self
            .entries
            .iter()
            .map(|entry| chase_obs::VerdictRow {
                criterion: entry.verdict.criterion.to_string(),
                criterion_id: entry.verdict.criterion_id().as_str().to_string(),
                status: if entry.verdict.accepted {
                    "accepts".to_string()
                } else {
                    "rejects".to_string()
                },
                guarantee: entry.verdict.guarantee.to_string(),
                elapsed_ns: chase_obs::duration_ns(entry.elapsed),
                witness: entry.verdict.witness.to_string(),
            })
            .collect();
        rows.extend(self.skipped.iter().map(|name| {
            chase_obs::VerdictRow {
                criterion: name.to_string(),
                criterion_id: chase_criteria::CriterionId::from_name(name)
                    .as_str()
                    .to_string(),
                status: "skipped".to_string(),
                guarantee: String::new(),
                elapsed_ns: 0,
                witness: String::new(),
            }
        }));
        rows
    }
}

impl fmt::Display for TerminationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for entry in &self.entries {
            writeln!(
                f,
                "  {:8} [{}]  {:7}  {:>7.1?}  {}",
                entry.verdict.criterion,
                entry.verdict.guarantee,
                if entry.verdict.accepted {
                    "accepts"
                } else {
                    "rejects"
                },
                entry.elapsed,
                entry.verdict.witness
            )?;
        }
        if !self.skipped.is_empty() {
            writeln!(
                f,
                "  skipped (already settled): {}",
                self.skipped.join(", ")
            )?;
        }
        match self.accepted() {
            Some(v) => writeln!(
                f,
                "  ⇒ terminating: accepted by {} (guarantee {})",
                v.criterion,
                self.guarantee().expect("an acceptance exists")
            ),
            None => writeln!(f, "  ⇒ no registered criterion accepts the set"),
        }
    }
}

/// Runs the termination-criteria hierarchy cheapest-first over a dependency set.
///
/// The default analyzer carries the full portfolio ([`all_criteria`]) and stops at
/// the first acceptance; use [`TerminationAnalyzer::exhaustive`] to always run every
/// criterion (e.g. to compare expressiveness, or to obtain the strongest guarantee
/// rather than the cheapest acceptance).
pub struct TerminationAnalyzer {
    criteria: Vec<NamedCriterion>,
    short_circuit: bool,
}

impl Default for TerminationAnalyzer {
    fn default() -> Self {
        TerminationAnalyzer::new()
    }
}

impl TerminationAnalyzer {
    /// The full hierarchy, cheapest-first, short-circuiting at the first acceptance.
    pub fn new() -> Self {
        TerminationAnalyzer::with_criteria(all_criteria())
    }

    /// The full hierarchy, cheapest-first, running every criterion regardless of
    /// earlier acceptances.
    pub fn exhaustive() -> Self {
        let mut a = TerminationAnalyzer::new();
        a.short_circuit = false;
        a
    }

    /// An analyzer over a custom criteria portfolio (sorted cheapest-first by
    /// [`TerminationCriterion::cost`]).
    pub fn with_criteria(mut criteria: Vec<NamedCriterion>) -> Self {
        criteria.sort_by_key(|c| c.cost);
        TerminationAnalyzer {
            criteria,
            short_circuit: true,
        }
    }

    /// Disables or re-enables short-circuiting.
    pub fn with_short_circuit(mut self, yes: bool) -> Self {
        self.short_circuit = yes;
        self
    }

    /// The names of the registered criteria, in execution order.
    pub fn criteria_names(&self) -> Vec<&'static str> {
        self.criteria.iter().map(|c| c.name).collect()
    }

    /// Analyzes `sigma`, producing a [`TerminationReport`].
    pub fn analyze(&self, sigma: &DependencySet) -> TerminationReport {
        let mut report = TerminationReport::default();
        let mut settled = false;
        for criterion in &self.criteria {
            if settled {
                report.skipped.push(criterion.name);
                continue;
            }
            let start = Instant::now();
            let verdict = criterion.verdict(sigma);
            let elapsed = start.elapsed();
            let accepted = verdict.accepted;
            report.entries.push(AnalysisEntry { verdict, elapsed });
            if accepted && self.short_circuit {
                settled = true;
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::parser::parse_dependencies;

    fn sigma1() -> DependencySet {
        parse_dependencies(
            "r1: N(?x) -> exists ?y: E(?x, ?y). r2: E(?x, ?y) -> N(?y). r3: E(?x, ?y) -> ?x = ?y.",
        )
        .unwrap()
    }

    #[test]
    fn criteria_run_cheapest_first() {
        let analyzer = TerminationAnalyzer::new();
        let names = analyzer.criteria_names();
        let wa = names.iter().position(|&n| n == "WA").unwrap();
        let mfa = names.iter().position(|&n| n == "MFA").unwrap();
        let sac = names.iter().position(|&n| n == "SAC").unwrap();
        assert!(wa < mfa, "WA must run before the MFA saturation");
        assert!(mfa < sac, "MFA must run before the adornment algorithm");
    }

    #[test]
    fn short_circuit_skips_the_expensive_tail() {
        let wa_set = parse_dependencies("r: A(?x) -> B(?x).").unwrap();
        let report = TerminationAnalyzer::new().analyze(&wa_set);
        assert_eq!(report.entries.len(), 1, "WA settles a full TGD immediately");
        assert_eq!(report.accepted().unwrap().criterion, "WA");
        assert!(report.skipped.contains(&"SAC"));
        assert_eq!(report.guarantee(), Some(Guarantee::AllSequences));
    }

    #[test]
    fn sigma1_runs_the_whole_hierarchy_up_to_sac() {
        let report = TerminationAnalyzer::new().analyze(&sigma1());
        assert!(report.is_terminating());
        let accepted = report.accepted().unwrap();
        assert_eq!(accepted.criterion, "SAC");
        assert_eq!(report.guarantee(), Some(Guarantee::SomeSequence));
        // Everything cheaper than SAC ran and rejected.
        for name in ["WA", "SC", "SwA", "Str", "CStr", "S-Str", "MFA"] {
            let v = report.verdict_for(name).expect("cheaper criterion ran");
            assert!(!v.accepted, "{name} must reject Σ1");
            assert!(!v.witness.is_trivial(), "{name} must explain its rejection");
        }
    }

    #[test]
    fn exhaustive_mode_runs_everything() {
        let wa_set = parse_dependencies("r: A(?x) -> B(?x).").unwrap();
        let report = TerminationAnalyzer::exhaustive().analyze(&wa_set);
        assert!(report.skipped.is_empty());
        assert_eq!(report.entries.len(), all_criteria().len());
        assert!(report.entries.iter().all(|e| e.verdict.accepted));
    }

    #[test]
    fn rejection_report_has_no_acceptance() {
        let sigma10 = parse_dependencies(
            "r1: N(?x) -> exists ?y, ?z: E(?x, ?y, ?z). r2: E(?x, ?y, ?y) -> N(?y). r3: E(?x, ?y, ?z) -> ?y = ?z.",
        )
        .unwrap();
        let report = TerminationAnalyzer::new().analyze(&sigma10);
        assert!(!report.is_terminating());
        assert_eq!(report.guarantee(), None);
        assert_eq!(report.entries.len(), all_criteria().len());
        assert_eq!(report.summary(), "rejected by all");
    }

    #[test]
    fn verdict_rows_cover_ran_and_skipped_criteria() {
        let wa_set = parse_dependencies("r: A(?x) -> B(?x).").unwrap();
        let analyzer = TerminationAnalyzer::new();
        let report = analyzer.analyze(&wa_set);
        let rows = report.verdict_rows();
        // One row per registered criterion: the ones that ran, then the skipped.
        assert_eq!(rows.len(), analyzer.criteria_names().len());
        assert_eq!(rows[0].criterion, "WA");
        assert_eq!(rows[0].criterion_id, "wa");
        assert_eq!(rows[0].status, "accepts");
        assert_eq!(rows[0].guarantee, Guarantee::AllSequences.to_string());
        assert!(rows[1..].iter().all(|r| r.status == "skipped"));
        // Every row — ran or skipped — carries a non-empty machine-readable id.
        assert!(rows.iter().all(|r| !r.criterion_id.is_empty()));
        assert!(report.total_elapsed() >= report.entries[0].elapsed);
    }

    #[test]
    fn display_renders_one_line_per_verdict() {
        let report = TerminationAnalyzer::new().analyze(&sigma1());
        let rendered = report.to_string();
        assert!(rendered.contains("SAC"));
        assert!(rendered.contains("accepts"));
        assert!(rendered.contains("⇒ terminating"));
    }
}
