//! The firing relation `r1 < r2` and the firing graph `Gf(Σ)` of Definition 2.
//!
//! The relation refines the chase-graph relation `≺` of stratification with one extra
//! condition: when the *target* dependency `r2` is existentially quantified, the edge
//! only exists if the witnessing situation cannot be defused by first enforcing a full
//! dependency — formally, there must be **no** `r3 ∈ Σ∀` with a standard chase step
//! `K --r3,h3,γ3--> J'` such that `J' ⊨ h2(r2)`.
//!
//! This is what allows semi-stratification to recognise sets such as Σ11 of Example 11,
//! where the re-firing of the existential rule can always be blocked by a full TGD.

use chase_core::homomorphism::{Assignment, HomomorphismSearch};
use chase_core::satisfaction::satisfies_under;
use chase_core::{Dependency, DependencySet, GroundTerm, Instance};
use chase_criteria::firing::{for_each_firing_witness, Applicability, FiringConfig, FiringWitness};
use chase_criteria::graph::DiGraph;
use std::ops::ControlFlow;

/// Returns `true` iff `r1 < r2` (Definition 2), evaluated over the bounded witness
/// space of [`chase_criteria::firing`]. `sigma` provides the set `Σ∀` used by the
/// blocking condition.
pub fn definition2_edge(
    sigma: &DependencySet,
    r1: &Dependency,
    r2: &Dependency,
    config: &FiringConfig,
) -> bool {
    let full_deps: Vec<&Dependency> = sigma
        .iter()
        .filter(|(_, d)| d.is_full())
        .map(|(_, d)| d)
        .collect();
    let answer = for_each_firing_witness(r1, r2, config, &mut |w| {
        if !r2.is_existential() || !witness_is_blocked(&full_deps, w, r2) {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    answer.may_fire()
}

/// Checks the blocking condition of Definition 2 for a single witness: is there a full
/// dependency `r3` and a standard chase step on `K` whose result satisfies `h2(r2)`?
fn witness_is_blocked(full_deps: &[&Dependency], witness: &FiringWitness, r2: &Dependency) -> bool {
    for r3 in full_deps {
        let blocked = HomomorphismSearch::new(r3.body(), &witness.k).for_each_extending(
            &Assignment::new(),
            &mut |h3| {
                if let Some(j_prime) = standard_step(&witness.k, r3, h3) {
                    if satisfies_under(&j_prime, r2, &witness.h2) {
                        return ControlFlow::Break(());
                    }
                }
                ControlFlow::Continue(())
            },
        );
        if blocked.is_some() {
            return true;
        }
    }
    false
}

/// Simulates one standard chase step of the full dependency `r3` under `h3`, returning
/// the successor instance if the step is applicable and non-failing.
fn standard_step(k: &Instance, r3: &Dependency, h3: &Assignment) -> Option<Instance> {
    match r3 {
        Dependency::Tgd(tgd) => {
            if chase_core::homomorphism::exists_homomorphism_extending(&tgd.head, k, h3) {
                return None;
            }
            // Full TGD: no fresh nulls are needed.
            let mut j = k.clone();
            for atom in &tgd.head {
                j.insert(h3.apply_atom(atom).expect("full TGD head variables bound"));
            }
            Some(j)
        }
        Dependency::Egd(egd) => {
            let a = h3.get(egd.left)?;
            let b = h3.get(egd.right)?;
            if a == b {
                return None;
            }
            let gamma = match (a, b) {
                (GroundTerm::Const(_), GroundTerm::Const(_)) => return None,
                (GroundTerm::Null(n), other) => chase_core::NullSubstitution::single(n, other),
                (other, GroundTerm::Null(n)) => chase_core::NullSubstitution::single(n, other),
            };
            Some(k.apply_substitution(&gamma))
        }
    }
}

/// Builds the firing graph `Gf(Σ)` of Definition 2: nodes are dependency indices, with
/// an edge `(r1, r2)` iff `r1 < r2`.
pub fn firing_graph(sigma: &DependencySet) -> DiGraph {
    firing_graph_with(sigma, &FiringConfig::default())
}

/// [`firing_graph`] with an explicit firing-test configuration.
pub fn firing_graph_with(sigma: &DependencySet, config: &FiringConfig) -> DiGraph {
    debug_assert_eq!(config.applicability, Applicability::Standard);
    let mut g = DiGraph::new();
    for id in sigma.ids() {
        g.add_node(id.0);
    }
    for (i, r1) in sigma.iter() {
        for (j, r2) in sigma.iter() {
            if definition2_edge(sigma, r1, r2, config) {
                g.add_edge(i.0, j.0, false);
            }
        }
    }
    g
}

/// Returns `true` iff `r1` is *fireable* with respect to `sigma`: some dependency of
/// `sigma` fires it (Definition 2).
pub fn is_fireable(sigma: &DependencySet, r1: &Dependency, config: &FiringConfig) -> bool {
    sigma
        .iter()
        .any(|(_, r2)| definition2_edge(sigma, r2, r1, config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::parser::parse_dependencies;
    use chase_core::DepId;
    use chase_criteria::firing::chase_graph_edge;

    fn cfg() -> FiringConfig {
        FiringConfig::default()
    }

    fn sigma11() -> DependencySet {
        parse_dependencies(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> E(?y, ?x).
            "#,
        )
        .unwrap()
    }

    #[test]
    fn example11_edge_r2_r1_is_in_chase_graph_but_not_firing_graph() {
        let sigma = sigma11();
        let r1 = sigma.get(DepId(0));
        let r2 = sigma.get(DepId(1));
        // Chase graph (stratification) has the edge r2 ≺ r1 …
        assert!(chase_graph_edge(r2, r1, &cfg()));
        // … but the firing of r1 because of r2 is always blocked by first enforcing r3,
        // so r2 < r1 does not hold (Figure 1 of the paper).
        assert!(!definition2_edge(&sigma, r2, r1, &cfg()));
    }

    #[test]
    fn example11_firing_graph_matches_figure1() {
        // Figure 1 (right): full TGDs r2 and r3 keep their incoming edges; the edge
        // r2 -> r1 is dropped.
        let sigma = sigma11();
        let g = firing_graph(&sigma);
        assert!(g.has_edge(0, 1), "r1 < r2");
        assert!(g.has_edge(0, 2), "r1 < r3");
        assert!(!g.has_edge(1, 0), "r2 < r1 must NOT hold");
        assert!(!g.has_edge(2, 0), "r3 < r1 must NOT hold");
    }

    #[test]
    fn example1_keeps_the_cycle_in_the_firing_graph() {
        // In Σ1 the blocker is an EGD, and a witness with two distinct constants cannot
        // be defused (the EGD step would fail), so r2 < r1 still holds.
        let sigma = parse_dependencies(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> ?x = ?y.
            "#,
        )
        .unwrap();
        let g = firing_graph(&sigma);
        assert!(g.has_edge(1, 0), "r2 < r1 holds for Σ1");
        assert!(g.has_edge(0, 1), "r1 < r2 holds for Σ1");
    }

    #[test]
    fn full_dependencies_have_identical_incoming_edges_in_both_graphs() {
        // For full targets the blocking condition is vacuous, so < and ≺ agree.
        let sigma = sigma11();
        let g = firing_graph(&sigma);
        for (i, r1) in sigma.iter() {
            for (j, r2) in sigma.iter() {
                if r2.is_full() {
                    assert_eq!(
                        g.has_edge(i.0, j.0),
                        chase_graph_edge(r1, r2, &cfg()),
                        "mismatch on ({i:?}, {j:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn fireable_dependencies_of_example11() {
        let sigma = sigma11();
        // r2 and r3 are fireable (r1 fires them); r1 is not fireable.
        assert!(is_fireable(&sigma, sigma.get(DepId(1)), &cfg()));
        assert!(is_fireable(&sigma, sigma.get(DepId(2)), &cfg()));
        assert!(!is_fireable(&sigma, sigma.get(DepId(0)), &cfg()));
    }

    #[test]
    fn firing_graph_is_a_subgraph_of_the_chase_graph() {
        for src in [
            "r1: N(?x) -> exists ?y: E(?x, ?y). r2: E(?x, ?y) -> N(?y). r3: E(?x, ?y) -> ?x = ?y.",
            "r1: N(?x) -> exists ?y: E(?x, ?y). r2: E(?x, ?y) -> N(?y). r3: E(?x, ?y) -> E(?y, ?x).",
            "a: A(?x) -> B(?x). b: B(?x) -> C(?x).",
            "r: E(?x, ?y) -> exists ?z: E(?y, ?z).",
        ] {
            let sigma = parse_dependencies(src).unwrap();
            let gf = firing_graph(&sigma);
            let gc = chase_criteria::firing::chase_graph(&sigma, &cfg());
            for (f, t, _) in gf.edges() {
                assert!(gc.has_edge(f, t), "Gf ⊆ G violated on {src}: ({f},{t})");
            }
        }
    }
}
