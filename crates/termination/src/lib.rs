//! # chase-termination
//!
//! The contribution of Calautti, Greco, Molinaro, Trubitsyna — *Exploiting Equality
//! Generating Dependencies in Checking Chase Termination* (PVLDB 9(5), 2016):
//! EGD-aware sufficient conditions for membership in `CT_std_∃` (for every database,
//! at least one terminating standard chase sequence exists).
//!
//! * [`firing`] — the firing relation `r1 < r2` and the firing graph `Gf(Σ)` of
//!   **Definition 2**, which refines the chase graph of stratification by discarding
//!   edges whose firing can always be blocked by first enforcing a full dependency;
//! * [`semi_stratification`] — **semi-stratification** (`S-Str`, Definition 3): every
//!   strongly connected component of `Gf(Σ)` must be weakly acyclic;
//! * [`adornment`] — the **`Adn∃` adornment algorithm** (Algorithm 1) and
//!   **semi-acyclicity** (`SAC`, Definition 4), which analyse EGDs directly by
//!   propagating bound/free adornments and applying EGD-induced substitutions;
//! * [`combined`] — the **`Adn∃-C`** combinator (Theorems 10–11): any existing
//!   criterion applied to the adorned set recognises strictly more sets in `CT_std_∃`;
//! * [`analyzer`] — the [`TerminationAnalyzer`]: the whole hierarchy behind one call,
//!   run cheapest-first with short-circuiting, producing a witness-carrying
//!   [`TerminationReport`].
//!
//! ```
//! use chase_core::parser::parse_dependencies;
//! use chase_termination::prelude::*;
//!
//! // Σ11 of Example 11: semi-stratified (and semi-acyclic), although not stratified.
//! let sigma11 = parse_dependencies(
//!     "r1: N(?x) -> exists ?y: E(?x, ?y).
//!      r2: E(?x, ?y) -> N(?y).
//!      r3: E(?x, ?y) -> E(?y, ?x).",
//! )
//! .unwrap();
//! assert!(SemiStratification::default().accepts(&sigma11));
//!
//! // Σ1 of Example 1: recognised by the adornment algorithm (Example 12). The
//! // analyzer runs the hierarchy cheapest-first and reports who accepted and why.
//! let sigma1 = parse_dependencies(
//!     "r1: N(?x) -> exists ?y: E(?x, ?y).
//!      r2: E(?x, ?y) -> N(?y).
//!      r3: E(?x, ?y) -> ?x = ?y.",
//! )
//! .unwrap();
//! let report = TerminationAnalyzer::new().analyze(&sigma1);
//! assert_eq!(report.accepted().unwrap().criterion, "SAC");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adornment;
pub mod analyzer;
pub mod combined;
pub mod firing;
pub mod semi_stratification;

pub use adornment::{
    adorn, adorn_with, adornment_witness, AdSym, AdnConfig, AdnDefinition, AdnResult, FireableMode,
    SemiAcyclicity,
};
pub use analyzer::{AnalysisEntry, TerminationAnalyzer, TerminationReport};
pub use combined::{adn_combined, adn_combined_with, all_criteria, paper_criteria, AdnCombined};
pub use firing::{definition2_edge, firing_graph, firing_graph_with, is_fireable};
pub use semi_stratification::{
    semi_stratification_report, SemiStratification, SemiStratificationReport,
};

#[allow(deprecated)]
pub use adornment::{is_semi_acyclic, is_semi_acyclic_with};
#[allow(deprecated)]
pub use semi_stratification::{is_semi_stratified, is_semi_stratified_with};

/// Convenience re-exports.
pub mod prelude {
    pub use chase_criteria::criterion::{Guarantee, TerminationCriterion, Verdict, Witness};

    pub use crate::adornment::{adorn, AdnConfig, AdnResult, SemiAcyclicity};
    pub use crate::analyzer::{TerminationAnalyzer, TerminationReport};
    pub use crate::combined::{adn_combined, all_criteria, paper_criteria, AdnCombined};
    pub use crate::firing::{definition2_edge, firing_graph};
    pub use crate::semi_stratification::{semi_stratification_report, SemiStratification};

    #[allow(deprecated)]
    pub use crate::adornment::is_semi_acyclic;
    #[allow(deprecated)]
    pub use crate::semi_stratification::is_semi_stratified;
}
