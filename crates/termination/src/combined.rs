//! The `Adn∃-C` combinator (Theorems 10 and 11): apply an arbitrary termination
//! criterion `C` to the adorned set `Σµ = Adn∃(Σ)[1]` instead of `Σ`.
//!
//! If `Σµ ∈ C` then `Σ ∈ CT_std_∃` (Theorem 10), and `C ⊆ Adn∃-C` for every criterion
//! `C` (Theorem 11) — combining the adornment with a criterion never loses sets and
//! often gains some, because the adorned set has the same or weaker structural
//! dependencies (EGD effects having been compiled away into the adornments).

use crate::adornment::{adorn_with, adornment_witness, AdnConfig, AdnResult, SemiAcyclicity};
use crate::semi_stratification::SemiStratification;
use chase_core::DependencySet;
use chase_criteria::criterion::{
    Guarantee, NamedCriterion, TerminationCriterion, Verdict, Witness,
};
use chase_criteria::safety::Safety;
use chase_criteria::super_weak::SuperWeakAcyclicity;
use chase_criteria::weak_acyclicity::WeakAcyclicity;

/// The `Adn∃-C` combinator as a witness-producing [`TerminationCriterion`]: runs the
/// adornment algorithm, then the inner criterion `C` on the adorned set `Σµ`.
///
/// The verdict's witness pairs the adornment trace with the inner criterion's verdict
/// on `Σµ` ([`Witness::Combined`]); the guarantee is always `CT_std_∃` (Theorem 10),
/// regardless of what `C` guarantees on sets it analyses directly.
pub struct AdnCombined {
    name: &'static str,
    config: AdnConfig,
    cost: u32,
    inner: Box<dyn TerminationCriterion + Send + Sync>,
}

impl AdnCombined {
    /// Combines the adornment with an arbitrary inner criterion.
    pub fn new(
        name: &'static str,
        cost: u32,
        inner: impl TerminationCriterion + Send + Sync + 'static,
    ) -> Self {
        AdnCombined {
            name,
            config: AdnConfig::default(),
            cost,
            inner: Box::new(inner),
        }
    }

    /// Sets the adornment configuration.
    pub fn with_config(mut self, config: AdnConfig) -> Self {
        self.config = config;
        self
    }

    /// `Adn∃-WA`: weak acyclicity on the adorned set.
    pub fn weak_acyclicity() -> Self {
        AdnCombined::new("Adn-WA", 90, WeakAcyclicity)
    }

    /// `Adn∃-SC`: safety on the adorned set.
    pub fn safety() -> Self {
        AdnCombined::new("Adn-SC", 91, Safety)
    }

    /// `Adn∃-SwA`: super-weak acyclicity on the adorned set.
    pub fn super_weak_acyclicity() -> Self {
        AdnCombined::new("Adn-SwA", 92, SuperWeakAcyclicity)
    }
}

impl TerminationCriterion for AdnCombined {
    fn name(&self) -> &'static str {
        self.name
    }

    fn guarantee(&self) -> Guarantee {
        Guarantee::SomeSequence
    }

    fn cost(&self) -> u32 {
        self.cost
    }

    fn verdict(&self, sigma: &DependencySet) -> Verdict {
        let result = adorn_with(sigma, &self.config);
        let inner = self.inner.verdict(&result.adorned);
        Verdict {
            criterion: self.name,
            guarantee: Guarantee::SomeSequence,
            accepted: inner.accepted,
            witness: Witness::Combined {
                adornment: Box::new(adornment_witness(&result)),
                inner: Box::new(inner),
            },
        }
    }
}

/// Applies criterion `check` to the adorned version of `sigma` (`Adn∃-C`).
///
/// Returns the underlying [`AdnResult`] alongside the verdict so that callers can also
/// inspect `Acyc` and the adorned set.
pub fn adn_combined_with(
    sigma: &DependencySet,
    config: &AdnConfig,
    check: impl Fn(&DependencySet) -> bool,
) -> (bool, AdnResult) {
    let result = adorn_with(sigma, config);
    let verdict = check(&result.adorned);
    (verdict, result)
}

/// Applies criterion `check` to the adorned version of `sigma` with the default
/// configuration, returning only the verdict.
pub fn adn_combined(sigma: &DependencySet, check: impl Fn(&DependencySet) -> bool) -> bool {
    adn_combined_with(sigma, &AdnConfig::default(), check).0
}

/// Convenience: `Adn∃-WA` — weak acyclicity on the adorned set.
#[deprecated(note = "use AdnCombined::weak_acyclicity() (TerminationCriterion)")]
pub fn adn_weak_acyclicity(sigma: &DependencySet) -> bool {
    AdnCombined::weak_acyclicity().accepts(sigma)
}

/// Convenience: `Adn∃-SC` — safety on the adorned set.
#[deprecated(note = "use AdnCombined::safety() (TerminationCriterion)")]
pub fn adn_safety(sigma: &DependencySet) -> bool {
    AdnCombined::safety().accepts(sigma)
}

/// Convenience: `Adn∃-SwA` — super-weak acyclicity on the adorned set.
#[deprecated(note = "use AdnCombined::super_weak_acyclicity() (TerminationCriterion)")]
pub fn adn_super_weak_acyclicity(sigma: &DependencySet) -> bool {
    AdnCombined::super_weak_acyclicity().accepts(sigma)
}

/// Wraps every baseline criterion `C` into its `Adn∃-C` counterpart, for use in the
/// experiment harness. All combined criteria guarantee membership in `CT_std_∃`.
pub fn combined_criteria() -> Vec<NamedCriterion> {
    vec![
        NamedCriterion::from_criterion(AdnCombined::weak_acyclicity()),
        NamedCriterion::from_criterion(AdnCombined::safety()),
        NamedCriterion::from_criterion(AdnCombined::super_weak_acyclicity()),
    ]
}

/// The paper's own criteria packaged as [`NamedCriterion`]s: semi-stratification and
/// semi-acyclicity.
pub fn paper_criteria() -> Vec<NamedCriterion> {
    vec![
        NamedCriterion::from_criterion(SemiStratification::default()),
        NamedCriterion::from_criterion(SemiAcyclicity::default()),
    ]
}

/// Every criterion known to the workspace: the baselines, the paper's criteria and the
/// `Adn∃-C` combinations, in that order.
pub fn all_criteria() -> Vec<NamedCriterion> {
    let mut out = chase_criteria::criterion::baseline_criteria();
    out.extend(paper_criteria());
    out.extend(combined_criteria());
    out
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the legacy boolean shims stay pinned by these tests

    use super::*;
    use chase_core::parser::parse_dependencies;

    fn sigma1() -> DependencySet {
        parse_dependencies(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> ?x = ?y.
            "#,
        )
        .unwrap()
    }

    #[test]
    fn theorem11_adn_c_contains_c_on_a_corpus() {
        let inputs = [
            "r1: P(?x, ?y) -> exists ?z: E(?x, ?z). r2: Q(?x, ?y) -> exists ?z: E(?z, ?y).",
            "a: A(?x) -> B(?x). b: B(?x) -> C(?x).",
            "r: E(?x, ?y) -> exists ?z: E(?x, ?z).",
            "r1: A(?x) -> exists ?y: B(?x, ?y). r2: B(?x, ?y) -> C(?y).",
            "k: R(?x, ?y), R(?x, ?z) -> ?y = ?z.",
        ];
        for src in inputs {
            let sigma = parse_dependencies(src).unwrap();
            if WeakAcyclicity.accepts(&sigma) {
                assert!(
                    AdnCombined::weak_acyclicity().accepts(&sigma),
                    "WA ⊆ Adn-WA violated on {src}"
                );
            }
            if Safety.accepts(&sigma) {
                assert!(
                    AdnCombined::safety().accepts(&sigma),
                    "SC ⊆ Adn-SC violated on {src}"
                );
            }
        }
    }

    #[test]
    fn combined_verdict_nests_the_inner_witness() {
        let chain =
            parse_dependencies("r1: A(?x) -> exists ?y: B(?x, ?y). r2: B(?x, ?y) -> C(?y).")
                .unwrap();
        let verdict = AdnCombined::weak_acyclicity().verdict(&chain);
        assert!(verdict.accepted);
        match verdict.witness {
            Witness::Combined { adornment, inner } => {
                assert!(matches!(*adornment, Witness::AdornmentTrace { .. }));
                assert_eq!(inner.criterion, "WA");
                assert!(inner.accepted);
                assert!(matches!(
                    inner.witness,
                    Witness::AcyclicPositionGraph { .. }
                ));
            }
            other => panic!("expected Combined, got {other:?}"),
        }
    }

    #[test]
    fn sigma1_is_gained_by_the_adornment_algorithm_itself() {
        // Σ1 is rejected by every classical criterion (it is not even in CT_std_∀), but
        // the adornment algorithm recognises it directly (Example 12). Its adorned set
        // still carries the structural null-cycle (the adorned rules mirror r1/r2), so
        // the gain here comes from SAC, not from Adn∃-WA.
        let sigma = sigma1();
        assert!(!WeakAcyclicity.accepts(&sigma));
        assert!(!Safety.accepts(&sigma));
        assert!(crate::adornment::SemiAcyclicity::default().accepts(&sigma));
    }

    #[test]
    fn combined_result_exposes_the_adorned_set() {
        let chain =
            parse_dependencies("r1: A(?x) -> exists ?y: B(?x, ?y). r2: B(?x, ?y) -> C(?y).")
                .unwrap();
        let (verdict, result) =
            adn_combined_with(&chain, &crate::adornment::AdnConfig::default(), |s| {
                WeakAcyclicity.accepts(s)
            });
        assert!(verdict, "the adorned version of a WA set stays WA");
        assert!(result.acyclic);
        assert!(result.adorned.len() > chain.len());
    }

    #[test]
    fn registry_contains_paper_and_combined_criteria() {
        let all = all_criteria();
        let names: Vec<&str> = all.iter().map(|c| c.name).collect();
        for expected in [
            "WA", "SC", "SwA", "Str", "CStr", "MFA", "S-Str", "SAC", "Adn-WA",
        ] {
            assert!(names.contains(&expected), "missing criterion {expected}");
        }
    }

    #[test]
    fn legacy_boolean_shims_agree_with_the_criteria() {
        let sigma = sigma1();
        assert_eq!(
            adn_weak_acyclicity(&sigma),
            AdnCombined::weak_acyclicity().accepts(&sigma)
        );
        assert_eq!(adn_safety(&sigma), AdnCombined::safety().accepts(&sigma));
        assert_eq!(
            adn_super_weak_acyclicity(&sigma),
            AdnCombined::super_weak_acyclicity().accepts(&sigma)
        );
    }

    #[test]
    fn sigma10_is_rejected_even_after_combination() {
        // Σ10 has no terminating sequence at all, so every sound criterion must reject.
        let sigma10 = parse_dependencies(
            r#"
            r1: N(?x) -> exists ?y, ?z: E(?x, ?y, ?z).
            r2: E(?x, ?y, ?y) -> N(?y).
            r3: E(?x, ?y, ?z) -> ?y = ?z.
            "#,
        )
        .unwrap();
        for criterion in all_criteria() {
            let verdict = criterion.verdict(&sigma10);
            assert!(!verdict.accepted, "{} wrongly accepts Σ10", criterion.name);
            assert!(
                !verdict.witness.is_trivial(),
                "{} must explain its rejection",
                criterion.name
            );
        }
    }
}
