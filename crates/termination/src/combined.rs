//! The `Adn∃-C` combinator (Theorems 10 and 11): apply an arbitrary termination
//! criterion `C` to the adorned set `Σµ = Adn∃(Σ)[1]` instead of `Σ`.
//!
//! If `Σµ ∈ C` then `Σ ∈ CT_std_∃` (Theorem 10), and `C ⊆ Adn∃-C` for every criterion
//! `C` (Theorem 11) — combining the adornment with a criterion never loses sets and
//! often gains some, because the adorned set has the same or weaker structural
//! dependencies (EGD effects having been compiled away into the adornments).

use crate::adornment::{adorn_with, AdnConfig, AdnResult};
use chase_core::DependencySet;
use chase_criteria::criterion::{Guarantee, NamedCriterion};

/// Applies criterion `check` to the adorned version of `sigma` (`Adn∃-C`).
///
/// Returns the underlying [`AdnResult`] alongside the verdict so that callers can also
/// inspect `Acyc` and the adorned set.
pub fn adn_combined_with(
    sigma: &DependencySet,
    config: &AdnConfig,
    check: impl Fn(&DependencySet) -> bool,
) -> (bool, AdnResult) {
    let result = adorn_with(sigma, config);
    let verdict = check(&result.adorned);
    (verdict, result)
}

/// Applies criterion `check` to the adorned version of `sigma` with the default
/// configuration, returning only the verdict.
pub fn adn_combined(sigma: &DependencySet, check: impl Fn(&DependencySet) -> bool) -> bool {
    adn_combined_with(sigma, &AdnConfig::default(), check).0
}

/// Convenience: `Adn∃-WA` — weak acyclicity on the adorned set.
pub fn adn_weak_acyclicity(sigma: &DependencySet) -> bool {
    adn_combined(sigma, chase_criteria::weak_acyclicity::is_weakly_acyclic)
}

/// Convenience: `Adn∃-SC` — safety on the adorned set.
pub fn adn_safety(sigma: &DependencySet) -> bool {
    adn_combined(sigma, chase_criteria::safety::is_safe)
}

/// Convenience: `Adn∃-SwA` — super-weak acyclicity on the adorned set.
pub fn adn_super_weak_acyclicity(sigma: &DependencySet) -> bool {
    adn_combined(sigma, chase_criteria::super_weak::is_super_weakly_acyclic)
}

/// Wraps every baseline criterion `C` into its `Adn∃-C` counterpart, for use in the
/// experiment harness. All combined criteria guarantee membership in `CT_std_∃`.
pub fn combined_criteria() -> Vec<NamedCriterion> {
    vec![
        NamedCriterion::new("Adn-WA", Guarantee::SomeSequence, adn_weak_acyclicity),
        NamedCriterion::new("Adn-SC", Guarantee::SomeSequence, adn_safety),
        NamedCriterion::new(
            "Adn-SwA",
            Guarantee::SomeSequence,
            adn_super_weak_acyclicity,
        ),
    ]
}

/// The paper's own criteria packaged as [`NamedCriterion`]s: semi-stratification and
/// semi-acyclicity.
pub fn paper_criteria() -> Vec<NamedCriterion> {
    vec![
        NamedCriterion::new("S-Str", Guarantee::SomeSequence, |s| {
            crate::semi_stratification::is_semi_stratified(s)
        }),
        NamedCriterion::new("SAC", Guarantee::SomeSequence, |s| {
            crate::adornment::is_semi_acyclic(s)
        }),
    ]
}

/// Every criterion known to the workspace: the baselines, the paper's criteria and the
/// `Adn∃-C` combinations, in that order.
pub fn all_criteria() -> Vec<NamedCriterion> {
    let mut out = chase_criteria::criterion::baseline_criteria();
    out.extend(paper_criteria());
    out.extend(combined_criteria());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::parser::parse_dependencies;
    use chase_criteria::prelude::*;

    fn sigma1() -> DependencySet {
        parse_dependencies(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> ?x = ?y.
            "#,
        )
        .unwrap()
    }

    #[test]
    fn theorem11_adn_c_contains_c_on_a_corpus() {
        let inputs = [
            "r1: P(?x, ?y) -> exists ?z: E(?x, ?z). r2: Q(?x, ?y) -> exists ?z: E(?z, ?y).",
            "a: A(?x) -> B(?x). b: B(?x) -> C(?x).",
            "r: E(?x, ?y) -> exists ?z: E(?x, ?z).",
            "r1: A(?x) -> exists ?y: B(?x, ?y). r2: B(?x, ?y) -> C(?y).",
            "k: R(?x, ?y), R(?x, ?z) -> ?y = ?z.",
        ];
        for src in inputs {
            let sigma = parse_dependencies(src).unwrap();
            if is_weakly_acyclic(&sigma) {
                assert!(adn_weak_acyclicity(&sigma), "WA ⊆ Adn-WA violated on {src}");
            }
            if is_safe(&sigma) {
                assert!(adn_safety(&sigma), "SC ⊆ Adn-SC violated on {src}");
            }
        }
    }

    #[test]
    fn sigma1_is_gained_by_the_adornment_algorithm_itself() {
        // Σ1 is rejected by every classical criterion (it is not even in CT_std_∀), but
        // the adornment algorithm recognises it directly (Example 12). Its adorned set
        // still carries the structural null-cycle (the adorned rules mirror r1/r2), so
        // the gain here comes from SAC, not from Adn∃-WA.
        let sigma = sigma1();
        assert!(!is_weakly_acyclic(&sigma));
        assert!(!is_safe(&sigma));
        assert!(crate::adornment::is_semi_acyclic(&sigma));
    }

    #[test]
    fn combined_result_exposes_the_adorned_set() {
        let chain =
            parse_dependencies("r1: A(?x) -> exists ?y: B(?x, ?y). r2: B(?x, ?y) -> C(?y).")
                .unwrap();
        let (verdict, result) = adn_combined_with(
            &chain,
            &crate::adornment::AdnConfig::default(),
            is_weakly_acyclic,
        );
        assert!(verdict, "the adorned version of a WA set stays WA");
        assert!(result.acyclic);
        assert!(result.adorned.len() > chain.len());
    }

    #[test]
    fn registry_contains_paper_and_combined_criteria() {
        let all = all_criteria();
        let names: Vec<&str> = all.iter().map(|c| c.name).collect();
        for expected in [
            "WA", "SC", "SwA", "Str", "CStr", "MFA", "S-Str", "SAC", "Adn-WA",
        ] {
            assert!(names.contains(&expected), "missing criterion {expected}");
        }
    }

    #[test]
    fn sigma10_is_rejected_even_after_combination() {
        // Σ10 has no terminating sequence at all, so every sound criterion must reject.
        let sigma10 = parse_dependencies(
            r#"
            r1: N(?x) -> exists ?y, ?z: E(?x, ?y, ?z).
            r2: E(?x, ?y, ?y) -> N(?y).
            r3: E(?x, ?y, ?z) -> ?y = ?z.
            "#,
        )
        .unwrap();
        for criterion in all_criteria() {
            assert!(
                !criterion.accepts(&sigma10),
                "{} wrongly accepts Σ10",
                criterion.name
            );
        }
    }
}
