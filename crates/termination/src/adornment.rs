//! The adornment algorithm `Adn∃` (Algorithm 1 and Function 2 of the paper) and the
//! semi-acyclicity criterion (Definition 4).
//!
//! The algorithm rewrites a set of dependencies `Σ` into a set of *adorned*
//! dependencies `Σµ` that tracks how terms can be derived during a chase execution:
//! every predicate argument is annotated with `b` ("bound": a value derived from the
//! database) or a *free* symbol `f_i` standing for the labeled nulls invented by one
//! existential variable of one rule under one adornment of its body. EGDs are analysed
//! *directly*: when an adorned EGD shows that a free symbol must be equal to `b` (or to
//! another free symbol), the corresponding substitution is applied to the whole adorned
//! set, which is exactly how enforcing the EGD during a real chase would collapse the
//! invented nulls.
//!
//! The boolean `Acyc` returned by the algorithm defines the **semi-acyclicity**
//! criterion (`SAC`): if no "cyclic" adornment symbol is ever produced, then for every
//! database there is a terminating standard chase sequence of polynomial length
//! (Theorem 8). The adorned set `Σµ` itself can be fed to any other termination
//! criterion, yielding the strictly more powerful `Adn∃-C` criteria (Theorems 10–11);
//! see [`crate::combined`].
//!
//! # The `Dµ(Σµ)` substitution-bookkeeping invariant
//!
//! Whether an EGD induces a substitution τ (line 9 of Algorithm 1) is tested on the
//! abstraction `Dµ(Σµ)`: one fact per adorned predicate, `b` as a constant, free
//! symbols as labeled nulls. The invariant this module maintains is that **distinct
//! facts of `Dµ(Σµ)` never share a labeled null**: a free symbol `f_i` denotes a
//! *family* of nulls — one per Skolem instantiation of its definitions, and a θ-merge
//! (lines 13–14) can fold several Skolem classes into one symbol — so only
//! occurrences of `f_i` inside the *same* fact are known to denote the same null.
//!
//! The historical soundness gap came from violating this invariant: with a single
//! global null per symbol, an EGD body could join two distinct facts through a
//! shared null — a match no real chase step realises, since the two facts stand for
//! different Skolem instantiations — and the resulting spurious τ deleted a cyclic
//! symbol's definitions, erasing the very evidence the cyclicity test needed. The
//! distilled reproducer (a cyclic gadget `g1`/`g2`, an unrelated functional EGD on
//! `R0`, and a copy chain `c1`/`c2` enabling the θ-merge) must be rejected under
//! both fireable modes:
//!
//! ```
//! use chase_core::parser::parse_dependencies;
//! use chase_termination::adornment::{adorn_with, AdnConfig, FireableMode};
//!
//! let sigma = parse_dependencies(
//!     r#"
//!     a1: C0(?x) -> exists ?y: R0(?y, ?x).
//!     c1: R0(?x, ?y) -> C2(?x).
//!     c2: C2(?x) -> C3(?x).
//!     g1: C0(?x) -> exists ?y: Rcyc(?x, ?y).
//!     g2: Rcyc(?x, ?y) -> C0(?y).
//!     e1: R0(?x, ?y), R0(?x, ?z) -> ?y = ?z.
//!     "#,
//! )
//! .unwrap();
//! for mode in [FireableMode::Exact, FireableMode::PredicateOverlap] {
//!     let cfg = AdnConfig { fireable_mode: mode, ..AdnConfig::default() };
//!     assert!(!adorn_with(&sigma, &cfg).acyclic, "the gadget's cycle must be found");
//! }
//! ```
//!
//! Skipping a match that is only realizable across facts biases the criterion toward
//! *rejection*, which is the sound direction for a sufficient termination condition;
//! genuinely single-fact EGD violations (e.g. Σ1's `E(?x, ?y) -> ?x = ?y`) still fire
//! their τ exactly as the paper prescribes.

use chase_core::{
    Atom, Constant, Dependency, DependencySet, Egd, Fact, GroundTerm, Instance, NullValue,
    Predicate, Term, Tgd, Variable,
};
use chase_criteria::firing::FiringConfig;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An adornment symbol: `b` (bound) or a free symbol `f_i`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AdSym {
    /// The bound symbol `b`.
    B,
    /// A free symbol `f_i` (indices start at 1).
    F(u32),
}

impl fmt::Display for AdSym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdSym::B => write!(f, "b"),
            AdSym::F(i) => write!(f, "f{i}"),
        }
    }
}

/// An adornment: one symbol per predicate position.
pub type Adornment = Vec<AdSym>;

fn adornment_string(adornment: &Adornment) -> String {
    adornment.iter().map(|s| s.to_string()).collect()
}

/// An adornment definition `f_i = f^r_z(α)`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct AdnDefinition {
    /// The defined free symbol index (`i` in `f_i`).
    pub symbol: u32,
    /// The index (in the original set) of the existential TGD `r`.
    pub rule: usize,
    /// The index of the existential variable `z` within `r` (in declaration order).
    pub var_index: usize,
    /// The argument string `α`: the adornments of the frontier variables of `r`.
    pub args: Vec<AdSym>,
}

impl fmt::Display for AdnDefinition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "f{} = f^r{}_z{}({})",
            self.symbol,
            self.rule,
            self.var_index,
            adornment_string(&self.args)
        )
    }
}

/// An atom whose predicate may carry an adornment (`None` = the original, unadorned
/// predicate, used in the bodies of the base rules `R(x̄) → R^{b…b}(x̄)`).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct AdAtom {
    predicate: Predicate,
    adornment: Option<Adornment>,
    terms: Vec<Term>,
}

#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum AdHead {
    Atoms(Vec<AdAtom>),
    Equality(Variable, Variable),
}

/// An adorned dependency together with the original dependency it was derived from.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct AdRule {
    /// Index of the source dependency in the original set (`None` for base rules).
    src: Option<usize>,
    body: Vec<AdAtom>,
    head: AdHead,
}

/// How the `fireable` condition of Function 2 is evaluated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FireableMode {
    /// The exact Definition-2 firing test over the current adorned set. Precise but
    /// expensive; suitable for small and medium sets.
    Exact,
    /// A predicate-overlap over-approximation: a rule counts as fireable if some rule
    /// of the adorned set can syntactically feed its body. Sound (it only adorns more
    /// rules, never fewer), and fast enough for large ontologies.
    PredicateOverlap,
    /// Use [`FireableMode::Exact`] below [`AdnConfig::auto_threshold`] dependencies and
    /// [`FireableMode::PredicateOverlap`] above.
    Auto,
}

/// Configuration of the adornment algorithm.
#[derive(Clone, Debug)]
pub struct AdnConfig {
    /// Configuration of the underlying firing tests.
    pub firing: FiringConfig,
    /// How the fireable condition is evaluated.
    pub fireable_mode: FireableMode,
    /// Size (number of dependencies) above which [`FireableMode::Auto`] switches to the
    /// overlap approximation.
    pub auto_threshold: usize,
    /// Hard cap on the number of adorned dependencies; exceeding it aborts with
    /// `Acyc = false` (a conservative rejection).
    pub max_adorned_rules: usize,
}

impl Default for AdnConfig {
    fn default() -> Self {
        AdnConfig {
            firing: FiringConfig::default(),
            fireable_mode: FireableMode::Auto,
            auto_threshold: 40,
            max_adorned_rules: 5_000,
        }
    }
}

/// The result of running `Adn∃` on a dependency set.
#[derive(Clone, Debug)]
pub struct AdnResult {
    /// The adorned dependency set `Σµ = Adn∃(Σ)[1]`, with adorned predicates rendered
    /// as fresh predicates `R__bf1…`. Includes the base rules `R(x̄) → R^{b…b}(x̄)`.
    pub adorned: DependencySet,
    /// The boolean `Acyc = Adn∃(Σ)[2]`: `true` iff no cyclic adornment was detected.
    pub acyclic: bool,
    /// The final set of adornment definitions `AD`.
    pub definitions: Vec<AdnDefinition>,
    /// Number of adorned dependencies produced (excluding the base rules).
    pub adorned_rule_count: usize,
    /// Number of main-loop iterations executed.
    pub iterations: usize,
    /// The fireable pairs `(s, r)` over the *original* set used by the Ω(AD)
    /// cyclicity test: the firing relation of Definition 2 in
    /// [`FireableMode::Exact`], or its predicate-overlap over-approximation.
    pub fireable_pairs: Vec<(usize, usize)>,
    /// `true` iff the rule budget was exhausted (the result is then a conservative
    /// rejection).
    pub budget_exhausted: bool,
}

impl AdnResult {
    /// The ratio `|Σµ| / |Σ|` reported in Table 2(b) of the paper (base rules included
    /// in `|Σµ|`, as they are part of the output set).
    pub fn size_ratio(&self, original: &DependencySet) -> f64 {
        if original.is_empty() {
            return 1.0;
        }
        self.adorned.len() as f64 / original.len() as f64
    }
}

/// Runs the adornment algorithm with the default configuration.
pub fn adorn(sigma: &DependencySet) -> AdnResult {
    adorn_with(sigma, &AdnConfig::default())
}

/// Builds the [`Witness`](chase_criteria::Witness) describing an adornment run: the
/// trace of Algorithm 1 (definitions, rule and iteration counts) together with the
/// fireable-pair set driving the Ω(AD) cyclicity test.
pub fn adornment_witness(result: &AdnResult) -> chase_criteria::Witness {
    chase_criteria::Witness::AdornmentTrace {
        adorned_rules: result.adorned_rule_count,
        iterations: result.iterations,
        definitions: result.definitions.iter().map(|d| d.to_string()).collect(),
        fireable_pairs: result
            .fireable_pairs
            .iter()
            .map(|&(s, r)| (chase_core::DepId(s), chase_core::DepId(r)))
            .collect(),
        budget_exhausted: result.budget_exhausted,
    }
}

/// Semi-acyclicity (`SAC`, Definition 4) as a witness-producing
/// [`TerminationCriterion`](chase_criteria::TerminationCriterion): runs `Adn∃` and
/// reports the adornment trace and fireable-pair set either way.
#[derive(Clone, Debug, Default)]
pub struct SemiAcyclicity {
    /// Configuration of the adornment algorithm.
    pub config: AdnConfig,
}

impl chase_criteria::TerminationCriterion for SemiAcyclicity {
    fn name(&self) -> &'static str {
        "SAC"
    }

    fn guarantee(&self) -> chase_criteria::Guarantee {
        chase_criteria::Guarantee::SomeSequence
    }

    fn cost(&self) -> u32 {
        80
    }

    fn verdict(&self, sigma: &DependencySet) -> chase_criteria::Verdict {
        let result = adorn_with(sigma, &self.config);
        chase_criteria::Verdict {
            criterion: self.name(),
            guarantee: chase_criteria::Guarantee::SomeSequence,
            accepted: result.acyclic,
            witness: adornment_witness(&result),
        }
    }
}

/// Returns `true` iff `sigma` is semi-acyclic (`SAC`, Definition 4).
#[deprecated(note = "use SemiAcyclicity (TerminationCriterion) or the TerminationAnalyzer")]
pub fn is_semi_acyclic(sigma: &DependencySet) -> bool {
    adorn(sigma).acyclic
}

/// [`is_semi_acyclic`] with an explicit configuration.
#[deprecated(note = "use SemiAcyclicity { config } (TerminationCriterion)")]
pub fn is_semi_acyclic_with(sigma: &DependencySet, config: &AdnConfig) -> bool {
    adorn_with(sigma, config).acyclic
}

/// Runs the adornment algorithm `Adn∃` (Algorithm 1).
pub fn adorn_with(sigma: &DependencySet, config: &AdnConfig) -> AdnResult {
    Adn::new(sigma, config).run()
}

// ---------------------------------------------------------------------------------
// Implementation
// ---------------------------------------------------------------------------------

struct Adn<'a> {
    sigma: &'a DependencySet,
    config: &'a AdnConfig,
    exact_fireable: bool,
    /// Firing information over the *original* set, used by the Ω(AD) cyclicity test.
    original_firing: OriginalFiring,
    rules: Vec<AdRule>,
    ad: Vec<AdnDefinition>,
    acyclic: bool,
    iterations: usize,
    budget_exhausted: bool,
}

/// Reachability structure over the original dependency set used by the cyclicity
/// condition of Ω(AD): `s ⇝ r` iff `s < r1 < · · · < rn < r` with every `ri ∈ Σ∀`.
struct OriginalFiring {
    /// `edges[s]` = set of direct successors of `s` under the firing relation (or its
    /// overlap over-approximation for large inputs).
    edges: Vec<BTreeSet<usize>>,
    full: Vec<bool>,
}

impl OriginalFiring {
    fn compute(sigma: &DependencySet, config: &AdnConfig, exact: bool) -> Self {
        let n = sigma.len();
        let mut edges = vec![BTreeSet::new(); n];
        if exact {
            let graph = crate::firing::firing_graph_with(sigma, &config.firing);
            for (f, t, _) in graph.edges() {
                edges[f].insert(t);
            }
        } else {
            for (i, r1) in sigma.iter() {
                for (j, r2) in sigma.iter() {
                    let fires = if r1.is_tgd() {
                        r1.head_predicates()
                            .intersection(&r2.body_predicates())
                            .next()
                            .is_some()
                    } else {
                        r1.body_predicates()
                            .intersection(&r2.body_predicates())
                            .next()
                            .is_some()
                    };
                    if fires {
                        edges[i.0].insert(j.0);
                    }
                }
            }
        }
        let full = sigma.iter().map(|(_, d)| d.is_full()).collect();
        OriginalFiring { edges, full }
    }

    /// Is there a chain `s < r1 < … < rn < r` (n ≥ 0) with every intermediate `ri`
    /// full?
    fn reaches_via_full(&self, s: usize, r: usize) -> bool {
        if self.edges[s].contains(&r) {
            return true;
        }
        let mut seen: BTreeSet<usize> = BTreeSet::new();
        let mut stack: Vec<usize> = self.edges[s]
            .iter()
            .copied()
            .filter(|&m| self.full[m])
            .collect();
        while let Some(m) = stack.pop() {
            if !seen.insert(m) {
                continue;
            }
            if self.edges[m].contains(&r) {
                return true;
            }
            for &next in &self.edges[m] {
                if self.full[next] && !seen.contains(&next) {
                    stack.push(next);
                }
            }
        }
        false
    }
}

impl<'a> Adn<'a> {
    fn new(sigma: &'a DependencySet, config: &'a AdnConfig) -> Self {
        let exact = match config.fireable_mode {
            FireableMode::Exact => true,
            FireableMode::PredicateOverlap => false,
            FireableMode::Auto => sigma.len() <= config.auto_threshold,
        };
        let original_firing = OriginalFiring::compute(sigma, config, exact);
        // Base rules: R(x1, …, xn) → R^{b…b}(x1, …, xn) for every predicate of Σ.
        let mut rules = Vec::new();
        for pred in sigma.predicates() {
            let terms: Vec<Term> = (0..pred.arity)
                .map(|i| Term::Var(Variable::new(&format!("x{i}"))))
                .collect();
            rules.push(AdRule {
                src: None,
                body: vec![AdAtom {
                    predicate: pred,
                    adornment: None,
                    terms: terms.clone(),
                }],
                head: AdHead::Atoms(vec![AdAtom {
                    predicate: pred,
                    adornment: Some(vec![AdSym::B; pred.arity]),
                    terms,
                }]),
            });
        }
        Adn {
            sigma,
            config,
            exact_fireable: exact,
            original_firing,
            rules,
            ad: Vec::new(),
            acyclic: true,
            iterations: 0,
            budget_exhausted: false,
        }
    }

    fn run(mut self) -> AdnResult {
        loop {
            self.iterations += 1;
            if self.rules.len() > self.config.max_adorned_rules
                || self.iterations > 4 * self.config.max_adorned_rules
            {
                self.budget_exhausted = true;
                self.acyclic = false;
                break;
            }
            let mut changed = false;
            // Lines 6–10: prefer universally quantified dependencies (EGDs and full
            // TGDs).
            let full_first: Vec<usize> = {
                let mut ids: Vec<usize> = self
                    .sigma
                    .iter()
                    .filter(|(_, d)| d.is_full())
                    .map(|(i, _)| i.0)
                    .collect();
                // EGDs before full TGDs (the order is immaterial for correctness).
                ids.sort_by_key(|&i| {
                    if self.sigma.as_slice()[i].is_egd() {
                        0
                    } else {
                        1
                    }
                });
                ids
            };
            let mut newly_added: Option<usize> = None;
            for idx in full_first {
                if let Some(rule_idx) = self.try_adorn(idx) {
                    newly_added = Some(rule_idx);
                    changed = true;
                    // Line 8–10: if the source is an EGD violated by Dµ(Σµ), apply the
                    // chase-step substitution τ.
                    if self.sigma.as_slice()[idx].is_egd() {
                        if let Some((from, to)) = self.dmu_chase_step(idx) {
                            self.apply_tau(from, to);
                        }
                    }
                    break;
                }
            }
            if newly_added.is_none() {
                // Lines 11–12: existentially quantified dependencies.
                let existential: Vec<usize> = self
                    .sigma
                    .iter()
                    .filter(|(_, d)| d.is_existential())
                    .map(|(i, _)| i.0)
                    .collect();
                for idx in existential {
                    if let Some(rule_idx) = self.try_adorn(idx) {
                        newly_added = Some(rule_idx);
                        changed = true;
                        break;
                    }
                }
            }
            // Lines 13–16: adornment substitution θ and cyclicity detection.
            if let Some(rule_idx) = newly_added {
                if let Some(theta) = self.find_valid_theta(rule_idx) {
                    let head = self.rules[rule_idx].head.clone();
                    self.apply_theta(&theta);
                    let substituted_head = apply_theta_to_head(&head, &theta);
                    // `headµθ is cyclic`: the head of the newly adorned dependency may
                    // itself be an equality (when the trigger was an adorned EGD, as in
                    // Example 13); in that case the cyclicity introduced by θ shows up
                    // in the heads that θ rewrote, so we also inspect the whole adorned
                    // set — matching the example's "since Ω(AD) is cyclic, Acyc ≔ false".
                    if self.head_is_cyclic(&substituted_head) || self.any_head_cyclic() {
                        self.acyclic = false;
                    }
                }
                self.dedupe_rules();
            }
            if !changed {
                break;
            }
        }
        let adorned = self.to_dependency_set();
        let fireable_pairs: Vec<(usize, usize)> = self
            .original_firing
            .edges
            .iter()
            .enumerate()
            .flat_map(|(s, succs)| succs.iter().map(move |&r| (s, r)))
            .collect();
        AdnResult {
            adorned_rule_count: self.rules.iter().filter(|r| r.src.is_some()).count(),
            adorned,
            acyclic: self.acyclic,
            definitions: self.ad,
            iterations: self.iterations,
            fireable_pairs,
            budget_exhausted: self.budget_exhausted,
        }
    }

    /// The set of adorned predicates `AP(Σµ)` occurring anywhere in the adorned rules.
    fn adorned_predicates(&self) -> BTreeSet<(Predicate, Adornment)> {
        let mut out = BTreeSet::new();
        for rule in &self.rules {
            for atom in rule.body.iter().chain(match &rule.head {
                AdHead::Atoms(atoms) => atoms.iter(),
                AdHead::Equality(_, _) => [].iter(),
            }) {
                if let Some(adornment) = &atom.adornment {
                    out.insert((atom.predicate, adornment.clone()));
                }
            }
        }
        out
    }

    /// Function 2 (`adorn`): tries to produce a new adorned version of the original
    /// dependency `idx`; on success the rule is appended and its index returned.
    fn try_adorn(&mut self, idx: usize) -> Option<usize> {
        let dep = &self.sigma.as_slice()[idx];
        let ap = self.adorned_predicates();
        let existing_bodies: BTreeSet<Vec<AdAtom>> = self
            .rules
            .iter()
            .filter(|r| r.src == Some(idx))
            .map(|r| r.body.clone())
            .collect();
        let candidates = coherent_adorned_bodies(dep.body(), &ap);
        for (body, var_adornment) in candidates {
            if existing_bodies.contains(&body) {
                continue;
            }
            // Tentatively compute the adorned head (HeadAdn); AD additions are only
            // committed if the rule is accepted.
            let mut scratch_ad = self.ad.clone();
            let head = self.head_adorn(dep, idx, &var_adornment, &mut scratch_ad);
            let candidate = AdRule {
                src: Some(idx),
                body: body.clone(),
                head,
            };
            if !self.is_fireable(&candidate) {
                continue;
            }
            self.ad = scratch_ad;
            self.rules.push(candidate);
            return Some(self.rules.len() - 1);
        }
        None
    }

    /// HeadAdn (Section 6): propagate body adornments to the head; existential
    /// variables get Skolem-style adornment definitions.
    fn head_adorn(
        &self,
        dep: &Dependency,
        idx: usize,
        var_adornment: &BTreeMap<Variable, AdSym>,
        ad: &mut Vec<AdnDefinition>,
    ) -> AdHead {
        match dep {
            Dependency::Egd(e) => AdHead::Equality(e.left, e.right),
            Dependency::Tgd(tgd) => {
                let mut frontier: Vec<Variable> = tgd.frontier_variables().into_iter().collect();
                frontier.sort();
                let args: Vec<AdSym> = frontier
                    .iter()
                    .map(|v| *var_adornment.get(v).unwrap_or(&AdSym::B))
                    .collect();
                let existential = tgd.existential_variables();
                let mut ex_symbols: BTreeMap<Variable, AdSym> = BTreeMap::new();
                for (z_idx, z) in existential.iter().enumerate() {
                    let existing = ad
                        .iter()
                        .find(|d| d.rule == idx && d.var_index == z_idx && d.args == args);
                    let sym = match existing {
                        Some(d) => AdSym::F(d.symbol),
                        None => {
                            let next = 1 + ad
                                .iter()
                                .flat_map(|d| {
                                    std::iter::once(d.symbol).chain(d.args.iter().filter_map(|s| {
                                        match s {
                                            AdSym::F(i) => Some(*i),
                                            AdSym::B => None,
                                        }
                                    }))
                                })
                                .max()
                                .unwrap_or(0);
                            ad.push(AdnDefinition {
                                symbol: next,
                                rule: idx,
                                var_index: z_idx,
                                args: args.clone(),
                            });
                            AdSym::F(next)
                        }
                    };
                    ex_symbols.insert(*z, sym);
                }
                let atoms = tgd
                    .head
                    .iter()
                    .map(|atom| {
                        let adornment: Adornment = atom
                            .terms
                            .iter()
                            .map(|t| match t {
                                Term::Const(_) => AdSym::B,
                                Term::Var(v) => *var_adornment
                                    .get(v)
                                    .or_else(|| ex_symbols.get(v))
                                    .unwrap_or(&AdSym::B),
                                Term::Null(_) => AdSym::B,
                            })
                            .collect();
                        AdAtom {
                            predicate: atom.predicate,
                            adornment: Some(adornment),
                            terms: atom.terms.clone(),
                        }
                    })
                    .collect();
                AdHead::Atoms(atoms)
            }
        }
    }

    /// Is the candidate adorned rule fireable with respect to the current adorned set?
    fn is_fireable(&self, candidate: &AdRule) -> bool {
        if self.exact_fireable {
            let current = self.to_dependency_set();
            let candidate_dep = ad_rule_to_dependency(candidate, usize::MAX);
            self.rules.iter().enumerate().any(|(k, rule)| {
                let dep = ad_rule_to_dependency(rule, k);
                crate::firing::definition2_edge(&current, &dep, &candidate_dep, &self.config.firing)
            })
        } else {
            // Overlap approximation: some rule's (adorned) head can syntactically feed
            // the candidate's body.
            let body_preds: BTreeSet<(Predicate, Option<Adornment>)> = candidate
                .body
                .iter()
                .map(|a| (a.predicate, a.adornment.clone()))
                .collect();
            self.rules.iter().any(|rule| match &rule.head {
                AdHead::Atoms(atoms) => atoms
                    .iter()
                    .any(|a| body_preds.contains(&(a.predicate, a.adornment.clone()))),
                AdHead::Equality(_, _) => rule
                    .body
                    .iter()
                    .any(|a| candidate.body.iter().any(|b| b.predicate == a.predicate)),
            })
        }
    }

    /// `Dµ(Σµ)`: one fact per adorned predicate, with `b` as a constant and each free
    /// symbol rendered as a labeled null that is **unique to its fact**: two
    /// occurrences of `f_i` inside the same fact share a null, occurrences in
    /// distinct facts never do. A free symbol denotes a *family* of nulls — one per
    /// Skolem instantiation of its definitions (and θ-merges can fold several Skolem
    /// classes into one symbol) — so only same-fact occurrences are known to be the
    /// same null. A single global null `η_i` per symbol would let an EGD body join
    /// two distinct facts through a null no real chase step ever equates, firing a
    /// spurious τ (the historical `adorn_with` soundness gap).
    ///
    /// Returns the instance together with the adornment symbol of every null.
    fn dmu_instance(&self) -> (Instance, BTreeMap<u64, u32>) {
        let mut inst = Instance::new();
        let mut symbol_of: BTreeMap<u64, u32> = BTreeMap::new();
        let mut next_null: u64 = 0;
        for (pred, adornment) in self.adorned_predicates() {
            let mut per_fact: BTreeMap<u32, NullValue> = BTreeMap::new();
            let terms: Vec<GroundTerm> = adornment
                .iter()
                .map(|s| match s {
                    AdSym::B => GroundTerm::Const(Constant::new("b")),
                    AdSym::F(i) => {
                        let null = *per_fact.entry(*i).or_insert_with(|| {
                            let n = NullValue(next_null);
                            next_null += 1;
                            symbol_of.insert(n.0, *i);
                            n
                        });
                        GroundTerm::Null(null)
                    }
                })
                .collect();
            inst.insert(Fact {
                predicate: pred,
                terms,
            });
        }
        (inst, symbol_of)
    }

    /// Line 9 of Algorithm 1: if the original EGD `idx` is violated by `Dµ(Σµ)`, run one
    /// chase step and return the induced symbol substitution `{f_i / s}`.
    ///
    /// A violation only counts when it is realizable in an actual chase: matches that
    /// equate two nulls of the *same* symbol are skipped (the symbol stands for a family
    /// of distinct Skolem values, and τ = {f_i / f_i} would destructively erase the
    /// symbol's definitions while changing nothing). Skipping an unrealizable match is
    /// conservative — it can only bias the criterion toward rejection.
    fn dmu_chase_step(&self, idx: usize) -> Option<(u32, AdSym)> {
        let egd = self.sigma.as_slice()[idx].as_egd()?;
        let (dmu, symbol_of) = self.dmu_instance();
        for h in chase_core::homomorphism::homomorphisms(&egd.body, &dmu) {
            let left = h.get(egd.left)?;
            let right = h.get(egd.right)?;
            if left == right {
                continue;
            }
            // Definition 1(2b): replace a labeled null; both sides being constants is
            // impossible here since the only constant is `b`.
            let tau = match (left, right) {
                (GroundTerm::Null(n), GroundTerm::Null(m)) => {
                    let (sn, sm) = (symbol_of[&n.0], symbol_of[&m.0]);
                    if sn == sm {
                        continue;
                    }
                    (sn, AdSym::F(sm))
                }
                (GroundTerm::Null(n), GroundTerm::Const(_)) => (symbol_of[&n.0], AdSym::B),
                (GroundTerm::Const(_), GroundTerm::Null(m)) => (symbol_of[&m.0], AdSym::B),
                (GroundTerm::Const(_), GroundTerm::Const(_)) => continue,
            };
            return Some(tau);
        }
        None
    }

    /// Line 10: apply `τ = {f_from / to}` to `Σµ`, delete the definitions of `f_from`
    /// from `AD`, and apply `τ` to the remaining definitions.
    fn apply_tau(&mut self, from: u32, to: AdSym) {
        let map: BTreeMap<u32, AdSym> = [(from, to)].into_iter().collect();
        for rule in &mut self.rules {
            apply_map_to_rule(rule, &map);
        }
        self.ad.retain(|d| d.symbol != from);
        for def in &mut self.ad {
            for a in &mut def.args {
                if let AdSym::F(i) = a {
                    if *i == from {
                        *a = to;
                    }
                }
            }
        }
        // Rewriting args can make non-adjacent definitions equal; `Vec::dedup` only
        // collapses neighbours, so deduplicate with a seen-set instead.
        let mut seen: BTreeSet<AdnDefinition> = BTreeSet::new();
        self.ad.retain(|d| seen.insert(d.clone()));
    }

    /// Lines 13–14: look for a non-empty valid substitution θ mapping the newly adorned
    /// rule onto an existing adorned version of the same source dependency.
    fn find_valid_theta(&self, rule_idx: usize) -> Option<BTreeMap<u32, AdSym>> {
        let new_rule = &self.rules[rule_idx];
        let src = new_rule.src?;
        for (k, other) in self.rules.iter().enumerate() {
            if k == rule_idx || other.src != Some(src) {
                continue;
            }
            if let Some(theta) = unify_adornments(new_rule, other) {
                if theta.is_empty() {
                    continue;
                }
                // No chained replacements: the range must not intersect the domain.
                let range_symbols: BTreeSet<u32> = theta
                    .values()
                    .filter_map(|s| match s {
                        AdSym::F(i) => Some(*i),
                        AdSym::B => None,
                    })
                    .collect();
                if theta.keys().any(|k| range_symbols.contains(k)) {
                    continue;
                }
                // Validity: every fi/fj pair must have definitions for the same Skolem
                // function f^r_z.
                let valid = theta.iter().all(|(i, s)| match s {
                    AdSym::F(j) => self.ad.iter().any(|d1| {
                        d1.symbol == *i
                            && self.ad.iter().any(|d2| {
                                d2.symbol == *j
                                    && d2.rule == d1.rule
                                    && d2.var_index == d1.var_index
                            })
                    }),
                    AdSym::B => false,
                });
                if valid {
                    return Some(theta);
                }
            }
        }
        None
    }

    /// Line 14: apply θ to `Σµ` and `AD` (including the defined symbols).
    fn apply_theta(&mut self, theta: &BTreeMap<u32, AdSym>) {
        for rule in &mut self.rules {
            apply_map_to_rule(rule, theta);
        }
        for def in &mut self.ad {
            if let Some(AdSym::F(j)) = theta.get(&def.symbol) {
                def.symbol = *j;
            }
            for a in &mut def.args {
                if let AdSym::F(i) = a {
                    if let Some(s) = theta.get(i) {
                        *a = *s;
                    }
                }
            }
        }
        self.ad.dedup();
        let mut seen = BTreeSet::new();
        self.ad
            .retain(|d| seen.insert((d.symbol, d.rule, d.var_index, d.args.clone())));
    }

    fn dedupe_rules(&mut self) {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut kept = Vec::with_capacity(self.rules.len());
        for rule in self.rules.drain(..) {
            let key = format!("{rule:?}");
            if seen.insert(key) {
                kept.push(rule);
            }
        }
        self.rules = kept;
    }

    /// Is any head of the current adorned set cyclic w.r.t. `AD`?
    fn any_head_cyclic(&self) -> bool {
        let heads: Vec<AdHead> = self.rules.iter().map(|r| r.head.clone()).collect();
        heads.iter().any(|h| self.head_is_cyclic(h))
    }

    /// Lines 15–16: is the (θ-substituted) adorned head cyclic w.r.t. `AD`?
    fn head_is_cyclic(&self, head: &AdHead) -> bool {
        let atoms = match head {
            AdHead::Atoms(atoms) => atoms,
            AdHead::Equality(_, _) => return false,
        };
        let omega = self.omega_graph();
        atoms.iter().any(|atom| {
            atom.adornment
                .as_ref()
                .map(|ad| {
                    ad.iter().any(|s| match s {
                        AdSym::F(i) => symbol_is_cyclic(*i, &omega),
                        AdSym::B => false,
                    })
                })
                .unwrap_or(false)
        })
    }

    /// Builds Ω(AD): an edge `f_i → f_j` labeled `f^r_z` whenever `f_i = f^r_z(… f_j …)`
    /// and `f_j = f^s_w(…)` are in AD and there is a chain `s < r1 < … < rn < r`
    /// through full dependencies of the original set.
    fn omega_graph(&self) -> Vec<(u32, u32, (usize, usize))> {
        let mut edges = Vec::new();
        for d1 in &self.ad {
            for arg in &d1.args {
                let j = match arg {
                    AdSym::F(j) => *j,
                    AdSym::B => continue,
                };
                let chain_ok = self.ad.iter().any(|d2| {
                    d2.symbol == j && self.original_firing.reaches_via_full(d2.rule, d1.rule)
                });
                if chain_ok {
                    edges.push((d1.symbol, j, (d1.rule, d1.var_index)));
                }
            }
        }
        edges
    }

    /// Converts the current adorned rules into a plain dependency set.
    fn to_dependency_set(&self) -> DependencySet {
        DependencySet::from_vec(
            self.rules
                .iter()
                .enumerate()
                .map(|(k, r)| ad_rule_to_dependency(r, k))
                .collect(),
        )
    }
}

/// Is the symbol cyclic in Ω(AD): is there a path from it that traverses two edges with
/// the same label?
fn symbol_is_cyclic(start: u32, edges: &[(u32, u32, (usize, usize))]) -> bool {
    // Reachability over symbols.
    let reachable_from = |s: u32| -> BTreeSet<u32> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![s];
        while let Some(cur) = stack.pop() {
            for (f, t, _) in edges {
                if *f == cur && seen.insert(*t) {
                    stack.push(*t);
                }
            }
        }
        seen
    };
    let from_start: BTreeSet<u32> = {
        let mut s = reachable_from(start);
        s.insert(start);
        s
    };
    // A path from `start` uses two same-labelled edges iff there are edges e1 = (a, b, l)
    // and e2 = (c, d, l) (possibly equal only if reachable twice, i.e. on a cycle) with
    // a reachable from start and c reachable from b.
    for (a, b, l1) in edges {
        if !from_start.contains(a) {
            continue;
        }
        let after_e1: BTreeSet<u32> = {
            let mut s = reachable_from(*b);
            s.insert(*b);
            s
        };
        for (c, _, l2) in edges {
            if l1 == l2 && after_e1.contains(c) {
                return true;
            }
        }
    }
    false
}

fn apply_theta_to_head(head: &AdHead, theta: &BTreeMap<u32, AdSym>) -> AdHead {
    match head {
        AdHead::Equality(a, b) => AdHead::Equality(*a, *b),
        AdHead::Atoms(atoms) => AdHead::Atoms(
            atoms
                .iter()
                .map(|atom| {
                    let mut atom = atom.clone();
                    if let Some(ad) = &mut atom.adornment {
                        for s in ad.iter_mut() {
                            if let AdSym::F(i) = s {
                                if let Some(to) = theta.get(i) {
                                    *s = *to;
                                }
                            }
                        }
                    }
                    atom
                })
                .collect(),
        ),
    }
}

fn apply_map_to_rule(rule: &mut AdRule, map: &BTreeMap<u32, AdSym>) {
    let fix = |adornment: &mut Option<Adornment>| {
        if let Some(ad) = adornment {
            for s in ad.iter_mut() {
                if let AdSym::F(i) = s {
                    if let Some(to) = map.get(i) {
                        *s = *to;
                    }
                }
            }
        }
    };
    for atom in &mut rule.body {
        fix(&mut atom.adornment);
    }
    if let AdHead::Atoms(atoms) = &mut rule.head {
        for atom in atoms {
            fix(&mut atom.adornment);
        }
    }
}

/// Computes θ such that `new_rule θ = other`, comparing adornments position by
/// position; returns `None` if the rules differ structurally or the mapping is
/// inconsistent. The returned map may be empty (the rules are already equal).
fn unify_adornments(new_rule: &AdRule, other: &AdRule) -> Option<BTreeMap<u32, AdSym>> {
    // `mapping` records the image of every free symbol of `new_rule` (including
    // identities); the returned θ keeps only the non-identity pairs.
    let mut mapping: BTreeMap<u32, AdSym> = BTreeMap::new();
    let pair_atoms = |a: &AdAtom, b: &AdAtom, mapping: &mut BTreeMap<u32, AdSym>| -> bool {
        if a.predicate != b.predicate || a.terms != b.terms {
            return false;
        }
        match (&a.adornment, &b.adornment) {
            (None, None) => true,
            (Some(x), Some(y)) => {
                for (sa, sb) in x.iter().zip(y.iter()) {
                    match (sa, sb) {
                        (AdSym::B, AdSym::B) => {}
                        (AdSym::F(i), s) => match mapping.get(i) {
                            Some(existing) if existing != s => return false,
                            Some(_) => {}
                            None => {
                                mapping.insert(*i, *s);
                            }
                        },
                        (AdSym::B, AdSym::F(_)) => return false,
                    }
                }
                true
            }
            _ => false,
        }
    };
    if new_rule.body.len() != other.body.len() {
        return None;
    }
    for (a, b) in new_rule.body.iter().zip(other.body.iter()) {
        if !pair_atoms(a, b, &mut mapping) {
            return None;
        }
    }
    match (&new_rule.head, &other.head) {
        (AdHead::Equality(a1, a2), AdHead::Equality(b1, b2)) => {
            if a1 != b1 || a2 != b2 {
                return None;
            }
        }
        (AdHead::Atoms(x), AdHead::Atoms(y)) => {
            if x.len() != y.len() {
                return None;
            }
            for (a, b) in x.iter().zip(y.iter()) {
                if !pair_atoms(a, b, &mut mapping) {
                    return None;
                }
            }
        }
        _ => return None,
    }
    Some(
        mapping
            .into_iter()
            .filter(|(i, s)| *s != AdSym::F(*i))
            .collect(),
    )
}

/// Enumerates the coherent adorned versions of a body with respect to the available
/// adorned predicates, together with the induced variable adornment.
fn coherent_adorned_bodies(
    body: &[Atom],
    ap: &BTreeSet<(Predicate, Adornment)>,
) -> Vec<(Vec<AdAtom>, BTreeMap<Variable, AdSym>)> {
    let mut per_atom: Vec<Vec<&Adornment>> = Vec::with_capacity(body.len());
    for atom in body {
        let options: Vec<&Adornment> = ap
            .iter()
            .filter(|(p, _)| *p == atom.predicate)
            .map(|(_, a)| a)
            .collect();
        if options.is_empty() {
            return Vec::new();
        }
        per_atom.push(options);
    }
    let mut out = Vec::new();
    let mut assignment: BTreeMap<Variable, AdSym> = BTreeMap::new();
    let mut chosen: Vec<&Adornment> = Vec::with_capacity(body.len());
    fn recurse2<'x>(
        body: &[Atom],
        per_atom: &[Vec<&'x Adornment>],
        idx: usize,
        assignment: &mut BTreeMap<Variable, AdSym>,
        chosen: &mut Vec<&'x Adornment>,
        out: &mut Vec<(Vec<AdAtom>, BTreeMap<Variable, AdSym>)>,
    ) {
        if idx == body.len() {
            let atoms = body
                .iter()
                .zip(chosen.iter())
                .map(|(atom, adornment)| AdAtom {
                    predicate: atom.predicate,
                    adornment: Some((*adornment).clone()),
                    terms: atom.terms.clone(),
                })
                .collect();
            out.push((atoms, assignment.clone()));
            return;
        }
        let atom = &body[idx];
        'options: for adornment in &per_atom[idx] {
            let mut newly_bound: Vec<Variable> = Vec::new();
            for (t, s) in atom.terms.iter().zip(adornment.iter()) {
                match t {
                    Term::Const(_) => {
                        if *s != AdSym::B {
                            for v in newly_bound.drain(..) {
                                assignment.remove(&v);
                            }
                            continue 'options;
                        }
                    }
                    Term::Null(_) => {}
                    Term::Var(v) => match assignment.get(v) {
                        Some(existing) => {
                            if existing != s {
                                for v in newly_bound.drain(..) {
                                    assignment.remove(&v);
                                }
                                continue 'options;
                            }
                        }
                        None => {
                            assignment.insert(*v, *s);
                            newly_bound.push(*v);
                        }
                    },
                }
            }
            chosen.push(adornment);
            recurse2(body, per_atom, idx + 1, assignment, chosen, out);
            chosen.pop();
            for v in newly_bound {
                assignment.remove(&v);
            }
        }
    }
    recurse2(body, &per_atom, 0, &mut assignment, &mut chosen, &mut out);
    out
}

/// Renders an adorned rule as an ordinary dependency with mangled predicate names.
fn ad_rule_to_dependency(rule: &AdRule, index: usize) -> Dependency {
    let convert = |atom: &AdAtom| -> Atom {
        match &atom.adornment {
            None => Atom {
                predicate: atom.predicate,
                terms: atom.terms.clone(),
            },
            Some(adornment) => Atom {
                predicate: Predicate::new(
                    &format!("{}__{}", atom.predicate.name, adornment_string(adornment)),
                    atom.predicate.arity,
                ),
                terms: atom.terms.clone(),
            },
        }
    };
    let body: Vec<Atom> = rule.body.iter().map(convert).collect();
    let label = match rule.src {
        None => format!("base_{}", rule.body[0].predicate.name),
        Some(s) => format!("adn{index}_of_r{s}"),
    };
    match &rule.head {
        AdHead::Equality(a, b) => Dependency::Egd(
            Egd::new(Some(label), body, *a, *b).expect("adorned EGD is well-formed"),
        ),
        AdHead::Atoms(atoms) => {
            let head: Vec<Atom> = atoms.iter().map(convert).collect();
            Dependency::Tgd(Tgd::new(Some(label), body, head).expect("adorned TGD is well-formed"))
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the legacy `is_*` shims stay pinned by these tests

    use super::*;
    use chase_core::parser::parse_dependencies;

    #[test]
    fn verdict_carries_the_adornment_trace() {
        use chase_criteria::{TerminationCriterion, Witness};
        let verdict = SemiAcyclicity::default().verdict(&sigma10());
        assert!(!verdict.accepted);
        match verdict.witness {
            Witness::AdornmentTrace {
                adorned_rules,
                iterations,
                fireable_pairs,
                budget_exhausted,
                ..
            } => {
                assert!(adorned_rules >= 3);
                assert!(iterations >= adorned_rules);
                assert!(
                    !fireable_pairs.is_empty(),
                    "Σ10's rules feed each other, the firing relation is non-empty"
                );
                assert!(!budget_exhausted);
            }
            other => panic!("expected AdornmentTrace, got {other:?}"),
        }
    }

    fn sigma1() -> DependencySet {
        parse_dependencies(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> ?x = ?y.
            "#,
        )
        .unwrap()
    }

    fn sigma10() -> DependencySet {
        parse_dependencies(
            r#"
            r1: N(?x) -> exists ?y, ?z: E(?x, ?y, ?z).
            r2: E(?x, ?y, ?y) -> N(?y).
            r3: E(?x, ?y, ?z) -> ?y = ?z.
            "#,
        )
        .unwrap()
    }

    #[test]
    fn example12_sigma1_is_semi_acyclic() {
        let result = adorn(&sigma1());
        assert!(result.acyclic, "Σ1 must be recognised as semi-acyclic");
        assert!(!result.budget_exhausted);
        // After the EGD substitution f1/b the only adorned predicates are N^b and E^bb.
        let preds: BTreeSet<String> = result
            .adorned
            .predicates()
            .into_iter()
            .map(|p| p.name.as_str())
            .collect();
        assert!(preds.contains("N__b"));
        assert!(preds.contains("E__bb"));
        assert!(
            !preds.iter().any(|p| p.contains("f1")),
            "f1 must have been replaced by b: {preds:?}"
        );
        // AD is empty at the end (the definition of f1 was removed by τ).
        assert!(result.definitions.is_empty());
    }

    #[test]
    fn example13_sigma10_is_not_semi_acyclic() {
        let result = adorn(&sigma10());
        assert!(!result.acyclic, "Σ10 must be rejected (cyclic adornment)");
        assert!(
            !result.budget_exhausted,
            "rejection must come from the cyclicity test"
        );
    }

    #[test]
    fn example11_sigma11_is_semi_acyclic() {
        // Σ11 is semi-stratified, and SAC generalises S-Str (Theorem 9).
        let sigma = parse_dependencies(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> E(?y, ?x).
            "#,
        )
        .unwrap();
        assert!(is_semi_acyclic(&sigma));
    }

    #[test]
    fn weakly_acyclic_sets_are_semi_acyclic() {
        let sigma = parse_dependencies(
            r#"
            r1: P(?x, ?y) -> exists ?z: E(?x, ?z).
            r2: Q(?x, ?y) -> exists ?z: E(?z, ?y).
            r3: E(?x, ?y) -> M(?x).
            "#,
        )
        .unwrap();
        assert!(is_semi_acyclic(&sigma));
    }

    #[test]
    fn self_feeding_rule_is_not_semi_acyclic() {
        let sigma = parse_dependencies("r: E(?x, ?y) -> exists ?z: E(?y, ?z).").unwrap();
        assert!(!is_semi_acyclic(&sigma));
    }

    #[test]
    fn example6_rule_is_semi_acyclic() {
        let sigma = parse_dependencies("r: E(?x, ?y) -> exists ?z: E(?x, ?z).").unwrap();
        assert!(is_semi_acyclic(&sigma));
    }

    #[test]
    fn adorned_set_contains_base_rules_and_adorned_rules() {
        let result = adorn(&sigma1());
        // Base rules: one per predicate (N, E).
        let base: Vec<_> = result
            .adorned
            .iter()
            .filter(|(_, d)| d.label().map(|l| l.starts_with("base_")).unwrap_or(false))
            .collect();
        assert_eq!(base.len(), 2);
        assert!(
            result.adorned_rule_count >= 3,
            "every dependency of Σ1 gets at least one adorned version"
        );
        assert!(result.size_ratio(&sigma1()) >= 1.0);
    }

    #[test]
    fn fireable_modes_agree_on_small_paper_examples() {
        for sigma in [sigma1(), sigma10()] {
            let exact = adorn_with(
                &sigma,
                &AdnConfig {
                    fireable_mode: FireableMode::Exact,
                    ..AdnConfig::default()
                },
            );
            let overlap = adorn_with(
                &sigma,
                &AdnConfig {
                    fireable_mode: FireableMode::PredicateOverlap,
                    ..AdnConfig::default()
                },
            );
            assert_eq!(exact.acyclic, overlap.acyclic);
        }
    }

    #[test]
    fn key_constraints_and_full_tgds_are_semi_acyclic() {
        let sigma = parse_dependencies(
            r#"
            t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z).
            k: E(?x, ?y), E(?x, ?z) -> ?y = ?z.
            "#,
        )
        .unwrap();
        let result = adorn(&sigma);
        assert!(result.acyclic);
        assert!(result.definitions.is_empty());
    }

    #[test]
    fn adornment_definitions_reference_existential_rules() {
        // For a weakly acyclic set with one existential rule the final AD keeps the
        // definition of its symbol.
        let sigma = parse_dependencies(
            r#"
            r1: A(?x) -> exists ?y: B(?x, ?y).
            r2: B(?x, ?y) -> C(?y).
            "#,
        )
        .unwrap();
        let result = adorn(&sigma);
        assert!(result.acyclic);
        assert_eq!(result.definitions.len(), 1);
        assert_eq!(result.definitions[0].rule, 0);
        assert_eq!(result.definitions[0].args, vec![AdSym::B]);
    }

    #[test]
    fn size_ratio_is_moderate_on_paper_examples() {
        for sigma in [sigma1(), sigma10()] {
            let result = adorn(&sigma);
            let ratio = result.size_ratio(&sigma);
            assert!(ratio < 10.0, "|Σµ|/|Σ| unexpectedly large: {ratio}");
        }
    }

    #[test]
    fn display_of_symbols_and_definitions() {
        assert_eq!(AdSym::B.to_string(), "b");
        assert_eq!(AdSym::F(3).to_string(), "f3");
        let def = AdnDefinition {
            symbol: 2,
            rule: 1,
            var_index: 0,
            args: vec![AdSym::B, AdSym::F(1)],
        };
        assert_eq!(def.to_string(), "f2 = f^r1_z0(bf1)");
    }
}
