//! Semi-stratification (Definition 3): every strongly connected component of the firing
//! graph `Gf(Σ)` must be weakly acyclic.
//!
//! Semi-stratification strictly generalises stratification (Theorem 5.1): the firing
//! graph is a subgraph of the chase graph, so its components are smaller, and the
//! weak-acyclicity check is applied to fewer dependencies at a time. Acceptance
//! guarantees, for every database, the existence of a terminating standard chase
//! sequence of length polynomial in the database (Theorem 3).

use crate::firing::firing_graph_with;
use chase_core::DependencySet;
use chase_criteria::criterion::{Guarantee, TerminationCriterion, Verdict};
use chase_criteria::firing::FiringConfig;
use chase_criteria::graph::DiGraph;

/// The result of the semi-stratification analysis, retaining the firing graph and the
/// offending component (if any) for reporting.
#[derive(Clone, Debug)]
pub struct SemiStratificationReport {
    /// The firing graph `Gf(Σ)` (node ids are dependency indices).
    pub firing_graph: DiGraph,
    /// The strongly connected components of the firing graph.
    pub components: Vec<Vec<usize>>,
    /// The first cyclic component that is not weakly acyclic, if any.
    pub offending_component: Option<Vec<usize>>,
}

impl SemiStratificationReport {
    /// Returns `true` iff the analysed set is semi-stratified.
    pub fn is_semi_stratified(&self) -> bool {
        self.offending_component.is_none()
    }
}

/// Runs the semi-stratification analysis and returns the full report.
pub fn semi_stratification_report(sigma: &DependencySet) -> SemiStratificationReport {
    semi_stratification_report_with(sigma, &FiringConfig::default())
}

/// [`semi_stratification_report`] with an explicit firing-test configuration.
pub fn semi_stratification_report_with(
    sigma: &DependencySet,
    config: &FiringConfig,
) -> SemiStratificationReport {
    let graph = firing_graph_with(sigma, config);
    let components = graph.sccs();
    // The offending-component search is shared with the stratification family.
    let offending =
        chase_criteria::stratification::offending_component_in(sigma, &graph, &components)
            .map(|(ids, _)| ids.into_iter().map(|d| d.0).collect());
    SemiStratificationReport {
        firing_graph: graph,
        components,
        offending_component: offending,
    }
}

/// Semi-stratification as a witness-producing [`TerminationCriterion`] (`S-Str`,
/// Definition 3).
///
/// Acceptance carries the stratum assignment (the SCC decomposition of the firing
/// graph `Gf(Σ)`); rejection the offending component and its inner special-edge
/// position cycle.
#[derive(Clone, Debug, Default)]
pub struct SemiStratification {
    /// Configuration of the underlying firing tests.
    pub config: FiringConfig,
}

impl TerminationCriterion for SemiStratification {
    fn name(&self) -> &'static str {
        "S-Str"
    }

    fn guarantee(&self) -> Guarantee {
        Guarantee::SomeSequence
    }

    fn cost(&self) -> u32 {
        60
    }

    fn verdict(&self, sigma: &DependencySet) -> Verdict {
        let graph = firing_graph_with(sigma, &self.config);
        chase_criteria::stratification::verdict_from_components(
            self.name(),
            self.guarantee(),
            sigma,
            &graph,
        )
    }
}

/// Returns `true` iff `sigma` is semi-stratified (`S-Str`, Definition 3).
#[deprecated(note = "use SemiStratification (TerminationCriterion) or the TerminationAnalyzer")]
pub fn is_semi_stratified(sigma: &DependencySet) -> bool {
    SemiStratification::default().accepts(sigma)
}

/// [`is_semi_stratified`] with an explicit firing-test configuration.
#[deprecated(note = "use SemiStratification { config } (TerminationCriterion)")]
pub fn is_semi_stratified_with(sigma: &DependencySet, config: &FiringConfig) -> bool {
    semi_stratification_report_with(sigma, config).is_semi_stratified()
}

#[cfg(test)]
mod tests {
    #![allow(deprecated)] // the legacy `is_*` shims stay pinned by these tests

    use super::*;
    use chase_core::parser::parse_dependencies;
    use chase_core::DepId;
    use chase_criteria::criterion::Witness;
    use chase_criteria::stratification::is_stratified;

    #[test]
    fn verdict_witnesses_match_the_report() {
        let sigma1 = parse_dependencies(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> ?x = ?y.
            "#,
        )
        .unwrap();
        let verdict = SemiStratification::default().verdict(&sigma1);
        assert!(!verdict.accepted);
        match &verdict.witness {
            Witness::OffendingComponent { component, .. } => {
                assert!(component.contains(&DepId(0)) && component.contains(&DepId(1)));
            }
            other => panic!("expected OffendingComponent, got {other:?}"),
        }

        let sigma11 = parse_dependencies(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> E(?y, ?x).
            "#,
        )
        .unwrap();
        let verdict = SemiStratification::default().verdict(&sigma11);
        assert!(verdict.accepted);
        assert!(matches!(verdict.witness, Witness::StratumAssignment { .. }));
    }

    #[test]
    fn example11_is_semi_stratified_but_not_stratified() {
        let sigma = parse_dependencies(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> E(?y, ?x).
            "#,
        )
        .unwrap();
        assert!(is_semi_stratified(&sigma));
        assert!(!is_stratified(&sigma));
    }

    #[test]
    fn example1_is_not_semi_stratified() {
        // The EGD of Σ1 cannot block a constants-only witness, so the firing graph
        // still contains the cycle r1 <-> r2 and its component is not weakly acyclic.
        // (Σ1 is nevertheless recognised by the adornment algorithm — Example 12.)
        let sigma = parse_dependencies(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> ?x = ?y.
            "#,
        )
        .unwrap();
        let report = semi_stratification_report(&sigma);
        assert!(!report.is_semi_stratified());
        let offending = report.offending_component.unwrap();
        assert!(offending.contains(&0) && offending.contains(&1));
    }

    #[test]
    fn stratified_implies_semi_stratified() {
        // Theorem 5.1: Str ⊆ S-Str.
        let inputs = [
            "r1: P(?x, ?y) -> exists ?z: E(?x, ?z). r2: Q(?x, ?y) -> exists ?z: E(?z, ?y).",
            "a: A(?x) -> B(?x). b: B(?x) -> C(?x).",
            "r: E(?x, ?y) -> exists ?z: E(?x, ?z).",
            "s1: S(?x) -> exists ?y: E(?x, ?y). s2: E(?x, ?y), S(?y) -> S2(?y).",
            "k1: R(?x, ?y), R(?x, ?z) -> ?y = ?z.",
            "r1: N(?x) -> exists ?y: E(?x, ?y). r2: E(?x, ?y) -> N(?y). r3: E(?x, ?y) -> E(?y, ?x).",
        ];
        for src in inputs {
            let sigma = parse_dependencies(src).unwrap();
            if is_stratified(&sigma) {
                assert!(is_semi_stratified(&sigma), "Str ⊆ S-Str violated on {src}");
            }
        }
    }

    #[test]
    fn weakly_acyclic_components_are_tolerated() {
        // A genuine firing-graph cycle whose dependencies are weakly acyclic (full
        // TGDs): transitive closure plus symmetry.
        let sigma = parse_dependencies(
            r#"
            t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z).
            s: E(?x, ?y) -> E(?y, ?x).
            "#,
        )
        .unwrap();
        let report = semi_stratification_report(&sigma);
        assert!(report.is_semi_stratified());
        // The component containing t and s is cyclic in Gf but weakly acyclic.
        assert!(report
            .components
            .iter()
            .any(|c| c.len() == 2 || report.firing_graph.has_edge(c[0], c[0])));
    }

    #[test]
    fn self_feeding_existential_rule_is_rejected() {
        let sigma = parse_dependencies("r: E(?x, ?y) -> exists ?z: E(?y, ?z).").unwrap();
        assert!(!is_semi_stratified(&sigma));
    }

    #[test]
    fn report_exposes_the_firing_graph() {
        let sigma = parse_dependencies(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> E(?y, ?x).
            "#,
        )
        .unwrap();
        let report = semi_stratification_report(&sigma);
        assert!(report.firing_graph.has_edge(0, 1));
        assert!(!report.firing_graph.has_edge(1, 0));
        assert_eq!(report.firing_graph.node_count(), 3);
    }
}
