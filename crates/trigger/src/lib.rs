//! # chase-trigger
//!
//! Delta-driven incremental trigger discovery for the chase.
//!
//! Every chase step needs a *trigger*: a dependency `r` and a homomorphism `h`
//! from `Body(r)` into the current instance. Re-running a full homomorphism
//! search over the whole instance after every step — the naive strategy of
//! `chase_engine::step::first_applicable_trigger` — re-derives the same matches
//! over and over. This crate replaces the re-scan with *semi-naive* discovery:
//!
//! * [`FactIndex`] — indexed fact storage: an owned
//!   [`IndexedInstance`](chase_core::IndexedInstance) whose per-(predicate,
//!   position) hash indexes answer "which facts can this body atom map to?" by
//!   lookup instead of scan;
//! * [`DeltaQueue`] — the worklist of facts added (TGD steps) or rewritten (EGD
//!   substitutions) since discovery last ran, carried as dense
//!   [`chase_core::FactId`]s over the index's arena-interned
//!   [`chase_core::FactStore`] (a delta enqueue is a 4-byte copy, and EGD
//!   substitutions remap queued entries through the reported `(old, new)` id
//!   pairs);
//! * [`search`] — delta-seeded entry points into the shared join engine of
//!   [`chase_core::homomorphism`] (a [`chase_core::JoinPlan`] executed over the
//!   maintained indexes, most-selective-atom first);
//! * [`TriggerEngine`] — the driver: [`TriggerEngine::push_facts`] /
//!   [`TriggerEngine::apply_substitution`] feed the worklist,
//!   [`TriggerEngine::next_active_trigger`] (standard chase) and
//!   [`TriggerEngine::next_trigger_where`] (oblivious chases, saturation loops)
//!   pop candidates in the caller's dependency order, preserving every
//!   trigger-selection policy's semantics, and
//!   [`TriggerEngine::apply_trigger`] applies chase steps natively — no full
//!   instance clone per step.
//!
//! EGD substitutions are first-class: pending triggers and the dedup set are
//! rewritten `h ↦ γ∘h` in lockstep with the instance, and the rewritten facts
//! re-enter the worklist because a substitution can *create* matches (e.g. a
//! body atom `E(x, x)` matching only after two nulls collapse).
//!
//! Discovery also runs **in parallel**: [`parallel::discover_batch`] shards a
//! delta batch across scoped worker threads over a read-only
//! [`chase_core::Snapshot`] and merges the results deterministically —
//! [`TriggerEngine::drain_deltas_parallel`] is the drop-in drain whose outcome is
//! identical to the sequential one at any worker count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod conflict;
pub mod delta;
pub mod engine;
pub mod index;
pub mod parallel;
pub mod search;

pub use conflict::ConflictSchedule;
pub use delta::DeltaQueue;
pub use engine::{EngineStats, StepEffect, StepLog, Trigger, TriggerEngine};
pub use index::FactIndex;
pub use parallel::{
    body_image, discover_batch, discover_batch_instrumented, sort_canonical, DiscoveredTrigger,
    SeedAtoms,
};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::delta::DeltaQueue;
    pub use crate::engine::{EngineStats, StepEffect, StepLog, Trigger, TriggerEngine};
    pub use crate::index::FactIndex;
    pub use crate::parallel::{discover_batch, DiscoveredTrigger, SeedAtoms};
}
