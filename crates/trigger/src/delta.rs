//! The delta worklist: facts added or rewritten since trigger discovery last ran.

use chase_core::substitution::NullSubstitution;
use chase_core::Fact;
use std::collections::VecDeque;

/// FIFO worklist of facts whose trigger contributions are still undiscovered.
///
/// Facts are enqueued when a TGD step inserts them or an EGD substitution rewrites
/// them, and drained by [`TriggerEngine::drain_deltas`](crate::TriggerEngine) which
/// seeds homomorphism search from each fact in turn (semi-naive evaluation).
#[derive(Clone, Debug, Default)]
pub struct DeltaQueue {
    queue: VecDeque<Fact>,
    enqueued_total: usize,
}

impl DeltaQueue {
    /// Creates an empty worklist.
    pub fn new() -> Self {
        DeltaQueue::default()
    }

    /// Enqueues a fact.
    pub fn push(&mut self, fact: Fact) {
        self.enqueued_total += 1;
        self.queue.push_back(fact);
    }

    /// Dequeues the oldest fact, if any.
    pub fn pop(&mut self) -> Option<Fact> {
        self.queue.pop_front()
    }

    /// Number of facts currently waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` iff no fact is waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total number of facts ever enqueued (for diagnostics).
    pub fn enqueued_total(&self) -> usize {
        self.enqueued_total
    }

    /// Applies an EGD substitution to every waiting fact, keeping the worklist in
    /// lockstep with the instance (a queued fact that mentioned the substituted
    /// null no longer exists in `K γ`; its rewrite does).
    pub fn apply_substitution(&mut self, gamma: &NullSubstitution) {
        for fact in &mut self.queue {
            *fact = fact.apply(gamma);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::term::Constant;
    use chase_core::GroundTerm;

    #[test]
    fn fifo_order_and_counters() {
        let mut q = DeltaQueue::new();
        let a = Fact::from_parts("N", vec![GroundTerm::Const(Constant::new("a"))]);
        let b = Fact::from_parts("N", vec![GroundTerm::Const(Constant::new("b"))]);
        q.push(a.clone());
        q.push(b.clone());
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(a));
        assert_eq!(q.pop(), Some(b));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
        assert_eq!(q.enqueued_total(), 2);
    }
}
