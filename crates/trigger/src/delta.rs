//! The delta worklist: facts added or rewritten since trigger discovery last ran.

use chase_core::FactId;
use std::collections::{HashMap, VecDeque};

/// FIFO worklist of fact ids whose trigger contributions are still undiscovered.
///
/// Facts are enqueued (by their arena [`FactId`]) when a TGD step inserts them or
/// an EGD substitution rewrites them, and drained by
/// [`TriggerEngine::drain_deltas`](crate::TriggerEngine) which seeds homomorphism
/// search from each fact in turn (semi-naive evaluation). Carrying ids instead of
/// fact values means enqueueing is a 4-byte copy and the queue never clones terms.
#[derive(Clone, Debug, Default)]
pub struct DeltaQueue {
    queue: VecDeque<FactId>,
    enqueued_total: usize,
}

impl DeltaQueue {
    /// Creates an empty worklist.
    pub fn new() -> Self {
        DeltaQueue::default()
    }

    /// Enqueues a fact id.
    pub fn push(&mut self, id: FactId) {
        self.enqueued_total += 1;
        self.queue.push_back(id);
    }

    /// Dequeues the oldest fact id, if any.
    pub fn pop(&mut self) -> Option<FactId> {
        self.queue.pop_front()
    }

    /// Drains every waiting fact id at once, in FIFO order — the round snapshot
    /// of the worklist that partitioned parallel discovery shards across workers.
    ///
    /// When no EGD substitution has remapped queued ids, FIFO order *is*
    /// ascending [`FactId`] order (ids are handed out consecutively as facts are
    /// interned and enqueued on insertion), so contiguous chunks of the batch are
    /// disjoint `FactId` ranges.
    pub fn take_batch(&mut self) -> Vec<FactId> {
        self.queue.drain(..).collect()
    }

    /// Number of facts currently waiting.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` iff no fact is waiting.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total number of facts ever enqueued (for diagnostics).
    pub fn enqueued_total(&self) -> usize {
        self.enqueued_total
    }

    /// Keeps only the waiting fact ids accepted by `keep`, preserving FIFO
    /// order. Retraction support: a fact removed from the instance must not be
    /// re-seeded into discovery, so
    /// [`TriggerEngine::retract_ids`](crate::TriggerEngine) purges it from the
    /// worklist. `enqueued_total` is a lifetime counter and is not rewound.
    pub fn retain(&mut self, mut keep: impl FnMut(FactId) -> bool) {
        self.queue.retain(|&id| keep(id));
    }

    /// Applies an EGD substitution's id delta to every waiting fact, keeping the
    /// worklist in lockstep with the instance: a queued fact that mentioned the
    /// substituted null no longer exists in `K γ`; its rewrite (the `new` of its
    /// `(old, new)` pair) does.
    pub fn apply_rewrites(&mut self, delta: &[(FactId, FactId)]) {
        if delta.is_empty() || self.queue.is_empty() {
            return;
        }
        let map: HashMap<FactId, FactId> = delta.iter().copied().collect();
        for id in &mut self.queue {
            if let Some(&new) = map.get(id) {
                *id = new;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_counters() {
        let mut q = DeltaQueue::new();
        q.push(FactId(0));
        q.push(FactId(1));
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(FactId(0)));
        assert_eq!(q.pop(), Some(FactId(1)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
        assert_eq!(q.enqueued_total(), 2);
    }

    #[test]
    fn take_batch_on_an_empty_queue_is_empty() {
        let mut q = DeltaQueue::new();
        assert!(q.take_batch().is_empty());
        assert_eq!(q.enqueued_total(), 0);
        // Draining is idempotent: a second take after a real batch is empty too.
        q.push(FactId(3));
        assert_eq!(q.take_batch(), vec![FactId(3)]);
        assert!(q.take_batch().is_empty());
        assert!(q.is_empty());
    }

    #[test]
    fn take_batch_preserves_duplicate_ids_in_fifo_order() {
        // The queue does not dedup: the same id pushed twice (e.g. a fact
        // rewritten onto an existing fact by two EGD substitutions) drains
        // twice, in push order. Dedup happens downstream, against the engine's
        // `seen` set — never here, so the batch order stays a pure FIFO record.
        let mut q = DeltaQueue::new();
        q.push(FactId(5));
        q.push(FactId(9));
        q.push(FactId(5));
        assert_eq!(q.take_batch(), vec![FactId(5), FactId(9), FactId(5)]);
        assert_eq!(q.enqueued_total(), 3);
    }

    #[test]
    fn retain_drops_matching_ids_preserving_order() {
        let mut q = DeltaQueue::new();
        q.push(FactId(1));
        q.push(FactId(2));
        q.push(FactId(3));
        q.push(FactId(2));
        q.retain(|id| id != FactId(2));
        assert_eq!(q.take_batch(), vec![FactId(1), FactId(3)]);
        assert_eq!(q.enqueued_total(), 4, "lifetime counter is not rewound");
    }

    #[test]
    fn rewrites_map_queued_ids() {
        let mut q = DeltaQueue::new();
        q.push(FactId(0));
        q.push(FactId(1));
        q.push(FactId(2));
        q.apply_rewrites(&[(FactId(1), FactId(7)), (FactId(2), FactId(7))]);
        assert_eq!(q.pop(), Some(FactId(0)));
        assert_eq!(q.pop(), Some(FactId(7)));
        assert_eq!(q.pop(), Some(FactId(7)));
    }
}
