//! Conflict-aware scheduling for the parallel **standard** chase.
//!
//! The standard chase is order-sensitive: each step's *activity check* reads the
//! current instance, and applying a trigger can deactivate later ones. Batching
//! steps naively is provably not equivalence-preserving, so this module decides
//! — statically, per dependency pair — when a group of pending triggers can have
//! their activity checks evaluated **concurrently against the pre-batch
//! instance** and then be applied in the exact sequential order, with a result
//! bitwise identical to the one-at-a-time engine.
//!
//! # The two conditions
//!
//! Consider the sequential pop order of pending triggers (dependencies in the
//! fixed selection `order`, FIFO within each dependency) and a candidate prefix
//! `t₁ … tₖ` of it. For every earlier/later pair `(tᵢ, tⱼ)`, `i < j`, write
//! `W(tᵢ)` for the predicates `tᵢ`'s head inserts into and `R(tⱼ)` for the
//! predicates `tⱼ`'s activity check reads (its body **and** its head — the
//! standard check searches for a head extension). The prefix is *conflict-free*
//! when both hold pairwise:
//!
//! 1. **Activity stability** — `W(tᵢ) ∩ R(tⱼ) = ∅`: nothing `tᵢ` writes can
//!    flip `tⱼ`'s activity, so checking `tⱼ` against the pre-batch instance
//!    gives the same verdict the sequential engine would see after applying
//!    `t₁ … tⱼ₋₁`.
//! 2. **Ordering stability** — every dependency whose *body* reads a predicate
//!    in `W(tᵢ)` sits at selection rank ≥ the rank of the **last** batch
//!    member's dependency: the triggers `tᵢ`'s new facts seed are appended (by
//!    the per-apply drain) to queues that the sequential engine would pop no
//!    earlier than the remaining batch, so committing to the whole prefix up
//!    front cannot overtake a trigger the sequential engine would have chosen
//!    first. Equal rank is safe: FIFO appends land *behind* the already-queued
//!    prefix members.
//!
//! Triggers of the **same** dependency always conflict: the head predicates are
//! in both `W` and `R` (the check reads the head), and a fired head really can
//! witness a sibling's activity check (two assignments that agree on the
//! frontier produce the same head image — the classic standard-vs-oblivious
//! divergence). EGDs are treated as conflicting with everything; the parallel
//! standard path is only entered for EGD-free sets, so the conservatism is
//! free.
//!
//! The schedule is a dense `|Σ|²` bit-matrix built once per run — lookups on
//! the hot batching path are two array reads.

use chase_core::{DepId, Dependency, DependencySet, Predicate};
use std::collections::{HashMap, HashSet};

/// Static conflict schedule for one dependency set and one selection order.
///
/// Built once per chase run by [`ConflictSchedule::new`]; consulted by
/// [`TriggerEngine::next_active_batch`](crate::TriggerEngine::next_active_batch)
/// to grow conflict-free prefixes of the sequential pop order.
#[derive(Clone, Debug)]
pub struct ConflictSchedule {
    /// Number of dependencies (matrix dimension).
    n: usize,
    /// `independent[e * n + l]` ⇔ a trigger of dependency `e` popped earlier
    /// may share a batch with a trigger of dependency `l` popped later, as far
    /// as **activity stability** is concerned (`W(e) ∩ R(l) = ∅`, no EGDs).
    independent: Vec<bool>,
    /// Selection rank of each dependency (position in the pop order).
    rank: Vec<usize>,
    /// For each dependency `d`: the minimum selection rank over dependencies
    /// whose *body* reads a predicate in `W(d)` — i.e. the earliest queue a
    /// fact written by `d` can seed. `usize::MAX` when `W(d)` seeds nothing.
    min_seed_rank: Vec<usize>,
}

impl ConflictSchedule {
    /// Analyzes `sigma` under the selection `order` (the same order the engine
    /// pops with; every [`DepId`] must appear in it).
    pub fn new(sigma: &DependencySet, order: &[DepId]) -> Self {
        let n = sigma.len();
        let mut rank = vec![usize::MAX; n];
        for (r, &id) in order.iter().enumerate() {
            rank[id.0] = r;
        }

        // Per-dependency read/write predicate sets.
        let mut reads: Vec<HashSet<Predicate>> = vec![HashSet::new(); n];
        let mut writes: Vec<HashSet<Predicate>> = vec![HashSet::new(); n];
        let mut is_egd = vec![false; n];
        for (id, dep) in sigma.iter() {
            for atom in dep.body() {
                reads[id.0].insert(atom.predicate);
            }
            match dep {
                Dependency::Tgd(tgd) => {
                    for atom in &tgd.head {
                        // The activity check reads the head too (it searches
                        // for an extension witnessing the head).
                        reads[id.0].insert(atom.predicate);
                        writes[id.0].insert(atom.predicate);
                    }
                }
                Dependency::Egd(_) => {
                    // An EGD "writes" arbitrary rewrites; mark it conflicting
                    // with everything below instead of enumerating predicates.
                    is_egd[id.0] = true;
                }
            }
        }

        // Earliest rank a predicate seeds: min rank over deps reading it in
        // their *body* (head reads don't enqueue triggers).
        let mut body_seed_rank: HashMap<Predicate, usize> = HashMap::new();
        for (id, dep) in sigma.iter() {
            for atom in dep.body() {
                let entry = body_seed_rank.entry(atom.predicate).or_insert(usize::MAX);
                *entry = (*entry).min(rank[id.0]);
            }
        }
        let min_seed_rank: Vec<usize> = (0..n)
            .map(|d| {
                writes[d]
                    .iter()
                    .map(|p| *body_seed_rank.get(p).unwrap_or(&usize::MAX))
                    .min()
                    .unwrap_or(usize::MAX)
            })
            .collect();

        let mut independent = vec![false; n * n];
        for e in 0..n {
            for l in 0..n {
                independent[e * n + l] =
                    e != l && !is_egd[e] && !is_egd[l] && writes[e].is_disjoint(&reads[l]);
            }
        }

        ConflictSchedule {
            n,
            independent,
            rank,
            min_seed_rank,
        }
    }

    /// Selection rank of `dep` in the pop order.
    pub fn rank(&self, dep: DepId) -> usize {
        self.rank[dep.0]
    }

    /// Earliest selection rank that a fact written by `dep` can seed a new
    /// trigger onto (`usize::MAX` if its writes seed no dependency body).
    pub fn min_seed_rank(&self, dep: DepId) -> usize {
        self.min_seed_rank[dep.0]
    }

    /// `true` iff a trigger of `earlier` may precede a trigger of `later` in
    /// one conflict-free batch (activity-stability condition; the ordering
    /// condition additionally bounds the batch via [`min_seed_rank`]).
    ///
    /// Not symmetric: only the earlier trigger's writes matter. Same-dependency
    /// pairs are never independent.
    ///
    /// [`min_seed_rank`]: ConflictSchedule::min_seed_rank
    pub fn independent(&self, earlier: DepId, later: DepId) -> bool {
        self.independent[earlier.0 * self.n + later.0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::parser::parse_dependencies;

    fn schedule(src: &str) -> (ConflictSchedule, Vec<DepId>) {
        let sigma = parse_dependencies(src).unwrap();
        let order: Vec<DepId> = sigma.iter().map(|(id, _)| id).collect();
        (ConflictSchedule::new(&sigma, &order), order)
    }

    #[test]
    fn disjoint_read_write_predicate_sets_are_independent() {
        // r0 writes P from A; r1 writes Q from B — no overlap in any direction.
        let (s, o) = schedule("r0: A(?x) -> P(?x). r1: B(?x) -> Q(?x).");
        assert!(s.independent(o[0], o[1]));
        assert!(s.independent(o[1], o[0]));
    }

    #[test]
    fn writer_into_a_later_readers_body_conflicts() {
        // r0 writes B; r1 reads B in its body.
        let (s, o) = schedule("r0: A(?x) -> B(?x). r1: B(?x) -> C(?x).");
        assert!(!s.independent(o[0], o[1]), "W(r0) ∩ body-reads(r1) = {{B}}");
        // The reverse direction is fine: r1 writes C, which r0 never reads.
        assert!(s.independent(o[1], o[0]));
    }

    #[test]
    fn writer_into_a_later_heads_predicate_conflicts() {
        // r1's activity check reads its own head predicate P; r0 writes P.
        let (s, o) = schedule("r0: A(?x) -> P(?x). r1: B(?x) -> P(?x).");
        assert!(!s.independent(o[0], o[1]));
        assert!(!s.independent(o[1], o[0]));
    }

    #[test]
    fn same_dependency_always_conflicts() {
        // Even a self-contained rule conflicts with itself: one fired head can
        // witness a sibling trigger's activity check.
        let (s, o) = schedule("r0: A(?x) -> P(?x).");
        assert!(!s.independent(o[0], o[0]));
    }

    #[test]
    fn self_recursive_rules_conflict_with_themselves_transitively() {
        // Transitive closure writes and reads E: serializes (by design — the
        // paper's argument that round-batching the standard chase is unsound).
        let (s, o) = schedule("t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z).");
        assert!(!s.independent(o[0], o[0]));
    }

    #[test]
    fn egds_conflict_with_everything() {
        let (s, o) = schedule("r0: A(?x) -> P(?x). e: P(?x), P(?y) -> ?x = ?y.");
        assert!(!s.independent(o[0], o[1]));
        assert!(!s.independent(o[1], o[0]));
        assert!(!s.independent(o[1], o[1]));
    }

    #[test]
    fn min_seed_rank_tracks_the_earliest_reader_of_written_predicates() {
        let (s, o) = schedule(
            "r0: A(?x) -> C(?x). \
             r1: B(?x) -> D(?x). \
             r2: C(?x) -> E(?x).",
        );
        // r0 writes C, which only r2 (rank 2) reads in its body.
        assert_eq!(s.min_seed_rank(o[0]), 2);
        // r1 writes D, which nobody reads.
        assert_eq!(s.min_seed_rank(o[1]), usize::MAX);
        // r2 writes E, which nobody reads.
        assert_eq!(s.min_seed_rank(o[2]), usize::MAX);
        assert_eq!(s.rank(o[0]), 0);
        assert_eq!(s.rank(o[2]), 2);
    }

    #[test]
    fn overlapping_partitions_conflict_but_disjoint_chains_do_not() {
        // Two disjoint chains A→B→C and X→Y→Z: cross-chain pairs independent,
        // within-chain successive writers conflict.
        let (s, o) = schedule(
            "a1: A(?x) -> B(?x). a2: B(?x) -> C(?x). \
             x1: X(?x) -> Y(?x). x2: Y(?x) -> Z(?x).",
        );
        // Cross-chain: every ordered pair independent.
        for &e in &[o[0], o[1]] {
            for &l in &[o[2], o[3]] {
                assert!(s.independent(e, l), "{e:?} vs {l:?}");
                assert!(s.independent(l, e), "{l:?} vs {e:?}");
            }
        }
        // Within-chain: a1 writes B which a2 reads.
        assert!(!s.independent(o[0], o[1]));
        assert!(s.independent(o[1], o[0]), "a2 writes C; a1 reads only A");
    }
}
