//! Indexed fact storage: an owned [`Instance`] plus candidate-lookup helpers.
//!
//! [`FactIndex`] is the storage layer of the trigger engine. It owns the evolving
//! chase instance and answers the one question join search keeps asking — *which
//! facts could this body atom map to, given the current partial assignment?* — by
//! consulting the per-(predicate, position) indexes of [`Instance`] instead of
//! scanning all facts of the predicate.

use chase_core::substitution::NullSubstitution;
use chase_core::Assignment;
use chase_core::{Atom, Fact, GroundTerm, Instance, NullValue, Term};

/// Indexed fact storage for the trigger engine.
///
/// Wraps an [`Instance`] (which maintains per-predicate, per-position and per-null
/// indexes) and exposes delta-aware mutation: insertion reports whether the fact is
/// new, substitution reports exactly the rewritten facts.
#[derive(Clone, Debug, Default)]
pub struct FactIndex {
    instance: Instance,
}

impl FactIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        FactIndex::default()
    }

    /// Creates an index over a copy of `instance`.
    pub fn from_instance(instance: Instance) -> Self {
        FactIndex { instance }
    }

    /// The indexed instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// Consumes the index, returning the instance.
    pub fn into_instance(self) -> Instance {
        self.instance
    }

    /// Number of stored facts.
    pub fn len(&self) -> usize {
        self.instance.len()
    }

    /// Returns `true` iff no fact is stored.
    pub fn is_empty(&self) -> bool {
        self.instance.is_empty()
    }

    /// Returns `true` iff the fact is stored.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.instance.contains(fact)
    }

    /// Inserts a fact; returns `true` iff it was new.
    pub fn insert(&mut self, fact: Fact) -> bool {
        self.instance.insert(fact)
    }

    /// Allocates a labeled null distinct from every null in the stored facts.
    pub fn fresh_null(&mut self) -> NullValue {
        self.instance.fresh_null()
    }

    /// Applies an EGD substitution in place, returning the rewritten facts (the
    /// delta the engine re-seeds trigger discovery from).
    pub fn substitute(&mut self, gamma: &NullSubstitution) -> Vec<Fact> {
        self.instance.substitute_in_place(gamma)
    }

    /// The candidate facts for `atom` under `assignment`: the smallest
    /// per-(predicate, position) bucket among the atom's bound positions, or all
    /// facts of the predicate when no position is bound.
    ///
    /// Every fact the atom can map to is in the returned slice; the slice may
    /// contain non-matching facts (unification still has to check the remaining
    /// positions), but for selective positions it is far smaller than the
    /// per-predicate list.
    pub fn candidates_for<'a>(&'a self, atom: &Atom, assignment: &Assignment) -> &'a [Fact] {
        let mut best: Option<&[Fact]> = None;
        for (i, term) in atom.terms.iter().enumerate() {
            let ground: Option<GroundTerm> = match term {
                Term::Const(c) => Some(GroundTerm::Const(*c)),
                Term::Null(n) => Some(GroundTerm::Null(*n)),
                Term::Var(v) => assignment.get(*v),
            };
            if let Some(g) = ground {
                let bucket = self
                    .instance
                    .facts_by_predicate_position(atom.predicate, i, g);
                if best.is_none_or(|b| bucket.len() < b.len()) {
                    best = Some(bucket);
                }
                if bucket.is_empty() {
                    break;
                }
            }
        }
        best.unwrap_or_else(|| self.instance.facts_of(atom.predicate))
    }

    /// An upper bound on the number of candidates for `atom` under `assignment`
    /// (the length of [`FactIndex::candidates_for`]'s result), used to order join
    /// atoms most-constrained-first.
    pub fn candidate_count(&self, atom: &Atom, assignment: &Assignment) -> usize {
        self.candidates_for(atom, assignment).len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::builder::{atom, cst, var};
    use chase_core::term::Constant;

    fn gc(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }

    fn path() -> FactIndex {
        let mut idx = FactIndex::new();
        idx.insert(Fact::from_parts("E", vec![gc("a"), gc("b")]));
        idx.insert(Fact::from_parts("E", vec![gc("b"), gc("c")]));
        idx.insert(Fact::from_parts("E", vec![gc("b"), gc("d")]));
        idx
    }

    #[test]
    fn unbound_atom_falls_back_to_predicate_scan() {
        let idx = path();
        let a = atom("E", vec![var("x"), var("y")]);
        assert_eq!(idx.candidates_for(&a, &Assignment::new()).len(), 3);
    }

    #[test]
    fn bound_variable_narrows_candidates() {
        let idx = path();
        let a = atom("E", vec![var("x"), var("y")]);
        let h = Assignment::from_pairs([(chase_core::Variable::new("x"), gc("b"))]);
        assert_eq!(idx.candidates_for(&a, &h).len(), 2);
        let h = Assignment::from_pairs([(chase_core::Variable::new("y"), gc("c"))]);
        assert_eq!(idx.candidates_for(&a, &h).len(), 1);
    }

    #[test]
    fn constants_in_atoms_narrow_candidates() {
        let idx = path();
        let a = atom("E", vec![cst("a"), var("y")]);
        assert_eq!(idx.candidates_for(&a, &Assignment::new()).len(), 1);
        let none = atom("E", vec![cst("z"), var("y")]);
        assert!(idx.candidates_for(&none, &Assignment::new()).is_empty());
    }

    #[test]
    fn substitution_reports_rewritten_facts() {
        let mut idx = FactIndex::new();
        idx.insert(Fact::from_parts(
            "E",
            vec![gc("a"), GroundTerm::Null(NullValue(1))],
        ));
        idx.insert(Fact::from_parts("E", vec![gc("a"), gc("b")]));
        let delta = idx.substitute(&NullSubstitution::single(NullValue(1), gc("b")));
        assert_eq!(delta, vec![Fact::from_parts("E", vec![gc("a"), gc("b")])]);
        assert_eq!(idx.len(), 1);
    }
}
