//! Indexed fact storage: a thin wrapper over [`chase_core::IndexedInstance`].
//!
//! [`FactIndex`] is the storage layer of the trigger engine. Since the join engine
//! and the per-(predicate, position) / per-null indexes moved into `chase_core`
//! ([`chase_core::index::IndexedInstance`], [`chase_core::homomorphism`]), this type
//! only adds the engine-facing mutation vocabulary — in [`FactId`]s over the
//! instance's arena: insertion reports the interned id and whether the fact is new,
//! substitution reports exactly the rewritten `(old, new)` id pairs — the deltas
//! semi-naive discovery re-seeds from.

use chase_core::substitution::NullSubstitution;
use chase_core::Assignment;
use chase_core::{
    Atom, Fact, FactId, FactStore, GroundTerm, IndexedInstance, Instance, NullValue, Predicate,
};

/// Indexed fact storage for the trigger engine.
///
/// Wraps an [`IndexedInstance`] (which maintains the per-predicate, per-position and
/// per-null id indexes consumed by the shared join engine) and exposes delta-aware
/// mutation in terms of [`FactId`]s.
#[derive(Clone, Debug, Default)]
pub struct FactIndex {
    indexed: IndexedInstance,
}

impl FactIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        FactIndex::default()
    }

    /// Creates an index over a copy of `instance`.
    pub fn from_instance(instance: Instance) -> Self {
        FactIndex {
            indexed: IndexedInstance::from_instance(instance),
        }
    }

    /// The indexed instance (the join-engine view).
    pub fn indexed(&self) -> &IndexedInstance {
        &self.indexed
    }

    /// The underlying instance.
    pub fn instance(&self) -> &Instance {
        self.indexed.instance()
    }

    /// The arena-interned fact store behind the index.
    pub fn store(&self) -> &FactStore {
        self.indexed.store()
    }

    /// Consumes the index, returning the instance.
    pub fn into_instance(self) -> Instance {
        self.indexed.into_instance()
    }

    /// Number of stored facts.
    pub fn len(&self) -> usize {
        self.indexed.len()
    }

    /// Returns `true` iff no fact is stored.
    pub fn is_empty(&self) -> bool {
        self.indexed.is_empty()
    }

    /// Returns `true` iff the fact is stored.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.indexed.contains(fact)
    }

    /// The live id of `fact`, if it is currently stored — see
    /// [`Instance::id_of`]. Removed (tombstoned) facts resolve to `None` even
    /// though the arena still knows them.
    pub fn id_of(&self, fact: &Fact) -> Option<FactId> {
        self.instance().id_of(fact)
    }

    /// Removes a fact by id, unindexing it from every per-(predicate, position)
    /// and per-null bucket — see [`chase_core::IndexedInstance::remove_id`].
    /// Returns `true` iff the fact was live. The arena keeps the interning, so
    /// a later re-insert of the same fact yields the same id.
    pub fn remove_id(&mut self, id: FactId) -> bool {
        self.indexed.remove_id(id)
    }

    /// Removes a batch of facts by id; returns how many were present
    /// (duplicates count once). One dense-list sweep per affected predicate
    /// — see [`IndexedInstance::remove_ids`].
    pub fn remove_ids(&mut self, ids: &[FactId]) -> usize {
        self.indexed.remove_ids(ids)
    }

    /// Inserts a fact; returns `true` iff it was new.
    pub fn insert(&mut self, fact: Fact) -> bool {
        self.indexed.insert(fact)
    }

    /// Inserts a fact; returns its interned id and whether it was new.
    pub fn insert_full(&mut self, fact: Fact) -> (FactId, bool) {
        self.indexed.insert_full(fact)
    }

    /// Inserts a fact given as predicate + terms (no [`Fact`] value needed);
    /// returns its interned id and whether it was new.
    pub fn insert_parts(&mut self, predicate: Predicate, terms: &[GroundTerm]) -> (FactId, bool) {
        self.indexed.insert_parts(predicate, terms)
    }

    /// Loads a database: every fact is re-interned into this index's arena
    /// straight from the database's term slices (no [`Fact`] values), in sorted
    /// order so that discovery — and any chase sequence built on it — is
    /// reproducible across process runs. Returns the ids of the newly inserted
    /// facts in insertion order: the initial delta. The one loading routine
    /// shared by the sequential engine and the round-parallel runner, so their
    /// round-0 state cannot drift.
    pub fn insert_database(&mut self, database: &Instance) -> Vec<FactId> {
        let store = database.store();
        let mut fresh = Vec::new();
        for id in database.sorted_fact_ids() {
            let (new_id, new) = self.indexed.insert_copied(store, id);
            if new {
                fresh.push(new_id);
            }
        }
        fresh
    }

    /// Allocates a labeled null distinct from every null in the stored facts.
    pub fn fresh_null(&mut self) -> NullValue {
        self.indexed.fresh_null()
    }

    /// Applies an EGD substitution in place, returning the rewritten `(old, new)`
    /// id pairs (the delta the engine re-seeds trigger discovery from).
    pub fn substitute(&mut self, gamma: &NullSubstitution) -> Vec<(FactId, FactId)> {
        self.indexed.substitute_in_place(gamma)
    }

    /// The candidate fact ids for `atom` under `assignment` — see
    /// [`IndexedInstance::candidates_for`].
    pub fn candidates_for<'a>(&'a self, atom: &Atom, assignment: &Assignment) -> &'a [FactId] {
        self.indexed.candidates_for(atom, assignment)
    }

    /// An upper bound on the number of candidates for `atom` under `assignment` —
    /// see [`IndexedInstance::candidate_count`].
    pub fn candidate_count(&self, atom: &Atom, assignment: &Assignment) -> usize {
        self.indexed.candidate_count(atom, assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::builder::{atom, cst, var};
    use chase_core::term::Constant;
    use chase_core::GroundTerm;

    fn gc(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }

    fn path() -> FactIndex {
        let mut idx = FactIndex::new();
        idx.insert(Fact::from_parts("E", vec![gc("a"), gc("b")]));
        idx.insert(Fact::from_parts("E", vec![gc("b"), gc("c")]));
        idx.insert(Fact::from_parts("E", vec![gc("b"), gc("d")]));
        idx
    }

    #[test]
    fn unbound_atom_falls_back_to_predicate_scan() {
        let idx = path();
        let a = atom("E", vec![var("x"), var("y")]);
        assert_eq!(idx.candidates_for(&a, &Assignment::new()).len(), 3);
    }

    #[test]
    fn bound_variable_narrows_candidates() {
        let idx = path();
        let a = atom("E", vec![var("x"), var("y")]);
        let h = Assignment::from_pairs([(chase_core::Variable::new("x"), gc("b"))]);
        assert_eq!(idx.candidates_for(&a, &h).len(), 2);
        let h = Assignment::from_pairs([(chase_core::Variable::new("y"), gc("c"))]);
        assert_eq!(idx.candidates_for(&a, &h).len(), 1);
    }

    #[test]
    fn constants_in_atoms_narrow_candidates() {
        let idx = path();
        let a = atom("E", vec![cst("a"), var("y")]);
        assert_eq!(idx.candidates_for(&a, &Assignment::new()).len(), 1);
        let none = atom("E", vec![cst("z"), var("y")]);
        assert!(idx.candidates_for(&none, &Assignment::new()).is_empty());
    }

    #[test]
    fn remove_id_tombstones_and_reinsert_reuses_the_id() {
        let mut idx = path();
        let fact = Fact::from_parts("E", vec![gc("b"), gc("c")]);
        let id = idx.id_of(&fact).expect("stored");
        assert!(idx.remove_id(id));
        assert!(!idx.remove_id(id), "second removal is a no-op");
        assert_eq!(idx.id_of(&fact), None);
        assert_eq!(idx.len(), 2);
        let a = atom("E", vec![var("x"), var("y")]);
        assert_eq!(idx.candidates_for(&a, &Assignment::new()).len(), 2);
        let (again, new) = idx.insert_full(fact.clone());
        assert!(new);
        assert_eq!(again, id, "the arena re-issues the same id");
        assert_eq!(idx.id_of(&fact), Some(id));
    }

    #[test]
    fn substitution_reports_rewritten_id_pairs() {
        let mut idx = FactIndex::new();
        let (old_id, _) = idx.insert_full(Fact::from_parts(
            "E",
            vec![gc("a"), GroundTerm::Null(NullValue(1))],
        ));
        let (ground_id, _) = idx.insert_full(Fact::from_parts("E", vec![gc("a"), gc("b")]));
        let delta = idx.substitute(&NullSubstitution::single(NullValue(1), gc("b")));
        assert_eq!(delta, vec![(old_id, ground_id)]);
        assert_eq!(idx.len(), 1);
    }
}
