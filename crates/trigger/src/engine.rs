//! The delta-driven trigger engine.
//!
//! [`TriggerEngine`] replaces per-step full re-scans of the instance with
//! incremental trigger discovery:
//!
//! * when facts are added ([`TriggerEngine::push_facts`]) or rewritten by an EGD
//!   substitution ([`TriggerEngine::apply_substitution`]), homomorphism search is
//!   seeded *only* from body atoms unifiable with the delta (semi-naive
//!   evaluation);
//! * discovered candidate triggers wait in per-dependency FIFO queues;
//!   [`TriggerEngine::next_active_trigger`] pops them in the caller's dependency
//!   order, re-checking standard activity at pop time, so every trigger-selection
//!   policy (`StepOrder`-style nondeterminism) behaves exactly as with naive
//!   re-scanning;
//! * EGD substitutions rewrite the pending queues and the dedup set in place
//!   (`h ↦ γ∘h`), invalidating stale bindings without discarding discovered work.
//!
//! Dropping a trigger that is found inactive is sound for the standard chase:
//! instances only grow or get substituted, both of which preserve TGD head
//! witnesses (as `γ∘h'`) and EGD equalities, so an inactive trigger can never
//! become active again.

use crate::conflict::ConflictSchedule;
use crate::delta::DeltaQueue;
use crate::index::FactIndex;
use crate::parallel::{discover_batch, SeedAtoms};
use crate::search::{exists_indexed_extension, for_each_seeded_id};
use chase_core::pool::{self, ScopedJob};
use chase_core::substitution::NullSubstitution;
use chase_core::{
    Assignment, DepId, Dependency, DependencySet, Fact, FactId, GroundTerm, Instance, Snapshot,
    Variable,
};
use std::collections::{HashSet, VecDeque};
use std::ops::ControlFlow;

/// A trigger: a dependency together with a homomorphism from its body into the
/// current instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trigger {
    /// The dependency being enforced.
    pub dep: DepId,
    /// The homomorphism from the dependency's body into the instance.
    pub assignment: Assignment,
}

/// The effect of applying a chase step `K --r,h,γ--> J` (Definition 1 of the paper).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepEffect {
    /// A TGD step: the listed facts were added (`J = K ∪ h'(ψ)`), with `γ = ∅`.
    /// The facts may already be present in `K` for oblivious-style applications.
    AddedFacts {
        /// Facts added by the step.
        facts: Vec<Fact>,
        /// Number of fresh nulls invented for the existential variables.
        fresh_nulls: usize,
    },
    /// An EGD step that replaced a labeled null: `J = K γ`.
    Substituted {
        /// The substitution `γ` (maps a null to a constant or another null).
        gamma: NullSubstitution,
    },
    /// An EGD step on two distinct constants: `J = ⊥`.
    Failure,
    /// The EGD is already satisfied under the homomorphism (`h(x1) = h(x2)`), so no
    /// chase step exists for this trigger.
    NotApplicable,
}

/// Counters describing the engine's work (for benchmarks and diagnostics).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Facts inserted into the index (new facts only).
    pub facts_inserted: usize,
    /// Facts removed from the index by [`TriggerEngine::retract_ids`].
    pub facts_retracted: usize,
    /// Delta facts drained through seeded discovery.
    pub deltas_processed: usize,
    /// Candidate triggers discovered (after dedup).
    pub triggers_discovered: usize,
    /// Triggers dropped because they were no longer active at pop time.
    pub triggers_dropped: usize,
    /// EGD substitutions applied to the engine state.
    pub substitutions: usize,
}

/// Fact-id level record of one applied chase step, produced by
/// [`TriggerEngine::apply_trigger_logged`] for support-ledger consumers
/// (`chase_ivm`).
///
/// The body image is resolved **before** the step mutates anything, so for an
/// EGD substitution step the recorded ids are the pre-rewrite ids; `rewrites`
/// maps them (and every other rewritten fact) forward into the post-step
/// instance.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StepLog {
    /// The image of the body under the trigger's homomorphism: one interned id
    /// per body atom, in body-atom order.
    pub body: Vec<FactId>,
    /// For a TGD step: the interned ids of **all** head facts in head-atom
    /// order — including facts that already existed (contrast
    /// [`StepEffect::AddedFacts`], which lists only the new ones). A support
    /// ledger needs the pre-existing heads too: they gain an extra derivation.
    pub heads: Vec<FactId>,
    /// For an EGD substitution step: the `(old, new)` id pairs of the rewrite.
    pub rewrites: Vec<(FactId, FactId)>,
}

/// Delta-driven incremental trigger discovery over an owned, indexed instance.
#[derive(Clone)]
pub struct TriggerEngine<'a> {
    sigma: &'a DependencySet,
    index: FactIndex,
    deltas: DeltaQueue,
    /// For each predicate, the body-atom positions that can unify with a fact of
    /// that predicate: `(dependency, body atom index)`. Built once so that a delta
    /// fact visits only the matching seed atoms instead of scanning all of `Σ`.
    seed_atoms: SeedAtoms,
    /// Per-dependency FIFO of discovered candidate triggers.
    pending: Vec<VecDeque<Assignment>>,
    /// Per-dependency set of every assignment ever discovered (canonical form),
    /// rewritten in lockstep with EGD substitutions.
    seen: Vec<HashSet<Vec<(Variable, GroundTerm)>>>,
    stats: EngineStats,
}

impl<'a> TriggerEngine<'a> {
    /// Creates an engine for `sigma` over an empty instance.
    pub fn new(sigma: &'a DependencySet) -> Self {
        TriggerEngine {
            sigma,
            index: FactIndex::new(),
            deltas: DeltaQueue::new(),
            seed_atoms: SeedAtoms::new(sigma),
            pending: vec![VecDeque::new(); sigma.len()],
            seen: vec![HashSet::new(); sigma.len()],
            stats: EngineStats::default(),
        }
    }

    /// Creates an engine and loads the database (every database fact is a delta).
    ///
    /// Facts are seeded in sorted order so that discovery — and hence the chase
    /// sequence built on it — is reproducible across process runs (the database's
    /// own fact set iterates in hash order). The facts are re-interned into the
    /// engine's own arena directly from the database's term slices; no `Fact`
    /// values are materialised.
    pub fn with_database(sigma: &'a DependencySet, database: &Instance) -> Self {
        let mut engine = TriggerEngine::new(sigma);
        for id in engine.index.insert_database(database) {
            engine.record_insert(id, true);
        }
        engine
    }

    /// The current instance.
    pub fn instance(&self) -> &Instance {
        self.index.instance()
    }

    /// The engine's indexed fact storage (read-only; exposes index diagnostics such
    /// as [`chase_core::IndexedInstance::probe_count`]).
    pub fn fact_index(&self) -> &FactIndex {
        &self.index
    }

    /// Consumes the engine, returning the final instance.
    pub fn into_instance(self) -> Instance {
        self.index.into_instance()
    }

    /// The engine's work counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Adds facts to the instance. New facts become deltas; duplicates are ignored.
    pub fn push_facts<I: IntoIterator<Item = Fact>>(&mut self, facts: I) {
        for fact in facts {
            self.insert_fact(fact);
        }
    }

    /// Adds one fact, returning its interned id and whether it was new (new
    /// facts become deltas). The id-reporting flavour of
    /// [`TriggerEngine::push_facts`], for callers that track facts by id — a
    /// previously retracted fact comes back under its original id.
    pub fn push_fact_full(&mut self, fact: Fact) -> (FactId, bool) {
        let (id, new) = self.index.insert_full(fact);
        self.record_insert(id, new);
        (id, new)
    }

    /// Number of discovered-but-unpopped candidate triggers across all
    /// dependencies (diagnostics; a quiesced engine has zero pending and an
    /// empty delta worklist).
    pub fn pending_len(&self) -> usize {
        self.pending.iter().map(|q| q.len()).sum()
    }

    /// Returns `true` iff no delta is waiting and no candidate is pending — the
    /// engine will discover nothing new until facts are pushed or retracted.
    pub fn is_quiescent(&self) -> bool {
        self.deltas.is_empty() && self.pending_len() == 0
    }

    fn insert_fact(&mut self, fact: Fact) -> bool {
        let (id, new) = self.index.insert_full(fact);
        self.record_insert(id, new)
    }

    fn record_insert(&mut self, id: FactId, new: bool) -> bool {
        if new {
            self.stats.facts_inserted += 1;
            self.deltas.push(id);
        }
        new
    }

    /// Applies an EGD substitution `γ`: rewrites the instance in place, rewrites
    /// every pending trigger and dedup key (`h ↦ γ∘h`), and re-seeds discovery
    /// from the rewritten facts (substitution can *create* triggers, e.g. a body
    /// atom `E(x, x)` matching a fact only after two nulls collapse). Returns
    /// the rewritten `(old, new)` id pairs — the same delta the index reported
    /// — so id-tracking callers (the `chase_ivm` support ledger) can map their
    /// records forward.
    pub fn apply_substitution(&mut self, gamma: &NullSubstitution) -> Vec<(FactId, FactId)> {
        if gamma.is_empty() {
            return Vec::new();
        }
        self.stats.substitutions += 1;
        let delta = self.index.substitute(gamma);
        // Facts still waiting in the worklist must be rewritten too: they were
        // enqueued as members of `K` and only their images exist in `K γ`. The id
        // delta maps each rewritten fact's old id onto its image's id.
        self.deltas.apply_rewrites(&delta);
        for queue in &mut self.pending {
            for h in queue.iter_mut() {
                *h = rewrite_assignment(h, gamma);
            }
        }
        for set in &mut self.seen {
            *set = set
                .drain()
                .map(|mut key| {
                    for (_, t) in key.iter_mut() {
                        *t = gamma.apply_ground(*t);
                    }
                    key
                })
                .collect();
        }
        for &(_, new) in &delta {
            self.deltas.push(new);
        }
        delta
    }

    /// Drains the delta worklist, seeding homomorphism search from every (body
    /// atom, delta fact) pair and queueing each newly discovered assignment. The
    /// `seed_atoms` map keyed by predicate means a delta fact visits only the body
    /// atoms it can actually unify with, not all of `Σ`.
    pub fn drain_deltas(&mut self) {
        while let Some(fact_id) = self.deltas.pop() {
            self.stats.deltas_processed += 1;
            let predicate = self.index.store().predicate_of(fact_id);
            for &(id, seed_index) in self.seed_atoms.seeds_for(predicate) {
                let body = self.sigma.get(id).body();
                // Borrow dance: collect first, then dedup against `seen`.
                let mut found: Vec<Assignment> = Vec::new();
                for_each_seeded_id::<()>(body, &self.index, seed_index, fact_id, &mut |h| {
                    found.push(h.clone());
                    ControlFlow::Continue(())
                });
                for h in found {
                    if self.seen[id.0].insert(h.canonical()) {
                        self.stats.triggers_discovered += 1;
                        self.pending[id.0].push_back(h);
                    }
                }
            }
        }
    }

    /// Drains the delta worklist like [`TriggerEngine::drain_deltas`], but shards
    /// the waiting batch across up to `workers` scoped threads
    /// ([`crate::parallel::discover_batch`]). The per-worker results are merged
    /// back in batch order, and deduped against `seen` in that order, so the
    /// pending queues end up **identical** to a sequential drain at any worker
    /// count — parallelism here changes wall-clock time, never behaviour.
    pub fn drain_deltas_parallel(&mut self, workers: usize) {
        // `workers(0)` is defined to mean sequential execution (same as 1).
        if workers.max(1) == 1 {
            return self.drain_deltas();
        }
        let batch = self.deltas.take_batch();
        if batch.is_empty() {
            return;
        }
        self.stats.deltas_processed += batch.len();
        let found = {
            let snapshot = Snapshot::new(self.index.indexed());
            discover_batch(self.sigma, &self.seed_atoms, snapshot, &batch, workers)
        };
        for t in found {
            if self.seen[t.dep.0].insert(t.assignment.canonical()) {
                self.stats.triggers_discovered += 1;
                self.pending[t.dep.0].push_back(t.assignment);
            }
        }
    }

    /// Pops the first *standard-active* trigger, trying the dependencies in the
    /// order given (the trigger-selection policy). Triggers that are no longer
    /// active are dropped permanently — see the module docs for why that is sound.
    pub fn next_active_trigger(&mut self, order: &[DepId]) -> Option<Trigger> {
        self.drain_deltas();
        self.pop_active(order)
    }

    /// [`TriggerEngine::next_active_trigger`] with a parallel delta drain: the
    /// discovery joins run on up to `workers` threads, the pop is unchanged.
    /// Returns exactly what the sequential method would (see
    /// [`TriggerEngine::drain_deltas_parallel`]).
    pub fn next_active_trigger_parallel(
        &mut self,
        order: &[DepId],
        workers: usize,
    ) -> Option<Trigger> {
        self.drain_deltas_parallel(workers);
        self.pop_active(order)
    }

    /// Pops a whole **conflict-free prefix** of the sequential pop order and
    /// returns its active triggers, with the activity checks evaluated in
    /// parallel on the persistent pool.
    ///
    /// This is the conflict-aware scheduling step of the parallel standard
    /// chase: the prefix is grown greedily along the exact order
    /// [`pop_active`](Self::next_active_trigger) would use (dependencies in
    /// `order`, FIFO within each), admitting a next trigger only while the
    /// pairwise conditions of [`ConflictSchedule`] hold — earlier members'
    /// writes cannot flip its activity (checked against the frozen pre-batch
    /// instance) and cannot seed a dependency the sequential engine would pop
    /// before the prefix's last member. Inactive prefix members are dropped in
    /// order (counted in `triggers_dropped`), exactly as the sequential pop
    /// would; if the whole prefix was inactive the method retries until it
    /// finds an active trigger or quiesces.
    ///
    /// The caller must apply the returned triggers **in order**, draining the
    /// deltas after each application (see `chase_engine`'s batched standard
    /// runner); under that discipline the run is bitwise identical to the
    /// sequential engine. Callers should route EGD-bearing sets to the
    /// sequential path — the schedule marks EGDs as conflicting with
    /// everything, so batches would always have length 1.
    pub fn next_active_batch(
        &mut self,
        order: &[DepId],
        schedule: &ConflictSchedule,
        workers: usize,
    ) -> Vec<Trigger> {
        let workers = workers.max(1);
        loop {
            self.drain_deltas_parallel(workers);
            // Grow the maximal conflict-free prefix of the pop order.
            let mut prefix: Vec<DepId> = Vec::new();
            {
                // Distinct dependencies already in the prefix (small: same-dep
                // pairs conflict, so it has at most one entry per dependency).
                let mut deps_in: Vec<DepId> = Vec::new();
                // Tightest ordering bound so far: every already-admitted
                // member's writes may seed queues only at rank ≥ the candidate.
                let mut seed_floor = usize::MAX;
                'grow: for &id in order {
                    for _ in 0..self.pending[id.0].len() {
                        let admissible = prefix.is_empty()
                            || (schedule.rank(id) <= seed_floor
                                && deps_in.iter().all(|&d| schedule.independent(d, id)));
                        if !admissible {
                            break 'grow;
                        }
                        prefix.push(id);
                        seed_floor = seed_floor.min(schedule.min_seed_rank(id));
                        if !deps_in.contains(&id) {
                            deps_in.push(id);
                        }
                    }
                }
            }
            if prefix.is_empty() {
                return Vec::new();
            }
            // Check the prefix's activity concurrently against the frozen
            // instance. Sound because of activity stability: no earlier prefix
            // member's apply can change a later member's verdict.
            let actives: Vec<bool> = {
                let this: &TriggerEngine<'a> = &*self;
                let mut refs: Vec<(DepId, &Assignment)> = Vec::with_capacity(prefix.len());
                let mut taken = vec![0usize; this.pending.len()];
                for &id in &prefix {
                    let h = this.pending[id.0]
                        .get(taken[id.0])
                        .expect("prefix entries are queued");
                    taken[id.0] += 1;
                    refs.push((id, h));
                }
                if workers > 1 && refs.len() > 1 {
                    let chunk = refs.len().div_ceil(workers);
                    let jobs: Vec<ScopedJob<'_, Vec<bool>>> = refs
                        .chunks(chunk)
                        .map(|part| {
                            Box::new(move || {
                                part.iter()
                                    .map(|&(id, h)| this.is_standard_active(this.sigma.get(id), h))
                                    .collect()
                            }) as ScopedJob<'_, Vec<bool>>
                        })
                        .collect();
                    pool::with_workers(workers)
                        .run_jobs(jobs)
                        .into_iter()
                        .flatten()
                        .collect()
                } else {
                    refs.iter()
                        .map(|&(id, h)| this.is_standard_active(this.sigma.get(id), h))
                        .collect()
                }
            };
            // Commit: pop the prefix in order, keeping actives and dropping
            // inactives exactly as the sequential pop would.
            let mut out = Vec::new();
            for (&id, &active) in prefix.iter().zip(&actives) {
                let h = self.pending[id.0]
                    .pop_front()
                    .expect("prefix entries are queued");
                if active {
                    out.push(Trigger {
                        dep: id,
                        assignment: h,
                    });
                } else {
                    self.stats.triggers_dropped += 1;
                }
            }
            if !out.is_empty() {
                return out;
            }
            if self.is_quiescent() {
                return Vec::new();
            }
            // The whole prefix was inactive: the queues strictly shrank, so
            // retrying makes progress toward an active trigger or quiescence.
        }
    }

    fn pop_active(&mut self, order: &[DepId]) -> Option<Trigger> {
        for &id in order {
            let dep = self.sigma.get(id);
            while let Some(h) = self.pending[id.0].pop_front() {
                if self.is_standard_active(dep, &h) {
                    return Some(Trigger {
                        dep: id,
                        assignment: h,
                    });
                }
                self.stats.triggers_dropped += 1;
            }
        }
        None
    }

    /// Pops the first discovered trigger accepted by `accept`, trying the
    /// dependencies in the given order. Rejected triggers are dropped permanently;
    /// no activity check is performed. This is the entry point for oblivious-style
    /// consumers (fired-key dedup) and saturation procedures (accept everything).
    pub fn next_trigger_where(
        &mut self,
        order: &[DepId],
        mut accept: impl FnMut(DepId, &Assignment) -> bool,
    ) -> Option<Trigger> {
        self.drain_deltas();
        for &id in order {
            while let Some(h) = self.pending[id.0].pop_front() {
                if accept(id, &h) {
                    return Some(Trigger {
                        dep: id,
                        assignment: h,
                    });
                }
                self.stats.triggers_dropped += 1;
            }
        }
        None
    }

    /// Returns `true` iff `(dep, h)` is active in the standard-chase sense: for a
    /// TGD, `h` does not extend to a homomorphism of the head into the instance;
    /// for an EGD, `h` maps the equated variables to distinct terms.
    pub fn is_standard_active(&self, dep: &Dependency, h: &Assignment) -> bool {
        match dep {
            Dependency::Tgd(tgd) => !exists_indexed_extension(&tgd.head, &self.index, h),
            Dependency::Egd(egd) => h.get(egd.left) != h.get(egd.right),
        }
    }

    /// Applies the chase step for `(dep, h)` natively on the engine's instance
    /// (Definition 1), updating the index, the delta worklist and the pending
    /// queues, and returns the effect. Unlike the naive path there is no full
    /// instance clone per step.
    pub fn apply_trigger(&mut self, dep_id: DepId, h: &Assignment) -> StepEffect {
        self.apply_trigger_inner(dep_id, h, None)
    }

    /// [`TriggerEngine::apply_trigger`] plus a [`StepLog`]: the step's body
    /// image, head ids and rewrite pairs at the [`FactId`] level, for support
    /// ledgers. The body image is resolved before the step runs (see
    /// [`StepLog`] for the EGD id-space caveat); the effect and every state
    /// change are identical to the unlogged call.
    pub fn apply_trigger_logged(&mut self, dep_id: DepId, h: &Assignment) -> (StepEffect, StepLog) {
        let mut log = StepLog::default();
        for atom in self.sigma.get(dep_id).body() {
            let fact = h.apply_atom(atom).expect("body variables are bound");
            let id = self
                .index
                .id_of(&fact)
                .expect("a trigger's body maps into the live instance");
            log.body.push(id);
        }
        let effect = self.apply_trigger_inner(dep_id, h, Some(&mut log));
        (effect, log)
    }

    fn apply_trigger_inner(
        &mut self,
        dep_id: DepId,
        h: &Assignment,
        mut log: Option<&mut StepLog>,
    ) -> StepEffect {
        match self.sigma.get(dep_id) {
            Dependency::Tgd(tgd) => {
                let mut extended = h.clone();
                let ex = tgd.existential_variables();
                let fresh_nulls = ex.len();
                for v in ex {
                    let n = self.index.fresh_null();
                    extended.bind(v, GroundTerm::Null(n));
                }
                let mut added = Vec::new();
                for atom in &tgd.head {
                    let fact = extended
                        .apply_atom(atom)
                        .expect("all head variables are bound after extension");
                    let (id, new) = self.index.insert_full(fact.clone());
                    self.record_insert(id, new);
                    if let Some(log) = log.as_deref_mut() {
                        log.heads.push(id);
                    }
                    if new {
                        added.push(fact);
                    }
                }
                StepEffect::AddedFacts {
                    facts: added,
                    fresh_nulls,
                }
            }
            Dependency::Egd(egd) => {
                let left = h.get(egd.left).expect("EGD body variables must be bound");
                let right = h.get(egd.right).expect("EGD body variables must be bound");
                if left == right {
                    return StepEffect::NotApplicable;
                }
                match (left, right) {
                    (GroundTerm::Const(_), GroundTerm::Const(_)) => StepEffect::Failure,
                    (GroundTerm::Null(n), other) | (other, GroundTerm::Null(n)) => {
                        let gamma = NullSubstitution::single(n, other);
                        let rewrites = self.apply_substitution(&gamma);
                        if let Some(log) = log {
                            log.rewrites = rewrites;
                        }
                        StepEffect::Substituted { gamma }
                    }
                }
            }
        }
    }

    /// Retracts facts by id: forgets every discovered assignment whose body
    /// image touches one of them, purges them from the delta worklist, then
    /// removes them from the instance and its indexes. Returns the number of
    /// facts actually removed (dead or unknown ids are skipped).
    ///
    /// Forgetting runs **before** removal, because the seeded joins that locate
    /// the affected assignments must still resolve through the departing facts.
    /// And it must drop the `seen` entries, not just the pending ones: a
    /// retracted fact that is later rederived or re-inserted comes back under
    /// its original id (the arena keeps the interning) and re-enters discovery
    /// as a fresh delta — a stale dedup entry would silently suppress its
    /// triggers forever.
    pub fn retract_ids(&mut self, ids: &[FactId]) -> usize {
        for &id in ids {
            if !self.index.instance().contains_id(id) {
                continue;
            }
            let predicate = self.index.store().predicate_of(id);
            for &(dep, seed_index) in self.seed_atoms.seeds_for(predicate) {
                let body = self.sigma.get(dep).body();
                let mut found: Vec<Assignment> = Vec::new();
                for_each_seeded_id::<()>(body, &self.index, seed_index, id, &mut |h| {
                    found.push(h.clone());
                    ControlFlow::Continue(())
                });
                for h in found {
                    if self.seen[dep.0].remove(&h.canonical()) {
                        self.pending[dep.0].retain(|p| p != &h);
                    }
                }
            }
        }
        let dead: HashSet<FactId> = ids.iter().copied().collect();
        self.deltas.retain(|id| !dead.contains(&id));
        let removed = self.index.remove_ids(ids);
        self.stats.facts_retracted += removed;
        removed
    }
}

fn rewrite_assignment(h: &Assignment, gamma: &NullSubstitution) -> Assignment {
    Assignment::from_pairs(h.iter().map(|(v, t)| (v, gamma.apply_ground(t))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::parser::parse_program;
    use chase_core::term::{Constant, NullValue};

    fn gc(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }

    fn sigma1() -> (DependencySet, Instance) {
        let p = parse_program(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> ?x = ?y.
            N(a).
            "#,
        )
        .unwrap();
        (p.dependencies, p.database)
    }

    /// Disjoint read/write partitions batch together: the conflict-free prefix
    /// spans both chains, so one `next_active_batch` call returns both
    /// triggers — and in the exact order the sequential pop would produce.
    #[test]
    fn disjoint_partitions_batch_and_match_the_sequential_pop_order() {
        let p = parse_program(
            r#"
            a1: A(?x) -> P(?x).
            x1: X(?x) -> Q(?x).
            A(a). X(b).
            "#,
        )
        .unwrap();
        let order: Vec<DepId> = p.dependencies.ids().collect();
        let schedule = ConflictSchedule::new(&p.dependencies, &order);

        let mut sequential = TriggerEngine::with_database(&p.dependencies, &p.database);
        let mut expected = Vec::new();
        while let Some(t) = sequential.next_active_trigger(&order) {
            sequential.apply_trigger(t.dep, &t.assignment);
            expected.push(t);
        }
        assert_eq!(expected.len(), 2);

        let mut batched = TriggerEngine::with_database(&p.dependencies, &p.database);
        let batch = batched.next_active_batch(&order, &schedule, 4);
        assert_eq!(batch, expected, "one batch covers both partitions");
        for t in &batch {
            batched.apply_trigger(t.dep, &t.assignment);
            batched.drain_deltas_parallel(4);
        }
        assert!(batched.next_active_batch(&order, &schedule, 4).is_empty());
        assert_eq!(batched.instance(), sequential.instance());
    }

    /// A self-recursive rule (writes ∩ reads ≠ ∅) must serialize: each batch
    /// carries exactly one trigger, because a fired head can deactivate (or
    /// re-order) a sibling of the same dependency.
    #[test]
    fn conflicting_triggers_serialize_to_singleton_batches() {
        let p = parse_program(
            r#"
            t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z).
            E(a, b). E(b, c). E(c, d).
            "#,
        )
        .unwrap();
        let order: Vec<DepId> = p.dependencies.ids().collect();
        let schedule = ConflictSchedule::new(&p.dependencies, &order);
        let mut engine = TriggerEngine::with_database(&p.dependencies, &p.database);
        let mut steps = 0usize;
        loop {
            let batch = engine.next_active_batch(&order, &schedule, 4);
            if batch.is_empty() {
                break;
            }
            assert_eq!(batch.len(), 1, "same-dep triggers must not share a batch");
            for t in batch {
                engine.apply_trigger(t.dep, &t.assignment);
                engine.drain_deltas_parallel(4);
            }
            steps += 1;
        }
        // Closure of a 4-chain adds 3 edges: 3 + 2 + 1 = 6 total.
        assert_eq!(engine.instance().len(), 6);
        assert_eq!(steps, 3);
    }

    /// `next_active_batch` drops inactive prefix members exactly like the
    /// sequential pop (counted, in order) and keeps searching past an
    /// all-inactive prefix instead of reporting quiescence.
    #[test]
    fn batch_drops_inactive_triggers_and_retries() {
        let p = parse_program(
            r#"
            r: A(?x) -> exists ?y: R(?x, ?y).
            A(a). A(b).
            "#,
        )
        .unwrap();
        let order: Vec<DepId> = p.dependencies.ids().collect();
        let schedule = ConflictSchedule::new(&p.dependencies, &order);
        let mut engine = TriggerEngine::with_database(&p.dependencies, &p.database);
        // First batch: same-dep triggers serialize, so it is [r @ a].
        let first = engine.next_active_batch(&order, &schedule, 2);
        assert_eq!(first.len(), 1);
        engine.apply_trigger(first[0].dep, &first[0].assignment);
        engine.drain_deltas_parallel(2);
        // Second batch: [r @ b], still active (R(b, ·) is not witnessed).
        let second = engine.next_active_batch(&order, &schedule, 2);
        assert_eq!(second.len(), 1);
        engine.apply_trigger(second[0].dep, &second[0].assignment);
        engine.drain_deltas_parallel(2);
        let dropped_before = engine.stats().triggers_dropped;
        assert!(engine.next_active_batch(&order, &schedule, 2).is_empty());
        assert_eq!(
            engine.stats().triggers_dropped,
            dropped_before,
            "no further pending triggers existed to drop"
        );
        assert!(engine.is_quiescent());
    }

    #[test]
    fn initial_database_seeds_triggers() {
        let (sigma, db) = sigma1();
        let order: Vec<DepId> = sigma.ids().collect();
        let mut engine = TriggerEngine::with_database(&sigma, &db);
        let t = engine.next_active_trigger(&order).unwrap();
        // Only r1 is active on {N(a)}.
        assert_eq!(t.dep, DepId(0));
        assert_eq!(t.assignment.get(Variable::new("x")), Some(gc("a")));
    }

    #[test]
    fn applying_a_tgd_discovers_downstream_triggers() {
        let (sigma, db) = sigma1();
        let order: Vec<DepId> = sigma.ids().collect();
        let mut engine = TriggerEngine::with_database(&sigma, &db);
        let t = engine.next_active_trigger(&order).unwrap();
        let effect = engine.apply_trigger(t.dep, &t.assignment);
        match effect {
            StepEffect::AddedFacts { facts, fresh_nulls } => {
                assert_eq!(facts.len(), 1);
                assert_eq!(fresh_nulls, 1);
            }
            other => panic!("expected AddedFacts, got {other:?}"),
        }
        // Now r2 (textual order) is active through the new E fact.
        let t2 = engine.next_active_trigger(&order).unwrap();
        assert_eq!(t2.dep, DepId(1));
    }

    #[test]
    fn egd_priority_reproduces_example_1() {
        let (sigma, db) = sigma1();
        // EGDs first: r3, then r1, r2.
        let order = vec![DepId(2), DepId(0), DepId(1)];
        let mut engine = TriggerEngine::with_database(&sigma, &db);
        let mut steps = Vec::new();
        while let Some(t) = engine.next_active_trigger(&order) {
            steps.push(t.dep);
            let effect = engine.apply_trigger(t.dep, &t.assignment);
            assert_ne!(effect, StepEffect::Failure, "Σ1 on {{N(a)}} must not fail");
            assert!(steps.len() < 10, "diverged");
        }
        assert_eq!(steps, vec![DepId(0), DepId(2)]);
        let j = engine.into_instance();
        assert_eq!(j.len(), 2);
        assert!(j.contains(&Fact::from_parts("N", vec![gc("a")])));
        assert!(j.contains(&Fact::from_parts("E", vec![gc("a"), gc("a")])));
    }

    #[test]
    fn substitution_rewrites_pending_triggers() {
        let (sigma, _) = sigma1();
        let mut engine = TriggerEngine::new(&sigma);
        engine.push_facts(vec![
            Fact::from_parts("N", vec![gc("a")]),
            Fact::from_parts("E", vec![gc("a"), GroundTerm::Null(NullValue(7))]),
        ]);
        engine.drain_deltas();
        // γ = {η7/a}: the pending r2 trigger must now bind y to a — making it
        // inactive, since N(a) already holds.
        engine.apply_substitution(&NullSubstitution::single(NullValue(7), gc("a")));
        let order: Vec<DepId> = sigma.ids().collect();
        let t = engine.next_active_trigger(&order);
        // r1 is satisfied (E(a,a) witnesses), r2 is satisfied (N(a)), r3 is
        // satisfied (x = y = a): nothing is active.
        assert!(t.is_none(), "got {t:?}");
        assert_eq!(engine.instance().len(), 2);
    }

    #[test]
    fn substitution_can_create_triggers() {
        // Body E(x, x) matches only after the two nulls collapse.
        let p = parse_program("r: E(?x, ?x) -> Loop(?x).").unwrap();
        let mut engine = TriggerEngine::new(&p.dependencies);
        engine.push_facts(vec![Fact::from_parts(
            "E",
            vec![
                GroundTerm::Null(NullValue(1)),
                GroundTerm::Null(NullValue(2)),
            ],
        )]);
        let order: Vec<DepId> = p.dependencies.ids().collect();
        assert!(engine.next_active_trigger(&order).is_none());
        engine.apply_substitution(&NullSubstitution::single(
            NullValue(1),
            GroundTerm::Null(NullValue(2)),
        ));
        let t = engine
            .next_active_trigger(&order)
            .expect("collapsed fact must trigger the rule");
        assert_eq!(
            t.assignment.get(Variable::new("x")),
            Some(GroundTerm::Null(NullValue(2)))
        );
    }

    #[test]
    fn substitution_before_drain_rewrites_queued_deltas() {
        // Push a fact mentioning η1, substitute η1 away *before* discovery runs:
        // the derived fact must use the rewritten term, never the dead null.
        let p = parse_program("r: E(?x, ?y) -> N(?y).").unwrap();
        let mut engine = TriggerEngine::new(&p.dependencies);
        engine.push_facts(vec![Fact::from_parts(
            "E",
            vec![gc("a"), GroundTerm::Null(NullValue(1))],
        )]);
        engine.apply_substitution(&NullSubstitution::single(NullValue(1), gc("b")));
        let order: Vec<DepId> = p.dependencies.ids().collect();
        let t = engine.next_active_trigger(&order).unwrap();
        let effect = engine.apply_trigger(t.dep, &t.assignment);
        match effect {
            StepEffect::AddedFacts { facts, .. } => {
                assert_eq!(facts, vec![Fact::from_parts("N", vec![gc("b")])]);
            }
            other => panic!("expected AddedFacts, got {other:?}"),
        }
        assert!(engine.instance().nulls().is_empty());
    }

    #[test]
    fn database_seeding_is_deterministic() {
        let p = parse_program(
            r#"
            t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z).
            E(a, b). E(b, c). E(c, d). E(d, e). E(e, f).
            "#,
        )
        .unwrap();
        let order: Vec<DepId> = p.dependencies.ids().collect();
        let run = || {
            let mut engine = TriggerEngine::with_database(&p.dependencies, &p.database);
            let mut picked = Vec::new();
            while let Some(t) = engine.next_active_trigger(&order) {
                picked.push(t.assignment.canonical());
                engine.apply_trigger(t.dep, &t.assignment);
                assert!(picked.len() < 100, "diverged");
            }
            picked
        };
        assert_eq!(run(), run(), "trigger order must not depend on hash state");
    }

    #[test]
    fn failing_egd_is_reported() {
        let p = parse_program(
            r#"
            k: P(?x, ?y), P(?x, ?z) -> ?y = ?z.
            P(a, b). P(a, c).
            "#,
        )
        .unwrap();
        let order: Vec<DepId> = p.dependencies.ids().collect();
        let mut engine = TriggerEngine::with_database(&p.dependencies, &p.database);
        let t = engine.next_active_trigger(&order).unwrap();
        let effect = engine.apply_trigger(t.dep, &t.assignment);
        assert_eq!(effect, StepEffect::Failure);
    }

    #[test]
    fn next_trigger_where_skips_rejected_keys() {
        let p = parse_program("r: E(?x, ?y) -> exists ?z: E(?x, ?z). E(a, b).").unwrap();
        let order: Vec<DepId> = p.dependencies.ids().collect();
        let mut engine = TriggerEngine::with_database(&p.dependencies, &p.database);
        // Accept everything: the initial fact yields exactly one candidate.
        let t = engine
            .next_trigger_where(&order, |_, _| true)
            .expect("one candidate");
        assert_eq!(t.assignment.get(Variable::new("x")), Some(gc("a")));
        // Reject everything afterwards: no candidate survives.
        assert!(engine.next_trigger_where(&order, |_, _| false).is_none());
    }

    #[test]
    fn duplicate_discovery_is_suppressed() {
        // Both body atoms match the same delta fact: the join must be discovered
        // once, not twice.
        let p = parse_program("t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z). E(a, a).").unwrap();
        let mut engine = TriggerEngine::with_database(&p.dependencies, &p.database);
        engine.drain_deltas();
        assert_eq!(engine.stats().triggers_discovered, 1);
    }

    #[test]
    fn tgd_activity_checks_route_through_the_maintained_index() {
        // The standard-activity test for a TGD head must consult the engine's
        // per-(predicate, position) indexes, not a scan: the probe counter of the
        // maintained `IndexedInstance` has to advance across the check.
        let (sigma, db) = sigma1();
        let mut engine = TriggerEngine::with_database(&sigma, &db);
        engine.drain_deltas();
        let h = Assignment::from_pairs([(Variable::new("x"), gc("a"))]);
        let before = engine.fact_index().indexed().probe_count();
        // r1 is a TGD with head E(x, y): activity extends h over the head.
        let active = engine.is_standard_active(sigma.get(DepId(0)), &h);
        assert!(active, "no E(a, _) fact exists yet, the trigger is active");
        let after = engine.fact_index().indexed().probe_count();
        assert!(
            after > before,
            "TGD-activity check did not touch the position index ({before} -> {after})"
        );
    }

    #[test]
    fn parallel_drain_is_identical_to_sequential_drain() {
        // A closure chase driven once with sequential drains and once with
        // parallel drains at several worker counts must make bit-identical
        // decisions: same triggers in the same order, same engine stats, same
        // final instance. (This is the determinism contract of
        // `drain_deltas_parallel`: merging in batch order reconstructs the
        // sequential discovery order exactly.)
        let p = parse_program(
            r#"
            t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z).
            s: E(?x, ?y) -> N(?y).
            "#,
        )
        .unwrap();
        let db = Instance::from_facts((0..24).map(|i| {
            Fact::from_parts("E", vec![gc(&format!("v{i}")), gc(&format!("v{}", i + 1))])
        }));
        let order: Vec<DepId> = p.dependencies.ids().collect();
        let run = |workers: usize| {
            let mut engine = TriggerEngine::with_database(&p.dependencies, &db);
            let mut picked = Vec::new();
            while let Some(t) = engine.next_active_trigger_parallel(&order, workers) {
                picked.push((t.dep, t.assignment.canonical()));
                engine.apply_trigger(t.dep, &t.assignment);
                assert!(picked.len() < 5_000, "diverged");
            }
            let stats = engine.stats().clone();
            (picked, stats, engine.into_instance())
        };
        let baseline = run(1);
        for workers in [2, 4, 8] {
            let parallel = run(workers);
            assert_eq!(baseline.0, parallel.0, "trigger sequence at {workers}");
            assert_eq!(baseline.1, parallel.1, "engine stats at {workers}");
            assert_eq!(baseline.2, parallel.2, "final instance at {workers}");
        }
    }

    #[test]
    fn parallel_drain_of_an_empty_worklist_is_a_noop() {
        // Satellite: a zero-length batch must not touch discovery at any worker
        // count — no deltas processed, no snapshot sharding, no candidates.
        let (sigma, db) = sigma1();
        let mut engine = TriggerEngine::with_database(&sigma, &db);
        engine.drain_deltas();
        let stats = engine.stats().clone();
        for workers in [1, 2, 4, 8] {
            engine.drain_deltas_parallel(workers);
            assert_eq!(engine.stats(), &stats, "at {workers} workers");
        }
    }

    #[test]
    fn logged_tgd_step_records_body_and_all_heads() {
        let p = parse_program(
            r#"
            t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z), N(?x).
            E(a, b). E(b, c). N(a).
            "#,
        )
        .unwrap();
        let order: Vec<DepId> = p.dependencies.ids().collect();
        let mut engine = TriggerEngine::with_database(&p.dependencies, &p.database);
        let t = engine.next_active_trigger(&order).unwrap();
        let (effect, log) = engine.apply_trigger_logged(t.dep, &t.assignment);
        let id = |pred: &str, a: &str, b: &str| {
            engine
                .fact_index()
                .id_of(&Fact::from_parts(pred, vec![gc(a), gc(b)]))
                .unwrap()
        };
        assert_eq!(log.body, vec![id("E", "a", "b"), id("E", "b", "c")]);
        // Both heads are logged — E(a, c) is new, N(a) already existed.
        let n_a = engine
            .fact_index()
            .id_of(&Fact::from_parts("N", vec![gc("a")]))
            .unwrap();
        assert_eq!(log.heads, vec![id("E", "a", "c"), n_a]);
        assert!(log.rewrites.is_empty());
        match effect {
            StepEffect::AddedFacts { facts, .. } => {
                assert_eq!(facts, vec![Fact::from_parts("E", vec![gc("a"), gc("c")])]);
            }
            other => panic!("expected AddedFacts, got {other:?}"),
        }
    }

    #[test]
    fn logged_egd_step_records_prerewrite_body_and_the_rewrites() {
        let p = parse_program(
            r#"
            k: P(?x, ?y), P(?x, ?z) -> ?y = ?z.
            "#,
        )
        .unwrap();
        let order: Vec<DepId> = p.dependencies.ids().collect();
        let mut engine = TriggerEngine::new(&p.dependencies);
        let (null_fact_id, _) = engine.push_fact_full(Fact::from_parts(
            "P",
            vec![gc("a"), GroundTerm::Null(NullValue(1))],
        ));
        let (ground_id, _) = engine.push_fact_full(Fact::from_parts("P", vec![gc("a"), gc("b")]));
        let t = engine
            .next_trigger_where(&order, |_, h| {
                h.get(Variable::new("y")) != h.get(Variable::new("z"))
            })
            .unwrap();
        let (effect, log) = engine.apply_trigger_logged(t.dep, &t.assignment);
        assert!(matches!(effect, StepEffect::Substituted { .. }));
        // The body image is in pre-rewrite id space; the rewrite pairs map the
        // collapsed fact onto its ground image.
        assert_eq!(log.body.len(), 2);
        assert!(log.body.contains(&null_fact_id));
        assert!(log.body.contains(&ground_id));
        assert_eq!(log.rewrites, vec![(null_fact_id, ground_id)]);
        assert!(log.heads.is_empty());
    }

    #[test]
    fn retract_forgets_seen_so_rederivation_can_refire() {
        // Derive N(b) from E(a, b), retract E(a, b), push it back: the trigger
        // must be discovered and applicable again — a stale `seen` entry would
        // suppress it forever.
        let p = parse_program("r: E(?x, ?y) -> N(?y). E(a, b).").unwrap();
        let order: Vec<DepId> = p.dependencies.ids().collect();
        let mut engine = TriggerEngine::with_database(&p.dependencies, &p.database);
        let t = engine.next_trigger_where(&order, |_, _| true).unwrap();
        engine.apply_trigger(t.dep, &t.assignment);
        assert!(engine.next_trigger_where(&order, |_, _| true).is_none());
        let e_ab = engine
            .fact_index()
            .id_of(&Fact::from_parts("E", vec![gc("a"), gc("b")]))
            .unwrap();
        assert_eq!(engine.retract_ids(&[e_ab]), 1);
        assert_eq!(engine.stats().facts_retracted, 1);
        assert_eq!(engine.instance().len(), 1, "N(b) survives, E(a, b) is gone");
        // Re-insert: same id, and the trigger fires again.
        let (again, new) = engine.push_fact_full(Fact::from_parts("E", vec![gc("a"), gc("b")]));
        assert!(new);
        assert_eq!(again, e_ab);
        let t = engine
            .next_trigger_where(&order, |_, _| true)
            .expect("the forgotten trigger must be rediscovered");
        assert_eq!(t.dep, DepId(0));
    }

    #[test]
    fn retract_purges_pending_and_queued_deltas() {
        // Retract a fact whose trigger is still pending and whose id is still
        // in the delta worklist: neither may survive.
        let p = parse_program("r: E(?x, ?y) -> N(?y).").unwrap();
        let order: Vec<DepId> = p.dependencies.ids().collect();
        let mut engine = TriggerEngine::new(&p.dependencies);
        let (id, _) = engine.push_fact_full(Fact::from_parts("E", vec![gc("a"), gc("b")]));
        // Drain: discovery has run, the r-trigger is pending.
        engine.drain_deltas();
        assert_eq!(engine.pending_len(), 1);
        // Push a second copy path: enqueue the id again via retraction of a
        // still-queued fact — first check the queued-delta purge.
        let (id2, _) = engine.push_fact_full(Fact::from_parts("E", vec![gc("c"), gc("d")]));
        assert_eq!(engine.retract_ids(&[id, id2]), 2);
        assert!(engine.is_quiescent(), "no pending trigger, no queued delta");
        assert!(
            engine.next_trigger_where(&order, |_, _| true).is_none(),
            "retracted facts must not fire triggers"
        );
        assert!(engine.instance().is_empty());
    }

    #[test]
    fn retracting_a_dead_or_unknown_id_is_a_noop() {
        let p = parse_program("r: E(?x, ?y) -> N(?y). E(a, b).").unwrap();
        let mut engine = TriggerEngine::with_database(&p.dependencies, &p.database);
        let e_ab = engine
            .fact_index()
            .id_of(&Fact::from_parts("E", vec![gc("a"), gc("b")]))
            .unwrap();
        assert_eq!(engine.retract_ids(&[e_ab, e_ab]), 1, "duplicates collapse");
        assert_eq!(engine.retract_ids(&[e_ab]), 0, "already dead");
        assert_eq!(engine.stats().facts_retracted, 1);
    }

    #[test]
    fn transitive_closure_via_engine() {
        let p = parse_program(
            r#"
            t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z).
            E(a, b). E(b, c). E(c, d).
            "#,
        )
        .unwrap();
        let order: Vec<DepId> = p.dependencies.ids().collect();
        let mut engine = TriggerEngine::with_database(&p.dependencies, &p.database);
        let mut steps = 0;
        while let Some(t) = engine.next_active_trigger(&order) {
            engine.apply_trigger(t.dep, &t.assignment);
            steps += 1;
            assert!(steps < 100, "diverged");
        }
        // Closure of a 4-chain has 6 edges.
        assert_eq!(engine.instance().len(), 6);
    }
}
