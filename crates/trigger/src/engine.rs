//! The delta-driven trigger engine.
//!
//! [`TriggerEngine`] replaces per-step full re-scans of the instance with
//! incremental trigger discovery:
//!
//! * when facts are added ([`TriggerEngine::push_facts`]) or rewritten by an EGD
//!   substitution ([`TriggerEngine::apply_substitution`]), homomorphism search is
//!   seeded *only* from body atoms unifiable with the delta (semi-naive
//!   evaluation);
//! * discovered candidate triggers wait in per-dependency FIFO queues;
//!   [`TriggerEngine::next_active_trigger`] pops them in the caller's dependency
//!   order, re-checking standard activity at pop time, so every trigger-selection
//!   policy (`StepOrder`-style nondeterminism) behaves exactly as with naive
//!   re-scanning;
//! * EGD substitutions rewrite the pending queues and the dedup set in place
//!   (`h ↦ γ∘h`), invalidating stale bindings without discarding discovered work.
//!
//! Dropping a trigger that is found inactive is sound for the standard chase:
//! instances only grow or get substituted, both of which preserve TGD head
//! witnesses (as `γ∘h'`) and EGD equalities, so an inactive trigger can never
//! become active again.

use crate::delta::DeltaQueue;
use crate::index::FactIndex;
use crate::parallel::{discover_batch, SeedAtoms};
use crate::search::{exists_indexed_extension, for_each_seeded_id};
use chase_core::substitution::NullSubstitution;
use chase_core::{
    Assignment, DepId, Dependency, DependencySet, Fact, FactId, GroundTerm, Instance, Snapshot,
    Variable,
};
use std::collections::{HashSet, VecDeque};
use std::ops::ControlFlow;

/// A trigger: a dependency together with a homomorphism from its body into the
/// current instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trigger {
    /// The dependency being enforced.
    pub dep: DepId,
    /// The homomorphism from the dependency's body into the instance.
    pub assignment: Assignment,
}

/// The effect of applying a chase step `K --r,h,γ--> J` (Definition 1 of the paper).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepEffect {
    /// A TGD step: the listed facts were added (`J = K ∪ h'(ψ)`), with `γ = ∅`.
    /// The facts may already be present in `K` for oblivious-style applications.
    AddedFacts {
        /// Facts added by the step.
        facts: Vec<Fact>,
        /// Number of fresh nulls invented for the existential variables.
        fresh_nulls: usize,
    },
    /// An EGD step that replaced a labeled null: `J = K γ`.
    Substituted {
        /// The substitution `γ` (maps a null to a constant or another null).
        gamma: NullSubstitution,
    },
    /// An EGD step on two distinct constants: `J = ⊥`.
    Failure,
    /// The EGD is already satisfied under the homomorphism (`h(x1) = h(x2)`), so no
    /// chase step exists for this trigger.
    NotApplicable,
}

/// Counters describing the engine's work (for benchmarks and diagnostics).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Facts inserted into the index (new facts only).
    pub facts_inserted: usize,
    /// Delta facts drained through seeded discovery.
    pub deltas_processed: usize,
    /// Candidate triggers discovered (after dedup).
    pub triggers_discovered: usize,
    /// Triggers dropped because they were no longer active at pop time.
    pub triggers_dropped: usize,
    /// EGD substitutions applied to the engine state.
    pub substitutions: usize,
}

/// Delta-driven incremental trigger discovery over an owned, indexed instance.
#[derive(Clone)]
pub struct TriggerEngine<'a> {
    sigma: &'a DependencySet,
    index: FactIndex,
    deltas: DeltaQueue,
    /// For each predicate, the body-atom positions that can unify with a fact of
    /// that predicate: `(dependency, body atom index)`. Built once so that a delta
    /// fact visits only the matching seed atoms instead of scanning all of `Σ`.
    seed_atoms: SeedAtoms,
    /// Per-dependency FIFO of discovered candidate triggers.
    pending: Vec<VecDeque<Assignment>>,
    /// Per-dependency set of every assignment ever discovered (canonical form),
    /// rewritten in lockstep with EGD substitutions.
    seen: Vec<HashSet<Vec<(Variable, GroundTerm)>>>,
    stats: EngineStats,
}

impl<'a> TriggerEngine<'a> {
    /// Creates an engine for `sigma` over an empty instance.
    pub fn new(sigma: &'a DependencySet) -> Self {
        TriggerEngine {
            sigma,
            index: FactIndex::new(),
            deltas: DeltaQueue::new(),
            seed_atoms: SeedAtoms::new(sigma),
            pending: vec![VecDeque::new(); sigma.len()],
            seen: vec![HashSet::new(); sigma.len()],
            stats: EngineStats::default(),
        }
    }

    /// Creates an engine and loads the database (every database fact is a delta).
    ///
    /// Facts are seeded in sorted order so that discovery — and hence the chase
    /// sequence built on it — is reproducible across process runs (the database's
    /// own fact set iterates in hash order). The facts are re-interned into the
    /// engine's own arena directly from the database's term slices; no `Fact`
    /// values are materialised.
    pub fn with_database(sigma: &'a DependencySet, database: &Instance) -> Self {
        let mut engine = TriggerEngine::new(sigma);
        for id in engine.index.insert_database(database) {
            engine.record_insert(id, true);
        }
        engine
    }

    /// The current instance.
    pub fn instance(&self) -> &Instance {
        self.index.instance()
    }

    /// The engine's indexed fact storage (read-only; exposes index diagnostics such
    /// as [`chase_core::IndexedInstance::probe_count`]).
    pub fn fact_index(&self) -> &FactIndex {
        &self.index
    }

    /// Consumes the engine, returning the final instance.
    pub fn into_instance(self) -> Instance {
        self.index.into_instance()
    }

    /// The engine's work counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Adds facts to the instance. New facts become deltas; duplicates are ignored.
    pub fn push_facts<I: IntoIterator<Item = Fact>>(&mut self, facts: I) {
        for fact in facts {
            self.insert_fact(fact);
        }
    }

    fn insert_fact(&mut self, fact: Fact) -> bool {
        let (id, new) = self.index.insert_full(fact);
        self.record_insert(id, new)
    }

    fn record_insert(&mut self, id: FactId, new: bool) -> bool {
        if new {
            self.stats.facts_inserted += 1;
            self.deltas.push(id);
        }
        new
    }

    /// Applies an EGD substitution `γ`: rewrites the instance in place, rewrites
    /// every pending trigger and dedup key (`h ↦ γ∘h`), and re-seeds discovery
    /// from the rewritten facts (substitution can *create* triggers, e.g. a body
    /// atom `E(x, x)` matching a fact only after two nulls collapse).
    pub fn apply_substitution(&mut self, gamma: &NullSubstitution) {
        if gamma.is_empty() {
            return;
        }
        self.stats.substitutions += 1;
        let delta = self.index.substitute(gamma);
        // Facts still waiting in the worklist must be rewritten too: they were
        // enqueued as members of `K` and only their images exist in `K γ`. The id
        // delta maps each rewritten fact's old id onto its image's id.
        self.deltas.apply_rewrites(&delta);
        for queue in &mut self.pending {
            for h in queue.iter_mut() {
                *h = rewrite_assignment(h, gamma);
            }
        }
        for set in &mut self.seen {
            *set = set
                .drain()
                .map(|mut key| {
                    for (_, t) in key.iter_mut() {
                        *t = gamma.apply_ground(*t);
                    }
                    key
                })
                .collect();
        }
        for (_, new) in delta {
            self.deltas.push(new);
        }
    }

    /// Drains the delta worklist, seeding homomorphism search from every (body
    /// atom, delta fact) pair and queueing each newly discovered assignment. The
    /// `seed_atoms` map keyed by predicate means a delta fact visits only the body
    /// atoms it can actually unify with, not all of `Σ`.
    pub fn drain_deltas(&mut self) {
        while let Some(fact_id) = self.deltas.pop() {
            self.stats.deltas_processed += 1;
            let predicate = self.index.store().predicate_of(fact_id);
            for &(id, seed_index) in self.seed_atoms.seeds_for(predicate) {
                let body = self.sigma.get(id).body();
                // Borrow dance: collect first, then dedup against `seen`.
                let mut found: Vec<Assignment> = Vec::new();
                for_each_seeded_id::<()>(body, &self.index, seed_index, fact_id, &mut |h| {
                    found.push(h.clone());
                    ControlFlow::Continue(())
                });
                for h in found {
                    if self.seen[id.0].insert(h.canonical()) {
                        self.stats.triggers_discovered += 1;
                        self.pending[id.0].push_back(h);
                    }
                }
            }
        }
    }

    /// Drains the delta worklist like [`TriggerEngine::drain_deltas`], but shards
    /// the waiting batch across up to `workers` scoped threads
    /// ([`crate::parallel::discover_batch`]). The per-worker results are merged
    /// back in batch order, and deduped against `seen` in that order, so the
    /// pending queues end up **identical** to a sequential drain at any worker
    /// count — parallelism here changes wall-clock time, never behaviour.
    pub fn drain_deltas_parallel(&mut self, workers: usize) {
        if workers <= 1 {
            return self.drain_deltas();
        }
        let batch = self.deltas.take_batch();
        if batch.is_empty() {
            return;
        }
        self.stats.deltas_processed += batch.len();
        let found = {
            let snapshot = Snapshot::new(self.index.indexed());
            discover_batch(self.sigma, &self.seed_atoms, snapshot, &batch, workers)
        };
        for t in found {
            if self.seen[t.dep.0].insert(t.assignment.canonical()) {
                self.stats.triggers_discovered += 1;
                self.pending[t.dep.0].push_back(t.assignment);
            }
        }
    }

    /// Pops the first *standard-active* trigger, trying the dependencies in the
    /// order given (the trigger-selection policy). Triggers that are no longer
    /// active are dropped permanently — see the module docs for why that is sound.
    pub fn next_active_trigger(&mut self, order: &[DepId]) -> Option<Trigger> {
        self.drain_deltas();
        self.pop_active(order)
    }

    /// [`TriggerEngine::next_active_trigger`] with a parallel delta drain: the
    /// discovery joins run on up to `workers` threads, the pop is unchanged.
    /// Returns exactly what the sequential method would (see
    /// [`TriggerEngine::drain_deltas_parallel`]).
    pub fn next_active_trigger_parallel(
        &mut self,
        order: &[DepId],
        workers: usize,
    ) -> Option<Trigger> {
        self.drain_deltas_parallel(workers);
        self.pop_active(order)
    }

    fn pop_active(&mut self, order: &[DepId]) -> Option<Trigger> {
        for &id in order {
            let dep = self.sigma.get(id);
            while let Some(h) = self.pending[id.0].pop_front() {
                if self.is_standard_active(dep, &h) {
                    return Some(Trigger {
                        dep: id,
                        assignment: h,
                    });
                }
                self.stats.triggers_dropped += 1;
            }
        }
        None
    }

    /// Pops the first discovered trigger accepted by `accept`, trying the
    /// dependencies in the given order. Rejected triggers are dropped permanently;
    /// no activity check is performed. This is the entry point for oblivious-style
    /// consumers (fired-key dedup) and saturation procedures (accept everything).
    pub fn next_trigger_where(
        &mut self,
        order: &[DepId],
        mut accept: impl FnMut(DepId, &Assignment) -> bool,
    ) -> Option<Trigger> {
        self.drain_deltas();
        for &id in order {
            while let Some(h) = self.pending[id.0].pop_front() {
                if accept(id, &h) {
                    return Some(Trigger {
                        dep: id,
                        assignment: h,
                    });
                }
                self.stats.triggers_dropped += 1;
            }
        }
        None
    }

    /// Returns `true` iff `(dep, h)` is active in the standard-chase sense: for a
    /// TGD, `h` does not extend to a homomorphism of the head into the instance;
    /// for an EGD, `h` maps the equated variables to distinct terms.
    pub fn is_standard_active(&self, dep: &Dependency, h: &Assignment) -> bool {
        match dep {
            Dependency::Tgd(tgd) => !exists_indexed_extension(&tgd.head, &self.index, h),
            Dependency::Egd(egd) => h.get(egd.left) != h.get(egd.right),
        }
    }

    /// Applies the chase step for `(dep, h)` natively on the engine's instance
    /// (Definition 1), updating the index, the delta worklist and the pending
    /// queues, and returns the effect. Unlike the naive path there is no full
    /// instance clone per step.
    pub fn apply_trigger(&mut self, dep_id: DepId, h: &Assignment) -> StepEffect {
        match self.sigma.get(dep_id) {
            Dependency::Tgd(tgd) => {
                let mut extended = h.clone();
                let ex = tgd.existential_variables();
                let fresh_nulls = ex.len();
                for v in ex {
                    let n = self.index.fresh_null();
                    extended.bind(v, GroundTerm::Null(n));
                }
                let mut added = Vec::new();
                for atom in &tgd.head {
                    let fact = extended
                        .apply_atom(atom)
                        .expect("all head variables are bound after extension");
                    if self.insert_fact(fact.clone()) {
                        added.push(fact);
                    }
                }
                StepEffect::AddedFacts {
                    facts: added,
                    fresh_nulls,
                }
            }
            Dependency::Egd(egd) => {
                let left = h.get(egd.left).expect("EGD body variables must be bound");
                let right = h.get(egd.right).expect("EGD body variables must be bound");
                if left == right {
                    return StepEffect::NotApplicable;
                }
                match (left, right) {
                    (GroundTerm::Const(_), GroundTerm::Const(_)) => StepEffect::Failure,
                    (GroundTerm::Null(n), other) | (other, GroundTerm::Null(n)) => {
                        let gamma = NullSubstitution::single(n, other);
                        self.apply_substitution(&gamma);
                        StepEffect::Substituted { gamma }
                    }
                }
            }
        }
    }
}

fn rewrite_assignment(h: &Assignment, gamma: &NullSubstitution) -> Assignment {
    Assignment::from_pairs(h.iter().map(|(v, t)| (v, gamma.apply_ground(t))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::parser::parse_program;
    use chase_core::term::{Constant, NullValue};

    fn gc(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }

    fn sigma1() -> (DependencySet, Instance) {
        let p = parse_program(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> ?x = ?y.
            N(a).
            "#,
        )
        .unwrap();
        (p.dependencies, p.database)
    }

    #[test]
    fn initial_database_seeds_triggers() {
        let (sigma, db) = sigma1();
        let order: Vec<DepId> = sigma.ids().collect();
        let mut engine = TriggerEngine::with_database(&sigma, &db);
        let t = engine.next_active_trigger(&order).unwrap();
        // Only r1 is active on {N(a)}.
        assert_eq!(t.dep, DepId(0));
        assert_eq!(t.assignment.get(Variable::new("x")), Some(gc("a")));
    }

    #[test]
    fn applying_a_tgd_discovers_downstream_triggers() {
        let (sigma, db) = sigma1();
        let order: Vec<DepId> = sigma.ids().collect();
        let mut engine = TriggerEngine::with_database(&sigma, &db);
        let t = engine.next_active_trigger(&order).unwrap();
        let effect = engine.apply_trigger(t.dep, &t.assignment);
        match effect {
            StepEffect::AddedFacts { facts, fresh_nulls } => {
                assert_eq!(facts.len(), 1);
                assert_eq!(fresh_nulls, 1);
            }
            other => panic!("expected AddedFacts, got {other:?}"),
        }
        // Now r2 (textual order) is active through the new E fact.
        let t2 = engine.next_active_trigger(&order).unwrap();
        assert_eq!(t2.dep, DepId(1));
    }

    #[test]
    fn egd_priority_reproduces_example_1() {
        let (sigma, db) = sigma1();
        // EGDs first: r3, then r1, r2.
        let order = vec![DepId(2), DepId(0), DepId(1)];
        let mut engine = TriggerEngine::with_database(&sigma, &db);
        let mut steps = Vec::new();
        while let Some(t) = engine.next_active_trigger(&order) {
            steps.push(t.dep);
            let effect = engine.apply_trigger(t.dep, &t.assignment);
            assert_ne!(effect, StepEffect::Failure, "Σ1 on {{N(a)}} must not fail");
            assert!(steps.len() < 10, "diverged");
        }
        assert_eq!(steps, vec![DepId(0), DepId(2)]);
        let j = engine.into_instance();
        assert_eq!(j.len(), 2);
        assert!(j.contains(&Fact::from_parts("N", vec![gc("a")])));
        assert!(j.contains(&Fact::from_parts("E", vec![gc("a"), gc("a")])));
    }

    #[test]
    fn substitution_rewrites_pending_triggers() {
        let (sigma, _) = sigma1();
        let mut engine = TriggerEngine::new(&sigma);
        engine.push_facts(vec![
            Fact::from_parts("N", vec![gc("a")]),
            Fact::from_parts("E", vec![gc("a"), GroundTerm::Null(NullValue(7))]),
        ]);
        engine.drain_deltas();
        // γ = {η7/a}: the pending r2 trigger must now bind y to a — making it
        // inactive, since N(a) already holds.
        engine.apply_substitution(&NullSubstitution::single(NullValue(7), gc("a")));
        let order: Vec<DepId> = sigma.ids().collect();
        let t = engine.next_active_trigger(&order);
        // r1 is satisfied (E(a,a) witnesses), r2 is satisfied (N(a)), r3 is
        // satisfied (x = y = a): nothing is active.
        assert!(t.is_none(), "got {t:?}");
        assert_eq!(engine.instance().len(), 2);
    }

    #[test]
    fn substitution_can_create_triggers() {
        // Body E(x, x) matches only after the two nulls collapse.
        let p = parse_program("r: E(?x, ?x) -> Loop(?x).").unwrap();
        let mut engine = TriggerEngine::new(&p.dependencies);
        engine.push_facts(vec![Fact::from_parts(
            "E",
            vec![
                GroundTerm::Null(NullValue(1)),
                GroundTerm::Null(NullValue(2)),
            ],
        )]);
        let order: Vec<DepId> = p.dependencies.ids().collect();
        assert!(engine.next_active_trigger(&order).is_none());
        engine.apply_substitution(&NullSubstitution::single(
            NullValue(1),
            GroundTerm::Null(NullValue(2)),
        ));
        let t = engine
            .next_active_trigger(&order)
            .expect("collapsed fact must trigger the rule");
        assert_eq!(
            t.assignment.get(Variable::new("x")),
            Some(GroundTerm::Null(NullValue(2)))
        );
    }

    #[test]
    fn substitution_before_drain_rewrites_queued_deltas() {
        // Push a fact mentioning η1, substitute η1 away *before* discovery runs:
        // the derived fact must use the rewritten term, never the dead null.
        let p = parse_program("r: E(?x, ?y) -> N(?y).").unwrap();
        let mut engine = TriggerEngine::new(&p.dependencies);
        engine.push_facts(vec![Fact::from_parts(
            "E",
            vec![gc("a"), GroundTerm::Null(NullValue(1))],
        )]);
        engine.apply_substitution(&NullSubstitution::single(NullValue(1), gc("b")));
        let order: Vec<DepId> = p.dependencies.ids().collect();
        let t = engine.next_active_trigger(&order).unwrap();
        let effect = engine.apply_trigger(t.dep, &t.assignment);
        match effect {
            StepEffect::AddedFacts { facts, .. } => {
                assert_eq!(facts, vec![Fact::from_parts("N", vec![gc("b")])]);
            }
            other => panic!("expected AddedFacts, got {other:?}"),
        }
        assert!(engine.instance().nulls().is_empty());
    }

    #[test]
    fn database_seeding_is_deterministic() {
        let p = parse_program(
            r#"
            t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z).
            E(a, b). E(b, c). E(c, d). E(d, e). E(e, f).
            "#,
        )
        .unwrap();
        let order: Vec<DepId> = p.dependencies.ids().collect();
        let run = || {
            let mut engine = TriggerEngine::with_database(&p.dependencies, &p.database);
            let mut picked = Vec::new();
            while let Some(t) = engine.next_active_trigger(&order) {
                picked.push(t.assignment.canonical());
                engine.apply_trigger(t.dep, &t.assignment);
                assert!(picked.len() < 100, "diverged");
            }
            picked
        };
        assert_eq!(run(), run(), "trigger order must not depend on hash state");
    }

    #[test]
    fn failing_egd_is_reported() {
        let p = parse_program(
            r#"
            k: P(?x, ?y), P(?x, ?z) -> ?y = ?z.
            P(a, b). P(a, c).
            "#,
        )
        .unwrap();
        let order: Vec<DepId> = p.dependencies.ids().collect();
        let mut engine = TriggerEngine::with_database(&p.dependencies, &p.database);
        let t = engine.next_active_trigger(&order).unwrap();
        let effect = engine.apply_trigger(t.dep, &t.assignment);
        assert_eq!(effect, StepEffect::Failure);
    }

    #[test]
    fn next_trigger_where_skips_rejected_keys() {
        let p = parse_program("r: E(?x, ?y) -> exists ?z: E(?x, ?z). E(a, b).").unwrap();
        let order: Vec<DepId> = p.dependencies.ids().collect();
        let mut engine = TriggerEngine::with_database(&p.dependencies, &p.database);
        // Accept everything: the initial fact yields exactly one candidate.
        let t = engine
            .next_trigger_where(&order, |_, _| true)
            .expect("one candidate");
        assert_eq!(t.assignment.get(Variable::new("x")), Some(gc("a")));
        // Reject everything afterwards: no candidate survives.
        assert!(engine.next_trigger_where(&order, |_, _| false).is_none());
    }

    #[test]
    fn duplicate_discovery_is_suppressed() {
        // Both body atoms match the same delta fact: the join must be discovered
        // once, not twice.
        let p = parse_program("t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z). E(a, a).").unwrap();
        let mut engine = TriggerEngine::with_database(&p.dependencies, &p.database);
        engine.drain_deltas();
        assert_eq!(engine.stats().triggers_discovered, 1);
    }

    #[test]
    fn tgd_activity_checks_route_through_the_maintained_index() {
        // The standard-activity test for a TGD head must consult the engine's
        // per-(predicate, position) indexes, not a scan: the probe counter of the
        // maintained `IndexedInstance` has to advance across the check.
        let (sigma, db) = sigma1();
        let mut engine = TriggerEngine::with_database(&sigma, &db);
        engine.drain_deltas();
        let h = Assignment::from_pairs([(Variable::new("x"), gc("a"))]);
        let before = engine.fact_index().indexed().probe_count();
        // r1 is a TGD with head E(x, y): activity extends h over the head.
        let active = engine.is_standard_active(sigma.get(DepId(0)), &h);
        assert!(active, "no E(a, _) fact exists yet, the trigger is active");
        let after = engine.fact_index().indexed().probe_count();
        assert!(
            after > before,
            "TGD-activity check did not touch the position index ({before} -> {after})"
        );
    }

    #[test]
    fn parallel_drain_is_identical_to_sequential_drain() {
        // A closure chase driven once with sequential drains and once with
        // parallel drains at several worker counts must make bit-identical
        // decisions: same triggers in the same order, same engine stats, same
        // final instance. (This is the determinism contract of
        // `drain_deltas_parallel`: merging in batch order reconstructs the
        // sequential discovery order exactly.)
        let p = parse_program(
            r#"
            t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z).
            s: E(?x, ?y) -> N(?y).
            "#,
        )
        .unwrap();
        let db = Instance::from_facts((0..24).map(|i| {
            Fact::from_parts("E", vec![gc(&format!("v{i}")), gc(&format!("v{}", i + 1))])
        }));
        let order: Vec<DepId> = p.dependencies.ids().collect();
        let run = |workers: usize| {
            let mut engine = TriggerEngine::with_database(&p.dependencies, &db);
            let mut picked = Vec::new();
            while let Some(t) = engine.next_active_trigger_parallel(&order, workers) {
                picked.push((t.dep, t.assignment.canonical()));
                engine.apply_trigger(t.dep, &t.assignment);
                assert!(picked.len() < 5_000, "diverged");
            }
            let stats = engine.stats().clone();
            (picked, stats, engine.into_instance())
        };
        let baseline = run(1);
        for workers in [2, 4, 8] {
            let parallel = run(workers);
            assert_eq!(baseline.0, parallel.0, "trigger sequence at {workers}");
            assert_eq!(baseline.1, parallel.1, "engine stats at {workers}");
            assert_eq!(baseline.2, parallel.2, "final instance at {workers}");
        }
    }

    #[test]
    fn transitive_closure_via_engine() {
        let p = parse_program(
            r#"
            t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z).
            E(a, b). E(b, c). E(c, d).
            "#,
        )
        .unwrap();
        let order: Vec<DepId> = p.dependencies.ids().collect();
        let mut engine = TriggerEngine::with_database(&p.dependencies, &p.database);
        let mut steps = 0;
        while let Some(t) = engine.next_active_trigger(&order) {
            engine.apply_trigger(t.dep, &t.assignment);
            steps += 1;
            assert!(steps < 100, "diverged");
        }
        // Closure of a 4-chain has 6 edges.
        assert_eq!(engine.instance().len(), 6);
    }
}
