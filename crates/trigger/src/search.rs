//! Index-backed homomorphism search, seeded from delta facts.
//!
//! The engine never enumerates triggers from scratch. When a chase step adds or
//! rewrites facts, discovery restarts *from those facts only*: for every body atom
//! unifiable with a delta fact, the atom is pinned to the fact and the remaining
//! atoms are joined via the per-(predicate, position) indexes of the
//! [`FactIndex`](crate::FactIndex) — semi-naive evaluation at the granularity of
//! single chase steps.

use crate::index::FactIndex;
use chase_core::{Assignment, Atom, Fact, GroundTerm, Term, Variable};
use std::ops::ControlFlow;

/// Tries to unify `atom` with `fact` under `assignment`, binding unbound variables.
/// On success returns the newly bound variables; on failure the assignment is
/// rolled back and `None` is returned.
pub fn unify_atom_with_fact(
    atom: &Atom,
    fact: &Fact,
    assignment: &mut Assignment,
) -> Option<Vec<Variable>> {
    debug_assert_eq!(atom.predicate, fact.predicate);
    let mut new_bindings: Vec<Variable> = Vec::new();
    for (t, g) in atom.terms.iter().zip(fact.terms.iter()) {
        let ok = match t {
            Term::Const(c) => GroundTerm::Const(*c) == *g,
            Term::Null(n) => GroundTerm::Null(*n) == *g,
            Term::Var(v) => match assignment.get(*v) {
                Some(bound) => bound == *g,
                None => {
                    assignment.bind(*v, *g);
                    new_bindings.push(*v);
                    true
                }
            },
        };
        if !ok {
            for v in &new_bindings {
                assignment.unbind(*v);
            }
            return None;
        }
    }
    Some(new_bindings)
}

/// Visits every homomorphism from `atoms` into the index that extends `partial`,
/// choosing at each level the most constrained remaining atom (fewest index
/// candidates) and iterating only its candidate bucket.
pub fn for_each_indexed_extending<B>(
    atoms: &[Atom],
    index: &FactIndex,
    partial: &Assignment,
    visit: &mut impl FnMut(&Assignment) -> ControlFlow<B>,
) -> Option<B> {
    let mut remaining: Vec<usize> = (0..atoms.len()).collect();
    let mut assignment = partial.clone();
    match search(atoms, index, &mut remaining, &mut assignment, visit) {
        ControlFlow::Break(b) => Some(b),
        ControlFlow::Continue(()) => None,
    }
}

/// Visits every homomorphism from `atoms` into the index in which atom
/// `seed_index` is mapped to `seed_fact` — the semi-naive seeding step.
pub fn for_each_seeded<B>(
    atoms: &[Atom],
    index: &FactIndex,
    seed_index: usize,
    seed_fact: &Fact,
    visit: &mut impl FnMut(&Assignment) -> ControlFlow<B>,
) -> Option<B> {
    let seed_atom = &atoms[seed_index];
    if seed_atom.predicate != seed_fact.predicate {
        return None;
    }
    let mut assignment = Assignment::new();
    unify_atom_with_fact(seed_atom, seed_fact, &mut assignment)?;
    let mut remaining: Vec<usize> = (0..atoms.len()).filter(|&i| i != seed_index).collect();
    match search(atoms, index, &mut remaining, &mut assignment, visit) {
        ControlFlow::Break(b) => Some(b),
        ControlFlow::Continue(()) => None,
    }
}

/// Returns `true` iff some homomorphism from `atoms` into the index extends
/// `partial` (the indexed standard-activity test for TGD heads).
pub fn exists_indexed_extension(atoms: &[Atom], index: &FactIndex, partial: &Assignment) -> bool {
    for_each_indexed_extending(atoms, index, partial, &mut |_| ControlFlow::Break(())).is_some()
}

fn search<B>(
    atoms: &[Atom],
    index: &FactIndex,
    remaining: &mut Vec<usize>,
    assignment: &mut Assignment,
    visit: &mut impl FnMut(&Assignment) -> ControlFlow<B>,
) -> ControlFlow<B> {
    if remaining.is_empty() {
        return visit(assignment);
    }
    // Most constrained atom first: fewest candidates under the current bindings.
    let (pick_pos, _) = remaining
        .iter()
        .enumerate()
        .map(|(pos, &ai)| (pos, index.candidate_count(&atoms[ai], assignment)))
        .min_by_key(|&(_, count)| count)
        .expect("remaining is non-empty");
    let atom_idx = remaining.swap_remove(pick_pos);
    let atom = &atoms[atom_idx];

    let mut flow = ControlFlow::Continue(());
    // `candidates_for` borrows the index immutably; cloning the bucket is avoided
    // by iterating the slice directly (the index is not mutated during search).
    for fact in index.candidates_for(atom, assignment) {
        if let Some(new_bindings) = unify_atom_with_fact(atom, fact, assignment) {
            let inner = search(atoms, index, remaining, assignment, visit);
            for v in &new_bindings {
                assignment.unbind(*v);
            }
            if inner.is_break() {
                flow = inner;
                break;
            }
        }
    }
    // Restore `remaining` (content matters, order does not).
    remaining.push(atom_idx);
    let last = remaining.len() - 1;
    remaining.swap(pick_pos, last);
    flow
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::builder::{atom, cst, var};
    use chase_core::term::Constant;

    fn gc(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }

    fn chain_index() -> FactIndex {
        let mut idx = FactIndex::new();
        idx.insert(Fact::from_parts("E", vec![gc("a"), gc("b")]));
        idx.insert(Fact::from_parts("E", vec![gc("b"), gc("c")]));
        idx.insert(Fact::from_parts("E", vec![gc("c"), gc("d")]));
        idx
    }

    fn collect_all(atoms: &[Atom], index: &FactIndex) -> Vec<Assignment> {
        let mut out = Vec::new();
        for_each_indexed_extending::<()>(atoms, index, &Assignment::new(), &mut |h| {
            out.push(h.clone());
            ControlFlow::Continue(())
        });
        out
    }

    #[test]
    fn indexed_join_matches_expected_two_hop_paths() {
        let idx = chain_index();
        let query = vec![
            atom("E", vec![var("x"), var("y")]),
            atom("E", vec![var("y"), var("z")]),
        ];
        let homs = collect_all(&query, &idx);
        assert_eq!(homs.len(), 2);
    }

    #[test]
    fn seeded_search_only_finds_homs_through_the_seed() {
        let idx = chain_index();
        let query = vec![
            atom("E", vec![var("x"), var("y")]),
            atom("E", vec![var("y"), var("z")]),
        ];
        let seed = Fact::from_parts("E", vec![gc("b"), gc("c")]);
        // Seeding atom 0 with E(b, c): the only completion is y=c, z=d.
        let mut homs = Vec::new();
        for_each_seeded::<()>(&query, &idx, 0, &seed, &mut |h| {
            homs.push(h.clone());
            ControlFlow::Continue(())
        });
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].get(Variable::new("z")), Some(gc("d")));
        // Seeding atom 1 with the same fact: the only completion is x=a.
        let mut homs = Vec::new();
        for_each_seeded::<()>(&query, &idx, 1, &seed, &mut |h| {
            homs.push(h.clone());
            ControlFlow::Continue(())
        });
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].get(Variable::new("x")), Some(gc("a")));
    }

    #[test]
    fn seeded_search_respects_repeated_variables() {
        let mut idx = chain_index();
        idx.insert(Fact::from_parts("E", vec![gc("e"), gc("e")]));
        let query = vec![atom("E", vec![var("x"), var("x")])];
        let seed_no = Fact::from_parts("E", vec![gc("a"), gc("b")]);
        let mut count = 0;
        for_each_seeded::<()>(&query, &idx, 0, &seed_no, &mut |_| {
            count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(count, 0);
        let seed_yes = Fact::from_parts("E", vec![gc("e"), gc("e")]);
        for_each_seeded::<()>(&query, &idx, 0, &seed_yes, &mut |_| {
            count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn exists_extension_checks_partial_assignments() {
        let idx = chain_index();
        let head = vec![atom("E", vec![var("x"), var("z")])];
        let h = Assignment::from_pairs([(Variable::new("x"), gc("a"))]);
        assert!(exists_indexed_extension(&head, &idx, &h));
        let h = Assignment::from_pairs([(Variable::new("x"), gc("d"))]);
        assert!(!exists_indexed_extension(&head, &idx, &h));
    }

    #[test]
    fn constants_and_early_exit() {
        let idx = chain_index();
        let q = vec![atom("E", vec![cst("a"), var("y")])];
        let found = for_each_indexed_extending(&q, &idx, &Assignment::new(), &mut |h| {
            ControlFlow::Break(h.get(Variable::new("y")).unwrap())
        });
        assert_eq!(found, Some(gc("b")));
    }
}
