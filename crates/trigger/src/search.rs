//! Delta-seeded entry points into the shared join engine.
//!
//! The backtracking join itself lives in `chase_core`
//! ([`chase_core::homomorphism::HomomorphismSearch`] executing a
//! [`chase_core::JoinPlan`] over the indexes of a
//! [`chase_core::IndexedInstance`]); this module only keeps the trigger-engine
//! vocabulary on top of it. The engine never enumerates triggers from scratch:
//! when a chase step adds or rewrites facts, discovery restarts *from those facts
//! only* — for every body atom unifiable with a delta fact, the atom is pinned to
//! the fact ([`for_each_seeded`]) and the remaining atoms are joined through the
//! per-(predicate, position) indexes of the [`FactIndex`] —
//! semi-naive evaluation at the granularity of single chase steps.

use crate::index::FactIndex;
use chase_core::{Assignment, Atom, Fact, FactId, HomomorphismSearch};
use std::ops::ControlFlow;

pub use chase_core::homomorphism::{unify_atom_with_fact, unify_atom_with_terms};

/// Visits every homomorphism from `atoms` into the index that extends `partial`,
/// joining through the maintained per-(predicate, position) indexes.
pub fn for_each_indexed_extending<B>(
    atoms: &[Atom],
    index: &FactIndex,
    partial: &Assignment,
    visit: &mut impl FnMut(&Assignment) -> ControlFlow<B>,
) -> Option<B> {
    HomomorphismSearch::over_index(atoms, index.indexed()).for_each_extending(partial, visit)
}

/// Visits every homomorphism from `atoms` into the index in which atom
/// `seed_index` is mapped to `seed_fact` — the semi-naive seeding step.
pub fn for_each_seeded<B>(
    atoms: &[Atom],
    index: &FactIndex,
    seed_index: usize,
    seed_fact: &Fact,
    visit: &mut impl FnMut(&Assignment) -> ControlFlow<B>,
) -> Option<B> {
    HomomorphismSearch::over_index(atoms, index.indexed())
        .for_each_seeded(seed_index, seed_fact, visit)
}

/// Visits every homomorphism from `atoms` into the index in which atom
/// `seed_index` is mapped to the interned fact `seed` — the allocation-free
/// seeding step the engine's delta worklist drives.
pub fn for_each_seeded_id<B>(
    atoms: &[Atom],
    index: &FactIndex,
    seed_index: usize,
    seed: FactId,
    visit: &mut impl FnMut(&Assignment) -> ControlFlow<B>,
) -> Option<B> {
    HomomorphismSearch::over_index(atoms, index.indexed())
        .for_each_seeded_id(seed_index, seed, visit)
}

/// Returns `true` iff some homomorphism from `atoms` into the index extends
/// `partial` (the indexed standard-activity test for TGD heads).
pub fn exists_indexed_extension(atoms: &[Atom], index: &FactIndex, partial: &Assignment) -> bool {
    for_each_indexed_extending(atoms, index, partial, &mut |_| ControlFlow::Break(())).is_some()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::builder::{atom, cst, var};
    use chase_core::term::Constant;
    use chase_core::{GroundTerm, Variable};

    fn gc(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }

    fn chain_index() -> FactIndex {
        let mut idx = FactIndex::new();
        idx.insert(Fact::from_parts("E", vec![gc("a"), gc("b")]));
        idx.insert(Fact::from_parts("E", vec![gc("b"), gc("c")]));
        idx.insert(Fact::from_parts("E", vec![gc("c"), gc("d")]));
        idx
    }

    fn collect_all(atoms: &[Atom], index: &FactIndex) -> Vec<Assignment> {
        let mut out = Vec::new();
        for_each_indexed_extending::<()>(atoms, index, &Assignment::new(), &mut |h| {
            out.push(h.clone());
            ControlFlow::Continue(())
        });
        out
    }

    #[test]
    fn indexed_join_matches_expected_two_hop_paths() {
        let idx = chain_index();
        let query = vec![
            atom("E", vec![var("x"), var("y")]),
            atom("E", vec![var("y"), var("z")]),
        ];
        let homs = collect_all(&query, &idx);
        assert_eq!(homs.len(), 2);
    }

    #[test]
    fn seeded_search_only_finds_homs_through_the_seed() {
        let idx = chain_index();
        let query = vec![
            atom("E", vec![var("x"), var("y")]),
            atom("E", vec![var("y"), var("z")]),
        ];
        let seed = Fact::from_parts("E", vec![gc("b"), gc("c")]);
        // Seeding atom 0 with E(b, c): the only completion is y=c, z=d.
        let mut homs = Vec::new();
        for_each_seeded::<()>(&query, &idx, 0, &seed, &mut |h| {
            homs.push(h.clone());
            ControlFlow::Continue(())
        });
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].get(Variable::new("z")), Some(gc("d")));
        // Seeding atom 1 with the same fact: the only completion is x=a.
        let mut homs = Vec::new();
        for_each_seeded::<()>(&query, &idx, 1, &seed, &mut |h| {
            homs.push(h.clone());
            ControlFlow::Continue(())
        });
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].get(Variable::new("x")), Some(gc("a")));
    }

    #[test]
    fn seeded_search_respects_repeated_variables() {
        let mut idx = chain_index();
        idx.insert(Fact::from_parts("E", vec![gc("e"), gc("e")]));
        let query = vec![atom("E", vec![var("x"), var("x")])];
        let seed_no = Fact::from_parts("E", vec![gc("a"), gc("b")]);
        let mut count = 0;
        for_each_seeded::<()>(&query, &idx, 0, &seed_no, &mut |_| {
            count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(count, 0);
        let seed_yes = Fact::from_parts("E", vec![gc("e"), gc("e")]);
        for_each_seeded::<()>(&query, &idx, 0, &seed_yes, &mut |_| {
            count += 1;
            ControlFlow::Continue(())
        });
        assert_eq!(count, 1);
    }

    #[test]
    fn exists_extension_checks_partial_assignments() {
        let idx = chain_index();
        let head = vec![atom("E", vec![var("x"), var("z")])];
        let h = Assignment::from_pairs([(Variable::new("x"), gc("a"))]);
        assert!(exists_indexed_extension(&head, &idx, &h));
        let h = Assignment::from_pairs([(Variable::new("x"), gc("d"))]);
        assert!(!exists_indexed_extension(&head, &idx, &h));
    }

    #[test]
    fn constants_and_early_exit() {
        let idx = chain_index();
        let q = vec![atom("E", vec![cst("a"), var("y")])];
        let found = for_each_indexed_extending(&q, &idx, &Assignment::new(), &mut |h| {
            ControlFlow::Break(h.get(Variable::new("y")).unwrap())
        });
        assert_eq!(found, Some(gc("b")));
    }
}
