//! Shard-partitioned parallel trigger discovery over a frozen snapshot.
//!
//! Trigger discovery — seeding the join engine from every delta fact — is
//! embarrassingly parallel: it only *reads* the instance. This module runs the
//! semi-naive search of [`TriggerEngine`](crate::TriggerEngine) across worker
//! threads:
//!
//! 1. the delta batch (one round's worth of new facts, in FIFO = ascending
//!    [`FactId`] order) is split into contiguous chunks — disjoint `FactId`
//!    ranges — one per worker;
//! 2. each chunk becomes a job on the persistent process-wide worker pool
//!    ([`chase_core::pool`]) — long-lived threads fed by channels, so the
//!    per-round `thread::scope` spawn cost of the first parallel cut is gone —
//!    and every job walks its chunk in order against a shared read-only
//!    [`Snapshot`], collecting the candidate triggers its seeds discover;
//! 3. the per-worker results are concatenated **in chunk order**, which
//!    reconstructs exactly the order a single-threaded drain would have produced
//!    — so the merged candidate list is independent of the worker count, and a
//!    caller that preserves this order (the standard chase) behaves bitwise
//!    identically to the sequential engine.
//!
//! Round-batching callers (the oblivious runners in `chase_engine`) instead
//! re-sort the merged list with [`sort_canonical`] — `(DepId, body FactIds)`
//! keys, computed lazily for the candidates that survive dedup — before applying
//! a whole round, which pins fresh-null numbering and observer/budget accounting
//! to a worker-count-independent order. See the "Parallel execution" section of
//! `crates/README.md` for the determinism contract.

use chase_core::pool::{self, ScopedJob};
use chase_core::snapshot::{DiscoveryStats, ShardStats, Snapshot};
use chase_core::{Assignment, DepId, DependencySet, FactId, FactStore, Predicate};
use std::collections::HashMap;
use std::ops::ControlFlow;
use std::time::{Duration, Instant};

/// Below this many delta facts a batch is discovered inline: spawning workers
/// would cost more than the joins. Purely a latency knob — discovery order (and
/// therefore every chase result) is identical either way.
const MIN_PARALLEL_BATCH: usize = 16;

/// For each predicate, the body-atom positions that can unify with a fact of that
/// predicate: `(dependency, body atom index)` pairs, in dependency-set order.
///
/// Built once per dependency set so a delta fact visits only the seed atoms it can
/// actually match (shared by the sequential [`TriggerEngine`](crate::TriggerEngine)
/// drain and the parallel workers here).
#[derive(Clone, Debug, Default)]
pub struct SeedAtoms {
    by_predicate: HashMap<Predicate, Vec<(DepId, usize)>>,
}

impl SeedAtoms {
    /// Indexes the body atoms of `sigma` by predicate.
    pub fn new(sigma: &DependencySet) -> Self {
        let mut by_predicate: HashMap<Predicate, Vec<(DepId, usize)>> = HashMap::new();
        for (id, dep) in sigma.iter() {
            for (atom_index, atom) in dep.body().iter().enumerate() {
                by_predicate
                    .entry(atom.predicate)
                    .or_default()
                    .push((id, atom_index));
            }
        }
        SeedAtoms { by_predicate }
    }

    /// The `(dependency, body atom index)` seeds unifiable with a fact of
    /// `predicate` (empty if no body mentions it).
    pub fn seeds_for(&self, predicate: Predicate) -> &[(DepId, usize)] {
        self.by_predicate
            .get(&predicate)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }
}

/// A candidate trigger discovered against a snapshot.
///
/// The canonical `(DepId, body FactIds)` sort key of round-batched application is
/// *not* stored here: the per-step standard-chase drain never needs it, and the
/// round-batching oblivious runner needs it only for candidates that survive its
/// seen-dedup — [`sort_canonical`] computes keys lazily at that point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiscoveredTrigger {
    /// The dependency whose body matched.
    pub dep: DepId,
    /// The homomorphism from the body into the snapshot.
    pub assignment: Assignment,
}

/// Computes a trigger's canonical key: `h(body)` as one interned [`FactId`] per
/// body atom, in body-atom order. Distinct triggers of the same dependency
/// always differ here (the per-atom images determine every binding), so
/// `(dep, body_image)` is a total order on a round's candidates. Every body atom
/// is ground under a discovered assignment and maps to a live fact of the store,
/// so both lookups are infallible.
pub fn body_image(sigma: &DependencySet, store: &FactStore, t: &DiscoveredTrigger) -> Vec<FactId> {
    let mut terms = Vec::new();
    sigma
        .get(t.dep)
        .body()
        .iter()
        .map(|atom| {
            terms.clear();
            for term in &atom.terms {
                terms.push(
                    t.assignment
                        .apply_term(term)
                        .expect("body variables are bound"),
                );
            }
            store
                .lookup(atom.predicate, &terms)
                .expect("a discovered trigger maps its body into the store")
        })
        .collect()
}

/// Sorts a candidate batch into the canonical `(DepId, body FactIds)` merge
/// order of round-batched application (keys computed once per candidate via
/// [`body_image`]). The order is total on any deduped candidate set — equal keys
/// imply equal assignments; the trailing canonicalised-assignment comparison is
/// belt-and-braces, not a tiebreak that can fire on distinct triggers.
pub fn sort_canonical(
    sigma: &DependencySet,
    store: &FactStore,
    batch: &mut Vec<DiscoveredTrigger>,
) {
    let mut keyed: Vec<(Vec<FactId>, DiscoveredTrigger)> = std::mem::take(batch)
        .into_iter()
        .map(|t| (body_image(sigma, store, &t), t))
        .collect();
    keyed.sort_by(|(ka, a), (kb, b)| {
        (a.dep, ka)
            .cmp(&(b.dep, kb))
            .then_with(|| a.assignment.canonical().cmp(&b.assignment.canonical()))
    });
    batch.extend(keyed.into_iter().map(|(_, t)| t));
}

/// Discovers every candidate trigger seeded from `fact`, in the deterministic
/// order of the sequential drain (seed atoms in dependency-set order, join
/// enumeration order within each seed), appending to `out`.
fn discover_from(
    sigma: &DependencySet,
    seeds: &SeedAtoms,
    snapshot: &Snapshot<'_>,
    fact: FactId,
    out: &mut Vec<DiscoveredTrigger>,
) {
    let predicate = snapshot.predicate_of(fact);
    for &(dep, seed_index) in seeds.seeds_for(predicate) {
        let body = sigma.get(dep).body();
        snapshot
            .search(body)
            .for_each_seeded_id::<()>(seed_index, fact, &mut |h| {
                out.push(DiscoveredTrigger {
                    dep,
                    assignment: h.clone(),
                });
                ControlFlow::Continue(())
            });
    }
}

/// Discovers the candidate triggers of a whole delta batch against `snapshot`,
/// sharding the batch across up to `workers` scoped threads.
///
/// The returned list is in **batch order** regardless of the worker count: worker
/// `w` processes the `w`-th contiguous chunk (a disjoint `FactId` range when the
/// batch is in insertion order) and the chunks are concatenated in order. No
/// dedup is performed — callers dedup against their own seen-set so that
/// cross-shard duplicates resolve exactly as in a sequential drain.
pub fn discover_batch(
    sigma: &DependencySet,
    seeds: &SeedAtoms,
    snapshot: Snapshot<'_>,
    batch: &[FactId],
    workers: usize,
) -> Vec<DiscoveredTrigger> {
    discover_batch_inner(sigma, seeds, snapshot, batch, workers, None)
}

/// [`discover_batch`] plus per-shard accounting: fact ids scanned, triggers
/// found and wall-clock per worker (measured inside the worker), and the
/// end-to-end batch wall-clock, as [`DiscoveryStats`].
///
/// The candidate list is bitwise identical to the uninstrumented call — the
/// instrumentation never influences sharding or merge order. The extra cost
/// is two `Instant::now()` calls per shard, which is why the chase runners
/// only take this path when an observer asks for phase events.
pub fn discover_batch_instrumented(
    sigma: &DependencySet,
    seeds: &SeedAtoms,
    snapshot: Snapshot<'_>,
    batch: &[FactId],
    workers: usize,
) -> (Vec<DiscoveredTrigger>, DiscoveryStats) {
    let started = Instant::now();
    let mut stats = DiscoveryStats::default();
    let merged = discover_batch_inner(sigma, seeds, snapshot, batch, workers, Some(&mut stats));
    stats.elapsed = started.elapsed();
    (merged, stats)
}

fn discover_batch_inner(
    sigma: &DependencySet,
    seeds: &SeedAtoms,
    snapshot: Snapshot<'_>,
    batch: &[FactId],
    workers: usize,
    mut stats: Option<&mut DiscoveryStats>,
) -> Vec<DiscoveredTrigger> {
    // `workers(0)` is defined to mean sequential execution, the same as 1 —
    // normalized here (not left to the `<= 1` guard) so the invariant holds
    // even if the guard's threshold ever changes.
    let workers = workers.max(1);
    if workers == 1 || batch.len() < MIN_PARALLEL_BATCH.max(workers) {
        let shard_start = stats.as_ref().map(|_| Instant::now());
        let mut out = Vec::new();
        for &fact in batch {
            discover_from(sigma, seeds, &snapshot, fact, &mut out);
        }
        if let (Some(stats), Some(start)) = (stats, shard_start) {
            stats.shards.push(ShardStats {
                worker: 0,
                facts_scanned: batch.len(),
                triggers_found: out.len(),
                elapsed: start.elapsed(),
            });
        }
        return out;
    }
    // What one shard job hands back: its discoveries, its actual length
    // (`facts_scanned`), and its wall-clock when instrumented.
    type ShardResult = (Vec<DiscoveredTrigger>, usize, Option<Duration>);
    let chunk = batch.len().div_ceil(workers);
    let instrument = stats.is_some();
    let jobs: Vec<ScopedJob<'_, ShardResult>> = batch
        .chunks(chunk)
        .map(|shard| {
            Box::new(move || {
                let shard_start = instrument.then(Instant::now);
                let mut out = Vec::new();
                for &fact in shard {
                    discover_from(sigma, seeds, &snapshot, fact, &mut out);
                }
                let elapsed = shard_start.map(|s| s.elapsed());
                // Report the shard's *actual* length: recomputing it from the
                // chunk arithmetic breaks silently under non-uniform chunking.
                (out, shard.len(), elapsed)
            }) as ScopedJob<'_, _>
        })
        .collect();
    let results = pool::with_workers(workers).run_jobs(jobs);
    let mut merged = Vec::new();
    for (worker, (out, scanned, elapsed)) in results.into_iter().enumerate() {
        if let Some(stats) = stats.as_deref_mut() {
            stats.shards.push(ShardStats {
                worker,
                facts_scanned: scanned,
                triggers_found: out.len(),
                elapsed: elapsed.unwrap_or_default(),
            });
        }
        merged.extend(out);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::FactIndex;
    use chase_core::parser::parse_dependencies;
    use chase_core::term::Constant;
    use chase_core::{Fact, GroundTerm};

    fn gc(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }

    fn edge(a: &str, b: &str) -> Fact {
        Fact::from_parts("E", vec![gc(a), gc(b)])
    }

    fn discover_all(
        sigma: &chase_core::DependencySet,
        index: &FactIndex,
        batch: &[FactId],
        workers: usize,
    ) -> Vec<DiscoveredTrigger> {
        let seeds = SeedAtoms::new(sigma);
        discover_batch(
            sigma,
            &seeds,
            Snapshot::new(index.indexed()),
            batch,
            workers,
        )
    }

    #[test]
    fn seed_atoms_index_bodies_by_predicate() {
        let sigma =
            parse_dependencies("r1: E(?x, ?y), N(?y) -> N(?x). r2: N(?x) -> M(?x).").unwrap();
        let seeds = SeedAtoms::new(&sigma);
        assert_eq!(
            seeds.seeds_for(chase_core::Predicate::new("E", 2)),
            &[(DepId(0), 0)]
        );
        assert_eq!(
            seeds.seeds_for(chase_core::Predicate::new("N", 1)),
            &[(DepId(0), 1), (DepId(1), 0)]
        );
        assert!(seeds
            .seeds_for(chase_core::Predicate::new("Missing", 1))
            .is_empty());
    }

    #[test]
    fn batch_order_is_independent_of_worker_count() {
        let sigma = parse_dependencies("t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z).").unwrap();
        let mut index = FactIndex::new();
        let mut batch = Vec::new();
        for i in 0..40 {
            let (id, new) = index.insert_full(edge(&format!("v{i}"), &format!("v{}", i + 1)));
            assert!(new);
            batch.push(id);
        }
        let sequential = discover_all(&sigma, &index, &batch, 1);
        assert!(!sequential.is_empty());
        // `workers(0)` is defined as sequential execution (normalized to 1).
        for workers in [0, 2, 3, 4, 8] {
            let parallel = discover_all(&sigma, &index, &batch, workers);
            assert_eq!(
                sequential, parallel,
                "merged discovery order diverged at {workers} workers"
            );
        }
    }

    /// Satellite: pins the canonical `(DepId, body FactIds)` merge order on a
    /// handcrafted instance with colliding triggers. The interning order is
    /// deliberately anti-alphabetical, so the test fails if the sort ever falls
    /// back to comparing terms instead of ids.
    #[test]
    fn canonical_merge_order_is_dep_then_body_fact_ids() {
        let sigma = parse_dependencies(
            r#"
            r1: E(?x, ?y) -> P(?x).
            r2: E(?x, ?y), E(?y, ?z) -> Q(?x).
            "#,
        )
        .unwrap();
        let mut index = FactIndex::new();
        // id0 = E(z, z) sorts *after* id1 = E(a, z) by term order, but *before* it
        // by FactId; E(z, a) closes two 2-hop paths so r2 gets colliding triggers.
        let (id0, _) = index.insert_full(edge("z", "z"));
        let (id1, _) = index.insert_full(edge("a", "z"));
        let (id2, _) = index.insert_full(edge("z", "a"));
        let mut found = discover_all(&sigma, &index, &[id0, id1, id2], 1);
        let mut seen = std::collections::HashSet::new();
        found.retain(|t| seen.insert((t.dep, t.assignment.canonical())));
        sort_canonical(&sigma, index.store(), &mut found);
        let keys: Vec<(DepId, Vec<FactId>)> = found
            .iter()
            .map(|t| (t.dep, body_image(&sigma, index.store(), t)))
            .collect();
        assert_eq!(
            keys,
            vec![
                // r1 first (DepId-major), its triggers in FactId order — E(z, z)
                // before E(a, z) despite "a" < "z".
                (DepId(0), vec![id0]),
                (DepId(0), vec![id1]),
                (DepId(0), vec![id2]),
                // r2 next: body images compared lexicographically by FactId.
                (DepId(1), vec![id0, id0]), // E(z,z), E(z,z)
                (DepId(1), vec![id0, id2]), // E(z,z), E(z,a)
                (DepId(1), vec![id1, id0]), // E(a,z), E(z,z)
                (DepId(1), vec![id1, id2]), // E(a,z), E(z,a)
                (DepId(1), vec![id2, id1]), // E(z,a), E(a,z)
            ]
        );
    }

    #[test]
    fn instrumented_discovery_matches_and_accounts_for_every_seed() {
        let sigma = parse_dependencies("t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z).").unwrap();
        let mut index = FactIndex::new();
        let mut batch = Vec::new();
        for i in 0..40 {
            let (id, _) = index.insert_full(edge(&format!("v{i}"), &format!("v{}", i + 1)));
            batch.push(id);
        }
        let seeds = SeedAtoms::new(&sigma);
        let plain = discover_batch(&sigma, &seeds, Snapshot::new(index.indexed()), &batch, 1);
        for workers in [1, 4] {
            let (found, stats) = discover_batch_instrumented(
                &sigma,
                &seeds,
                Snapshot::new(index.indexed()),
                &batch,
                workers,
            );
            assert_eq!(found, plain, "instrumentation changed discovery output");
            assert_eq!(stats.shards.len(), workers);
            assert_eq!(stats.facts_scanned(), batch.len());
            assert_eq!(stats.triggers_found(), found.len());
            let shard_total: usize = stats.shards.iter().map(|s| s.triggers_found).sum();
            assert_eq!(shard_total, found.len());
            assert_eq!(
                stats.shards.iter().map(|s| s.worker).collect::<Vec<_>>(),
                (0..workers).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn body_image_resolves_constants_and_repeated_variables() {
        let sigma = parse_dependencies("r: E(?x, ?x) -> P(?x).").unwrap();
        let mut index = FactIndex::new();
        index.insert(edge("a", "b"));
        let (id_loop, _) = index.insert_full(edge("c", "c"));
        let batch: Vec<FactId> = vec![FactId(0), id_loop];
        let found = discover_all(&sigma, &index, &batch, 1);
        assert_eq!(found.len(), 1);
        assert_eq!(body_image(&sigma, index.store(), &found[0]), vec![id_loop]);
    }
}
