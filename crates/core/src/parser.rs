//! A small textual format for dependencies and databases, and its parser.
//!
//! The grammar (whitespace-insensitive, `#` and `%` start line comments):
//!
//! ```text
//! program    := statement*
//! statement  := (label ':')? body '->' head '.'        // dependency
//!             | fact '.'                               // database fact
//! body       := atom (',' atom)*
//! head       := 'exists' varlist ':' atom (',' atom)*  // existential TGD
//!             | atom (',' atom)*                       // full TGD
//!             | term '=' term                          // EGD
//! varlist    := variable (',' variable)*
//! atom       := ident '(' term (',' term)* ')' | ident '(' ')'
//! term       := variable | constant
//! variable   := '?' ident
//! constant   := ident | number | '"' chars '"'
//! fact       := atom containing only constants
//! ```
//!
//! The format is what [`crate::dependency::Dependency`]'s `Display` implementation
//! produces, so dependency sets round-trip.

use crate::atom::Atom;
use crate::dependency::{Dependency, DependencySet, Egd, Tgd};
use crate::error::CoreError;
use crate::instance::Instance;
use crate::term::{Constant, Term, Variable};

/// A parsed program: a dependency set plus an optional database of ground facts.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// The dependencies, in source order.
    pub dependencies: DependencySet,
    /// The database facts, in source order.
    pub database: Instance,
}

impl Program {
    /// Number of dependencies plus facts.
    pub fn len(&self) -> usize {
        self.dependencies.len() + self.database.len()
    }

    /// Returns `true` iff the program is empty.
    pub fn is_empty(&self) -> bool {
        self.dependencies.is_empty() && self.database.is_empty()
    }
}

/// Parses a program containing dependencies and facts.
pub fn parse_program(input: &str) -> Result<Program, CoreError> {
    Parser::new(input).parse_program()
}

/// Parses a set of dependencies; facts are not allowed.
pub fn parse_dependencies(input: &str) -> Result<DependencySet, CoreError> {
    let program = parse_program(input)?;
    if !program.database.is_empty() {
        return Err(CoreError::MalformedDependency {
            reason: "expected only dependencies but found database facts".into(),
        });
    }
    Ok(program.dependencies)
}

/// Parses a single dependency.
pub fn parse_dependency(input: &str) -> Result<Dependency, CoreError> {
    let deps = parse_dependencies(input)?;
    if deps.len() != 1 {
        return Err(CoreError::MalformedDependency {
            reason: format!("expected exactly one dependency, found {}", deps.len()),
        });
    }
    Ok(deps.as_slice()[0].clone())
}

/// Parses a database: a sequence of ground facts.
pub fn parse_database(input: &str) -> Result<Instance, CoreError> {
    let program = parse_program(input)?;
    if !program.dependencies.is_empty() {
        return Err(CoreError::MalformedDependency {
            reason: "expected only facts but found dependencies".into(),
        });
    }
    Ok(program.database)
}

struct Parser<'a> {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    column: usize,
    _input: &'a str,
}

#[derive(Clone, Debug, PartialEq)]
enum Token {
    Ident(String),
    Variable(String),
    LParen,
    RParen,
    Comma,
    Colon,
    Dot,
    Arrow,
    Equals,
    Eof,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            chars: input.chars().collect(),
            pos: 0,
            line: 1,
            column: 1,
            _input: input,
        }
    }

    fn error(&self, message: impl Into<String>) -> CoreError {
        CoreError::Parse {
            line: self.line,
            column: self.column,
            message: message.into(),
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
                self.column = 1;
            } else {
                self.column += 1;
            }
        }
        c
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<char> {
        self.chars.get(self.pos + 1).copied()
    }

    fn skip_whitespace_and_comments(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('#') | Some('%') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                Some('/') if self.peek2() == Some('/') => {
                    while let Some(c) = self.peek() {
                        if c == '\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, CoreError> {
        self.skip_whitespace_and_comments();
        let c = match self.peek() {
            None => return Ok(Token::Eof),
            Some(c) => c,
        };
        match c {
            '(' => {
                self.bump();
                Ok(Token::LParen)
            }
            ')' => {
                self.bump();
                Ok(Token::RParen)
            }
            ',' => {
                self.bump();
                Ok(Token::Comma)
            }
            ':' => {
                self.bump();
                Ok(Token::Colon)
            }
            '.' => {
                self.bump();
                Ok(Token::Dot)
            }
            '=' => {
                self.bump();
                Ok(Token::Equals)
            }
            '-' => {
                self.bump();
                if self.peek() == Some('>') {
                    self.bump();
                    Ok(Token::Arrow)
                } else {
                    Err(self.error("expected '>' after '-'"))
                }
            }
            '?' => {
                self.bump();
                let name = self.read_ident_chars();
                if name.is_empty() {
                    return Err(self.error("expected a variable name after '?'"));
                }
                Ok(Token::Variable(name))
            }
            '"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some('"') => break,
                        Some(c) => s.push(c),
                        None => return Err(self.error("unterminated string literal")),
                    }
                }
                Ok(Token::Ident(s))
            }
            c if c.is_alphanumeric() || c == '_' => {
                let name = self.read_ident_chars();
                Ok(Token::Ident(name))
            }
            other => Err(self.error(format!("unexpected character '{other}'"))),
        }
    }

    fn read_ident_chars(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '\'' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn peek_token(&mut self) -> Result<Token, CoreError> {
        let save = (self.pos, self.line, self.column);
        let tok = self.next_token();
        let (pos, line, column) = save;
        self.pos = pos;
        self.line = line;
        self.column = column;
        tok
    }

    fn expect(&mut self, expected: Token) -> Result<(), CoreError> {
        let tok = self.next_token()?;
        if tok == expected {
            Ok(())
        } else {
            Err(self.error(format!("expected {expected:?}, found {tok:?}")))
        }
    }

    fn parse_program(&mut self) -> Result<Program, CoreError> {
        let mut program = Program::default();
        let mut auto_label = 0usize;
        loop {
            if self.peek_token()? == Token::Eof {
                break;
            }
            self.parse_statement(&mut program, &mut auto_label)?;
        }
        Ok(program)
    }

    /// Parses one statement (dependency or fact) terminated by '.'.
    fn parse_statement(
        &mut self,
        program: &mut Program,
        _auto_label: &mut usize,
    ) -> Result<(), CoreError> {
        // Optional label: IDENT ':' not followed by '(' (which would be an atom).
        let mut label: Option<String> = None;
        let save = (self.pos, self.line, self.column);
        if let Token::Ident(name) = self.peek_token()? {
            // Look ahead: ident ':' means a label.
            let save_inner = (self.pos, self.line, self.column);
            let _ = self.next_token()?; // consume ident
            if self.peek_token()? == Token::Colon {
                let _ = self.next_token()?; // consume ':'
                label = Some(name);
            } else {
                // Not a label; rewind.
                self.pos = save_inner.0;
                self.line = save_inner.1;
                self.column = save_inner.2;
            }
        } else {
            self.pos = save.0;
            self.line = save.1;
            self.column = save.2;
        }

        // Parse the first atom list (body or a single fact).
        let first_atoms = self.parse_atom_list()?;
        match self.next_token()? {
            Token::Dot => {
                // These are facts.
                if label.is_some() {
                    return Err(self.error("facts must not carry a label"));
                }
                for a in first_atoms {
                    match a.to_fact() {
                        Some(f) => {
                            if !f.is_null_free() {
                                return Err(self.error("database facts must not contain nulls"));
                            }
                            program.database.insert(f);
                        }
                        None => {
                            return Err(self
                                .error(format!("fact {a} must be ground (no variables allowed)")))
                        }
                    }
                }
                Ok(())
            }
            Token::Arrow => {
                let dep = self.parse_head(label, first_atoms)?;
                self.expect(Token::Dot)?;
                program.dependencies.push(dep);
                Ok(())
            }
            other => Err(self.error(format!("expected '->' or '.', found {other:?}"))),
        }
    }

    fn parse_head(
        &mut self,
        label: Option<String>,
        body: Vec<Atom>,
    ) -> Result<Dependency, CoreError> {
        // Either: 'exists' varlist ':' atoms  |  atoms  |  term '=' term
        let save = (self.pos, self.line, self.column);
        let tok = self.next_token()?;
        match tok {
            Token::Ident(kw) if kw == "exists" => {
                // existential TGD
                let mut _exvars: Vec<Variable> = Vec::new();
                loop {
                    match self.next_token()? {
                        Token::Variable(v) => _exvars.push(Variable::new(&v)),
                        other => {
                            return Err(self.error(format!(
                                "expected a variable after 'exists', found {other:?}"
                            )))
                        }
                    }
                    match self.next_token()? {
                        Token::Comma => continue,
                        Token::Colon => break,
                        other => {
                            return Err(self.error(format!(
                                "expected ',' or ':' in existential prefix, found {other:?}"
                            )))
                        }
                    }
                }
                let head = self.parse_atom_list()?;
                let tgd = Tgd::new(label, body, head).map_err(|e| self.lift(e))?;
                Ok(Dependency::Tgd(tgd))
            }
            Token::Variable(v1) => {
                // EGD: ?x = ?y
                self.expect(Token::Equals)?;
                match self.next_token()? {
                    Token::Variable(v2) => {
                        let egd = Egd::new(label, body, Variable::new(&v1), Variable::new(&v2))
                            .map_err(|e| self.lift(e))?;
                        Ok(Dependency::Egd(egd))
                    }
                    other => {
                        Err(self.error(format!("expected a variable after '=', found {other:?}")))
                    }
                }
            }
            _ => {
                // Full TGD head: rewind and parse an atom list.
                self.pos = save.0;
                self.line = save.1;
                self.column = save.2;
                let head = self.parse_atom_list()?;
                let tgd = Tgd::new(label, body, head).map_err(|e| self.lift(e))?;
                Ok(Dependency::Tgd(tgd))
            }
        }
    }

    fn lift(&self, e: CoreError) -> CoreError {
        match e {
            CoreError::Parse { .. } => e,
            other => CoreError::Parse {
                line: self.line,
                column: self.column,
                message: other.to_string(),
            },
        }
    }

    fn parse_atom_list(&mut self) -> Result<Vec<Atom>, CoreError> {
        let mut atoms = vec![self.parse_atom()?];
        loop {
            let save = (self.pos, self.line, self.column);
            if self.next_token()? == Token::Comma {
                atoms.push(self.parse_atom()?);
            } else {
                self.pos = save.0;
                self.line = save.1;
                self.column = save.2;
                break;
            }
        }
        Ok(atoms)
    }

    fn parse_atom(&mut self) -> Result<Atom, CoreError> {
        let name = match self.next_token()? {
            Token::Ident(n) => n,
            other => return Err(self.error(format!("expected a predicate name, found {other:?}"))),
        };
        self.expect(Token::LParen)?;
        let mut terms: Vec<Term> = Vec::new();
        if self.peek_token()? == Token::RParen {
            let _ = self.next_token()?;
            return Ok(Atom::from_parts(&name, terms));
        }
        loop {
            match self.next_token()? {
                Token::Variable(v) => terms.push(Term::Var(Variable::new(&v))),
                Token::Ident(c) => terms.push(Term::Const(Constant::new(&c))),
                other => return Err(self.error(format!("expected a term, found {other:?}"))),
            }
            match self.next_token()? {
                Token::Comma => continue,
                Token::RParen => break,
                other => return Err(self.error(format!("expected ',' or ')', found {other:?}"))),
            }
        }
        Ok(Atom::from_parts(&name, terms))
    }
}

/// Serialises a dependency set and a database back into the textual format.
pub fn to_source(sigma: &DependencySet, database: &Instance) -> String {
    let mut out = String::new();
    for (_, dep) in sigma.iter() {
        out.push_str(&dep.to_string());
        out.push_str(".\n");
    }
    for fact in database.sorted_facts() {
        out.push_str(&fact.to_string());
        out.push_str(".\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::GroundTerm;

    #[test]
    fn parse_example1_program() {
        let p = parse_program(
            r#"
            # Σ1 of Example 1
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> ?x = ?y.
            N(a).
            "#,
        )
        .unwrap();
        assert_eq!(p.dependencies.len(), 3);
        assert_eq!(p.database.len(), 1);
        assert!(p.dependencies.get(crate::DepId(0)).is_existential());
        assert!(p.dependencies.get(crate::DepId(1)).is_full());
        assert!(p.dependencies.get(crate::DepId(2)).is_egd());
    }

    #[test]
    fn parse_multi_atom_bodies_and_heads() {
        let d = parse_dependency("r: A(?x), B(?x, ?y) -> C(?y), D(?y, ?x).").unwrap();
        assert_eq!(d.body().len(), 2);
        assert_eq!(d.head_atoms().len(), 2);
        assert!(d.is_full());
    }

    #[test]
    fn parse_multiple_existential_variables() {
        let d = parse_dependency("r1: N(?x) -> exists ?y, ?z: E(?x, ?y, ?z).").unwrap();
        let t = d.as_tgd().unwrap();
        assert_eq!(t.existential_variables().len(), 2);
    }

    #[test]
    fn parse_constants_and_strings() {
        let p = parse_program(
            r#"
            Role(admin, ?u) -> User(?u).
            Edge("node one", n2).
            "#,
        )
        .unwrap();
        assert_eq!(p.dependencies.len(), 1);
        assert_eq!(p.database.len(), 1);
        let f = p.database.sorted_facts()[0].clone();
        assert_eq!(f.terms[0], GroundTerm::Const(Constant::new("node one")));
    }

    #[test]
    fn labels_are_optional() {
        let d = parse_dependencies("A(?x) -> B(?x). r2: B(?x) -> C(?x).").unwrap();
        assert_eq!(d.len(), 2);
        assert_eq!(d.get(crate::DepId(0)).label(), None);
        assert_eq!(d.get(crate::DepId(1)).label(), Some("r2"));
    }

    #[test]
    fn parse_errors_have_positions() {
        let err = parse_program("A(?x) -> ").unwrap_err();
        match err {
            CoreError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(parse_program("A(?x -> B(?x).").is_err());
        assert!(parse_program("A(?x) -> ?x = ?zzz.").is_err());
    }

    #[test]
    fn facts_must_be_ground() {
        assert!(parse_program("N(?x).").is_err());
    }

    #[test]
    fn facts_must_not_carry_labels() {
        assert!(parse_program("f1: N(a).").is_err());
    }

    #[test]
    fn round_trip_through_display() {
        let src = r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> ?x = ?y.
            N(a).
            E(a, b).
        "#;
        let p = parse_program(src).unwrap();
        let printed = to_source(&p.dependencies, &p.database);
        let reparsed = parse_program(&printed).unwrap();
        assert_eq!(reparsed.dependencies.len(), p.dependencies.len());
        assert_eq!(reparsed.database, p.database);
        for (a, b) in p
            .dependencies
            .as_slice()
            .iter()
            .zip(reparsed.dependencies.as_slice())
        {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn comments_are_skipped() {
        let p =
            parse_program("# comment\n% other comment\n// c-style\nA(?x) -> B(?x). # trailing\n")
                .unwrap();
        assert_eq!(p.dependencies.len(), 1);
    }

    #[test]
    fn empty_input_is_an_empty_program() {
        let p = parse_program("   \n # nothing \n").unwrap();
        assert!(p.is_empty());
    }

    #[test]
    fn example8_parses() {
        let sigma = parse_dependencies(
            r#"
            r1: A(?x), B(?x) -> C(?x).
            r2: C(?x) -> exists ?y: A(?x), B(?y).
            r3: C(?x) -> exists ?y: A(?y), B(?x).
            r4: A(?x), A(?y) -> ?x = ?y.
            r5: B(?x), B(?y) -> ?x = ?y.
            "#,
        )
        .unwrap();
        assert_eq!(sigma.len(), 5);
        assert_eq!(sigma.egd_ids().len(), 2);
        assert_eq!(sigma.existential_ids().len(), 2);
    }

    #[test]
    fn zero_ary_atoms_are_supported() {
        let d = parse_dependency("A(?x) -> Flag().").unwrap();
        assert_eq!(d.head_atoms()[0].predicate.arity, 0);
    }
}
