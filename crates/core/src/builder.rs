//! Ergonomic constructors for terms, atoms and dependencies.
//!
//! These helpers keep tests and examples terse without going through the parser:
//!
//! ```
//! use chase_core::builder::{atom, cst, var, tgd, egd};
//!
//! let r1 = tgd("r1", vec![atom("N", vec![var("x")])], vec![atom("E", vec![var("x"), var("y")])]);
//! let r3 = egd("r3", vec![atom("E", vec![var("x"), var("y")])], "x", "y");
//! assert!(r1.is_existential());
//! assert!(r3.is_egd());
//! ```

use crate::atom::Atom;
use crate::dependency::{Dependency, Egd, Tgd};
use crate::term::{Constant, Term, Variable};

/// A variable term `?name`.
pub fn var(name: &str) -> Term {
    Term::Var(Variable::new(name))
}

/// A constant term.
pub fn cst(name: &str) -> Term {
    Term::Const(Constant::new(name))
}

/// An atom `predicate(terms…)`, inferring the arity from the argument count.
pub fn atom(predicate: &str, terms: Vec<Term>) -> Atom {
    Atom::from_parts(predicate, terms)
}

/// A TGD with the given label; existential variables are inferred (head variables not
/// occurring in the body). Panics on malformed input — intended for tests and examples.
pub fn tgd(label: &str, body: Vec<Atom>, head: Vec<Atom>) -> Dependency {
    Dependency::Tgd(Tgd::new(Some(label.to_owned()), body, head).expect("malformed TGD in builder"))
}

/// An unlabelled TGD.
pub fn tgd_unlabelled(body: Vec<Atom>, head: Vec<Atom>) -> Dependency {
    Dependency::Tgd(Tgd::new(None, body, head).expect("malformed TGD in builder"))
}

/// An EGD `body → left = right` with the given label. Panics on malformed input.
pub fn egd(label: &str, body: Vec<Atom>, left: &str, right: &str) -> Dependency {
    Dependency::Egd(
        Egd::new(
            Some(label.to_owned()),
            body,
            Variable::new(left),
            Variable::new(right),
        )
        .expect("malformed EGD in builder"),
    )
}

/// An unlabelled EGD.
pub fn egd_unlabelled(body: Vec<Atom>, left: &str, right: &str) -> Dependency {
    Dependency::Egd(
        Egd::new(None, body, Variable::new(left), Variable::new(right))
            .expect("malformed EGD in builder"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_constructs_example1() {
        let r1 = tgd(
            "r1",
            vec![atom("N", vec![var("x")])],
            vec![atom("E", vec![var("x"), var("y")])],
        );
        let r2 = tgd(
            "r2",
            vec![atom("E", vec![var("x"), var("y")])],
            vec![atom("N", vec![var("y")])],
        );
        let r3 = egd("r3", vec![atom("E", vec![var("x"), var("y")])], "x", "y");
        assert!(r1.is_existential());
        assert!(r2.is_full() && r2.is_tgd());
        assert!(r3.is_egd() && r3.is_full());
        assert_eq!(r1.label(), Some("r1"));
    }

    #[test]
    #[should_panic(expected = "malformed EGD")]
    fn builder_panics_on_bad_egd() {
        let _ = egd("bad", vec![atom("E", vec![var("x"), var("y")])], "x", "zzz");
    }

    #[test]
    fn constants_in_atoms() {
        let a = atom("Role", vec![cst("admin"), var("u")]);
        assert_eq!(a.constants().len(), 1);
        assert_eq!(a.variables().len(), 1);
    }
}
