//! On-disk instance snapshots: a versioned, length-prefixed, checksummed binary
//! image of a [`FactStore`]'s dictionary + column strips plus the owning
//! [`Instance`]'s live-id set.
//!
//! [`Instance::save`] / [`Instance::load`] persist the **full interning
//! history** — tombstoned facts included — so a loaded instance is
//! *id-identical* to the saved one: `sorted_fact_ids`, per-predicate insertion
//! order, `Display` and the null-allocator state all round-trip exactly. (This
//! is what makes the format safe to combine with [`Instance::compact`]: a
//! snapshot carries its own id space, so compacting the in-memory instance
//! after a save never invalidates a later load of that file.)
//!
//! ## Format (version 1)
//!
//! All integers are little-endian. Strings are UTF-8, length-prefixed with a
//! `u32`. Symbols ([`Constant`](crate::term::Constant) and predicate names) are
//! serialized **as strings**: the process-global symbol interner's raw ids are
//! not stable across processes.
//!
//! ```text
//! magic      8 bytes  b"CHASEFS\0"
//! version    u32      currently 1
//! dictionary u32 n_terms, then per term (TermId order):
//!              tag u8 = 0: constant  (u32 len + UTF-8 bytes)
//!                       1: labeled null (u64 label)
//! predicates u32 n_preds, then per predicate (PredicateId order):
//!              u32 name_len + UTF-8 bytes, u32 arity
//! facts      u32 n_facts (total interned, live or not)
//! strips     per predicate (PredicateId order):
//!              u32 rows
//!              per position 0..arity: rows × u32 cells   ← one contiguous write
//!              rows × u32 fact ids (row order)
//! liveness   ceil(n_facts / 8) bytes; bit i = FactId(i) is live
//! id lists   per predicate: u32 live_len + live_len × u32 fact ids
//!              (the per-predicate insertion order)
//! next_null  u64      the instance's null-allocator state
//! checksum   u64      FNV-1a 64 over every preceding byte
//! ```
//!
//! Each column strip is one contiguous block of 4-byte cells, so saving and
//! loading a strip is a single buffered `write`/`read` of `rows × 4` bytes, and
//! a future read-only **mmap share** of the strip region (zero-copy
//! [`Snapshot`](crate::snapshot::Snapshot) cloning across processes) is a
//! documented follow-up that needs no format change — only an
//! alignment-padding bump of the section header.
//!
//! Loading validates everything it cannot afford to trust: the magic and
//! version, term tags and UTF-8, strip dimensions against predicate arities,
//! cell ids against the dictionary, the exactly-once assignment of fact ids to
//! rows, duplicate interned facts, live-list consistency against the liveness
//! bitmap, and finally the trailing checksum. Failures are typed
//! [`PersistError`]s; a truncated file surfaces as [`PersistError::Truncated`]
//! rather than a panic or a garbage instance.

use crate::fact_store::{FactId, FactStore, TermId};
use crate::id_set::FactIdSet;
use crate::instance::Instance;
use crate::term::{Constant, GroundTerm, NullValue};
use crate::Predicate;
use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"CHASEFS\0";
const VERSION: u32 = 1;

/// Errors produced while saving or loading an instance snapshot.
#[derive(Debug)]
pub enum PersistError {
    /// An I/O error from the underlying file.
    Io(io::Error),
    /// The file ended before the image was complete.
    Truncated,
    /// The bytes do not describe a well-formed snapshot (bad magic, bad tag,
    /// inconsistent dimensions, out-of-range ids, …).
    Format {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// The file is a snapshot, but of an unsupported format version.
    VersionMismatch {
        /// The version recorded in the file.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// The trailing checksum does not match the file contents: the image was
    /// corrupted after it was written.
    ChecksumMismatch,
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            PersistError::Truncated => write!(f, "snapshot file is truncated"),
            PersistError::Format { detail } => write!(f, "malformed snapshot: {detail}"),
            PersistError::VersionMismatch { found, supported } => write!(
                f,
                "snapshot format version {found} is not supported (this build reads version {supported})"
            ),
            PersistError::ChecksumMismatch => {
                write!(f, "snapshot checksum mismatch: the file is corrupted")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            PersistError::Truncated
        } else {
            PersistError::Io(e)
        }
    }
}

fn format_err<T>(detail: impl Into<String>) -> Result<T, PersistError> {
    Err(PersistError::Format {
        detail: detail.into(),
    })
}

// -- FNV-1a 64 streaming wrappers -------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_update(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

struct HashingWriter<W: Write> {
    inner: W,
    hash: u64,
}

impl<W: Write> HashingWriter<W> {
    fn new(inner: W) -> Self {
        HashingWriter {
            inner,
            hash: FNV_OFFSET,
        }
    }

    fn write_bytes(&mut self, bytes: &[u8]) -> Result<(), PersistError> {
        self.hash = fnv_update(self.hash, bytes);
        self.inner.write_all(bytes)?;
        Ok(())
    }

    fn write_u32(&mut self, v: u32) -> Result<(), PersistError> {
        self.write_bytes(&v.to_le_bytes())
    }

    fn write_u64(&mut self, v: u64) -> Result<(), PersistError> {
        self.write_bytes(&v.to_le_bytes())
    }

    fn write_str(&mut self, s: &str) -> Result<(), PersistError> {
        let len = u32::try_from(s.len()).map_err(|_| PersistError::Format {
            detail: format!("string of {} bytes exceeds the u32 length prefix", s.len()),
        })?;
        self.write_u32(len)?;
        self.write_bytes(s.as_bytes())
    }

    /// Writes a count/length field, rejecting values the `u32` prefix cannot
    /// carry instead of silently truncating them. An unchecked `as u32` here
    /// would write a wrapped count and produce a snapshot whose sections
    /// disagree with their own headers — corruption that the checksum cannot
    /// catch because it is computed over the already-wrong bytes.
    fn write_len(&mut self, len: usize, what: &str) -> Result<(), PersistError> {
        let v = u32::try_from(len).map_err(|_| PersistError::Format {
            detail: format!("{what} count {len} exceeds the u32 length prefix"),
        })?;
        self.write_u32(v)
    }

    /// Writes a `u32` slice as one contiguous little-endian block (the
    /// single-`write` strip path).
    fn write_u32_block(
        &mut self,
        values: impl Iterator<Item = u32>,
        buf: &mut Vec<u8>,
    ) -> Result<(), PersistError> {
        buf.clear();
        for v in values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        self.write_bytes(buf)
    }
}

struct HashingReader<R: Read> {
    inner: R,
    hash: u64,
}

impl<R: Read> HashingReader<R> {
    fn new(inner: R) -> Self {
        HashingReader {
            inner,
            hash: FNV_OFFSET,
        }
    }

    fn read_bytes(&mut self, buf: &mut [u8]) -> Result<(), PersistError> {
        self.inner.read_exact(buf)?;
        self.hash = fnv_update(self.hash, buf);
        Ok(())
    }

    fn read_u32(&mut self) -> Result<u32, PersistError> {
        let mut b = [0u8; 4];
        self.read_bytes(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn read_u64(&mut self) -> Result<u64, PersistError> {
        let mut b = [0u8; 8];
        self.read_bytes(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    fn read_string(&mut self) -> Result<String, PersistError> {
        let len = self.read_u32()? as usize;
        let mut bytes = read_vec(self, len)?;
        match String::from_utf8(std::mem::take(&mut bytes)) {
            Ok(s) => Ok(s),
            Err(_) => format_err("string is not valid UTF-8"),
        }
    }

    /// Reads a contiguous block of `n` little-endian `u32`s (the single-`read`
    /// strip path).
    fn read_u32_block(&mut self, n: usize) -> Result<Vec<u32>, PersistError> {
        let bytes = read_vec(self, n * 4)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect())
    }
}

/// Reads `len` bytes without trusting `len` for the initial allocation: a
/// corrupt length prefix hits EOF instead of attempting a huge allocation.
fn read_vec<R: Read>(r: &mut HashingReader<R>, len: usize) -> Result<Vec<u8>, PersistError> {
    const CHUNK: usize = 1 << 20;
    let mut out = Vec::with_capacity(len.min(CHUNK));
    let mut remaining = len;
    let mut buf = [0u8; 8192];
    while remaining > 0 {
        let take = remaining.min(buf.len());
        r.read_bytes(&mut buf[..take])?;
        out.extend_from_slice(&buf[..take]);
        remaining -= take;
    }
    Ok(out)
}

// -- save -------------------------------------------------------------------------

/// Writes `instance` to `path` in the version-1 snapshot format.
pub(crate) fn save(instance: &Instance, path: &Path) -> Result<(), PersistError> {
    let store = instance.store();
    let file = File::create(path)?;
    let mut w = HashingWriter::new(BufWriter::new(file));
    let mut block = Vec::new();

    w.write_bytes(MAGIC)?;
    w.write_u32(VERSION)?;

    // Dictionary.
    let dict = store.dict_terms();
    w.write_len(dict.len(), "dictionary term")?;
    for &term in dict {
        match term {
            GroundTerm::Const(c) => {
                w.write_bytes(&[0u8])?;
                w.write_str(&c.name())?;
            }
            GroundTerm::Null(n) => {
                w.write_bytes(&[1u8])?;
                w.write_u64(n.0)?;
            }
        }
    }

    // Predicates.
    let predicates = store.predicate_list();
    w.write_len(predicates.len(), "predicate")?;
    for p in predicates {
        w.write_str(&p.name.as_str())?;
        w.write_len(p.arity, "predicate arity")?;
    }

    // Strips: per predicate, rows then one contiguous block per column, then
    // the row → fact-id map.
    w.write_len(store.len(), "interned fact")?;
    for (pi, p) in predicates.iter().enumerate() {
        let pid = crate::fact_store::PredicateId(pi as u32);
        let rows = store.rows(pid);
        w.write_len(rows, "strip row")?;
        for pos in 0..p.arity {
            w.write_u32_block(store.column(pid, pos).iter().map(|c| c.0), &mut block)?;
        }
        w.write_u32_block(store.row_facts(pid).iter().map(|f| f.0), &mut block)?;
    }

    // Liveness bitmap.
    let live = instance.live_ids();
    let mut bitmap = vec![0u8; store.len().div_ceil(8)];
    for id in live.iter() {
        bitmap[id.0 as usize / 8] |= 1 << (id.0 % 8);
    }
    w.write_bytes(&bitmap)?;

    // Per-predicate live id lists (insertion order). `by_predicate` may be
    // shorter than the predicate count (lists grow on first insert).
    let lists = instance.predicate_lists();
    for pi in 0..predicates.len() {
        let list: &[FactId] = lists.get(pi).map(|v| v.as_slice()).unwrap_or(&[]);
        w.write_len(list.len(), "live id list")?;
        w.write_u32_block(list.iter().map(|f| f.0), &mut block)?;
    }

    w.write_u64(instance.next_null_state())?;

    let digest = w.hash;
    w.inner.write_all(&digest.to_le_bytes())?;
    w.inner.flush()?;
    Ok(())
}

// -- load -------------------------------------------------------------------------

/// Reads an instance from `path`, validating structure and checksum.
pub(crate) fn load(path: &Path) -> Result<Instance, PersistError> {
    let file = File::open(path)?;
    let mut r = HashingReader::new(BufReader::new(file));

    let mut magic = [0u8; 8];
    r.read_bytes(&mut magic)?;
    if &magic != MAGIC {
        return format_err("bad magic: not a chase snapshot file");
    }
    let version = r.read_u32()?;
    if version != VERSION {
        return Err(PersistError::VersionMismatch {
            found: version,
            supported: VERSION,
        });
    }

    // Dictionary.
    let n_terms = r.read_u32()? as usize;
    let mut dict: Vec<GroundTerm> = Vec::with_capacity(n_terms.min(1 << 20));
    for _ in 0..n_terms {
        let mut tag = [0u8; 1];
        r.read_bytes(&mut tag)?;
        dict.push(match tag[0] {
            0 => GroundTerm::Const(Constant::new(&r.read_string()?)),
            1 => GroundTerm::Null(NullValue(r.read_u64()?)),
            t => return format_err(format!("unknown term tag {t}")),
        });
    }

    // Predicates.
    let n_preds = r.read_u32()? as usize;
    let mut predicates: Vec<Predicate> = Vec::with_capacity(n_preds.min(1 << 20));
    for _ in 0..n_preds {
        let name = r.read_string()?;
        let arity = r.read_u32()? as usize;
        predicates.push(Predicate::new(&name, arity));
    }

    // Strips.
    let n_facts = r.read_u32()? as usize;
    let mut raw_strips: Vec<(Vec<Vec<TermId>>, Vec<FactId>)> = Vec::with_capacity(n_preds);
    let mut total_rows = 0usize;
    for p in &predicates {
        let rows = r.read_u32()? as usize;
        total_rows += rows;
        let mut columns = Vec::with_capacity(p.arity);
        for _ in 0..p.arity {
            columns.push(r.read_u32_block(rows)?.into_iter().map(TermId).collect());
        }
        let fact_of_row = r.read_u32_block(rows)?.into_iter().map(FactId).collect();
        raw_strips.push((columns, fact_of_row));
    }
    if total_rows != n_facts {
        return format_err(format!(
            "strip rows sum to {total_rows} but the header declares {n_facts} facts"
        ));
    }

    let store = FactStore::from_raw_parts(predicates, dict, raw_strips)
        .map_err(|detail| PersistError::Format { detail })?;

    // Liveness bitmap.
    let mut bitmap = read_vec(&mut r, n_facts.div_ceil(8))?;
    let live_count = bitmap
        .iter()
        .map(|b| b.count_ones() as usize)
        .sum::<usize>();
    let is_live = |id: u32| bitmap[id as usize / 8] & (1 << (id % 8)) != 0;

    // Per-predicate live id lists.
    let mut by_predicate: Vec<Vec<FactId>> = Vec::with_capacity(store.predicate_count());
    let mut live: FactIdSet = FactIdSet::with_capacity(n_facts);
    for pi in 0..store.predicate_count() {
        let len = r.read_u32()? as usize;
        let list: Vec<FactId> = r.read_u32_block(len)?.into_iter().map(FactId).collect();
        for &id in &list {
            if id.0 as usize >= n_facts {
                return format_err(format!(
                    "live list references FactId({}) outside the fact space",
                    id.0
                ));
            }
            if store.predicate_id_of(id).0 as usize != pi {
                return format_err(format!(
                    "live list of predicate {pi} contains FactId({}) of another predicate",
                    id.0
                ));
            }
            if !is_live(id.0) {
                return format_err(format!(
                    "live list contains FactId({}) that the bitmap marks dead",
                    id.0
                ));
            }
            if !live.insert(id) {
                return format_err(format!("FactId({}) occurs twice in the live lists", id.0));
            }
        }
        by_predicate.push(list);
    }
    if live.len() != live_count {
        return format_err(format!(
            "bitmap marks {live_count} facts live but the id lists carry {}",
            live.len()
        ));
    }
    bitmap.clear();

    let next_null = r.read_u64()?;

    let digest = r.hash;
    let mut trailer = [0u8; 8];
    r.inner.read_exact(&mut trailer)?;
    if u64::from_le_bytes(trailer) != digest {
        return Err(PersistError::ChecksumMismatch);
    }
    // Trailing garbage after the checksum is corruption too.
    let mut extra = [0u8; 1];
    match r.inner.read(&mut extra) {
        Ok(0) => {}
        Ok(_) => return format_err("trailing bytes after the checksum"),
        Err(e) => return Err(e.into()),
    }

    Ok(Instance::from_loaded_parts(
        store,
        live,
        by_predicate,
        next_null,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Fact;
    use crate::substitution::NullSubstitution;

    fn cst(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }
    fn null(i: u64) -> GroundTerm {
        GroundTerm::Null(NullValue(i))
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("chase_persist_{}_{name}.snap", std::process::id()));
        p
    }

    fn sample_instance() -> Instance {
        let mut k = Instance::new();
        k.insert(Fact::from_parts("E", vec![cst("a"), null(1)]));
        k.insert(Fact::from_parts("E", vec![cst("a"), cst("b")]));
        k.insert(Fact::from_parts("Init", vec![]));
        k.insert(Fact::from_parts("N", vec![cst("z")]));
        k.remove(&Fact::from_parts("N", vec![cst("z")])); // tombstone
        k.substitute_in_place(&NullSubstitution::single(NullValue(1), cst("c")));
        k.fresh_null();
        k
    }

    #[test]
    fn roundtrip_preserves_ids_order_and_display() {
        let k = sample_instance();
        let path = temp_path("roundtrip");
        k.save(&path).unwrap();
        let loaded = Instance::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.sorted_fact_ids(), k.sorted_fact_ids());
        assert_eq!(loaded.to_string(), k.to_string());
        assert_eq!(loaded.store().len(), k.store().len());
        assert_eq!(loaded.store().term_count(), k.store().term_count());
        // The null allocator state round-trips: fresh nulls stay fresh.
        let mut a = k.clone();
        let mut b = loaded;
        assert_eq!(a.fresh_null(), b.fresh_null());
        // Tombstoned ids are still interned but dead on both sides.
        let z = Fact::from_parts("N", vec![cst("z")]);
        assert_eq!(
            b.store().lookup_fact(&z),
            a.store().lookup_fact(&z),
            "tombstones survive the roundtrip"
        );
        assert!(!b.contains(&z));
    }

    #[test]
    fn truncated_file_is_a_typed_error() {
        let k = sample_instance();
        let path = temp_path("truncated");
        k.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in [3, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(
                matches!(
                    Instance::load(&path),
                    Err(PersistError::Truncated) | Err(PersistError::Format { .. })
                ),
                "cut at {cut} must fail cleanly"
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_payload_fails_the_checksum() {
        let k = sample_instance();
        let path = temp_path("corrupt");
        k.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip one bit in the liveness/strips region (past header + version).
        let idx = bytes.len() - 12;
        bytes[idx] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(
            matches!(
                Instance::load(&path),
                Err(PersistError::ChecksumMismatch) | Err(PersistError::Format { .. })
            ),
            "bit flip must be detected"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_is_reported() {
        let k = sample_instance();
        let path = temp_path("version");
        k.save(&path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        match Instance::load(&path) {
            Err(PersistError::VersionMismatch { found, supported }) => {
                assert_eq!(found, 99);
                assert_eq!(supported, VERSION);
            }
            other => panic!("expected VersionMismatch, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_a_format_error() {
        let path = temp_path("magic");
        std::fs::write(&path, b"definitely not a snapshot").unwrap();
        assert!(matches!(
            Instance::load(&path),
            Err(PersistError::Format { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    /// Satellite regression: every length field the writer emits goes through a
    /// checked conversion. A count above `u32::MAX` must surface as a typed
    /// [`PersistError::Format`], not wrap silently — a wrapped prefix would
    /// produce a snapshot whose section headers lie about their own contents
    /// (and the trailing checksum, computed over the wrapped bytes, would
    /// happily validate the corruption).
    #[test]
    fn oversized_length_fields_are_rejected_not_truncated() {
        // Exercise the checked path directly: materialising 2^32 facts to push
        // an overflow through `save` is not practical, and `write_len` is the
        // single choke point all six count fields (dictionary, predicates,
        // arity, fact total, strip rows, live lists) now flow through.
        let mut w = HashingWriter::new(Vec::new());
        let too_big = u32::MAX as usize + 1;
        match w.write_len(too_big, "interned fact") {
            Err(PersistError::Format { detail }) => {
                assert!(
                    detail.contains("interned fact") && detail.contains("u32"),
                    "error should name the field and the prefix width: {detail}"
                );
            }
            other => panic!("expected Format error for oversized count, got {other:?}"),
        }
        // Nothing was written: a failed length prefix must not leave a partial
        // field behind for a later section to misparse.
        assert!(w.inner.is_empty(), "failed write_len must emit no bytes");
        // The boundary value itself still round-trips.
        w.write_len(u32::MAX as usize, "interned fact").unwrap();
        assert_eq!(w.inner, u32::MAX.to_le_bytes());
    }

    #[test]
    fn empty_instance_roundtrips() {
        let k = Instance::new();
        let path = temp_path("empty");
        k.save(&path).unwrap();
        let loaded = Instance::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(loaded.is_empty());
        assert_eq!(loaded, k);
    }
}
