//! First-order satisfaction of dependencies by instances (`J ⊨ Σ`).

use crate::atom::Atom;
use crate::dependency::{Dependency, DependencySet, Egd, Tgd};
use crate::homomorphism::{
    exists_homomorphism_extending, homomorphisms, Assignment, HomomorphismSearch,
};
use crate::instance::Instance;
use crate::term::GroundTerm;
use std::ops::ControlFlow;

/// Returns `true` iff `h` maps every atom of `body` to a fact of the instance.
/// Membership goes through the arena ([`Instance::contains_parts`]) — no [`Fact`]
/// value is materialised per atom.
///
/// [`Fact`]: crate::atom::Fact
fn maps_body_into(instance: &Instance, body: &[Atom], h: &Assignment) -> bool {
    let mut terms: Vec<GroundTerm> = Vec::new();
    for atom in body {
        terms.clear();
        for t in &atom.terms {
            match h.apply_term(t) {
                Some(g) => terms.push(g),
                None => return false,
            }
        }
        if !instance.contains_parts(atom.predicate, &terms) {
            return false;
        }
    }
    true
}

/// Returns `true` iff `instance ⊨ tgd`: every homomorphism from the body extends to a
/// homomorphism from body ∪ head.
pub fn satisfies_tgd(instance: &Instance, tgd: &Tgd) -> bool {
    let search = HomomorphismSearch::new(&tgd.body, instance);
    // One head search serves every body match (its per-query index is built once,
    // not once per homomorphism).
    let head_search = HomomorphismSearch::new(&tgd.head, instance);
    search
        .for_each_extending(&Assignment::new(), &mut |h| {
            if head_search
                .for_each_extending::<()>(h, &mut |_| ControlFlow::Break(()))
                .is_some()
            {
                ControlFlow::Continue(())
            } else {
                ControlFlow::Break(())
            }
        })
        .is_none()
}

/// Returns `true` iff `instance ⊨ tgd` *under a fixed homomorphism* `h` from the body:
/// i.e. either `h` does not map the body into the instance, or it extends to the head.
///
/// This is the condition `K ⊨ h(r)` used in the definitions of stratification and of
/// the firing graph (Definition 2).
pub fn satisfies_tgd_under(instance: &Instance, tgd: &Tgd, h: &Assignment) -> bool {
    if !maps_body_into(instance, &tgd.body, h) {
        return true;
    }
    exists_homomorphism_extending(&tgd.head, instance, h)
}

/// Returns `true` iff `instance ⊨ egd`: every homomorphism from the body maps the two
/// equated variables to the same ground term.
pub fn satisfies_egd(instance: &Instance, egd: &Egd) -> bool {
    let search = HomomorphismSearch::new(&egd.body, instance);
    search
        .for_each_extending(&Assignment::new(), &mut |h| {
            if h.get(egd.left) == h.get(egd.right) {
                ControlFlow::Continue(())
            } else {
                ControlFlow::Break(())
            }
        })
        .is_none()
}

/// Returns `true` iff `instance ⊨ egd` under the fixed homomorphism `h`.
pub fn satisfies_egd_under(instance: &Instance, egd: &Egd, h: &Assignment) -> bool {
    if !maps_body_into(instance, &egd.body, h) {
        return true;
    }
    h.get(egd.left) == h.get(egd.right)
}

/// Returns `true` iff `instance ⊨ dep`.
pub fn satisfies(instance: &Instance, dep: &Dependency) -> bool {
    match dep {
        Dependency::Tgd(t) => satisfies_tgd(instance, t),
        Dependency::Egd(e) => satisfies_egd(instance, e),
    }
}

/// Returns `true` iff `instance ⊨ dep` under the fixed homomorphism `h` (the paper's
/// `K ⊨ h(r)`).
pub fn satisfies_under(instance: &Instance, dep: &Dependency, h: &Assignment) -> bool {
    match dep {
        Dependency::Tgd(t) => satisfies_tgd_under(instance, t, h),
        Dependency::Egd(e) => satisfies_egd_under(instance, e, h),
    }
}

/// Returns `true` iff `instance ⊨ Σ` for every dependency of the set.
pub fn satisfies_all(instance: &Instance, sigma: &DependencySet) -> bool {
    sigma.iter().all(|(_, d)| satisfies(instance, d))
}

/// Returns the dependencies of `sigma` violated by `instance`, together with a
/// violating homomorphism for each (the first one found).
pub fn violations(instance: &Instance, sigma: &DependencySet) -> Vec<(usize, Assignment)> {
    let mut out = Vec::new();
    for (id, dep) in sigma.iter() {
        match dep {
            Dependency::Tgd(t) => {
                let head_search = HomomorphismSearch::new(&t.head, instance);
                let found = HomomorphismSearch::new(&t.body, instance).for_each_extending(
                    &Assignment::new(),
                    &mut |h| {
                        if head_search
                            .for_each_extending::<()>(h, &mut |_| ControlFlow::Break(()))
                            .is_some()
                        {
                            ControlFlow::Continue(())
                        } else {
                            ControlFlow::Break(h.clone())
                        }
                    },
                );
                if let Some(h) = found {
                    out.push((id.0, h));
                }
            }
            Dependency::Egd(e) => {
                for h in homomorphisms(&e.body, instance) {
                    if h.get(e.left) != h.get(e.right) {
                        out.push((id.0, h));
                        break;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Fact;
    use crate::builder::{atom, var};
    use crate::parser::parse_program;
    use crate::term::{Constant, GroundTerm, NullValue, Variable};

    fn gc(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }
    fn gn(i: u64) -> GroundTerm {
        GroundTerm::Null(NullValue(i))
    }

    fn sigma1() -> DependencySet {
        parse_program(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> ?x = ?y.
            "#,
        )
        .unwrap()
        .dependencies
    }

    #[test]
    fn example1_initial_database_satisfies_all_but_r1() {
        let sigma = sigma1();
        let d = Instance::from_facts(vec![Fact::from_parts("N", vec![gc("a")])]);
        assert!(!satisfies(&d, sigma.get(crate::DepId(0))));
        assert!(satisfies(&d, sigma.get(crate::DepId(1))));
        assert!(satisfies(&d, sigma.get(crate::DepId(2))));
        assert!(!satisfies_all(&d, &sigma));
        let v = violations(&d, &sigma);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].0, 0);
    }

    #[test]
    fn example1_final_instance_satisfies_all() {
        let sigma = sigma1();
        // {N(a), E(a, a)} is the result of the terminating sequence of Example 1.
        let j = Instance::from_facts(vec![
            Fact::from_parts("N", vec![gc("a")]),
            Fact::from_parts("E", vec![gc("a"), gc("a")]),
        ]);
        assert!(satisfies_all(&j, &sigma));
    }

    #[test]
    fn egd_violation_detected() {
        let sigma = sigma1();
        let k2 = Instance::from_facts(vec![
            Fact::from_parts("N", vec![gc("a")]),
            Fact::from_parts("E", vec![gc("a"), gn(1)]),
        ]);
        // r3 is violated: a ≠ η1.
        assert!(!satisfies(&k2, sigma.get(crate::DepId(2))));
        // r2 is violated too (no N(η1)).
        assert!(!satisfies(&k2, sigma.get(crate::DepId(1))));
    }

    #[test]
    fn satisfies_under_fixed_homomorphism() {
        let sigma = sigma1();
        let r2 = sigma.get(crate::DepId(1));
        let k2 = Instance::from_facts(vec![
            Fact::from_parts("N", vec![gc("a")]),
            Fact::from_parts("E", vec![gc("a"), gn(1)]),
        ]);
        let h =
            Assignment::from_pairs([(Variable::new("x"), gc("a")), (Variable::new("y"), gn(1))]);
        // K2 ⊭ h(r2) since N(η1) is missing.
        assert!(!satisfies_under(&k2, r2, &h));
        // Under a homomorphism that does not match the body, the implication is vacuous.
        let h2 = Assignment::from_pairs([
            (Variable::new("x"), gc("zzz")),
            (Variable::new("y"), gc("w")),
        ]);
        assert!(satisfies_under(&k2, r2, &h2));
    }

    #[test]
    fn full_tgd_satisfaction() {
        let t = Tgd::new(
            None,
            vec![atom("E", vec![var("x"), var("y")])],
            vec![atom("E", vec![var("y"), var("x")])],
        )
        .unwrap();
        let sym = Instance::from_facts(vec![
            Fact::from_parts("E", vec![gc("a"), gc("b")]),
            Fact::from_parts("E", vec![gc("b"), gc("a")]),
        ]);
        assert!(satisfies_tgd(&sym, &t));
        let asym = Instance::from_facts(vec![Fact::from_parts("E", vec![gc("a"), gc("b")])]);
        assert!(!satisfies_tgd(&asym, &t));
    }

    #[test]
    fn empty_instance_satisfies_everything() {
        let sigma = sigma1();
        let empty = Instance::new();
        assert!(satisfies_all(&empty, &sigma));
        assert!(violations(&empty, &sigma).is_empty());
    }

    #[test]
    fn satisfies_egd_under_agrees_with_the_indexed_engine_enumeration() {
        // `satisfies_egd` quantifies over exactly the body homomorphisms the shared
        // join engine enumerates (it runs `HomomorphismSearch` directly), and
        // `satisfies_egd_under` must agree pointwise with the per-homomorphism
        // equality check on each of them. The enumeration here is done over a
        // maintained `IndexedInstance` — the probe-counter assertion shows this
        // cross-check exercised the indexed path (the engine-side routing proof for
        // activity checks is `tgd_activity_checks_route_through_the_maintained_index`
        // in `chase_trigger`) — and the instance is chosen so that index correctness
        // matters: a null collides with a constant-carrying fact and the body
        // repeats a variable across atoms.
        use crate::index::IndexedInstance;
        use std::ops::ControlFlow;
        let sigma = parse_program("k: E(?x, ?y), E(?y, ?z) -> ?x = ?z.")
            .unwrap()
            .dependencies;
        let egd = match sigma.get(crate::DepId(0)) {
            Dependency::Egd(e) => e.clone(),
            _ => unreachable!("k is an EGD"),
        };
        let k = Instance::from_facts(vec![
            Fact::from_parts("E", vec![gc("a"), gn(1)]),
            Fact::from_parts("E", vec![gn(1), gc("a")]),
            Fact::from_parts("E", vec![gn(1), gc("b")]),
        ]);
        let indexed = IndexedInstance::from_instance(k.clone());
        let before = indexed.probe_count();
        let mut homs = Vec::new();
        crate::homomorphism::HomomorphismSearch::over_index(&egd.body, &indexed)
            .for_each_extending::<()>(&Assignment::new(), &mut |h| {
                homs.push(h.clone());
                ControlFlow::Continue(())
            });
        assert!(
            indexed.probe_count() > before,
            "the EGD body join did not touch the position index"
        );
        // Three body matches: (a,η1,a) and (η1,a,η1) satisfy the equality,
        // (a,η1,b) violates it.
        assert_eq!(homs.len(), 3);
        for h in &homs {
            let equal = h.get(egd.left) == h.get(egd.right);
            assert_eq!(satisfies_egd_under(&k, &egd, h), equal);
        }
        assert!(!satisfies_egd(&k, &egd));
        assert_eq!(
            satisfies_egd(&k, &egd),
            homs.iter().all(|h| satisfies_egd_under(&k, &egd, h))
        );
    }

    #[test]
    fn example6_database_satisfies_its_tgd() {
        // D = {E(a,b)}, r : E(x,y) -> ∃z E(x,z). D ⊨ r.
        let sigma = parse_program("r: E(?x, ?y) -> exists ?z: E(?x, ?z).")
            .unwrap()
            .dependencies;
        let d = Instance::from_facts(vec![Fact::from_parts("E", vec![gc("a"), gc("b")])]);
        assert!(satisfies_all(&d, &sigma));
    }
}
