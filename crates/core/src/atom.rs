//! Predicates, atoms and facts.

use crate::error::CoreError;
use crate::interner::Symbol;
use crate::substitution::NullSubstitution;
use crate::term::{Constant, GroundTerm, NullValue, Term, Variable};
use std::collections::BTreeSet;
use std::fmt;

/// A predicate: an interned name together with an arity.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Predicate {
    /// Interned predicate name.
    pub name: Symbol,
    /// Number of argument positions.
    pub arity: usize,
}

impl Predicate {
    /// Creates a predicate with the given name and arity.
    pub fn new(name: &str, arity: usize) -> Self {
        Predicate {
            name: Symbol::new(name),
            arity,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

impl fmt::Debug for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// An atom `R(t1, …, tn)` whose arguments may be constants, nulls or variables.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Atom {
    /// The predicate of the atom.
    pub predicate: Predicate,
    /// The argument terms (length equals `predicate.arity`).
    pub terms: Vec<Term>,
}

impl Atom {
    /// Creates an atom, checking that the number of terms matches the arity.
    pub fn new(predicate: Predicate, terms: Vec<Term>) -> Result<Self, CoreError> {
        if terms.len() != predicate.arity {
            return Err(CoreError::ArityMismatch {
                predicate: predicate.name.as_str(),
                expected: predicate.arity,
                found: terms.len(),
            });
        }
        Ok(Atom { predicate, terms })
    }

    /// Creates an atom inferring the arity from the number of terms.
    pub fn from_parts(name: &str, terms: Vec<Term>) -> Self {
        Atom {
            predicate: Predicate::new(name, terms.len()),
            terms,
        }
    }

    /// All variables occurring in the atom, in order of first occurrence.
    pub fn variables(&self) -> Vec<Variable> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for t in &self.terms {
            if let Term::Var(v) = t {
                if seen.insert(*v) {
                    out.push(*v);
                }
            }
        }
        out
    }

    /// All constants occurring in the atom.
    pub fn constants(&self) -> Vec<Constant> {
        self.terms
            .iter()
            .filter_map(|t| match t {
                Term::Const(c) => Some(*c),
                _ => None,
            })
            .collect()
    }

    /// Returns `true` iff every argument is ground (constant or null).
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(|t| !t.is_var())
    }

    /// Converts the atom into a fact; fails if a variable occurs.
    pub fn to_fact(&self) -> Option<Fact> {
        let mut args = Vec::with_capacity(self.terms.len());
        for t in &self.terms {
            args.push(t.as_ground()?);
        }
        Some(Fact {
            predicate: self.predicate,
            terms: args,
        })
    }

    /// Applies a variable-renaming-free map over terms, producing a new atom.
    pub fn map_terms(&self, f: impl FnMut(&Term) -> Term) -> Atom {
        Atom {
            predicate: self.predicate,
            terms: self.terms.iter().map(f).collect(),
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate.name)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A fact: an atom whose arguments are all ground (constants or labeled nulls).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fact {
    /// The predicate of the fact.
    pub predicate: Predicate,
    /// The ground argument terms.
    pub terms: Vec<GroundTerm>,
}

impl Fact {
    /// Creates a fact, checking the arity.
    pub fn new(predicate: Predicate, terms: Vec<GroundTerm>) -> Result<Self, CoreError> {
        if terms.len() != predicate.arity {
            return Err(CoreError::ArityMismatch {
                predicate: predicate.name.as_str(),
                expected: predicate.arity,
                found: terms.len(),
            });
        }
        Ok(Fact { predicate, terms })
    }

    /// Creates a fact inferring the arity from the number of terms.
    pub fn from_parts(name: &str, terms: Vec<GroundTerm>) -> Self {
        Fact {
            predicate: Predicate::new(name, terms.len()),
            terms,
        }
    }

    /// The nulls occurring in the fact.
    pub fn nulls(&self) -> Vec<NullValue> {
        self.terms
            .iter()
            .filter_map(|t| match t {
                GroundTerm::Null(n) => Some(*n),
                _ => None,
            })
            .collect()
    }

    /// Returns `true` iff no labeled null occurs in the fact.
    pub fn is_null_free(&self) -> bool {
        self.terms.iter().all(|t| t.is_const())
    }

    /// Converts the fact into an atom (all arguments stay ground).
    pub fn to_atom(&self) -> Atom {
        Atom {
            predicate: self.predicate,
            terms: self.terms.iter().map(|&g| g.into()).collect(),
        }
    }

    /// Applies a null substitution, replacing occurrences of the substituted null.
    pub fn apply(&self, gamma: &NullSubstitution) -> Fact {
        Fact {
            predicate: self.predicate,
            terms: self.terms.iter().map(|t| gamma.apply_ground(*t)).collect(),
        }
    }
}

impl fmt::Display for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate.name)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Fact {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Constant, NullValue, Variable};

    fn c(s: &str) -> Term {
        Term::Const(Constant::new(s))
    }
    fn v(s: &str) -> Term {
        Term::Var(Variable::new(s))
    }

    #[test]
    fn atom_arity_check() {
        let p = Predicate::new("R", 2);
        assert!(Atom::new(p, vec![c("a")]).is_err());
        assert!(Atom::new(p, vec![c("a"), v("x")]).is_ok());
    }

    #[test]
    fn atom_variables_in_order_without_duplicates() {
        let a = Atom::from_parts("R", vec![v("x"), v("y"), v("x")]);
        assert_eq!(a.variables(), vec![Variable::new("x"), Variable::new("y")]);
    }

    #[test]
    fn atom_groundness_and_fact_conversion() {
        let ground = Atom::from_parts("R", vec![c("a"), Term::Null(NullValue(1))]);
        let open = Atom::from_parts("R", vec![c("a"), v("x")]);
        assert!(ground.is_ground());
        assert!(!open.is_ground());
        assert!(ground.to_fact().is_some());
        assert!(open.to_fact().is_none());
    }

    #[test]
    fn fact_nulls_and_null_free() {
        let f1 = Fact::from_parts(
            "E",
            vec![
                GroundTerm::Const(Constant::new("a")),
                GroundTerm::Null(NullValue(2)),
            ],
        );
        assert_eq!(f1.nulls(), vec![NullValue(2)]);
        assert!(!f1.is_null_free());
        let f2 = Fact::from_parts("N", vec![GroundTerm::Const(Constant::new("a"))]);
        assert!(f2.is_null_free());
    }

    #[test]
    fn fact_apply_substitution() {
        let f = Fact::from_parts(
            "E",
            vec![
                GroundTerm::Const(Constant::new("a")),
                GroundTerm::Null(NullValue(1)),
            ],
        );
        let gamma = NullSubstitution::single(NullValue(1), GroundTerm::Const(Constant::new("a")));
        let g = f.apply(&gamma);
        assert!(g.is_null_free());
        assert_eq!(g.terms[1], GroundTerm::Const(Constant::new("a")));
    }

    #[test]
    fn display_round_trip_shapes() {
        let a = Atom::from_parts("Edge", vec![v("x"), c("b")]);
        assert_eq!(format!("{a}"), "Edge(?x, b)");
        let f = Fact::from_parts("N", vec![GroundTerm::Null(NullValue(4))]);
        assert_eq!(format!("{f}"), "N(_:n4)");
    }

    #[test]
    fn fact_to_atom_round_trip() {
        let f = Fact::from_parts(
            "E",
            vec![
                GroundTerm::Const(Constant::new("a")),
                GroundTerm::Null(NullValue(9)),
            ],
        );
        let a = f.to_atom();
        assert_eq!(a.to_fact().unwrap(), f);
    }
}
