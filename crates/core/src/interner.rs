//! A process-wide string interner.
//!
//! Predicate names, constant names and variable names are interned into compact
//! [`Symbol`] handles so that terms and atoms are small, `Copy`, hashable and cheap
//! to compare. Interning is global (guarded by a [`std::sync::RwLock`]) which keeps
//! the rest of the API free of interner plumbing; the sets of distinct names occurring
//! in dependency sets and chase runs are small, so the table never becomes a
//! bottleneck.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string.
///
/// Two symbols compare equal iff they were created from equal strings.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: HashMap<String, u32>,
    strings: Vec<String>,
}

impl Interner {
    fn new() -> Self {
        Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        }
    }

    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        self.strings.push(s.to_owned());
        self.map.insert(s.to_owned(), id);
        id
    }
}

fn global() -> &'static RwLock<Interner> {
    static GLOBAL: OnceLock<RwLock<Interner>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(Interner::new()))
}

impl Symbol {
    /// Interns `s` and returns its symbol.
    pub fn new(s: &str) -> Symbol {
        // Fast path: read lock only.
        {
            let guard = global().read().expect("interner lock poisoned");
            if let Some(&id) = guard.map.get(s) {
                return Symbol(id);
            }
        }
        let mut guard = global().write().expect("interner lock poisoned");
        Symbol(guard.intern(s))
    }

    /// Returns the string this symbol was interned from.
    pub fn as_str(&self) -> String {
        global().read().expect("interner lock poisoned").strings[self.0 as usize].clone()
    }

    /// Returns the raw numeric id. Only meaningful within a single process.
    pub fn raw(&self) -> u32 {
        self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol::new(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("hello");
        let b = Symbol::new("hello");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "hello");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::new("R");
        let b = Symbol::new("S");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "R");
        assert_eq!(b.as_str(), "S");
    }

    #[test]
    fn display_round_trips() {
        let a = Symbol::new("Person");
        assert_eq!(format!("{a}"), "Person");
    }

    #[test]
    fn from_string_and_str_agree() {
        let a: Symbol = "x".into();
        let b: Symbol = String::from("x").into();
        assert_eq!(a, b);
    }

    #[test]
    fn symbols_are_ordered_consistently_with_creation() {
        let a = Symbol::new("zzz_first_unique_zzz");
        let b = Symbol::new("zzz_second_unique_zzz");
        assert!(a.raw() < b.raw());
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::new("concurrent-symbol").raw()))
            .collect();
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
