//! Tuple generating dependencies (TGDs), equality generating dependencies (EGDs) and
//! dependency sets, following Section 2 of the paper.

use crate::atom::{Atom, Predicate};
use crate::error::CoreError;
use crate::position::Position;
use crate::term::{Term, Variable};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A tuple generating dependency `∀x∀y ϕ(x,y) → ∃z ψ(x,z)`.
///
/// The body and head are conjunctions of atoms. Variables occurring in the head but not
/// in the body are the existentially quantified variables `z`; variables occurring in
/// both body and head are the *frontier* `x`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tgd {
    /// Optional label (e.g. `r1`) used for display and graph output.
    pub label: Option<String>,
    /// Body atoms `ϕ(x, y)`.
    pub body: Vec<Atom>,
    /// Head atoms `ψ(x, z)`.
    pub head: Vec<Atom>,
}

impl Tgd {
    /// Creates a TGD, validating that it is well formed:
    /// no nulls occur, and the body is non-empty.
    pub fn new(label: Option<String>, body: Vec<Atom>, head: Vec<Atom>) -> Result<Self, CoreError> {
        if body.is_empty() {
            return Err(CoreError::MalformedDependency {
                reason: "a TGD must have a non-empty body".into(),
            });
        }
        if head.is_empty() {
            return Err(CoreError::MalformedDependency {
                reason: "a TGD must have a non-empty head".into(),
            });
        }
        for atom in body.iter().chain(head.iter()) {
            if atom.terms.iter().any(Term::is_null) {
                return Err(CoreError::NullInDependency);
            }
        }
        Ok(Tgd { label, body, head })
    }

    /// The universally quantified variables: all variables of the body.
    pub fn universal_variables(&self) -> BTreeSet<Variable> {
        self.body.iter().flat_map(|a| a.variables()).collect()
    }

    /// The existentially quantified variables: head variables not occurring in the body.
    pub fn existential_variables(&self) -> Vec<Variable> {
        let universal = self.universal_variables();
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for atom in &self.head {
            for v in atom.variables() {
                if !universal.contains(&v) && seen.insert(v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// The frontier: variables occurring in both body and head.
    pub fn frontier_variables(&self) -> BTreeSet<Variable> {
        let universal = self.universal_variables();
        self.head
            .iter()
            .flat_map(|a| a.variables())
            .filter(|v| universal.contains(v))
            .collect()
    }

    /// Returns `true` iff the TGD is full (universally quantified), i.e. has no
    /// existential variables.
    pub fn is_full(&self) -> bool {
        self.existential_variables().is_empty()
    }

    /// Positions of the body in which `v` occurs.
    pub fn body_positions_of(&self, v: Variable) -> Vec<Position> {
        positions_of(&self.body, v)
    }

    /// Positions of the head in which `v` occurs.
    pub fn head_positions_of(&self, v: Variable) -> Vec<Position> {
        positions_of(&self.head, v)
    }
}

fn positions_of(atoms: &[Atom], v: Variable) -> Vec<Position> {
    let mut out = Vec::new();
    for atom in atoms {
        for (i, t) in atom.terms.iter().enumerate() {
            if *t == Term::Var(v) {
                out.push(Position::new(atom.predicate, i));
            }
        }
    }
    out
}

/// An equality generating dependency `∀x∀y ϕ(x,y) → x1 = x2`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Egd {
    /// Optional label used for display and graph output.
    pub label: Option<String>,
    /// Body atoms.
    pub body: Vec<Atom>,
    /// Left-hand side of the equality (must occur in the body).
    pub left: Variable,
    /// Right-hand side of the equality (must occur in the body).
    pub right: Variable,
}

impl Egd {
    /// Creates an EGD, validating that both equated variables occur in the body and no
    /// nulls occur.
    pub fn new(
        label: Option<String>,
        body: Vec<Atom>,
        left: Variable,
        right: Variable,
    ) -> Result<Self, CoreError> {
        if body.is_empty() {
            return Err(CoreError::MalformedDependency {
                reason: "an EGD must have a non-empty body".into(),
            });
        }
        for atom in &body {
            if atom.terms.iter().any(Term::is_null) {
                return Err(CoreError::NullInDependency);
            }
        }
        let body_vars: BTreeSet<Variable> = body.iter().flat_map(|a| a.variables()).collect();
        for v in [left, right] {
            if !body_vars.contains(&v) {
                return Err(CoreError::MalformedDependency {
                    reason: format!("equated variable {v} does not occur in the EGD body"),
                });
            }
        }
        if left == right {
            return Err(CoreError::MalformedDependency {
                reason: "an EGD must equate two distinct variables".into(),
            });
        }
        Ok(Egd {
            label,
            body,
            left,
            right,
        })
    }

    /// All variables of the body.
    pub fn universal_variables(&self) -> BTreeSet<Variable> {
        self.body.iter().flat_map(|a| a.variables()).collect()
    }
}

/// A dependency: either a TGD or an EGD.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Dependency {
    /// A tuple generating dependency.
    Tgd(Tgd),
    /// An equality generating dependency.
    Egd(Egd),
}

impl Dependency {
    /// The optional label of the dependency.
    pub fn label(&self) -> Option<&str> {
        match self {
            Dependency::Tgd(t) => t.label.as_deref(),
            Dependency::Egd(e) => e.label.as_deref(),
        }
    }

    /// Replaces the label.
    pub fn with_label(mut self, label: &str) -> Self {
        match &mut self {
            Dependency::Tgd(t) => t.label = Some(label.to_owned()),
            Dependency::Egd(e) => e.label = Some(label.to_owned()),
        }
        self
    }

    /// The body atoms.
    pub fn body(&self) -> &[Atom] {
        match self {
            Dependency::Tgd(t) => &t.body,
            Dependency::Egd(e) => &e.body,
        }
    }

    /// The head atoms of a TGD, or the empty slice for an EGD.
    pub fn head_atoms(&self) -> &[Atom] {
        match self {
            Dependency::Tgd(t) => &t.head,
            Dependency::Egd(_) => &[],
        }
    }

    /// Returns `true` iff this is a TGD.
    pub fn is_tgd(&self) -> bool {
        matches!(self, Dependency::Tgd(_))
    }

    /// Returns `true` iff this is an EGD.
    pub fn is_egd(&self) -> bool {
        matches!(self, Dependency::Egd(_))
    }

    /// Returns `true` iff the dependency is full (universally quantified): an EGD or a
    /// full TGD. This is the `Σ∀` membership test of the paper.
    pub fn is_full(&self) -> bool {
        match self {
            Dependency::Tgd(t) => t.is_full(),
            Dependency::Egd(_) => true,
        }
    }

    /// Returns `true` iff the dependency is existentially quantified (`Σ∃` membership).
    pub fn is_existential(&self) -> bool {
        !self.is_full()
    }

    /// Returns the TGD if this dependency is one.
    pub fn as_tgd(&self) -> Option<&Tgd> {
        match self {
            Dependency::Tgd(t) => Some(t),
            Dependency::Egd(_) => None,
        }
    }

    /// Returns the EGD if this dependency is one.
    pub fn as_egd(&self) -> Option<&Egd> {
        match self {
            Dependency::Egd(e) => Some(e),
            Dependency::Tgd(_) => None,
        }
    }

    /// All variables of the body, in a deterministic order.
    pub fn body_variables(&self) -> BTreeSet<Variable> {
        self.body().iter().flat_map(|a| a.variables()).collect()
    }

    /// All predicates occurring in the dependency.
    pub fn predicates(&self) -> BTreeSet<Predicate> {
        self.body()
            .iter()
            .chain(self.head_atoms())
            .map(|a| a.predicate)
            .collect()
    }

    /// Predicates occurring in the body.
    pub fn body_predicates(&self) -> BTreeSet<Predicate> {
        self.body().iter().map(|a| a.predicate).collect()
    }

    /// Predicates occurring in the head (empty for EGDs).
    pub fn head_predicates(&self) -> BTreeSet<Predicate> {
        self.head_atoms().iter().map(|a| a.predicate).collect()
    }
}

impl fmt::Display for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(l) = self.label() {
            write!(f, "{l}: ")?;
        }
        let body = self
            .body()
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        match self {
            Dependency::Tgd(t) => {
                let ex = t.existential_variables();
                let head = t
                    .head
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(", ");
                if ex.is_empty() {
                    write!(f, "{body} -> {head}")
                } else {
                    let exvars = ex
                        .iter()
                        .map(|v| v.to_string())
                        .collect::<Vec<_>>()
                        .join(", ");
                    write!(f, "{body} -> exists {exvars}: {head}")
                }
            }
            Dependency::Egd(e) => write!(f, "{body} -> {} = {}", e.left, e.right),
        }
    }
}

impl fmt::Debug for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<Tgd> for Dependency {
    fn from(t: Tgd) -> Self {
        Dependency::Tgd(t)
    }
}

impl From<Egd> for Dependency {
    fn from(e: Egd) -> Self {
        Dependency::Egd(e)
    }
}

/// Identifier of a dependency within a [`DependencySet`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct DepId(pub usize);

/// A finite set of dependencies `Σ`, with the views used throughout the paper:
/// `Σtgd`, `Σegd`, `Σ∀` (full dependencies, including all EGDs) and `Σ∃`.
#[derive(Clone, Default)]
pub struct DependencySet {
    deps: Vec<Dependency>,
}

impl DependencySet {
    /// Creates an empty dependency set.
    pub fn new() -> Self {
        DependencySet { deps: Vec::new() }
    }

    /// Creates a set from a vector of dependencies.
    pub fn from_vec(deps: Vec<Dependency>) -> Self {
        DependencySet { deps }
    }

    /// Adds a dependency and returns its id.
    pub fn push(&mut self, dep: Dependency) -> DepId {
        let id = DepId(self.deps.len());
        self.deps.push(dep);
        id
    }

    /// Number of dependencies.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Returns `true` iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// The dependency with the given id.
    pub fn get(&self, id: DepId) -> &Dependency {
        &self.deps[id.0]
    }

    /// Iterates over `(id, dependency)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (DepId, &Dependency)> {
        self.deps.iter().enumerate().map(|(i, d)| (DepId(i), d))
    }

    /// All dependency ids.
    pub fn ids(&self) -> impl Iterator<Item = DepId> + '_ {
        (0..self.deps.len()).map(DepId)
    }

    /// The slice of all dependencies.
    pub fn as_slice(&self) -> &[Dependency] {
        &self.deps
    }

    /// Ids of all TGDs (`Σtgd`).
    pub fn tgd_ids(&self) -> Vec<DepId> {
        self.iter()
            .filter(|(_, d)| d.is_tgd())
            .map(|(i, _)| i)
            .collect()
    }

    /// Ids of all EGDs (`Σegd`).
    pub fn egd_ids(&self) -> Vec<DepId> {
        self.iter()
            .filter(|(_, d)| d.is_egd())
            .map(|(i, _)| i)
            .collect()
    }

    /// Ids of all full dependencies (`Σ∀`): full TGDs and all EGDs.
    pub fn full_ids(&self) -> Vec<DepId> {
        self.iter()
            .filter(|(_, d)| d.is_full())
            .map(|(i, _)| i)
            .collect()
    }

    /// Ids of all existentially quantified dependencies (`Σ∃`).
    pub fn existential_ids(&self) -> Vec<DepId> {
        self.iter()
            .filter(|(_, d)| d.is_existential())
            .map(|(i, _)| i)
            .collect()
    }

    /// The set of TGDs only, as a new dependency set (labels preserved).
    pub fn tgds_only(&self) -> DependencySet {
        DependencySet::from_vec(self.deps.iter().filter(|d| d.is_tgd()).cloned().collect())
    }

    /// All predicates occurring in the set (the schema `R`).
    pub fn predicates(&self) -> BTreeSet<Predicate> {
        self.deps.iter().flat_map(|d| d.predicates()).collect()
    }

    /// A subset of this dependency set, preserving labels and relative order.
    pub fn restrict(&self, ids: &BTreeSet<DepId>) -> DependencySet {
        DependencySet::from_vec(
            self.iter()
                .filter(|(i, _)| ids.contains(i))
                .map(|(_, d)| d.clone())
                .collect(),
        )
    }

    /// Looks up a dependency by label.
    pub fn by_label(&self, label: &str) -> Option<(DepId, &Dependency)> {
        self.iter().find(|(_, d)| d.label() == Some(label))
    }

    /// Returns the map from labels to ids (only labelled dependencies appear).
    pub fn label_map(&self) -> BTreeMap<String, DepId> {
        self.iter()
            .filter_map(|(i, d)| d.label().map(|l| (l.to_owned(), i)))
            .collect()
    }
}

impl fmt::Display for DependencySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for dep in &self.deps {
            writeln!(f, "{dep}.")?;
        }
        Ok(())
    }
}

impl fmt::Debug for DependencySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromIterator<Dependency> for DependencySet {
    fn from_iter<T: IntoIterator<Item = Dependency>>(iter: T) -> Self {
        DependencySet::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{atom, cst, var};

    fn example1() -> DependencySet {
        // Σ1 of Example 1.
        let r1 = Tgd::new(
            Some("r1".into()),
            vec![atom("N", vec![var("x")])],
            vec![atom("E", vec![var("x"), var("y")])],
        )
        .unwrap();
        let r2 = Tgd::new(
            Some("r2".into()),
            vec![atom("E", vec![var("x"), var("y")])],
            vec![atom("N", vec![var("y")])],
        )
        .unwrap();
        let r3 = Egd::new(
            Some("r3".into()),
            vec![atom("E", vec![var("x"), var("y")])],
            Variable::new("x"),
            Variable::new("y"),
        )
        .unwrap();
        DependencySet::from_vec(vec![r1.into(), r2.into(), r3.into()])
    }

    #[test]
    fn tgd_variable_classification() {
        let sigma = example1();
        let r1 = sigma.get(DepId(0)).as_tgd().unwrap().clone();
        assert_eq!(r1.existential_variables(), vec![Variable::new("y")]);
        assert!(r1.frontier_variables().contains(&Variable::new("x")));
        assert!(!r1.is_full());
        let r2 = sigma.get(DepId(1)).as_tgd().unwrap().clone();
        assert!(r2.is_full());
        assert!(r2.existential_variables().is_empty());
    }

    #[test]
    fn dependency_set_views() {
        let sigma = example1();
        assert_eq!(sigma.tgd_ids(), vec![DepId(0), DepId(1)]);
        assert_eq!(sigma.egd_ids(), vec![DepId(2)]);
        // Σ∀ contains the full TGD r2 and the EGD r3; Σ∃ contains r1.
        assert_eq!(sigma.full_ids(), vec![DepId(1), DepId(2)]);
        assert_eq!(sigma.existential_ids(), vec![DepId(0)]);
    }

    #[test]
    fn egd_requires_body_variables() {
        let bad = Egd::new(
            None,
            vec![atom("E", vec![var("x"), var("y")])],
            Variable::new("x"),
            Variable::new("z"),
        );
        assert!(bad.is_err());
        let same = Egd::new(
            None,
            vec![atom("E", vec![var("x"), var("y")])],
            Variable::new("x"),
            Variable::new("x"),
        );
        assert!(same.is_err());
    }

    #[test]
    fn tgd_rejects_empty_body_or_head() {
        assert!(Tgd::new(None, vec![], vec![atom("A", vec![var("x")])]).is_err());
        assert!(Tgd::new(None, vec![atom("A", vec![var("x")])], vec![]).is_err());
    }

    #[test]
    fn display_tgd_and_egd() {
        let sigma = example1();
        assert_eq!(
            sigma.get(DepId(0)).to_string(),
            "r1: N(?x) -> exists ?y: E(?x, ?y)"
        );
        assert_eq!(sigma.get(DepId(1)).to_string(), "r2: E(?x, ?y) -> N(?y)");
        assert_eq!(sigma.get(DepId(2)).to_string(), "r3: E(?x, ?y) -> ?x = ?y");
    }

    #[test]
    fn predicates_and_schema() {
        let sigma = example1();
        let preds = sigma.predicates();
        assert_eq!(preds.len(), 2);
        assert!(preds.contains(&Predicate::new("N", 1)));
        assert!(preds.contains(&Predicate::new("E", 2)));
    }

    #[test]
    fn restrict_and_label_lookup() {
        let sigma = example1();
        let (id, dep) = sigma.by_label("r2").unwrap();
        assert_eq!(id, DepId(1));
        assert!(dep.is_tgd());
        let sub = sigma.restrict(&[DepId(0), DepId(2)].into_iter().collect());
        assert_eq!(sub.len(), 2);
        assert!(sub.by_label("r2").is_none());
    }

    #[test]
    fn tgds_only_drops_egds() {
        let sigma = example1();
        let tgds = sigma.tgds_only();
        assert_eq!(tgds.len(), 2);
        assert!(tgds.iter().all(|(_, d)| d.is_tgd()));
    }

    #[test]
    fn constants_are_allowed_in_dependencies() {
        let t = Tgd::new(
            None,
            vec![atom("A", vec![var("x"), cst("admin")])],
            vec![atom("B", vec![var("x")])],
        );
        assert!(t.is_ok());
    }

    #[test]
    fn body_and_head_positions_of_variable() {
        let t = Tgd::new(
            None,
            vec![atom("E", vec![var("x"), var("y")])],
            vec![atom("E", vec![var("y"), var("x")])],
        )
        .unwrap();
        let x = Variable::new("x");
        assert_eq!(t.body_positions_of(x).len(), 1);
        assert_eq!(t.body_positions_of(x)[0].index, 0);
        assert_eq!(t.head_positions_of(x)[0].index, 1);
    }
}
