//! A dense bitset over [`FactId`]s — the live-set representation of
//! [`Instance`](crate::instance::Instance).
//!
//! Fact ids are dense `u32`s issued by the append-only store, so set
//! membership fits one bit per *interned* fact: a million-fact instance's
//! live set is ~128 KB of contiguous words instead of a multi-megabyte hash
//! table, membership is a shift-and-mask instead of a SipHash probe, and bulk
//! loads — which insert ids in ascending order — touch the words
//! sequentially. At 10M facts this is the difference between an L2-resident
//! structure and ~80 MB of random DRAM traffic on every insert (measured in
//! the `fact_store` bench's intern-flatness gate).

use crate::fact_store::FactId;

/// A set of [`FactId`]s stored as a bitmap, one bit per id.
#[derive(Clone, Debug, Default)]
pub struct FactIdSet {
    words: Vec<u64>,
    len: usize,
}

impl FactIdSet {
    /// An empty set.
    pub fn new() -> Self {
        FactIdSet::default()
    }

    /// An empty set with room for ids `0..capacity` without reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        FactIdSet {
            words: vec![0; capacity.div_ceil(64)],
            len: 0,
        }
    }

    /// Number of ids in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` iff `id` is in the set.
    pub fn contains(&self, id: FactId) -> bool {
        match self.words.get(id.0 as usize / 64) {
            Some(w) => w & (1u64 << (id.0 % 64)) != 0,
            None => false,
        }
    }

    /// Adds `id`; returns `true` iff it was not already present.
    pub fn insert(&mut self, id: FactId) -> bool {
        let word = id.0 as usize / 64;
        if word >= self.words.len() {
            // Amortised doubling: ids arrive mostly in ascending order, so a
            // plain resize-to-fit would reallocate per word.
            let target = (word + 1).max(self.words.len() * 2);
            self.words.resize(target, 0);
        }
        let bit = 1u64 << (id.0 % 64);
        let fresh = self.words[word] & bit == 0;
        self.words[word] |= bit;
        self.len += fresh as usize;
        fresh
    }

    /// Removes `id`; returns `true` iff it was present.
    pub fn remove(&mut self, id: FactId) -> bool {
        let Some(w) = self.words.get_mut(id.0 as usize / 64) else {
            return false;
        };
        let bit = 1u64 << (id.0 % 64);
        let present = *w & bit != 0;
        *w &= !bit;
        self.len -= present as usize;
        present
    }

    /// Iterates over the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = FactId> + '_ {
        self.words.iter().enumerate().flat_map(|(i, &w)| {
            let mut rest = w;
            std::iter::from_fn(move || {
                if rest == 0 {
                    return None;
                }
                let bit = rest.trailing_zeros();
                rest &= rest - 1;
                Some(FactId(i as u32 * 64 + bit))
            })
        })
    }
}

impl FromIterator<FactId> for FactIdSet {
    fn from_iter<T: IntoIterator<Item = FactId>>(iter: T) -> Self {
        let mut set = FactIdSet::new();
        for id in iter {
            set.insert(id);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove_len() {
        let mut s = FactIdSet::new();
        assert!(s.is_empty());
        assert!(!s.contains(FactId(0)));
        assert!(s.insert(FactId(0)));
        assert!(s.insert(FactId(65)));
        assert!(s.insert(FactId(1_000_000)));
        assert!(!s.insert(FactId(65)), "duplicate insert");
        assert_eq!(s.len(), 3);
        assert!(s.contains(FactId(65)));
        assert!(!s.contains(FactId(64)));
        assert!(!s.contains(FactId(u32::MAX)), "out of range is absent");
        assert!(s.remove(FactId(65)));
        assert!(!s.remove(FactId(65)), "double remove");
        assert!(!s.remove(FactId(7)), "never inserted");
        assert_eq!(s.len(), 2);
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![FactId(0), FactId(1_000_000)],
            "iteration is ascending"
        );
    }

    #[test]
    fn with_capacity_and_from_iter_agree() {
        let ids = [FactId(3), FactId(300), FactId(3), FactId(63), FactId(64)];
        let a: FactIdSet = ids.iter().copied().collect();
        let mut b = FactIdSet::with_capacity(301);
        for &id in &ids {
            b.insert(id);
        }
        assert_eq!(a.len(), 4);
        assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
    }
}
