//! # chase-core
//!
//! Core data model for the `egd-chase` workspace: the dependency language of
//! Calautti et al., *Exploiting Equality Generating Dependencies in Checking Chase
//! Termination* (PVLDB 9(5), 2016) and the machinery every other crate builds on.
//!
//! The crate provides:
//!
//! * interned [`Symbol`]s and the three kinds of terms of the paper's Section 2
//!   (constants, labeled nulls, variables) — see [`term`];
//! * [`Atom`]s, ground [`Fact`]s and predicates — see [`atom`];
//! * tuple generating dependencies ([`Tgd`]), equality generating dependencies
//!   ([`Egd`]) and [`DependencySet`]s with the `Σtgd / Σegd / Σ∀ / Σ∃` views used
//!   throughout the paper — see [`dependency`];
//! * the columnar, dictionary-compressed fact store (per-predicate column
//!   strips of dense [`TermId`] cells, dense [`FactId`]s) — see [`fact_store`]
//!   — with store-backed instances and databases holding per-predicate id lists
//!   and on-disk snapshot save/load — see [`instance`] and [`persist`] — and
//!   opt-in per-(predicate, position) / per-null id indexes — see [`index`];
//! * the workspace's single join engine ([`JoinPlan`] + [`HomomorphismSearch`]),
//!   substitutions and first-order satisfaction — see [`homomorphism`],
//!   [`substitution`] and [`satisfaction`];
//! * a small textual format and parser for dependencies and facts — see [`parser`];
//! * ergonomic constructors for writing dependencies in Rust — see [`builder`].
//!
//! ## Quick example
//!
//! ```
//! use chase_core::parser::parse_program;
//!
//! // Σ1 of Example 1 in the paper.
//! let program = parse_program(
//!     r#"
//!     r1: N(?x) -> exists ?y: E(?x, ?y).
//!     r2: E(?x, ?y) -> N(?y).
//!     r3: E(?x, ?y) -> ?x = ?y.
//!     N(a).
//!     "#,
//! )
//! .unwrap();
//! assert_eq!(program.dependencies.len(), 3);
//! assert_eq!(program.database.len(), 1);
//! ```

// Unsafe code is denied crate-wide; the single audited exception is the scoped
// job lifetime erasure in [`pool`], which carries its own safety proof.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod atom;
pub mod builder;
pub mod dependency;
pub mod error;
pub mod fact_store;
pub mod homomorphism;
pub mod id_set;
pub mod index;
pub mod instance;
pub mod interner;
pub mod isomorphism;
pub mod parser;
pub mod persist;
pub mod pool;
pub mod position;
pub mod satisfaction;
pub mod snapshot;
pub mod substitution;
pub mod term;

pub use atom::{Atom, Fact, Predicate};
pub use dependency::{DepId, Dependency, DependencySet, Egd, Tgd};
pub use error::CoreError;
pub use fact_store::{FactId, FactStore, FactTerms, PredicateId, StoreFootprint, TermId};
pub use homomorphism::{Assignment, HomomorphismSearch, JoinPlan};
pub use id_set::FactIdSet;
pub use index::IndexedInstance;
pub use instance::Instance;
pub use interner::Symbol;
pub use isomorphism::isomorphic_up_to_null_renaming;
pub use parser::{parse_dependencies, parse_program, Program};
pub use persist::PersistError;
pub use position::Position;
pub use snapshot::{DiscoveryStats, ShardStats, Snapshot};
pub use substitution::NullSubstitution;
pub use term::{Constant, GroundTerm, NullValue, Term, Variable};
