//! Instance isomorphism up to a renaming of labeled nulls.
//!
//! Chase results are canonical only *up to null renaming*: two runs of a
//! (semi-)oblivious chase — or an incrementally repaired materialization vs. a
//! from-scratch re-chase — agree on the null-free part and on the shape of the
//! null-bearing facts, but number their invented nulls differently. The decision
//! procedure here searches for an exact **bijection** `nulls(a) → nulls(b)` that
//! maps the facts of `a` onto the facts of `b`. A homomorphism in each direction
//! is *not* enough (homomorphisms may collapse nulls), which is why this is a
//! separate notion from [`crate::homomorphism`].
//!
//! This is the checker the PR 5 differential harness (`tests/property_tests.rs`)
//! introduced; it lives in `chase_core` so that the incremental-maintenance
//! differential suite and the benches can share it. Those suites compare
//! instances with hundreds of null-bearing facts, so the search is pruned hard
//! before any backtracking happens:
//!
//! 1. **Skeletons.** A fact's skeleton is the fact with every null replaced by a
//!    placeholder. A bijective renaming preserves skeletons, so `a`'s and `b`'s
//!    null-bearing facts must have equal skeleton multisets, and a fact can only
//!    map to a fact with the same skeleton.
//! 2. **Color refinement.** Nulls are partitioned by iterated 1-WL-style
//!    refinement over their occurrence structure (predicate, skeleton, argument
//!    position, co-occurring null colors). Any renaming respects the final
//!    colors, so `n → m` is only attempted when their colors agree, and color
//!    histograms that disagree reject without searching at all.
//! 3. **Most-constrained-first search.** The backtracker always extends the
//!    partial map at the fact with the fewest viable images left.
//!
//! All three prunings are invariant-based, so the procedure stays sound *and*
//! complete; the worst case is still exponential, but chase-shaped instances
//! resolve without meaningful backtracking.

use crate::atom::Fact;
use crate::instance::Instance;
use crate::term::{GroundTerm, NullValue};
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};

/// A fact with its nulls erased to a placeholder: the renaming-invariant part.
fn skeleton(f: &Fact) -> Fact {
    Fact {
        predicate: f.predicate,
        terms: f
            .terms
            .iter()
            .map(|t| match t {
                GroundTerm::Null(_) => GroundTerm::Null(NullValue(u64::MAX)),
                c => *c,
            })
            .collect(),
    }
}

fn hashed(value: impl Hash) -> u64 {
    let mut h = DefaultHasher::new();
    value.hash(&mut h);
    h.finish()
}

/// Iterated color refinement over null occurrences. The initial color of a null
/// is the multiset of `(skeleton, position)` pairs it occurs at; each round
/// folds in the colors of the nulls it co-occurs with. Rounds are capped at the
/// null count (the partition is strictly coarser-to-finer and stabilizes by
/// then), and stop early at a fixpoint.
fn null_colors(facts: &[Fact]) -> HashMap<NullValue, u64> {
    let mut occurrences: HashMap<NullValue, Vec<(usize, usize)>> = HashMap::new();
    for (fi, f) in facts.iter().enumerate() {
        for (pos, t) in f.terms.iter().enumerate() {
            if let GroundTerm::Null(n) = t {
                occurrences.entry(*n).or_default().push((fi, pos));
            }
        }
    }
    let skeletons: Vec<u64> = facts.iter().map(|f| hashed(skeleton(f))).collect();
    let mut colors: HashMap<NullValue, u64> = occurrences
        .iter()
        .map(|(n, occ)| {
            let mut sig: Vec<(u64, usize)> =
                occ.iter().map(|&(fi, pos)| (skeletons[fi], pos)).collect();
            sig.sort_unstable();
            (*n, hashed(&sig))
        })
        .collect();
    let mut classes = colors.values().collect::<HashSet<_>>().len();
    for _ in 0..colors.len() {
        let next: HashMap<NullValue, u64> = occurrences
            .iter()
            .map(|(n, occ)| {
                let mut sig: Vec<(u64, usize, Vec<u64>)> = occ
                    .iter()
                    .map(|&(fi, pos)| {
                        let mut neighbors: Vec<u64> = facts[fi]
                            .terms
                            .iter()
                            .filter_map(|t| match t {
                                GroundTerm::Null(m) => Some(colors[m]),
                                _ => None,
                            })
                            .collect();
                        neighbors.sort_unstable();
                        (skeletons[fi], pos, neighbors)
                    })
                    .collect();
                sig.sort_unstable();
                (*n, hashed((colors[n], &sig)))
            })
            .collect();
        let next_classes = next.values().collect::<HashSet<_>>().len();
        colors = next;
        if next_classes == classes {
            break;
        }
        classes = next_classes;
    }
    colors
}

/// Decides whether `a` and `b` are equal up to a renaming of labeled nulls, by
/// searching for an exact bijection `nulls(a) → nulls(b)` that maps the facts of
/// `a` onto the facts of `b`.
///
/// Soundness of the success case: the mapping is the identity on constants and
/// injective on nulls, hence injective on facts; it sends the null-bearing facts
/// of `a` into those of `b`, and the cardinality checks make it onto.
/// Completeness: skeleton, color, and ordering prunings only discard images no
/// bijective renaming can use (see the module docs), and the backtracking
/// explores every remaining candidate.
pub fn isomorphic_up_to_null_renaming(a: &Instance, b: &Instance) -> bool {
    if a.len() != b.len() || a.nulls().len() != b.nulls().len() {
        return false;
    }
    if a.null_free_part() != b.null_free_part() {
        return false;
    }
    let fa: Vec<Fact> = a.facts().filter(|f| !f.nulls().is_empty()).collect();
    let fb: Vec<Fact> = b.facts().filter(|f| !f.nulls().is_empty()).collect();
    if fa.len() != fb.len() {
        return false;
    }
    if fa.is_empty() {
        return true;
    }

    // Renaming-invariant fast rejects: skeleton multisets, then color
    // histograms.
    let mut skel_a: Vec<Fact> = fa.iter().map(skeleton).collect();
    let mut skel_b: Vec<Fact> = fb.iter().map(skeleton).collect();
    skel_a.sort();
    skel_b.sort();
    if skel_a != skel_b {
        return false;
    }
    let colors_a = null_colors(&fa);
    let colors_b = null_colors(&fb);
    let histogram = |colors: &HashMap<NullValue, u64>| {
        let mut h: Vec<u64> = colors.values().copied().collect();
        h.sort_unstable();
        h
    };
    if histogram(&colors_a) != histogram(&colors_b) {
        return false;
    }

    // Candidate images for each fact of `a`: the same-skeleton facts of `b`.
    let mut b_by_skeleton: HashMap<Fact, Vec<usize>> = HashMap::new();
    for (i, f) in fb.iter().enumerate() {
        b_by_skeleton.entry(skeleton(f)).or_default().push(i);
    }
    let candidates: Vec<&[usize]> = fa
        .iter()
        .map(|f| b_by_skeleton[&skeleton(f)].as_slice())
        .collect();

    struct Search<'s> {
        fa: &'s [Fact],
        fb: &'s [Fact],
        candidates: &'s [&'s [usize]],
        colors_a: &'s HashMap<NullValue, u64>,
        colors_b: &'s HashMap<NullValue, u64>,
        map: HashMap<NullValue, NullValue>,
        used_nulls: HashSet<NullValue>,
        used_facts: Vec<bool>,
        placed: Vec<bool>,
    }
    impl Search<'_> {
        /// Binds `fa[i] → fb[j]`'s null pairs, returning the newly bound pairs,
        /// or `None` if the pair is inconsistent with the current map.
        fn try_bind(&mut self, i: usize, j: usize) -> Option<Vec<(NullValue, NullValue)>> {
            let mut newly = Vec::new();
            for (ta, tb) in self.fa[i].terms.iter().zip(self.fb[j].terms.iter()) {
                let ok = match (ta, tb) {
                    (GroundTerm::Null(n), GroundTerm::Null(m)) => match self.map.get(n) {
                        Some(mapped) => mapped == m,
                        None if self.used_nulls.contains(m) => false,
                        None if self.colors_a[n] != self.colors_b[m] => false,
                        None => {
                            self.map.insert(*n, *m);
                            self.used_nulls.insert(*m);
                            newly.push((*n, *m));
                            true
                        }
                    },
                    // Skeletons already matched, so constant positions agree.
                    _ => true,
                };
                if !ok {
                    for (n, m) in newly.drain(..) {
                        self.map.remove(&n);
                        self.used_nulls.remove(&m);
                    }
                    return None;
                }
            }
            Some(newly)
        }

        fn viable(&mut self, i: usize) -> Vec<usize> {
            let candidates: Vec<usize> = self.candidates[i].to_vec();
            let mut viable = Vec::new();
            for j in candidates {
                if self.used_facts[j] {
                    continue;
                }
                if let Some(newly) = self.try_bind(i, j) {
                    for (n, m) in newly {
                        self.map.remove(&n);
                        self.used_nulls.remove(&m);
                    }
                    viable.push(j);
                }
            }
            viable
        }

        fn solve(&mut self, remaining: usize) -> bool {
            if remaining == 0 {
                return true;
            }
            // Most-constrained fact first; a fact with no viable image fails
            // the whole branch immediately.
            let mut best: Option<(usize, Vec<usize>)> = None;
            for i in 0..self.fa.len() {
                if self.placed[i] {
                    continue;
                }
                let v = self.viable(i);
                let len = v.len();
                if best.as_ref().is_none_or(|(_, bv)| len < bv.len()) {
                    best = Some((i, v));
                    if len <= 1 {
                        break;
                    }
                }
            }
            let (i, viable) = best.expect("remaining > 0 guarantees an unplaced fact");
            self.placed[i] = true;
            for j in viable {
                if self.used_facts[j] {
                    continue;
                }
                let Some(newly) = self.try_bind(i, j) else {
                    continue;
                };
                self.used_facts[j] = true;
                if self.solve(remaining - 1) {
                    return true;
                }
                self.used_facts[j] = false;
                for (n, m) in newly {
                    self.map.remove(&n);
                    self.used_nulls.remove(&m);
                }
            }
            self.placed[i] = false;
            false
        }
    }

    let used_facts = vec![false; fb.len()];
    let placed = vec![false; fa.len()];
    let mut search = Search {
        fa: &fa,
        fb: &fb,
        candidates: &candidates,
        colors_a: &colors_a,
        colors_b: &colors_b,
        map: HashMap::new(),
        used_nulls: HashSet::new(),
        used_facts,
        placed,
    };
    search.solve(fa.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Constant;

    fn cst(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }
    fn null(i: u64) -> GroundTerm {
        GroundTerm::Null(NullValue(i))
    }

    #[test]
    fn renamed_nulls_are_isomorphic() {
        let a = Instance::from_facts(vec![
            Fact::from_parts("E", vec![cst("a"), null(1)]),
            Fact::from_parts("E", vec![null(1), null(2)]),
        ]);
        let b = Instance::from_facts(vec![
            Fact::from_parts("E", vec![cst("a"), null(9)]),
            Fact::from_parts("E", vec![null(9), null(4)]),
        ]);
        assert!(isomorphic_up_to_null_renaming(&a, &b));
    }

    #[test]
    fn collapsed_nulls_are_not_isomorphic() {
        // b collapses a's two distinct nulls onto one: homomorphic both ways on
        // the E-shape, but not bijective.
        let a = Instance::from_facts(vec![
            Fact::from_parts("E", vec![cst("a"), null(1)]),
            Fact::from_parts("E", vec![cst("a"), null(2)]),
            Fact::from_parts("N", vec![cst("a")]),
        ]);
        let b = Instance::from_facts(vec![
            Fact::from_parts("E", vec![cst("a"), null(7)]),
            Fact::from_parts("E", vec![cst("a"), cst("a")]),
            Fact::from_parts("N", vec![cst("a")]),
        ]);
        assert!(!isomorphic_up_to_null_renaming(&a, &b));
    }

    #[test]
    fn differing_null_free_parts_fail_fast() {
        let a = Instance::from_facts(vec![Fact::from_parts("N", vec![cst("a")])]);
        let b = Instance::from_facts(vec![Fact::from_parts("N", vec![cst("b")])]);
        assert!(!isomorphic_up_to_null_renaming(&a, &b));
    }

    #[test]
    fn null_linking_structure_is_checked() {
        // Same fact counts and null counts, but the chain structure differs.
        let a = Instance::from_facts(vec![
            Fact::from_parts("E", vec![null(1), null(2)]),
            Fact::from_parts("E", vec![null(2), null(3)]),
        ]);
        let b = Instance::from_facts(vec![
            Fact::from_parts("E", vec![null(1), null(2)]),
            Fact::from_parts("E", vec![null(1), null(3)]),
        ]);
        assert!(!isomorphic_up_to_null_renaming(&a, &b));
    }

    #[test]
    fn symmetric_null_families_stay_tractable() {
        // Dozens of interchangeable nulls hanging off shared anchors: the old
        // naive backtracker went exponential here; color refinement plus
        // skeleton grouping must decide it instantly.
        let mut av = Vec::new();
        let mut bv = Vec::new();
        for i in 0..40u64 {
            let anchor = cst(if i % 2 == 0 { "even" } else { "odd" });
            av.push(Fact::from_parts("R", vec![anchor, null(i + 1)]));
            av.push(Fact::from_parts("S", vec![null(i + 1), null(100 + i)]));
            bv.push(Fact::from_parts("R", vec![anchor, null(1000 - i)]));
            bv.push(Fact::from_parts("S", vec![null(1000 - i), null(2000 + i)]));
        }
        let a = Instance::from_facts(av);
        let b = Instance::from_facts(bv);
        assert!(isomorphic_up_to_null_renaming(&a, &b));
    }

    #[test]
    fn symmetric_negative_case_stays_tractable() {
        // Identical fact/null counts and skeleton multisets, but in `b` one
        // head null carries two S-links and another carries none — no
        // bijection exists, and the checker must see that quickly.
        let mut av = Vec::new();
        let mut bv = Vec::new();
        for i in 0..40u64 {
            av.push(Fact::from_parts("R", vec![cst("c"), null(i + 1)]));
            av.push(Fact::from_parts("S", vec![null(i + 1), null(100 + i)]));
            bv.push(Fact::from_parts("R", vec![cst("c"), null(1000 - i)]));
            let head = if i == 1 { null(1000) } else { null(1000 - i) };
            bv.push(Fact::from_parts("S", vec![head, null(2000 + i)]));
        }
        let a = Instance::from_facts(av);
        let b = Instance::from_facts(bv);
        assert_eq!(a.nulls().len(), b.nulls().len());
        assert!(!isomorphic_up_to_null_renaming(&a, &b));
    }
}
