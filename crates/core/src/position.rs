//! Predicate positions, the basic unit of the static termination criteria.
//!
//! A *position* `R[i]` denotes the `i`-th argument slot of predicate `R`. Weak
//! acyclicity, safety, super-weak acyclicity and the adornment machinery all reason
//! about how values propagate between positions.

use crate::atom::Predicate;
use std::fmt;

/// A position `R[i]`: the `i`-th argument slot (0-based) of predicate `R`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Position {
    /// The predicate.
    pub predicate: Predicate,
    /// The 0-based argument index.
    pub index: usize,
}

impl Position {
    /// Creates a position.
    pub fn new(predicate: Predicate, index: usize) -> Self {
        Position { predicate, index }
    }

    /// Enumerates all positions of a predicate.
    pub fn all_of(predicate: Predicate) -> impl Iterator<Item = Position> {
        (0..predicate.arity).map(move |index| Position { predicate, index })
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.predicate.name, self.index + 1)
    }
}

impl fmt::Debug for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_positions_of_predicate() {
        let p = Predicate::new("T", 3);
        let ps: Vec<_> = Position::all_of(p).collect();
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].index, 0);
        assert_eq!(ps[2].index, 2);
    }

    #[test]
    fn display_is_one_based_like_the_literature() {
        let p = Predicate::new("E", 2);
        assert_eq!(format!("{}", Position::new(p, 0)), "E[1]");
        assert_eq!(format!("{}", Position::new(p, 1)), "E[2]");
    }

    #[test]
    fn positions_of_distinct_predicates_differ() {
        let p = Predicate::new("A", 1);
        let q = Predicate::new("B", 1);
        assert_ne!(Position::new(p, 0), Position::new(q, 0));
    }
}
