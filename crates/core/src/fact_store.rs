//! Arena-interned fact storage: dense ids over a flat term arena.
//!
//! A [`FactStore`] interns every fact exactly once: the argument terms of all facts
//! live contiguously in one flat `Vec<GroundTerm>` arena, each fact is a dense
//! [`FactId`] pointing at a `(predicate, term-span)` record, and predicates are
//! interned to dense [`PredicateId`]s. Equal facts always receive the same id, so
//! fact identity is id equality and set membership is an integer-set operation —
//! no per-fact heap allocation, no `Vec<GroundTerm>` clones on the hot paths.
//!
//! The store is **append-only**: interning never invalidates an id, and ids are
//! never reused. "Removing" a fact is the owning [`Instance`](crate::Instance)'s
//! business (it keeps a live-id set); an EGD substitution interns the rewritten
//! image as a fresh id ([`FactStore::intern_rewritten`]) and reports the
//! `(old, new)` id pair — the delta the incremental trigger engine re-seeds from.
//!
//! ## Who holds what
//!
//! * [`crate::Instance`] owns a store plus a live-id set and per-predicate id
//!   lists; the legacy [`Fact`]-value API is a thin view that materialises facts
//!   from the arena on demand.
//! * [`crate::IndexedInstance`] keeps its per-(predicate, position, term) and
//!   per-null indexes as `Vec<FactId>` buckets over the same store.
//! * The join engine ([`crate::homomorphism`]) enumerates candidate `FactId`
//!   slices and unifies atoms directly against arena term slices.
//!
//! Dedup is a small open-addressing hash table (linear probing, power-of-two
//! capacity) whose buckets hold `FactId`s; collisions are resolved by comparing
//! `(PredicateId, term slice)` against the arena, so the table stores no keys of
//! its own.
//!
//! ## Concurrent reads
//!
//! The whole read surface — [`FactStore::terms`], [`FactStore::predicate_of`],
//! [`FactStore::lookup`], [`FactStore::compare`], `fmt_fact` — takes `&self` and
//! touches no interior mutability: the arena, the meta records and the dedup table
//! are plain `Vec`s/`HashMap`s, and the `scratch` buffer is only used by `&mut
//! self` methods ([`FactStore::intern_rewritten`]). `FactStore` is therefore
//! `Send + Sync` by construction, and a shared borrow can be handed to any number
//! of worker threads — this is what
//! [`Snapshot`](crate::snapshot::Snapshot) relies on for round-parallel trigger
//! discovery. Appends (interning) still require `&mut self`, so the borrow checker
//! serialises them against all readers.

use crate::atom::{Fact, Predicate};
use crate::substitution::NullSubstitution;
use crate::term::GroundTerm;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Dense id of an interned fact. Ids are handed out consecutively from 0 and are
/// stable for the lifetime of the store that issued them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FactId(pub u32);

/// Dense id of an interned predicate (name + arity) within one store.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PredicateId(pub u32);

/// Per-fact record: the interned predicate and the start of the argument span in
/// the term arena (the span length is the predicate's arity).
#[derive(Clone, Copy, Debug)]
struct FactMeta {
    pred: PredicateId,
    start: u32,
}

const EMPTY_BUCKET: u32 = u32::MAX;

/// Arena-backed interned fact storage. See the [module docs](self) for the layout.
#[derive(Clone, Debug, Default)]
pub struct FactStore {
    /// Interned predicates, indexed by `PredicateId`.
    predicates: Vec<Predicate>,
    predicate_ids: HashMap<Predicate, PredicateId>,
    /// The flat term arena: argument terms of all facts, contiguous per fact.
    terms: Vec<GroundTerm>,
    /// One record per interned fact, indexed by `FactId`.
    meta: Vec<FactMeta>,
    /// Open-addressing dedup table: buckets hold `FactId.0` or `EMPTY_BUCKET`.
    /// Capacity is a power of two; the table stores no keys (comparisons go
    /// through the arena).
    table: Vec<u32>,
    /// Scratch buffer reused by [`FactStore::intern_rewritten`].
    scratch: Vec<GroundTerm>,
}

impl FactStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        FactStore::default()
    }

    /// Number of interned facts (live or not — the store is append-only).
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Returns `true` iff no fact has been interned.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Number of interned predicates.
    pub fn predicate_count(&self) -> usize {
        self.predicates.len()
    }

    /// Total number of terms in the arena (Σ arity over interned facts).
    pub fn arena_len(&self) -> usize {
        self.terms.len()
    }

    /// Interns a predicate, returning its dense id.
    pub fn predicate_id(&mut self, predicate: Predicate) -> PredicateId {
        if let Some(&id) = self.predicate_ids.get(&predicate) {
            return id;
        }
        let id = PredicateId(self.predicates.len() as u32);
        self.predicates.push(predicate);
        self.predicate_ids.insert(predicate, id);
        id
    }

    /// The dense id of a predicate, if it has been interned.
    pub fn lookup_predicate(&self, predicate: Predicate) -> Option<PredicateId> {
        self.predicate_ids.get(&predicate).copied()
    }

    /// The predicate behind a dense predicate id.
    pub fn predicate(&self, id: PredicateId) -> Predicate {
        self.predicates[id.0 as usize]
    }

    /// The predicate of an interned fact.
    pub fn predicate_of(&self, id: FactId) -> Predicate {
        self.predicates[self.meta[id.0 as usize].pred.0 as usize]
    }

    /// The dense predicate id of an interned fact.
    pub fn predicate_id_of(&self, id: FactId) -> PredicateId {
        self.meta[id.0 as usize].pred
    }

    /// The argument terms of an interned fact, as a slice into the arena.
    pub fn terms(&self, id: FactId) -> &[GroundTerm] {
        let m = self.meta[id.0 as usize];
        let arity = self.predicates[m.pred.0 as usize].arity;
        &self.terms[m.start as usize..m.start as usize + arity]
    }

    /// Materialises the [`Fact`] value behind an id (the thin view layer; hot
    /// paths stay on ids and [`FactStore::terms`]).
    pub fn fact(&self, id: FactId) -> Fact {
        Fact {
            predicate: self.predicate_of(id),
            terms: self.terms(id).to_vec(),
        }
    }

    /// Compares two interned facts with the same ordering as [`Fact`]'s `Ord`
    /// (predicate, then argument terms, lexicographically).
    pub fn compare(&self, a: FactId, b: FactId) -> std::cmp::Ordering {
        (self.predicate_of(a), self.terms(a)).cmp(&(self.predicate_of(b), self.terms(b)))
    }

    fn hash_key(pred: PredicateId, terms: &[GroundTerm]) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        pred.0.hash(&mut h);
        terms.hash(&mut h);
        h.finish()
    }

    /// Probes the dedup table for `(pred, terms)`. Returns the matching id, or the
    /// index of the empty bucket where it would be inserted.
    fn probe(&self, pred: PredicateId, terms: &[GroundTerm]) -> Result<FactId, usize> {
        debug_assert!(!self.table.is_empty());
        let mask = self.table.len() - 1;
        let mut slot = (Self::hash_key(pred, terms) as usize) & mask;
        loop {
            let bucket = self.table[slot];
            if bucket == EMPTY_BUCKET {
                return Err(slot);
            }
            let id = FactId(bucket);
            if self.meta[bucket as usize].pred == pred && self.terms(id) == terms {
                return Ok(id);
            }
            slot = (slot + 1) & mask;
        }
    }

    fn grow_table(&mut self) {
        let new_cap = (self.table.len().max(8)) * 2;
        self.table = vec![EMPTY_BUCKET; new_cap];
        let mask = new_cap - 1;
        for (i, m) in self.meta.iter().enumerate() {
            let arity = self.predicates[m.pred.0 as usize].arity;
            let terms = &self.terms[m.start as usize..m.start as usize + arity];
            let mut slot = (Self::hash_key(m.pred, terms) as usize) & mask;
            while self.table[slot] != EMPTY_BUCKET {
                slot = (slot + 1) & mask;
            }
            self.table[slot] = i as u32;
        }
    }

    /// Interns a fact given as predicate + argument terms; returns its dense id.
    /// Interning an already-present fact returns the existing id.
    pub fn intern(&mut self, predicate: Predicate, terms: &[GroundTerm]) -> FactId {
        debug_assert_eq!(predicate.arity, terms.len());
        let pred = self.predicate_id(predicate);
        // Keep the load factor ≤ 1/2 so probe chains stay short.
        if self.table.len() < (self.meta.len() + 1) * 2 {
            self.grow_table();
        }
        match self.probe(pred, terms) {
            Ok(id) => id,
            Err(slot) => {
                // Checked casts: past 2^32 facts or arena terms, wrapping would
                // silently alias spans; fail loudly instead.
                let id = FactId(u32::try_from(self.meta.len()).expect("fact-id space exhausted"));
                let start =
                    u32::try_from(self.terms.len()).expect("term-arena offset space exhausted");
                self.terms.extend_from_slice(terms);
                self.meta.push(FactMeta { pred, start });
                self.table[slot] = id.0;
                id
            }
        }
    }

    /// Interns a [`Fact`] value.
    pub fn intern_fact(&mut self, fact: &Fact) -> FactId {
        self.intern(fact.predicate, &fact.terms)
    }

    /// Looks up a fact without interning it; `None` if it was never interned.
    pub fn lookup(&self, predicate: Predicate, terms: &[GroundTerm]) -> Option<FactId> {
        let pred = self.lookup_predicate(predicate)?;
        if self.table.is_empty() {
            return None;
        }
        self.probe(pred, terms).ok()
    }

    /// Looks up a [`Fact`] value without interning it.
    pub fn lookup_fact(&self, fact: &Fact) -> Option<FactId> {
        self.lookup(fact.predicate, &fact.terms)
    }

    /// Interns the image of fact `id` under the substitution `γ` and returns the
    /// image's id (which is `id` itself when the fact does not mention the
    /// substituted null). The rewrite goes through the store's scratch buffer, so
    /// no per-call allocation happens after warm-up.
    pub fn intern_rewritten(&mut self, id: FactId, gamma: &NullSubstitution) -> FactId {
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        buf.extend(self.terms(id).iter().map(|&t| gamma.apply_ground(t)));
        let pred = self.predicate_of(id);
        let new = self.intern(pred, &buf);
        self.scratch = buf;
        new
    }

    /// Writes the fact behind `id` in the `P(t1, …, tn)` syntax without
    /// materialising a [`Fact`] value.
    pub fn fmt_fact(&self, id: FactId, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate_of(id).name)?;
        for (i, t) in self.terms(id).iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Constant, NullValue};

    fn cst(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }
    fn null(i: u64) -> GroundTerm {
        GroundTerm::Null(NullValue(i))
    }

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut s = FactStore::new();
        let a = s.intern_fact(&Fact::from_parts("E", vec![cst("a"), cst("b")]));
        let b = s.intern_fact(&Fact::from_parts("E", vec![cst("a"), cst("b")]));
        let c = s.intern_fact(&Fact::from_parts("E", vec![cst("b"), cst("a")]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.0, 0);
        assert_eq!(c.0, 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.arena_len(), 4);
    }

    #[test]
    fn same_name_different_arity_are_distinct_predicates() {
        let mut s = FactStore::new();
        let a = s.intern_fact(&Fact::from_parts("P", vec![cst("a")]));
        let b = s.intern_fact(&Fact::from_parts("P", vec![cst("a"), cst("a")]));
        assert_ne!(a, b);
        assert_eq!(s.predicate_count(), 2);
        assert_ne!(s.predicate_id_of(a), s.predicate_id_of(b));
    }

    #[test]
    fn round_trip_through_the_view_layer() {
        let mut s = FactStore::new();
        let f = Fact::from_parts("E", vec![cst("a"), null(3)]);
        let id = s.intern_fact(&f);
        assert_eq!(s.fact(id), f);
        assert_eq!(s.terms(id), &[cst("a"), null(3)]);
        assert_eq!(s.predicate_of(id), f.predicate);
        assert_eq!(s.lookup_fact(&f), Some(id));
        assert_eq!(
            s.lookup_fact(&Fact::from_parts("E", vec![cst("a"), null(4)])),
            None
        );
    }

    #[test]
    fn lookup_on_empty_store_is_none() {
        let s = FactStore::new();
        assert_eq!(s.lookup_fact(&Fact::from_parts("P", vec![cst("a")])), None);
    }

    #[test]
    fn compare_matches_fact_ord() {
        let mut s = FactStore::new();
        let facts = vec![
            Fact::from_parts("E", vec![cst("a"), null(1)]),
            Fact::from_parts("E", vec![cst("a"), cst("b")]),
            Fact::from_parts("N", vec![cst("a")]),
            Fact::from_parts("E", vec![null(0), cst("b")]),
        ];
        let ids: Vec<FactId> = facts.iter().map(|f| s.intern_fact(f)).collect();
        let mut by_id = ids.clone();
        by_id.sort_by(|&a, &b| s.compare(a, b));
        let mut by_value = facts.clone();
        by_value.sort();
        let materialised: Vec<Fact> = by_id.iter().map(|&id| s.fact(id)).collect();
        assert_eq!(materialised, by_value);
    }

    #[test]
    fn intern_rewritten_dedups_against_existing_facts() {
        let mut s = FactStore::new();
        let with_null = s.intern_fact(&Fact::from_parts("E", vec![cst("a"), null(1)]));
        let ground = s.intern_fact(&Fact::from_parts("E", vec![cst("a"), cst("a")]));
        let gamma = NullSubstitution::single(NullValue(1), cst("a"));
        assert_eq!(s.intern_rewritten(with_null, &gamma), ground);
        // A fact untouched by γ maps to itself.
        assert_eq!(s.intern_rewritten(ground, &gamma), ground);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn zero_ary_facts_intern() {
        let mut s = FactStore::new();
        let a = s.intern_fact(&Fact::from_parts("Init", vec![]));
        let b = s.intern_fact(&Fact::from_parts("Init", vec![]));
        assert_eq!(a, b);
        assert!(s.terms(a).is_empty());
    }

    #[test]
    fn table_growth_keeps_ids_stable() {
        let mut s = FactStore::new();
        let ids: Vec<FactId> = (0..1000)
            .map(|i| s.intern_fact(&Fact::from_parts("N", vec![cst(&format!("c{i}"))])))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                s.lookup_fact(&Fact::from_parts("N", vec![cst(&format!("c{i}"))])),
                Some(*id)
            );
        }
        assert_eq!(s.len(), 1000);
    }
}
