//! Columnar, dictionary-compressed fact storage: dense ids over per-predicate
//! column strips.
//!
//! A [`FactStore`] interns every fact exactly once. Ground terms are interned
//! into a per-store **term dictionary** (dense [`TermId`]s: each constant or
//! null is stored once, as one 16-byte [`GroundTerm`]), and the argument terms
//! of all facts are stored **column-major**: for each interned predicate there
//! is one *strip* per argument position, a plain `Vec<TermId>` of 4-byte cells.
//! A fact is a dense [`FactId`] pointing at a `(predicate, row)` record; its
//! arguments are the cells at that row across the predicate's strips.
//!
//! ```text
//!             dictionary                     strips of  E/2 (PredicateId 0)
//!   TermId 0 ──► Const "a"              pos 0        pos 1       fact_of_row
//!   TermId 1 ──► Const "b"          row 0 │ 0 │    row 0 │ 1 │   row 0 │ F0 │
//!   TermId 2 ──► Null  η3          row 1 │ 1 │    row 1 │ 2 │   row 1 │ F2 │
//!                                   row 2 │ 1 │    row 2 │ 0 │   row 2 │ F5 │
//!                                        ▲ one contiguous Vec<TermId> each ▲
//! ```
//!
//! Equal facts always receive the same id, so fact identity is id equality and
//! set membership is an integer-set operation — no per-fact heap allocation, no
//! `Vec<GroundTerm>` clones on the hot paths. Per-position scans
//! ([`FactStore::column`]) are cache-linear: probing "which `E`-facts carry
//! term *t* at position 1?" walks one contiguous `u32` array instead of
//! striding row-major spans.
//!
//! The store is **append-only**: interning never invalidates an id, and ids are
//! never reused. "Removing" a fact is the owning [`Instance`](crate::Instance)'s
//! business (it keeps a live-id set); an EGD substitution interns the rewritten
//! image as a fresh id ([`FactStore::intern_rewritten`]) and reports the
//! `(old, new)` id pair — the delta the incremental trigger engine re-seeds from.
//!
//! ## Who holds what
//!
//! * [`crate::Instance`] owns a store plus a live-id set and per-predicate id
//!   lists; the legacy [`Fact`]-value API is a thin view that materialises facts
//!   from the strips on demand.
//! * [`crate::IndexedInstance`] keeps its per-(predicate, position, term) and
//!   per-null indexes as `Vec<FactId>` buckets over the same store.
//! * The join engine ([`crate::homomorphism`]) enumerates candidate `FactId`
//!   slices and unifies atoms directly against strip cells through the
//!   [`FactTerms`] view.
//!
//! Dedup is a small open-addressing hash table (linear probing, power-of-two
//! capacity) whose buckets carry `(fact id, predicate, row, hash tag)`. A probe
//! resolves almost entirely inside the bucket array: slots whose 32-bit tag or
//! predicate differ are skipped without touching any other structure, and a
//! candidate match is confirmed by comparing the cells at `(predicate, row)`
//! straight against the strips — one dependent memory hop, not a chain through
//! the per-fact meta records. This is what keeps probe latency flat from 100k
//! to 10M facts: the table walk costs O(1) cache lines regardless of store size.
//!
//! ## Capacity and overflow
//!
//! All dense id spaces are `u32`. Interning past `u32::MAX` terms or facts —
//! or past an injected test capacity — fails with
//! [`CoreError::CapacityExhausted`] through [`FactStore::try_intern`] /
//! [`FactStore::try_intern_term`]; the panicking [`FactStore::intern`] wrapper
//! surfaces the same message. Bulk loaders should pre-size the store with
//! [`FactStore::with_capacity`] so a million-fact load does not pay repeated
//! dedup-table rehash doubling.
//!
//! ## Concurrent reads
//!
//! The whole read surface — [`FactStore::terms`], [`FactStore::column`],
//! [`FactStore::predicate_of`], [`FactStore::lookup`], [`FactStore::compare`],
//! `fmt_fact` — takes `&self` and touches no interior mutability: the strips,
//! the dictionary, the meta records and the dedup table are plain
//! `Vec`s/`HashMap`s, and the `scratch` buffer is only used by `&mut self`
//! methods. `FactStore` is therefore `Send + Sync` by construction, and a
//! shared borrow can be handed to any number of worker threads — this is what
//! [`Snapshot`](crate::snapshot::Snapshot) relies on for round-parallel trigger
//! discovery. Appends (interning) still require `&mut self`, so the borrow
//! checker serialises them against all readers.

use crate::atom::{Fact, Predicate};
use crate::error::CoreError;
use crate::substitution::NullSubstitution;
use crate::term::GroundTerm;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Dense id of an interned fact. Ids are handed out consecutively from 0 and are
/// stable for the lifetime of the store that issued them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FactId(pub u32);

/// Dense id of an interned predicate (name + arity) within one store.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct PredicateId(pub u32);

/// Dense id of a ground term (constant or labeled null) in one store's term
/// dictionary. Column cells are `TermId`s: two cells of the same store are equal
/// iff their terms are equal, so unification and dedup compare 4-byte ids.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TermId(pub u32);

/// Per-fact record: the interned predicate and the fact's row within that
/// predicate's column strips.
#[derive(Clone, Copy, Debug)]
struct FactMeta {
    pred: PredicateId,
    row: u32,
}

/// The column strips of one predicate: one contiguous `Vec<TermId>` per argument
/// position (all of equal length = rows), plus the row → fact-id mapping.
#[derive(Clone, Debug, Default)]
struct Strip {
    columns: Vec<Vec<TermId>>,
    fact_of_row: Vec<FactId>,
}

/// One dedup-table slot: the fact id plus enough of the fact's identity — its
/// predicate, its strip row, and a 32-bit hash tag — for a probe to reject
/// non-matching slots without dereferencing the meta records. Only a slot whose
/// tag *and* predicate match pays the strip comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Bucket {
    fact: u32,
    pred: u32,
    row: u32,
    tag: u32,
}

/// The empty slot marker: `fact == u32::MAX` (fact ids are capacity-checked to
/// stay strictly below it).
const EMPTY_BUCKET: Bucket = Bucket {
    fact: u32::MAX,
    pred: u32::MAX,
    row: u32::MAX,
    tag: 0,
};

/// One dictionary-map slot: the ground term *inline* next to its id and hash
/// tag, so a `term → TermId` probe costs a single cache line — hash, key
/// compare and payload all live in the slot (a boxed-key map pays a second
/// dependent line for the key). `id == u32::MAX` marks an empty slot (term ids
/// are capacity-checked to stay strictly below it).
#[derive(Clone, Copy, Debug)]
struct TermBucket {
    term: GroundTerm,
    id: u32,
    tag: u32,
}

const EMPTY_TERM_BUCKET: TermBucket = TermBucket {
    term: GroundTerm::Null(crate::term::NullValue(0)),
    id: u32::MAX,
    tag: 0,
};

/// Columnar interned fact storage. See the [module docs](self) for the layout.
#[derive(Clone, Debug)]
pub struct FactStore {
    /// Interned predicates, indexed by `PredicateId`.
    predicates: Vec<Predicate>,
    predicate_ids: HashMap<Predicate, PredicateId>,
    /// The term dictionary, indexed by `TermId`.
    dict: Vec<GroundTerm>,
    /// Inline-key open-addressing dictionary map (power-of-two capacity,
    /// linear probing, load ≤ 1/2): `GroundTerm → TermId` in one cache line.
    term_table: Vec<TermBucket>,
    /// Per-predicate column strips, indexed by `PredicateId`.
    strips: Vec<Strip>,
    /// One record per interned fact, indexed by `FactId`.
    meta: Vec<FactMeta>,
    /// Open-addressing dedup table (power-of-two capacity, linear probing).
    /// Buckets carry `(fact, pred, row, tag)` so probes resolve without a hop
    /// through `meta`; confirming comparisons go straight to the strips.
    table: Vec<Bucket>,
    /// Scratch cell buffer reused by the `&mut self` interning paths.
    scratch: Vec<TermId>,
    /// Per-column reserve hint recorded by [`FactStore::with_capacity`].
    row_hint: usize,
    /// Dictionary capacity; `u32::MAX` in production, tiny in the overflow tests.
    max_terms: u32,
    /// Fact-id capacity; `u32::MAX` in production, tiny in the overflow tests.
    max_facts: u32,
}

impl Default for FactStore {
    fn default() -> Self {
        FactStore::with_capacity(0, 0, 0)
    }
}

/// Heap usage summary of a [`FactStore`], in bytes of element storage (container
/// headers and hash-map overhead excluded on both sides of the comparison).
///
/// `row_equivalent_bytes` is what the same interning history would occupy in the
/// pre-columnar row-major layout (one 16-byte [`GroundTerm`] per cell in a flat
/// arena, plus the same 8-byte per-fact meta record) — the baseline the
/// `fact_store` scale bench reports bytes/fact against.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreFootprint {
    /// Column cells plus row→fact maps: `(Σ arity + 1) × 4` bytes per fact.
    pub strip_bytes: usize,
    /// Dictionary term values: 16 bytes per *distinct* term.
    pub dict_bytes: usize,
    /// Per-fact `(predicate, row)` records: 8 bytes per fact.
    pub meta_bytes: usize,
    /// Dedup-table buckets: 16 bytes per slot (a layout both row-major and
    /// columnar stores would need identically).
    pub table_bytes: usize,
    /// The row-major baseline: flat `GroundTerm` arena + meta records.
    pub row_equivalent_bytes: usize,
}

impl StoreFootprint {
    /// Total columnar bytes comparable against `row_equivalent_bytes`
    /// (strips + dictionary + meta; the dedup table is identical in both
    /// layouts and excluded from both sides).
    pub fn columnar_bytes(&self) -> usize {
        self.strip_bytes + self.dict_bytes + self.meta_bytes
    }
}

impl FactStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        FactStore::default()
    }

    /// Creates a store pre-sized for a bulk load of `facts` facts over
    /// `predicates` predicates and `terms` distinct ground terms: the dedup
    /// table starts at its final power-of-two capacity, the meta records and
    /// dictionary are reserved up front, and each predicate's strips reserve
    /// `facts / predicates` rows — so a 10M-fact load performs no rehash
    /// doubling. The hints are capacities, not limits; a store grows past them
    /// exactly like one built with [`FactStore::new`].
    pub fn with_capacity(predicates: usize, facts: usize, terms: usize) -> Self {
        let table = match facts {
            0 => Vec::new(),
            n => vec![EMPTY_BUCKET; (n * 2).max(8).next_power_of_two()],
        };
        let term_table = match terms {
            0 => Vec::new(),
            n => vec![EMPTY_TERM_BUCKET; (n * 2).max(8).next_power_of_two()],
        };
        FactStore {
            predicates: Vec::with_capacity(predicates),
            predicate_ids: HashMap::with_capacity(predicates),
            dict: Vec::with_capacity(terms),
            term_table,
            strips: Vec::with_capacity(predicates),
            meta: Vec::with_capacity(facts),
            table,
            scratch: Vec::new(),
            row_hint: facts.checked_div(predicates).unwrap_or(0),
            max_terms: u32::MAX,
            max_facts: u32::MAX,
        }
    }

    /// A store with tiny injected id capacities, for exercising the overflow
    /// guards without interning four billion entries.
    #[cfg(test)]
    fn with_limits(max_terms: u32, max_facts: u32) -> Self {
        FactStore {
            max_terms,
            max_facts,
            ..FactStore::default()
        }
    }

    /// Number of interned facts (live or not — the store is append-only).
    pub fn len(&self) -> usize {
        self.meta.len()
    }

    /// Returns `true` iff no fact has been interned.
    pub fn is_empty(&self) -> bool {
        self.meta.is_empty()
    }

    /// Number of interned predicates.
    pub fn predicate_count(&self) -> usize {
        self.predicates.len()
    }

    /// Number of distinct ground terms in the dictionary.
    pub fn term_count(&self) -> usize {
        self.dict.len()
    }

    /// Total number of column cells across all strips (Σ arity over interned
    /// facts) — the size the flat row-major arena would have.
    pub fn arena_len(&self) -> usize {
        self.strips
            .iter()
            .map(|s| s.columns.len() * s.fact_of_row.len())
            .sum()
    }

    /// Element-storage byte counts of the columnar layout next to its row-major
    /// equivalent. See [`StoreFootprint`].
    pub fn footprint(&self) -> StoreFootprint {
        let cell = std::mem::size_of::<TermId>();
        let term = std::mem::size_of::<GroundTerm>();
        let meta = std::mem::size_of::<FactMeta>();
        let cells = self.arena_len();
        StoreFootprint {
            strip_bytes: cells * cell + self.meta.len() * std::mem::size_of::<FactId>(),
            dict_bytes: self.dict.len() * term,
            meta_bytes: self.meta.len() * meta,
            table_bytes: self.table.len() * std::mem::size_of::<Bucket>(),
            row_equivalent_bytes: cells * term + self.meta.len() * meta,
        }
    }

    /// Interns a predicate, returning its dense id. Allocates the predicate's
    /// (empty) column strips on first sight.
    pub fn predicate_id(&mut self, predicate: Predicate) -> PredicateId {
        if let Some(&id) = self.predicate_ids.get(&predicate) {
            return id;
        }
        let id = PredicateId(self.predicates.len() as u32);
        self.predicates.push(predicate);
        self.predicate_ids.insert(predicate, id);
        let mut strip = Strip {
            columns: vec![Vec::new(); predicate.arity],
            fact_of_row: Vec::new(),
        };
        if self.row_hint > 0 {
            for col in &mut strip.columns {
                col.reserve(self.row_hint);
            }
            strip.fact_of_row.reserve(self.row_hint);
        }
        self.strips.push(strip);
        id
    }

    /// The dense id of a predicate, if it has been interned.
    pub fn lookup_predicate(&self, predicate: Predicate) -> Option<PredicateId> {
        self.predicate_ids.get(&predicate).copied()
    }

    /// The predicate behind a dense predicate id.
    pub fn predicate(&self, id: PredicateId) -> Predicate {
        self.predicates[id.0 as usize]
    }

    /// The predicate of an interned fact.
    pub fn predicate_of(&self, id: FactId) -> Predicate {
        self.predicates[self.meta[id.0 as usize].pred.0 as usize]
    }

    /// The dense predicate id of an interned fact.
    pub fn predicate_id_of(&self, id: FactId) -> PredicateId {
        self.meta[id.0 as usize].pred
    }

    /// The ground term behind a dictionary id.
    pub fn term(&self, id: TermId) -> GroundTerm {
        self.dict[id.0 as usize]
    }

    fn hash_term(term: GroundTerm) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        term.hash(&mut h);
        h.finish()
    }

    /// The dictionary id of a ground term, if it has been interned. A term that
    /// was never interned occurs in no fact, so lookups can miss fast on `None`.
    pub fn term_id(&self, term: GroundTerm) -> Option<TermId> {
        if self.term_table.is_empty() {
            return None;
        }
        let hash = Self::hash_term(term);
        let tag = (hash >> 32) as u32;
        let mask = self.term_table.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let b = self.term_table[slot];
            if b.id == EMPTY_TERM_BUCKET.id {
                return None;
            }
            if b.tag == tag && b.term == term {
                return Some(TermId(b.id));
            }
            slot = (slot + 1) & mask;
        }
    }

    fn grow_term_table(&mut self) {
        let new_cap = (self.term_table.len().max(8)) * 2;
        let mut fresh = vec![EMPTY_TERM_BUCKET; new_cap];
        let mask = new_cap - 1;
        for (i, &term) in self.dict.iter().enumerate() {
            let hash = Self::hash_term(term);
            let mut slot = (hash as usize) & mask;
            while fresh[slot].id != EMPTY_TERM_BUCKET.id {
                slot = (slot + 1) & mask;
            }
            fresh[slot] = TermBucket {
                term,
                id: i as u32,
                tag: (hash >> 32) as u32,
            };
        }
        self.term_table = fresh;
    }

    /// Interns a ground term into the dictionary, returning its dense id; fails
    /// if the dictionary is at capacity.
    pub fn try_intern_term(&mut self, term: GroundTerm) -> Result<TermId, CoreError> {
        // Keep the load factor ≤ 1/2 so probe chains stay short.
        if self.term_table.len() < (self.dict.len() + 1) * 2 {
            self.grow_term_table();
        }
        let hash = Self::hash_term(term);
        let tag = (hash >> 32) as u32;
        let mask = self.term_table.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let b = self.term_table[slot];
            if b.id == EMPTY_TERM_BUCKET.id {
                break;
            }
            if b.tag == tag && b.term == term {
                return Ok(TermId(b.id));
            }
            slot = (slot + 1) & mask;
        }
        if self.dict.len() >= self.max_terms as usize {
            return Err(CoreError::CapacityExhausted {
                resource: "term dictionary",
                capacity: self.max_terms as u64,
            });
        }
        let id = TermId(self.dict.len() as u32);
        self.dict.push(term);
        self.term_table[slot] = TermBucket {
            term,
            id: id.0,
            tag,
        };
        Ok(id)
    }

    fn intern_term(&mut self, term: GroundTerm) -> TermId {
        self.try_intern_term(term).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The column strip of `pred` at argument position `position`: one
    /// contiguous cell per row, in row order. The cache-linear scan surface for
    /// per-position probes.
    pub fn column(&self, pred: PredicateId, position: usize) -> &[TermId] {
        &self.strips[pred.0 as usize].columns[position]
    }

    /// Number of rows (interned facts, live or not) in `pred`'s strips.
    pub fn rows(&self, pred: PredicateId) -> usize {
        self.strips[pred.0 as usize].fact_of_row.len()
    }

    /// The fact ids of `pred`'s rows, in row order (parallel to every
    /// [`FactStore::column`] of the predicate).
    pub fn row_facts(&self, pred: PredicateId) -> &[FactId] {
        &self.strips[pred.0 as usize].fact_of_row
    }

    /// The row of an interned fact within its predicate's strips.
    pub fn row_of(&self, id: FactId) -> usize {
        self.meta[id.0 as usize].row as usize
    }

    /// The argument terms of an interned fact, as a cheap [`FactTerms`] view
    /// over the predicate's strips (the columnar replacement for the old
    /// row-span slice).
    pub fn terms(&self, id: FactId) -> FactTerms<'_> {
        let m = self.meta[id.0 as usize];
        FactTerms {
            dict: &self.dict,
            columns: &self.strips[m.pred.0 as usize].columns,
            row: m.row as usize,
        }
    }

    /// The argument term of an interned fact at one position (two array reads).
    pub fn term_at(&self, id: FactId, position: usize) -> GroundTerm {
        let m = self.meta[id.0 as usize];
        let cell = self.strips[m.pred.0 as usize].columns[position][m.row as usize];
        self.dict[cell.0 as usize]
    }

    /// Returns `true` iff the fact's cells mention the dictionary term `cell`.
    pub fn mentions(&self, id: FactId, cell: TermId) -> bool {
        let m = self.meta[id.0 as usize];
        self.strips[m.pred.0 as usize]
            .columns
            .iter()
            .any(|col| col[m.row as usize] == cell)
    }

    /// Materialises the [`Fact`] value behind an id (the thin view layer; hot
    /// paths stay on ids and [`FactStore::terms`]).
    pub fn fact(&self, id: FactId) -> Fact {
        Fact {
            predicate: self.predicate_of(id),
            terms: self.terms(id).to_vec(),
        }
    }

    /// Compares two interned facts with the same ordering as [`Fact`]'s `Ord`
    /// (predicate, then argument terms, lexicographically).
    pub fn compare(&self, a: FactId, b: FactId) -> std::cmp::Ordering {
        let (ma, mb) = (self.meta[a.0 as usize], self.meta[b.0 as usize]);
        let pred_cmp =
            self.predicates[ma.pred.0 as usize].cmp(&self.predicates[mb.pred.0 as usize]);
        if pred_cmp != std::cmp::Ordering::Equal {
            return pred_cmp;
        }
        let (sa, sb) = (
            &self.strips[ma.pred.0 as usize],
            &self.strips[mb.pred.0 as usize],
        );
        for (ca, cb) in sa.columns.iter().zip(&sb.columns) {
            let (ta, tb) = (ca[ma.row as usize], cb[mb.row as usize]);
            if ta != tb {
                return self.dict[ta.0 as usize].cmp(&self.dict[tb.0 as usize]);
            }
        }
        std::cmp::Ordering::Equal
    }

    /// The fact hash is computed over the predicate and the *term values* —
    /// not the cell ids — so a [`FactStore::lookup`] can hash its query terms
    /// directly and never touch the dictionary map at all.
    fn hash_fact(pred: PredicateId, terms: impl IntoIterator<Item = GroundTerm>) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        pred.0.hash(&mut h);
        for t in terms {
            t.hash(&mut h);
        }
        h.finish()
    }

    fn hash_cells(&self, pred: PredicateId, cells: &[TermId]) -> u64 {
        Self::hash_fact(pred, cells.iter().map(|c| self.dict[c.0 as usize]))
    }

    /// Walks the dedup table from `hash`'s home slot. Returns the first bucket
    /// whose tag and predicate match and whose row satisfies `matches`, or the
    /// empty slot where the fact would be inserted together with the 32-bit
    /// hash tag to store there.
    fn probe_with(
        &self,
        hash: u64,
        pred: PredicateId,
        matches: impl Fn(&Strip, u32) -> bool,
    ) -> Result<FactId, (usize, u32)> {
        debug_assert!(!self.table.is_empty());
        let tag = (hash >> 32) as u32;
        let mask = self.table.len() - 1;
        let mut slot = (hash as usize) & mask;
        loop {
            let b = self.table[slot];
            if b.fact == EMPTY_BUCKET.fact {
                return Err((slot, tag));
            }
            if b.tag == tag && b.pred == pred.0 && matches(&self.strips[pred.0 as usize], b.row) {
                return Ok(FactId(b.fact));
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Probes the dedup table for `(pred, cells)` with the value hash in hand (the
    /// interning paths fold the hash in while translating terms, so the
    /// dictionary is not re-read per cell).
    fn probe_cells_hashed(
        &self,
        hash: u64,
        pred: PredicateId,
        cells: &[TermId],
    ) -> Result<FactId, (usize, u32)> {
        self.probe_with(hash, pred, |strip, row| {
            cells
                .iter()
                .zip(&strip.columns)
                .all(|(&c, col)| col[row as usize] == c)
        })
    }

    fn grow_table(&mut self) {
        let new_cap = (self.table.len().max(8)) * 2;
        let mut fresh = vec![EMPTY_BUCKET; new_cap];
        let mask = new_cap - 1;
        let mut cells: Vec<TermId> = Vec::new();
        for (i, m) in self.meta.iter().enumerate() {
            let strip = &self.strips[m.pred.0 as usize];
            cells.clear();
            cells.extend(strip.columns.iter().map(|col| col[m.row as usize]));
            let hash = self.hash_cells(m.pred, &cells);
            let mut slot = (hash as usize) & mask;
            while fresh[slot].fact != EMPTY_BUCKET.fact {
                slot = (slot + 1) & mask;
            }
            fresh[slot] = Bucket {
                fact: i as u32,
                pred: m.pred.0,
                row: m.row,
                tag: (hash >> 32) as u32,
            };
        }
        self.table = fresh;
    }

    /// Interns a fact given as already-dictionary-interned cells.
    fn try_intern_cells(
        &mut self,
        pred: PredicateId,
        cells: &[TermId],
    ) -> Result<FactId, CoreError> {
        self.try_intern_cells_hashed(self.hash_cells(pred, cells), pred, cells)
    }

    /// [`FactStore::try_intern_cells`] with the value hash already in hand.
    fn try_intern_cells_hashed(
        &mut self,
        hash: u64,
        pred: PredicateId,
        cells: &[TermId],
    ) -> Result<FactId, CoreError> {
        // Keep the load factor ≤ 1/2 so probe chains stay short.
        if self.table.len() < (self.meta.len() + 1) * 2 {
            self.grow_table();
        }
        match self.probe_cells_hashed(hash, pred, cells) {
            Ok(id) => Ok(id),
            Err((slot, tag)) => {
                if self.meta.len() >= self.max_facts as usize {
                    return Err(CoreError::CapacityExhausted {
                        resource: "fact-id space",
                        capacity: self.max_facts as u64,
                    });
                }
                let id = FactId(self.meta.len() as u32);
                let strip = &mut self.strips[pred.0 as usize];
                let row = strip.fact_of_row.len() as u32;
                for (col, &c) in strip.columns.iter_mut().zip(cells) {
                    col.push(c);
                }
                strip.fact_of_row.push(id);
                self.meta.push(FactMeta { pred, row });
                self.table[slot] = Bucket {
                    fact: id.0,
                    pred: pred.0,
                    row,
                    tag,
                };
                Ok(id)
            }
        }
    }

    /// Interns a fact given as predicate + argument terms; returns its dense id,
    /// or [`CoreError::CapacityExhausted`] when the dictionary or the fact-id
    /// space is full. Interning an already-present fact returns the existing id.
    pub fn try_intern(
        &mut self,
        predicate: Predicate,
        terms: &[GroundTerm],
    ) -> Result<FactId, CoreError> {
        debug_assert_eq!(predicate.arity, terms.len());
        let pred = self.predicate_id(predicate);
        let mut cells = std::mem::take(&mut self.scratch);
        cells.clear();
        // Fold the fact's value hash in while translating terms, so the hot
        // intern path never re-reads the dictionary to hash.
        let mut h = std::collections::hash_map::DefaultHasher::new();
        pred.0.hash(&mut h);
        let mut failed = None;
        for &t in terms {
            match self.try_intern_term(t) {
                Ok(c) => {
                    cells.push(c);
                    t.hash(&mut h);
                }
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        let result = match failed {
            Some(e) => Err(e),
            None => self.try_intern_cells_hashed(h.finish(), pred, &cells),
        };
        self.scratch = cells;
        result
    }

    /// Interns a fact given as predicate + argument terms; returns its dense id.
    /// Interning an already-present fact returns the existing id.
    ///
    /// # Panics
    ///
    /// Panics with a capacity-exhausted message past 2^32 distinct terms or
    /// facts (where the dense `u32` ids would otherwise silently wrap); fallible
    /// callers use [`FactStore::try_intern`].
    pub fn intern(&mut self, predicate: Predicate, terms: &[GroundTerm]) -> FactId {
        self.try_intern(predicate, terms)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Interns a [`Fact`] value.
    pub fn intern_fact(&mut self, fact: &Fact) -> FactId {
        self.intern(fact.predicate, &fact.terms)
    }

    /// Bulk interning: interns every `(predicate, terms)` fact of `batch` and
    /// returns their ids in input order. Duplicates — against the store or
    /// within the batch — resolve to the same id, and fact ids are assigned
    /// in input order, exactly as repeated [`FactStore::try_intern`] calls
    /// would assign them; only the dictionary-internal [`TermId`] assignment
    /// order may differ (values, not ids, define fact identity).
    ///
    /// Like [`FactStore::lookup_batch`], the batch is processed in phases that
    /// sweep each hash table in address order (chunked, so the per-chunk sorts
    /// stay cache-resident): value hashes first, then one sorted sweep that
    /// translates-or-interns ground terms, then a sorted dedup-table resolve,
    /// then input-order fact insertion. On a DRAM-resident store the sweeps
    /// turn dependent random misses into near-sequential streams — the
    /// intended loading path for million-fact instances. If a table must grow
    /// mid-chunk, the remainder of that chunk takes the plain per-fact path
    /// (growth is amortised-rare, and a store pre-sized with
    /// [`FactStore::with_capacity`] never grows).
    ///
    /// On a capacity error, facts before the failing one stay interned — the
    /// same partial-progress contract as sequential interning.
    pub fn try_intern_batch(
        &mut self,
        batch: &[(Predicate, &[GroundTerm])],
    ) -> Result<Vec<FactId>, CoreError> {
        Ok(self.try_intern_batch_tracking_nulls(batch)?.0)
    }

    /// [`FactStore::try_intern_batch`] plus the largest null label occurring
    /// anywhere in `batch` — observed for free while hashing, so
    /// `Instance::try_extend_parts` can maintain its null allocator without
    /// re-reading every interned fact's terms through the dictionary.
    pub(crate) fn try_intern_batch_tracking_nulls(
        &mut self,
        batch: &[(Predicate, &[GroundTerm])],
    ) -> Result<(Vec<FactId>, Option<u64>), CoreError> {
        let mut out = Vec::with_capacity(batch.len());
        let mut max_null = None;
        for chunk in batch.chunks(1 << 20) {
            self.intern_chunk(chunk, &mut out, &mut max_null)?;
        }
        Ok((out, max_null))
    }

    fn intern_chunk(
        &mut self,
        chunk: &[(Predicate, &[GroundTerm])],
        out: &mut Vec<FactId>,
        max_null: &mut Option<u64>,
    ) -> Result<(), CoreError> {
        let n = chunk.len();
        // Phase A: predicates, value hashes, flat cell layout (CPU, streaming).
        let mut pred = Vec::with_capacity(n);
        let mut fhash = Vec::with_capacity(n);
        let mut start = Vec::with_capacity(n + 1);
        start.push(0u32);
        let mut total = 0usize;
        for &(p, terms) in chunk {
            debug_assert_eq!(p.arity, terms.len());
            let pid = self.predicate_id(p);
            pred.push(pid);
            fhash.push(Self::hash_fact(pid, terms.iter().copied()));
            total += terms.len();
            start.push(total as u32);
        }

        // Phase B: one sweep in term-table address order that translates known
        // terms and interns new ones in place (a walk that lands on an empty
        // slot may claim it — sweep order preserves linear-probing chains).
        let mut cells = vec![TermId(0); total];
        if total > 0 {
            if self.term_table.is_empty() {
                self.grow_term_table();
            }
            // Each request carries its term and hash inline so the sorted
            // sweep below reads nothing but the request stream and the table —
            // fetching them through a flat-index indirection would turn every
            // sweep step into scattered reads of the chunk-sized side arrays.
            #[derive(Clone, Copy)]
            struct TermReq {
                /// `(home slot << 32) | flat cell index`.
                key: u64,
                term: GroundTerm,
                hash: u64,
            }
            let tmask = self.term_table.len() - 1;
            let mut reqs: Vec<TermReq> = Vec::with_capacity(total);
            for (i, &(_, terms)) in chunk.iter().enumerate() {
                let base = start[i] as usize;
                for (j, &t) in terms.iter().enumerate() {
                    if let GroundTerm::Null(nv) = t {
                        *max_null = Some(max_null.map_or(nv.0, |m: u64| m.max(nv.0)));
                    }
                    let h = Self::hash_term(t);
                    reqs.push(TermReq {
                        key: ((((h as usize) & tmask) as u64) << 32) | (base + j) as u64,
                        term: t,
                        hash: h,
                    });
                }
            }
            reqs.sort_unstable_by_key(|r| r.key);
            // Every occurrence of one term sorts to the same home slot, so
            // repeats of the chunk's heavy terms are adjacent: resolve each
            // distinct (slot, term) once and copy the cell forward.
            let mut k = 0usize;
            'sweep: while k < reqs.len() {
                let tmask = self.term_table.len() - 1;
                let mut prev: Option<usize> = None;
                while k < reqs.len() {
                    let r = reqs[k];
                    let flat = r.key as u32 as usize;
                    if let Some(p) = prev {
                        let pr = reqs[p];
                        if pr.key >> 32 == r.key >> 32 && pr.term == r.term {
                            cells[flat] = cells[pr.key as u32 as usize];
                            k += 1;
                            continue;
                        }
                    }
                    prev = Some(k);
                    let tag = (r.hash >> 32) as u32;
                    let mut slot = (r.key >> 32) as usize;
                    loop {
                        let b = self.term_table[slot];
                        if b.id == EMPTY_TERM_BUCKET.id {
                            if self.term_table.len() < (self.dict.len() + 1) * 2 {
                                // Growth is due, which rehashes every home
                                // slot and so forces a rekey + re-sort of the
                                // unswept tail. One doubling per trigger would
                                // repeat that once per doubling (~20 times
                                // when a fresh store loads its first chunk) —
                                // instead, count the distinct term hashes
                                // still unswept and grow once to cover them
                                // all, then resume the sweep on the tail.
                                let mut hashes: Vec<u64> =
                                    reqs[k..].iter().map(|r| r.hash).collect();
                                hashes.sort_unstable();
                                hashes.dedup();
                                let distinct = hashes.len();
                                drop(hashes);
                                while self.term_table.len() < (self.dict.len() + distinct + 1) * 2 {
                                    self.grow_term_table();
                                }
                                let nmask = (self.term_table.len() - 1) as u64;
                                for r in &mut reqs[k..] {
                                    r.key =
                                        ((r.hash & nmask) << 32) | (r.key & u64::from(u32::MAX));
                                }
                                reqs[k..].sort_unstable_by_key(|r| r.key);
                                continue 'sweep;
                            }
                            if self.dict.len() >= self.max_terms as usize {
                                return Err(CoreError::CapacityExhausted {
                                    resource: "term dictionary",
                                    capacity: self.max_terms as u64,
                                });
                            }
                            let id = TermId(self.dict.len() as u32);
                            self.dict.push(r.term);
                            self.term_table[slot] = TermBucket {
                                term: r.term,
                                id: id.0,
                                tag,
                            };
                            cells[flat] = id;
                            break;
                        }
                        if b.tag == tag && b.term == r.term {
                            cells[flat] = TermId(b.id);
                            break;
                        }
                        slot = (slot + 1) & tmask;
                    }
                    k += 1;
                }
            }
        }

        // Phase C... — an existing id, or the empty slot where it would insert.
        // Pre-grow the fact table to fit the whole chunk (the worst case of
        // every fact being new), so neither sorted pass below ever rehashes
        // mid-chunk; doubling reaches the same final capacity as the per-fact
        // growth path, so the amortized work and footprint are unchanged.
        while self.table.len() < (self.meta.len() + n + 1) * 2 {
            self.grow_table();
        }
        let mask = self.table.len() - 1;
        // As in phase B, the request carries everything the walk compares on
        // (tag and predicate) so the sweep streams instead of gathering.
        #[derive(Clone, Copy)]
        struct FactReq {
            /// `(home slot << 32) | chunk position`.
            key: u64,
            tag: u32,
            pid: u32,
        }
        let mut reqs: Vec<FactReq> = (0..n)
            .map(|i| FactReq {
                key: ((((fhash[i] as usize) & mask) as u64) << 32) | i as u64,
                tag: (fhash[i] >> 32) as u32,
                pid: pred[i].0,
            })
            .collect();
        reqs.sort_unstable_by_key(|r| r.key);
        // Per chunk position: `(1 << 63) | fact` for a fact already in the
        // table, otherwise the empty slot its walk ended on. Every position is
        // written exactly once, so the zero init is never read.
        let mut probe = vec![0u64; n];
        for &r in &reqs {
            let q = r.key as u32 as usize;
            let mut slot = (r.key >> 32) as usize;
            loop {
                let b = self.table[slot];
                if b.fact == EMPTY_BUCKET.fact {
                    probe[q] = slot as u64;
                    break;
                }
                if b.tag == r.tag
                    && b.pred == r.pid
                    && cells[start[q] as usize..start[q + 1] as usize]
                        .iter()
                        .zip(&self.strips[r.pid as usize].columns)
                        .all(|(&c, col)| col[b.row as usize] == c)
                {
                    probe[q] = (1 << 63) | u64::from(b.fact);
                    break;
                }
                slot = (slot + 1) & mask;
            }
        }

        // Phase D: insert in input order, so fact ids come out exactly as
        // sequential interning would assign them. A walk restarts from the
        // recorded slot: an earlier insert of this chunk may have claimed it
        // (including an identical fact, which then resolves as a duplicate).
        for q in 0..n {
            let p = probe[q];
            if p >> 63 == 1 {
                out.push(FactId(p as u32));
                continue;
            }
            if self.meta.len() >= self.max_facts as usize {
                return Err(CoreError::CapacityExhausted {
                    resource: "fact-id space",
                    capacity: self.max_facts as u64,
                });
            }
            let pid = pred[q];
            let tag = (fhash[q] >> 32) as u32;
            let span = start[q] as usize..start[q + 1] as usize;
            let mut slot = p as usize;
            let mut existing = None;
            loop {
                let b = self.table[slot];
                if b.fact == EMPTY_BUCKET.fact {
                    break;
                }
                if b.tag == tag
                    && b.pred == pid.0
                    && cells[span.clone()]
                        .iter()
                        .zip(&self.strips[pid.0 as usize].columns)
                        .all(|(&c, col)| col[b.row as usize] == c)
                {
                    existing = Some(b.fact);
                    break;
                }
                slot = (slot + 1) & mask;
            }
            if let Some(f) = existing {
                out.push(FactId(f));
                continue;
            }
            let id = FactId(self.meta.len() as u32);
            let strip = &mut self.strips[pid.0 as usize];
            let row = strip.fact_of_row.len() as u32;
            for (col, &c) in strip.columns.iter_mut().zip(&cells[span]) {
                col.push(c);
            }
            strip.fact_of_row.push(id);
            self.meta.push(FactMeta { pred: pid, row });
            self.table[slot] = Bucket {
                fact: id.0,
                pred: pid.0,
                row,
                tag,
            };
            out.push(id);
        }
        Ok(())
    }

    /// Re-interns the fact `id` of `src` into this store (predicate, dictionary
    /// terms and cells are translated), returning the local id. The cross-store
    /// copy primitive behind [`Instance`](crate::Instance) union / restriction
    /// and database loading — no `Vec<GroundTerm>` is materialised.
    pub fn intern_copied(&mut self, src: &FactStore, id: FactId) -> FactId {
        let m = src.meta[id.0 as usize];
        let pred = self.predicate_id(src.predicates[m.pred.0 as usize]);
        let mut cells = std::mem::take(&mut self.scratch);
        cells.clear();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        pred.0.hash(&mut h);
        for col in &src.strips[m.pred.0 as usize].columns {
            let term = src.dict[col[m.row as usize].0 as usize];
            cells.push(self.intern_term(term));
            term.hash(&mut h);
        }
        let out = self
            .try_intern_cells_hashed(h.finish(), pred, &cells)
            .unwrap_or_else(|e| panic!("{e}"));
        self.scratch = cells;
        out
    }

    /// Like [`FactStore::intern_copied`], but memoising the `src`-dictionary →
    /// local-dictionary translation in `memo` (indexed by `src` [`TermId`],
    /// `u32::MAX` = not yet translated). This is the strip-aware rebuild
    /// primitive of [`Instance::compact`](crate::Instance::compact): each
    /// distinct term is looked up in the dictionary maps once, and every further
    /// occurrence is a 4-byte memo read.
    pub(crate) fn intern_translated(
        &mut self,
        src: &FactStore,
        id: FactId,
        memo: &mut [u32],
    ) -> FactId {
        let m = src.meta[id.0 as usize];
        let pred = self.predicate_id(src.predicates[m.pred.0 as usize]);
        let mut cells = std::mem::take(&mut self.scratch);
        cells.clear();
        let mut h = std::collections::hash_map::DefaultHasher::new();
        pred.0.hash(&mut h);
        for col in &src.strips[m.pred.0 as usize].columns {
            let old = col[m.row as usize];
            let term = src.dict[old.0 as usize];
            term.hash(&mut h);
            let slot = memo[old.0 as usize];
            let cell = if slot != u32::MAX {
                TermId(slot)
            } else {
                let c = self.intern_term(term);
                memo[old.0 as usize] = c.0;
                c
            };
            cells.push(cell);
        }
        let out = self
            .try_intern_cells_hashed(h.finish(), pred, &cells)
            .unwrap_or_else(|e| panic!("{e}"));
        self.scratch = cells;
        out
    }

    const INLINE_ARITY: usize = 16;

    /// Looks up a fact without interning it; `None` if it was never interned.
    /// Any term absent from the dictionary occurs in no fact, so the lookup
    /// misses immediately. The query terms are translated through the
    /// inline-key term table (independent single-line probes the CPU can
    /// overlap) and the fact hash is computed from the term values directly,
    /// so the dedup-table walk and the cell comparisons form a two-hop
    /// dependency chain regardless of store size.
    pub fn lookup(&self, predicate: Predicate, terms: &[GroundTerm]) -> Option<FactId> {
        let pred = self.lookup_predicate(predicate)?;
        if self.table.is_empty() {
            return None;
        }
        let hash = Self::hash_fact(pred, terms.iter().copied());
        if terms.len() <= Self::INLINE_ARITY {
            let mut buf = [TermId(0); Self::INLINE_ARITY];
            for (slot, &t) in buf.iter_mut().zip(terms) {
                *slot = self.term_id(t)?;
            }
            self.probe_cells_hashed(hash, pred, &buf[..terms.len()])
                .ok()
        } else {
            let cells: Option<Vec<TermId>> = terms.iter().map(|&t| self.term_id(t)).collect();
            self.probe_cells_hashed(hash, pred, &cells?).ok()
        }
    }

    /// Looks up a [`Fact`] value without interning it.
    pub fn lookup_fact(&self, fact: &Fact) -> Option<FactId> {
        self.lookup(fact.predicate, &fact.terms)
    }

    /// Bulk membership: resolves each `(predicate, terms)` query to its
    /// interned fact id (`None` where the fact was never interned).
    ///
    /// Large batches are processed out-of-order, database-style (partitioned /
    /// vectorized probing): all query hashes are computed up front, then each
    /// table-walking phase — term translation, dedup-bucket walk, strip
    /// verification — runs over its requests **sorted by target address**, so
    /// a phase sweeps its table in address order instead of hopping randomly
    /// through it. On a DRAM-resident store this turns dependent random misses
    /// into hardware-prefetchable near-sequential streams, which is what keeps
    /// bulk probe throughput flat as the store outgrows the caches; a
    /// one-at-a-time [`FactStore::lookup`] loop instead pays serialized miss
    /// latency on every hop. Batches under 32 queries take the plain path.
    pub fn lookup_batch(&self, queries: &[(Predicate, &[GroundTerm])]) -> Vec<Option<FactId>> {
        let n = queries.len();
        let mut out = vec![None; n];
        if self.table.is_empty() {
            return out;
        }
        if n < 32 {
            for (o, &(p, terms)) in out.iter_mut().zip(queries) {
                *o = self.lookup(p, terms);
            }
            return out;
        }

        // Phase 1: predicate resolution and value hashing (CPU-bound,
        // streaming). A query dies here if its predicate was never interned —
        // or any ground term, when the dictionary is empty.
        let mut alive = vec![false; n];
        let mut pred = vec![u32::MAX; n];
        let mut fhash = vec![0u64; n];
        let mut start = Vec::with_capacity(n + 1);
        start.push(0u32);
        let mut total = 0usize;
        for (i, &(p, terms)) in queries.iter().enumerate() {
            if let Some(pid) = self.lookup_predicate(p) {
                if terms.is_empty() || !self.term_table.is_empty() {
                    alive[i] = true;
                    pred[i] = pid.0;
                    fhash[i] = Self::hash_fact(pid, terms.iter().copied());
                    total += terms.len();
                }
            }
            start.push(total as u32);
        }

        // Phase 2: term translation, swept in term-table address order. Each
        // request is `home slot (high 32) | flat cell index (low 32)`, so the
        // u64 sort yields address order and the walk loads stream.
        let mut cells = vec![TermId(0); total];
        if total > 0 {
            let tmask = self.term_table.len() - 1;
            let mut thash = vec![0u64; total];
            let mut owner = vec![0u32; total];
            let mut reqs = Vec::with_capacity(total);
            for (i, &(_, terms)) in queries.iter().enumerate() {
                if !alive[i] {
                    continue;
                }
                let base = start[i] as usize;
                for (j, &t) in terms.iter().enumerate() {
                    let h = Self::hash_term(t);
                    thash[base + j] = h;
                    owner[base + j] = i as u32;
                    reqs.push(((((h as usize) & tmask) as u64) << 32) | (base + j) as u64);
                }
            }
            reqs.sort_unstable();
            for &key in &reqs {
                let flat = key as u32 as usize;
                let q = owner[flat] as usize;
                if !alive[q] {
                    continue;
                }
                let term = queries[q].1[flat - start[q] as usize];
                let tag = (thash[flat] >> 32) as u32;
                let mut slot = (key >> 32) as usize;
                loop {
                    let b = self.term_table[slot];
                    if b.id == EMPTY_TERM_BUCKET.id {
                        // Term never interned: the fact cannot exist.
                        alive[q] = false;
                        break;
                    }
                    if b.tag == tag && b.term == term {
                        cells[flat] = TermId(b.id);
                        break;
                    }
                    slot = (slot + 1) & tmask;
                }
            }
        }

        // Phase 3: dedup-bucket walks, swept in table address order. The walk
        // stops at the first slot whose tag and predicate match, deferring the
        // cell comparison — on a miss it runs to the chain's empty slot.
        let mask = self.table.len() - 1;
        let mut reqs: Vec<u64> = (0..n)
            .filter(|&i| alive[i])
            .map(|i| ((((fhash[i] as usize) & mask) as u64) << 32) | i as u64)
            .collect();
        reqs.sort_unstable();
        let mut cand: Vec<(u32, u32, u32, u32)> = Vec::new();
        for &key in &reqs {
            let q = key as u32 as usize;
            let tag = (fhash[q] >> 32) as u32;
            let mut slot = (key >> 32) as usize;
            loop {
                let b = self.table[slot];
                if b.fact == EMPTY_BUCKET.fact {
                    break;
                }
                if b.tag == tag && b.pred == pred[q] {
                    cand.push((b.pred, b.row, q as u32, b.fact));
                    break;
                }
                slot = (slot + 1) & mask;
            }
        }

        // Phase 4: verification, swept in (predicate, row) order so the strip
        // reads stream too. A candidate whose cells mismatch after all — a
        // 32-bit tag collision within one predicate — re-probes through the
        // exact single-query walk.
        cand.sort_unstable();
        for &(p, row, q, fact) in &cand {
            let q = q as usize;
            let strip = &self.strips[p as usize];
            let span = start[q] as usize..start[q + 1] as usize;
            if cells[span.clone()]
                .iter()
                .zip(&strip.columns)
                .all(|(&c, col)| col[row as usize] == c)
            {
                out[q] = Some(FactId(fact));
            } else {
                out[q] = self
                    .probe_cells_hashed(fhash[q], PredicateId(pred[q]), &cells[span])
                    .ok();
            }
        }
        out
    }

    /// Looks up the fact `id` of `src` in this store without interning anything
    /// (cross-store containment): translates each cell through the dictionaries
    /// and probes. Any term or predicate unknown here is an immediate miss.
    pub fn lookup_copied(&self, src: &FactStore, id: FactId) -> Option<FactId> {
        let m = src.meta[id.0 as usize];
        let pred = self.lookup_predicate(src.predicates[m.pred.0 as usize])?;
        if self.table.is_empty() {
            return None;
        }
        let src_columns = &src.strips[m.pred.0 as usize].columns;
        let src_row = m.row as usize;
        let hash = Self::hash_fact(
            pred,
            src_columns
                .iter()
                .map(|col| src.dict[col[src_row].0 as usize]),
        );
        if src_columns.len() <= Self::INLINE_ARITY {
            let mut buf = [TermId(0); Self::INLINE_ARITY];
            for (slot, col) in buf.iter_mut().zip(src_columns) {
                *slot = self.term_id(src.dict[col[src_row].0 as usize])?;
            }
            self.probe_cells_hashed(hash, pred, &buf[..src_columns.len()])
                .ok()
        } else {
            let cells: Option<Vec<TermId>> = src_columns
                .iter()
                .map(|col| self.term_id(src.dict[col[src_row].0 as usize]))
                .collect();
            self.probe_cells_hashed(hash, pred, &cells?).ok()
        }
    }

    /// Interns the image of fact `id` under the substitution `γ` and returns the
    /// image's id (which is `id` itself when the fact does not mention the
    /// substituted null). The rewrite is a cell-level `TermId` swap through the
    /// store's scratch buffer: no term values are materialised and no per-call
    /// allocation happens after warm-up.
    pub fn intern_rewritten(&mut self, id: FactId, gamma: &NullSubstitution) -> FactId {
        let Some((null, target)) = gamma.mapping() else {
            return id;
        };
        let Some(needle) = self.term_id(GroundTerm::Null(null)) else {
            return id;
        };
        if !self.mentions(id, needle) {
            return id;
        }
        let to_cell = self.intern_term(target);
        let m = self.meta[id.0 as usize];
        let mut cells = std::mem::take(&mut self.scratch);
        cells.clear();
        for col in &self.strips[m.pred.0 as usize].columns {
            let c = col[m.row as usize];
            cells.push(if c == needle { to_cell } else { c });
        }
        let new = self
            .try_intern_cells(m.pred, &cells)
            .unwrap_or_else(|e| panic!("{e}"));
        self.scratch = cells;
        new
    }

    /// Writes the fact behind `id` in the `P(t1, …, tn)` syntax without
    /// materialising a [`Fact`] value.
    pub fn fmt_fact(&self, id: FactId, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate_of(id).name)?;
        for (i, t) in self.terms(id).iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }

    // -- raw-parts construction (snapshot loading) --------------------------------

    /// Rebuilds a store from deserialized snapshot parts, re-deriving the meta
    /// records, dictionary map and dedup table, and validating structural
    /// invariants (dense ids, consistent strip dimensions, no duplicates).
    /// Errors are returned as human-readable detail strings for
    /// [`PersistError::Format`](crate::persist::PersistError).
    pub(crate) fn from_raw_parts(
        predicates: Vec<Predicate>,
        dict: Vec<GroundTerm>,
        raw_strips: Vec<(Vec<Vec<TermId>>, Vec<FactId>)>,
    ) -> Result<FactStore, String> {
        if raw_strips.len() != predicates.len() {
            return Err(format!(
                "strip count {} does not match predicate count {}",
                raw_strips.len(),
                predicates.len()
            ));
        }
        // Rebuild the dictionary map with the same sorted sweep the batched
        // interning path uses: processing terms in home-slot order turns the
        // table writes into a near-sequential pass (per-term probing would
        // scatter a cache miss per entry), while still rejecting a corrupt
        // image with duplicate dictionary terms — a duplicate shares its
        // home slot, so its walk runs into the earlier bucket.
        let term_table = match dict.len() {
            0 => Vec::new(),
            n => {
                let cap = (n * 2).max(8).next_power_of_two();
                let mut fresh = vec![EMPTY_TERM_BUCKET; cap];
                let mask = cap - 1;
                let mut reqs: Vec<(u64, GroundTerm, u64)> = dict
                    .iter()
                    .enumerate()
                    .map(|(i, &term)| {
                        let hash = Self::hash_term(term);
                        (
                            ((((hash as usize) & mask) as u64) << 32) | i as u64,
                            term,
                            hash,
                        )
                    })
                    .collect();
                reqs.sort_unstable_by_key(|&(key, _, _)| key);
                for &(key, term, hash) in &reqs {
                    let tag = (hash >> 32) as u32;
                    let mut slot = (key >> 32) as usize;
                    loop {
                        let b = fresh[slot];
                        if b.id == EMPTY_TERM_BUCKET.id {
                            break;
                        }
                        if b.tag == tag && b.term == term {
                            return Err(format!(
                                "duplicate dictionary term at TermId({})",
                                key as u32
                            ));
                        }
                        slot = (slot + 1) & mask;
                    }
                    fresh[slot] = TermBucket {
                        term,
                        id: key as u32,
                        tag,
                    };
                }
                fresh
            }
        };
        let mut predicate_ids: HashMap<Predicate, PredicateId> =
            HashMap::with_capacity(predicates.len());
        for (i, &p) in predicates.iter().enumerate() {
            if predicate_ids.insert(p, PredicateId(i as u32)).is_some() {
                return Err(format!("duplicate predicate at PredicateId({i})"));
            }
        }
        let n_facts: usize = raw_strips.iter().map(|(_, rows)| rows.len()).sum();
        let mut meta = vec![
            FactMeta {
                pred: PredicateId(0),
                row: 0
            };
            n_facts
        ];
        let mut assigned = vec![false; n_facts];
        let mut strips = Vec::with_capacity(raw_strips.len());
        for (pi, (columns, fact_of_row)) in raw_strips.into_iter().enumerate() {
            let arity = predicates[pi].arity;
            if columns.len() != arity {
                return Err(format!(
                    "predicate {} has arity {arity} but {} columns",
                    predicates[pi].name,
                    columns.len()
                ));
            }
            for col in &columns {
                if col.len() != fact_of_row.len() {
                    return Err(format!(
                        "ragged strip for predicate {}: column of {} cells over {} rows",
                        predicates[pi].name,
                        col.len(),
                        fact_of_row.len()
                    ));
                }
                if let Some(bad) = col.iter().find(|c| c.0 as usize >= dict.len()) {
                    return Err(format!(
                        "cell TermId({}) is outside the dictionary (len {})",
                        bad.0,
                        dict.len()
                    ));
                }
            }
            for (row, &fid) in fact_of_row.iter().enumerate() {
                let idx = fid.0 as usize;
                if idx >= n_facts {
                    return Err(format!(
                        "row fact id FactId({}) is outside the fact space (len {n_facts})",
                        fid.0
                    ));
                }
                if assigned[idx] {
                    return Err(format!("FactId({}) is assigned to two rows", fid.0));
                }
                assigned[idx] = true;
                meta[idx] = FactMeta {
                    pred: PredicateId(pi as u32),
                    row: row as u32,
                };
            }
            strips.push(Strip {
                columns,
                fact_of_row,
            });
        }
        let mut store = FactStore {
            predicates,
            predicate_ids,
            dict,
            term_table,
            strips,
            meta,
            table: match n_facts {
                0 => Vec::new(),
                n => vec![EMPTY_BUCKET; (n * 2).max(8).next_power_of_two()],
            },
            scratch: Vec::new(),
            row_hint: 0,
            max_terms: u32::MAX,
            max_facts: u32::MAX,
        };
        // Rebuild the fact dedup table with the same sorted sweep: hash every
        // row predicate-by-predicate (three sequential column streams beat a
        // meta-order gather), then claim slots in home-slot order. A corrupt
        // image with duplicate facts is still rejected instead of silently
        // shadowing ids — duplicates share a home slot, so the later one's
        // walk runs into the earlier one's bucket and the cells compare equal.
        #[derive(Clone, Copy)]
        struct RebuildReq {
            /// `(home slot << 32) | fact id`.
            key: u64,
            tag: u32,
            pred: u32,
            row: u32,
        }
        let mask = store.table.len().wrapping_sub(1);
        let mut reqs: Vec<RebuildReq> = Vec::with_capacity(n_facts);
        let mut cells: Vec<TermId> = Vec::new();
        for (pi, strip) in store.strips.iter().enumerate() {
            for (row, &fid) in strip.fact_of_row.iter().enumerate() {
                cells.clear();
                cells.extend(strip.columns.iter().map(|col| col[row]));
                let hash = store.hash_cells(PredicateId(pi as u32), &cells);
                reqs.push(RebuildReq {
                    key: ((((hash as usize) & mask) as u64) << 32) | u64::from(fid.0),
                    tag: (hash >> 32) as u32,
                    pred: pi as u32,
                    row: row as u32,
                });
            }
        }
        reqs.sort_unstable_by_key(|r| r.key);
        for &r in &reqs {
            let mut slot = (r.key >> 32) as usize;
            loop {
                let b = store.table[slot];
                if b.fact == EMPTY_BUCKET.fact {
                    break;
                }
                if b.tag == r.tag
                    && b.pred == r.pred
                    && store.strips[r.pred as usize]
                        .columns
                        .iter()
                        .all(|col| col[r.row as usize] == col[b.row as usize])
                {
                    return Err(format!(
                        "FactId({}) duplicates the fact behind FactId({})",
                        r.key as u32, b.fact
                    ));
                }
                slot = (slot + 1) & mask;
            }
            store.table[slot] = Bucket {
                fact: r.key as u32,
                pred: r.pred,
                row: r.row,
                tag: r.tag,
            };
        }
        Ok(store)
    }

    /// The dictionary in `TermId` order (snapshot serialization).
    pub(crate) fn dict_terms(&self) -> &[GroundTerm] {
        &self.dict
    }

    /// The interned predicates in `PredicateId` order (snapshot serialization).
    pub(crate) fn predicate_list(&self) -> &[Predicate] {
        &self.predicates
    }
}

// ---------------------------------------------------------------------------------
// The per-fact view
// ---------------------------------------------------------------------------------

/// A cheap, copyable view of one fact's argument terms over its predicate's
/// column strips — the columnar replacement for the row-major `&[GroundTerm]`
/// span. Resolving position `i` reads the cell `columns[i][row]` and the
/// dictionary entry behind it.
#[derive(Clone, Copy)]
pub struct FactTerms<'a> {
    dict: &'a [GroundTerm],
    columns: &'a [Vec<TermId>],
    row: usize,
}

impl<'a> FactTerms<'a> {
    /// Number of argument terms (the predicate's arity).
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Returns `true` iff the fact is 0-ary.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The term at argument position `position`.
    ///
    /// # Panics
    ///
    /// Panics if `position >= self.len()`.
    pub fn get(&self, position: usize) -> GroundTerm {
        self.dict[self.columns[position][self.row].0 as usize]
    }

    /// Iterates over the argument terms in position order.
    pub fn iter(&self) -> FactTermsIter<'a> {
        FactTermsIter {
            view: *self,
            position: 0,
        }
    }

    /// Materialises the argument terms as a vector (boundary layer only).
    pub fn to_vec(&self) -> Vec<GroundTerm> {
        self.iter().collect()
    }

    /// Returns `true` iff some argument position carries `term`.
    pub fn contains(&self, term: GroundTerm) -> bool {
        self.iter().any(|t| t == term)
    }
}

impl fmt::Debug for FactTerms<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl PartialEq for FactTerms<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for FactTerms<'_> {}

impl PartialEq<[GroundTerm]> for FactTerms<'_> {
    fn eq(&self, other: &[GroundTerm]) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter().copied())
    }
}

impl PartialEq<&[GroundTerm]> for FactTerms<'_> {
    fn eq(&self, other: &&[GroundTerm]) -> bool {
        *self == **other
    }
}

impl<const N: usize> PartialEq<[GroundTerm; N]> for FactTerms<'_> {
    fn eq(&self, other: &[GroundTerm; N]) -> bool {
        *self == other[..]
    }
}

impl<const N: usize> PartialEq<&[GroundTerm; N]> for FactTerms<'_> {
    fn eq(&self, other: &&[GroundTerm; N]) -> bool {
        *self == other[..]
    }
}

impl PartialEq<Vec<GroundTerm>> for FactTerms<'_> {
    fn eq(&self, other: &Vec<GroundTerm>) -> bool {
        *self == other[..]
    }
}

impl<'a> IntoIterator for FactTerms<'a> {
    type Item = GroundTerm;
    type IntoIter = FactTermsIter<'a>;
    fn into_iter(self) -> FactTermsIter<'a> {
        self.iter()
    }
}

impl<'a> IntoIterator for &FactTerms<'a> {
    type Item = GroundTerm;
    type IntoIter = FactTermsIter<'a>;
    fn into_iter(self) -> FactTermsIter<'a> {
        self.iter()
    }
}

/// Position-order iterator over a [`FactTerms`] view.
#[derive(Clone)]
pub struct FactTermsIter<'a> {
    view: FactTerms<'a>,
    position: usize,
}

impl Iterator for FactTermsIter<'_> {
    type Item = GroundTerm;

    fn next(&mut self) -> Option<GroundTerm> {
        if self.position < self.view.len() {
            let t = self.view.get(self.position);
            self.position += 1;
            Some(t)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.view.len() - self.position;
        (n, Some(n))
    }
}

impl ExactSizeIterator for FactTermsIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Constant, NullValue};

    fn cst(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }
    fn null(i: u64) -> GroundTerm {
        GroundTerm::Null(NullValue(i))
    }

    #[test]
    fn interning_is_idempotent_and_dense() {
        let mut s = FactStore::new();
        let a = s.intern_fact(&Fact::from_parts("E", vec![cst("a"), cst("b")]));
        let b = s.intern_fact(&Fact::from_parts("E", vec![cst("a"), cst("b")]));
        let c = s.intern_fact(&Fact::from_parts("E", vec![cst("b"), cst("a")]));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.0, 0);
        assert_eq!(c.0, 1);
        assert_eq!(s.len(), 2);
        assert_eq!(s.arena_len(), 4);
        // The dictionary holds each distinct term once.
        assert_eq!(s.term_count(), 2);
    }

    #[test]
    fn same_name_different_arity_are_distinct_predicates() {
        let mut s = FactStore::new();
        let a = s.intern_fact(&Fact::from_parts("P", vec![cst("a")]));
        let b = s.intern_fact(&Fact::from_parts("P", vec![cst("a"), cst("a")]));
        assert_ne!(a, b);
        assert_eq!(s.predicate_count(), 2);
        assert_ne!(s.predicate_id_of(a), s.predicate_id_of(b));
    }

    #[test]
    fn round_trip_through_the_view_layer() {
        let mut s = FactStore::new();
        let f = Fact::from_parts("E", vec![cst("a"), null(3)]);
        let id = s.intern_fact(&f);
        assert_eq!(s.fact(id), f);
        assert_eq!(s.terms(id), &[cst("a"), null(3)]);
        assert_eq!(s.terms(id).to_vec(), vec![cst("a"), null(3)]);
        assert_eq!(s.term_at(id, 0), cst("a"));
        assert_eq!(s.term_at(id, 1), null(3));
        assert_eq!(s.predicate_of(id), f.predicate);
        assert_eq!(s.lookup_fact(&f), Some(id));
        assert_eq!(
            s.lookup_fact(&Fact::from_parts("E", vec![cst("a"), null(4)])),
            None
        );
    }

    #[test]
    fn column_strips_are_position_major() {
        let mut s = FactStore::new();
        let a = s.intern_fact(&Fact::from_parts("E", vec![cst("a"), cst("b")]));
        let b = s.intern_fact(&Fact::from_parts("E", vec![cst("b"), cst("c")]));
        let pid = s.predicate_id_of(a);
        assert_eq!(s.rows(pid), 2);
        assert_eq!(s.row_facts(pid), &[a, b]);
        let col0: Vec<GroundTerm> = s.column(pid, 0).iter().map(|&c| s.term(c)).collect();
        let col1: Vec<GroundTerm> = s.column(pid, 1).iter().map(|&c| s.term(c)).collect();
        assert_eq!(col0, vec![cst("a"), cst("b")]);
        assert_eq!(col1, vec![cst("b"), cst("c")]);
        assert_eq!(s.row_of(b), 1);
        // Cells are dictionary ids: equal terms share a cell across columns.
        assert_eq!(s.column(pid, 0)[1], s.column(pid, 1)[0]);
    }

    #[test]
    fn lookup_on_empty_store_is_none() {
        let s = FactStore::new();
        assert_eq!(s.lookup_fact(&Fact::from_parts("P", vec![cst("a")])), None);
    }

    #[test]
    fn lookup_batch_agrees_with_single_lookups() {
        let mut s = FactStore::new();
        // 0-ary, nulls, and enough facts to span several pipeline groups.
        s.intern_fact(&Fact::from_parts("unit", vec![]));
        s.intern_fact(&Fact::from_parts("E", vec![null(0), null(1)]));
        for i in 0..40 {
            s.intern_fact(&Fact::from_parts(
                "P",
                vec![cst(&format!("v{i}")), cst(&format!("v{}", i % 7))],
            ));
        }
        let mut queries: Vec<Fact> = vec![
            Fact::from_parts("unit", vec![]),
            Fact::from_parts("E", vec![null(0), null(1)]),
            Fact::from_parts("E", vec![null(1), null(0)]), // miss
            Fact::from_parts("Q", vec![cst("v0")]),        // unknown predicate
            Fact::from_parts("P", vec![cst("v1"), cst("zzz")]), // unknown term
        ];
        for i in (0..40).rev() {
            queries.push(Fact::from_parts(
                "P",
                vec![cst(&format!("v{i}")), cst(&format!("v{}", i % 6))],
            ));
        }
        let borrowed: Vec<(Predicate, &[GroundTerm])> = queries
            .iter()
            .map(|f| (f.predicate, f.terms.as_slice()))
            .collect();
        let batched = s.lookup_batch(&borrowed);
        assert_eq!(batched.len(), queries.len());
        for (f, got) in queries.iter().zip(&batched) {
            assert_eq!(*got, s.lookup_fact(f), "batch diverges on {f}");
        }
        assert!(batched.iter().filter(|r| r.is_some()).count() >= 2);
        assert!(FactStore::new()
            .lookup_batch(&borrowed)
            .iter()
            .all(Option::is_none));
    }

    #[test]
    fn intern_batch_matches_sequential_interning() {
        // A mixed batch: 0-ary, nulls, cross-predicate, duplicates both within
        // the batch and against already-interned facts.
        let mut facts: Vec<Fact> = Vec::new();
        facts.push(Fact::from_parts("unit", vec![]));
        facts.push(Fact::from_parts("E", vec![null(0), null(1)]));
        for i in 0..300 {
            facts.push(Fact::from_parts(
                "P",
                vec![cst(&format!("v{}", i % 200)), cst(&format!("v{}", i % 7))],
            ));
        }
        facts.push(Fact::from_parts("unit", vec![]));
        facts.push(Fact::from_parts("E", vec![null(0), null(1)]));

        let mut seq = FactStore::new();
        let seq_ids: Vec<FactId> = facts.iter().map(|f| seq.intern_fact(f)).collect();

        let mut pre = FactStore::new();
        let pre_seed = pre.intern_fact(&facts[5]);
        let borrowed: Vec<(Predicate, &[GroundTerm])> = facts
            .iter()
            .map(|f| (f.predicate, f.terms.as_slice()))
            .collect();
        let batch_ids = pre.try_intern_batch(&borrowed).unwrap();

        // Same value → id mapping as sequential interning would produce on the
        // pre-seeded store: the seed keeps id 0, everything else shifts but
        // duplicates still coincide.
        assert_eq!(batch_ids.len(), seq_ids.len());
        assert_eq!(batch_ids[5], pre_seed, "batch dedups against the store");
        for (i, f) in facts.iter().enumerate() {
            assert_eq!(Some(batch_ids[i]), pre.lookup_fact(f), "lookup of {f}");
            assert_eq!(pre.fact(batch_ids[i]), *f, "roundtrip of {f}");
        }
        for i in 0..facts.len() {
            for j in i + 1..facts.len() {
                assert_eq!(
                    seq_ids[i] == seq_ids[j],
                    batch_ids[i] == batch_ids[j],
                    "duplicate structure diverges at ({i}, {j})"
                );
            }
        }
        assert_eq!(pre.len(), seq.len());
        assert_eq!(pre.term_count(), seq.term_count());

        // A fresh store (growth from empty exercises the mid-chunk spill into
        // the plain path) assigns exactly the sequential ids.
        let mut fresh = FactStore::new();
        assert_eq!(fresh.try_intern_batch(&borrowed).unwrap(), seq_ids);

        // A pre-sized store (no growth: the pure sorted-sweep path) agrees too.
        let mut sized = FactStore::with_capacity(4, facts.len(), 512);
        assert_eq!(sized.try_intern_batch(&borrowed).unwrap(), seq_ids);
        assert_eq!(sized.try_intern_batch(&borrowed).unwrap(), seq_ids);

        // Capacity errors surface instead of wrapping.
        let mut tiny = FactStore::with_limits(8, 4);
        assert!(matches!(
            tiny.try_intern_batch(&borrowed),
            Err(CoreError::CapacityExhausted { .. })
        ));
    }

    #[test]
    fn lookup_misses_fast_on_unknown_terms() {
        let mut s = FactStore::new();
        s.intern_fact(&Fact::from_parts("P", vec![cst("a")]));
        // "z" is not in the dictionary: the lookup misses before probing.
        assert_eq!(s.lookup_fact(&Fact::from_parts("P", vec![cst("z")])), None);
        assert_eq!(s.term_id(cst("z")), None);
    }

    #[test]
    fn compare_matches_fact_ord() {
        let mut s = FactStore::new();
        let facts = vec![
            Fact::from_parts("E", vec![cst("a"), null(1)]),
            Fact::from_parts("E", vec![cst("a"), cst("b")]),
            Fact::from_parts("N", vec![cst("a")]),
            Fact::from_parts("E", vec![null(0), cst("b")]),
        ];
        let ids: Vec<FactId> = facts.iter().map(|f| s.intern_fact(f)).collect();
        let mut by_id = ids.clone();
        by_id.sort_by(|&a, &b| s.compare(a, b));
        let mut by_value = facts.clone();
        by_value.sort();
        let materialised: Vec<Fact> = by_id.iter().map(|&id| s.fact(id)).collect();
        assert_eq!(materialised, by_value);
    }

    #[test]
    fn intern_rewritten_dedups_against_existing_facts() {
        let mut s = FactStore::new();
        let with_null = s.intern_fact(&Fact::from_parts("E", vec![cst("a"), null(1)]));
        let ground = s.intern_fact(&Fact::from_parts("E", vec![cst("a"), cst("a")]));
        let gamma = NullSubstitution::single(NullValue(1), cst("a"));
        assert_eq!(s.intern_rewritten(with_null, &gamma), ground);
        // A fact untouched by γ maps to itself.
        assert_eq!(s.intern_rewritten(ground, &gamma), ground);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn zero_ary_facts_intern() {
        let mut s = FactStore::new();
        let a = s.intern_fact(&Fact::from_parts("Init", vec![]));
        let b = s.intern_fact(&Fact::from_parts("Init", vec![]));
        assert_eq!(a, b);
        assert!(s.terms(a).is_empty());
        assert_eq!(s.terms(a).iter().count(), 0);
    }

    #[test]
    fn table_growth_keeps_ids_stable() {
        let mut s = FactStore::new();
        let ids: Vec<FactId> = (0..1000)
            .map(|i| s.intern_fact(&Fact::from_parts("N", vec![cst(&format!("c{i}"))])))
            .collect();
        for (i, id) in ids.iter().enumerate() {
            assert_eq!(
                s.lookup_fact(&Fact::from_parts("N", vec![cst(&format!("c{i}"))])),
                Some(*id)
            );
        }
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn cross_store_copy_and_lookup() {
        let mut a = FactStore::new();
        let fa = a.intern_fact(&Fact::from_parts("E", vec![cst("x"), null(1)]));
        let mut b = FactStore::new();
        // Different interning history so the dictionaries disagree on ids.
        b.intern_fact(&Fact::from_parts("N", vec![cst("pad")]));
        let fb = b.intern_copied(&a, fa);
        assert_eq!(b.fact(fb), a.fact(fa));
        assert_eq!(b.lookup_copied(&a, fa), Some(fb));
        let other = a.intern_fact(&Fact::from_parts("E", vec![cst("y"), cst("x")]));
        assert_eq!(b.lookup_copied(&a, other), None);
    }

    #[test]
    fn term_dictionary_overflow_is_a_typed_error() {
        // Injected capacity of 2 terms: the third distinct term must fail with
        // the typed capacity error, and the panicking path must carry it.
        let mut s = FactStore::with_limits(2, u32::MAX);
        assert!(s
            .try_intern(Predicate::new("E", 2), &[cst("a"), cst("b")])
            .is_ok());
        let err = s
            .try_intern(Predicate::new("E", 2), &[cst("a"), cst("c")])
            .unwrap_err();
        assert_eq!(
            err,
            CoreError::CapacityExhausted {
                resource: "term dictionary",
                capacity: 2
            }
        );
        assert!(err.to_string().contains("term dictionary"));
        // The failed intern left no partial fact behind.
        assert_eq!(s.len(), 1);
        assert_eq!(s.term_count(), 2);
        // Re-interning existing terms still works.
        assert!(s
            .try_intern(Predicate::new("E", 2), &[cst("b"), cst("a")])
            .is_ok());
    }

    #[test]
    fn fact_id_overflow_is_a_typed_error() {
        let mut s = FactStore::with_limits(u32::MAX, 1);
        assert!(s.try_intern(Predicate::new("N", 1), &[cst("a")]).is_ok());
        // Re-interning the same fact dedups and stays within capacity.
        assert!(s.try_intern(Predicate::new("N", 1), &[cst("a")]).is_ok());
        let err = s
            .try_intern(Predicate::new("N", 1), &[cst("b")])
            .unwrap_err();
        assert_eq!(
            err,
            CoreError::CapacityExhausted {
                resource: "fact-id space",
                capacity: 1
            }
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity exhausted")]
    fn panicking_intern_carries_a_clear_message() {
        let mut s = FactStore::with_limits(1, u32::MAX);
        s.intern(Predicate::new("E", 2), &[cst("a"), cst("b")]);
    }

    #[test]
    fn with_capacity_presizes_the_dedup_table() {
        let mut s = FactStore::with_capacity(1, 1000, 1000);
        let table_before = s.footprint().table_bytes;
        for i in 0..1000 {
            s.intern(Predicate::new("N", 1), &[cst(&format!("c{i}"))]);
        }
        // No rehash doubling happened: the table was at its final size up front.
        assert_eq!(s.footprint().table_bytes, table_before);
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn footprint_reports_columnar_below_row_equivalent() {
        let mut s = FactStore::new();
        // Repeating terms: dictionary compression pays off.
        for i in 0..100 {
            s.intern(
                Predicate::new("E", 2),
                &[cst(&format!("c{}", i % 10)), cst(&format!("c{}", i % 7))],
            );
        }
        let fp = s.footprint();
        assert_eq!(fp.strip_bytes, s.arena_len() * 4 + s.len() * 4);
        assert_eq!(fp.dict_bytes, s.term_count() * 16);
        assert!(
            fp.columnar_bytes() < fp.row_equivalent_bytes,
            "columnar {} >= row {}",
            fp.columnar_bytes(),
            fp.row_equivalent_bytes
        );
    }

    #[test]
    fn mentions_checks_cells() {
        let mut s = FactStore::new();
        let id = s.intern_fact(&Fact::from_parts("E", vec![cst("a"), null(1)]));
        let a = s.term_id(cst("a")).unwrap();
        let n1 = s.term_id(null(1)).unwrap();
        assert!(s.mentions(id, a));
        assert!(s.mentions(id, n1));
        s.intern_fact(&Fact::from_parts("N", vec![cst("b")]));
        let b = s.term_id(cst("b")).unwrap();
        assert!(!s.mentions(id, b));
    }
}
