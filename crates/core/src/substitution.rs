//! Null substitutions (the `γ` of Definition 1).
//!
//! A substitution is either empty or a singleton `{η/t}` mapping a labeled null to a
//! constant or another labeled null. Substitutions arise when an EGD is enforced and
//! are applied to instances, facts and trigger records. Chains of substitutions
//! (`γ_j · · · γ_{i-1}` in the paper) are represented by [`SubstitutionChain`].

use crate::term::{GroundTerm, NullValue};
use std::fmt;

/// The substitution `γ` of a chase step: empty, or a single replacement `{η/t}`.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct NullSubstitution {
    mapping: Option<(NullValue, GroundTerm)>,
}

impl NullSubstitution {
    /// The empty substitution.
    pub fn empty() -> Self {
        NullSubstitution { mapping: None }
    }

    /// The singleton substitution `{null / target}`.
    pub fn single(null: NullValue, target: GroundTerm) -> Self {
        debug_assert!(
            GroundTerm::Null(null) != target,
            "a substitution must not map a null to itself"
        );
        NullSubstitution {
            mapping: Some((null, target)),
        }
    }

    /// Returns `true` iff this is the empty substitution.
    pub fn is_empty(&self) -> bool {
        self.mapping.is_none()
    }

    /// Returns the replaced null and its replacement, if any.
    pub fn mapping(&self) -> Option<(NullValue, GroundTerm)> {
        self.mapping
    }

    /// Applies the substitution to a ground term.
    pub fn apply_ground(&self, t: GroundTerm) -> GroundTerm {
        match (self.mapping, t) {
            (Some((from, to)), GroundTerm::Null(n)) if n == from => to,
            _ => t,
        }
    }
}

impl fmt::Display for NullSubstitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.mapping {
            None => write!(f, "{{}}"),
            Some((from, to)) => write!(f, "{{{}/{}}}", GroundTerm::Null(from), to),
        }
    }
}

/// A chain of substitutions `γ_j, γ_{j+1}, …` applied left to right.
///
/// Used by the oblivious and semi-oblivious chase to compare a new trigger with an old
/// one "modulo the substitutions applied in between" (Section 2 of the paper).
#[derive(Clone, Debug, Default)]
pub struct SubstitutionChain {
    steps: Vec<NullSubstitution>,
}

impl SubstitutionChain {
    /// Creates an empty chain.
    pub fn new() -> Self {
        SubstitutionChain { steps: Vec::new() }
    }

    /// Appends a substitution to the chain.
    pub fn push(&mut self, gamma: NullSubstitution) {
        if !gamma.is_empty() {
            self.steps.push(gamma);
        }
    }

    /// Number of non-empty substitutions recorded.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` iff no non-empty substitution was recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Applies the suffix of the chain starting at `from` (inclusive) to a ground term,
    /// i.e. computes `t γ_from · · · γ_last`.
    pub fn apply_from(&self, from: usize, t: GroundTerm) -> GroundTerm {
        let mut cur = t;
        for gamma in &self.steps[from.min(self.steps.len())..] {
            cur = gamma.apply_ground(cur);
        }
        cur
    }

    /// Applies the whole chain to a ground term.
    pub fn apply(&self, t: GroundTerm) -> GroundTerm {
        self.apply_from(0, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Constant;

    fn null(i: u64) -> GroundTerm {
        GroundTerm::Null(NullValue(i))
    }
    fn cst(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }

    #[test]
    fn empty_substitution_is_identity() {
        let s = NullSubstitution::empty();
        assert!(s.is_empty());
        assert_eq!(s.apply_ground(null(1)), null(1));
        assert_eq!(s.apply_ground(cst("a")), cst("a"));
    }

    #[test]
    fn singleton_substitution_replaces_only_its_null() {
        let s = NullSubstitution::single(NullValue(1), cst("a"));
        assert_eq!(s.apply_ground(null(1)), cst("a"));
        assert_eq!(s.apply_ground(null(2)), null(2));
        assert_eq!(s.apply_ground(cst("b")), cst("b"));
    }

    #[test]
    fn chain_applies_left_to_right() {
        // γ1 = {η1/η2}, γ2 = {η2/a}  ⇒  η1 γ1 γ2 = a
        let mut chain = SubstitutionChain::new();
        chain.push(NullSubstitution::single(NullValue(1), null(2)));
        chain.push(NullSubstitution::single(NullValue(2), cst("a")));
        assert_eq!(chain.apply(null(1)), cst("a"));
        assert_eq!(chain.apply(null(2)), cst("a"));
        assert_eq!(chain.apply(null(3)), null(3));
    }

    #[test]
    fn chain_suffix_application() {
        let mut chain = SubstitutionChain::new();
        chain.push(NullSubstitution::single(NullValue(1), null(2)));
        chain.push(NullSubstitution::single(NullValue(2), cst("a")));
        // Starting after the first substitution, η1 is untouched.
        assert_eq!(chain.apply_from(1, null(1)), null(1));
        assert_eq!(chain.apply_from(1, null(2)), cst("a"));
        // Starting past the end is the identity.
        assert_eq!(chain.apply_from(5, null(2)), null(2));
    }

    #[test]
    fn empty_substitutions_are_not_recorded() {
        let mut chain = SubstitutionChain::new();
        chain.push(NullSubstitution::empty());
        chain.push(NullSubstitution::empty());
        assert!(chain.is_empty());
        assert_eq!(chain.len(), 0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(NullSubstitution::empty().to_string(), "{}");
        let s = NullSubstitution::single(NullValue(3), cst("a"));
        assert_eq!(s.to_string(), "{_:n3/a}");
    }
}
