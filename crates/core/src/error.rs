//! Error types of the core crate.

use std::fmt;

/// Errors produced while building or parsing the dependency language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CoreError {
    /// A predicate was used with the wrong number of arguments.
    ArityMismatch {
        /// Predicate name.
        predicate: String,
        /// Declared arity.
        expected: usize,
        /// Number of arguments supplied.
        found: usize,
    },
    /// A dependency is malformed (e.g. a head variable that is neither universally
    /// quantified in the body nor existentially quantified, or an EGD whose equated
    /// variables do not occur in the body).
    MalformedDependency {
        /// Human readable explanation.
        reason: String,
    },
    /// A labeled null occurred where it is not allowed (dependencies must be null-free).
    NullInDependency,
    /// Parse error with location information.
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        column: usize,
        /// Explanation.
        message: String,
    },
    /// A dense id space of the fact store ([`FactStore`](crate::FactStore)'s
    /// term dictionary or fact-id space) is full: interning one more entry would
    /// wrap its `u32` ids.
    CapacityExhausted {
        /// Which id space ran out (`"term dictionary"` or `"fact-id space"`).
        resource: &'static str,
        /// The capacity that was hit.
        capacity: u64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ArityMismatch {
                predicate,
                expected,
                found,
            } => write!(
                f,
                "predicate {predicate} used with {found} arguments but has arity {expected}"
            ),
            CoreError::MalformedDependency { reason } => {
                write!(f, "malformed dependency: {reason}")
            }
            CoreError::NullInDependency => {
                write!(f, "labeled nulls are not allowed to occur in dependencies")
            }
            CoreError::Parse {
                line,
                column,
                message,
            } => write!(f, "parse error at {line}:{column}: {message}"),
            CoreError::CapacityExhausted { resource, capacity } => write!(
                f,
                "fact store capacity exhausted: {resource} is full ({capacity} entries)"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoreError::ArityMismatch {
            predicate: "R".into(),
            expected: 2,
            found: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains('R') && msg.contains('2') && msg.contains('3'));

        let p = CoreError::Parse {
            line: 4,
            column: 7,
            message: "expected ')'".into(),
        };
        assert!(p.to_string().contains("4:7"));
    }
}
