//! Opt-in indexed instances: per-(predicate, position) and per-null id indexes.
//!
//! An [`IndexedInstance`] wraps a plain [`Instance`] and maintains, *incrementally*,
//! the two indexes the join engine and the EGD substitution path consume — both as
//! buckets of [`FactId`]s over the instance's arena (no fact is ever cloned into an
//! index):
//!
//! * a per-(predicate, position, term) index answering "which facts of `P` carry this
//!   ground term at position `i`?" by lookup instead of scan — the fast path behind
//!   [`HomomorphismSearch::over_index`](crate::homomorphism::HomomorphismSearch::over_index)
//!   and the trigger engine of `chase_trigger`;
//! * a per-null occurrence index, so an EGD substitution rewrites only the facts that
//!   mention the substituted null and reports the `(old, new)` id delta.
//!
//! Keeping these indexes *off* [`Instance`] is deliberate: maintaining them costs
//! roughly `(arity + 2)×` extra work and memory per insert, which consumers that never
//! join through them (parsers, satisfaction checks on small witness instances, the
//! naive re-scan chase baseline) should not pay. Code that performs many joins against
//! an evolving instance owns an `IndexedInstance`; everyone else keeps a plain
//! [`Instance`] and gets a transient, per-query index from
//! [`HomomorphismSearch::new`](crate::homomorphism::HomomorphismSearch::new).

use crate::atom::{Atom, Fact, Predicate};
use crate::fact_store::{FactId, FactStore};
use crate::homomorphism::select_smallest_bucket;
use crate::instance::Instance;
use crate::substitution::NullSubstitution;
use crate::term::{GroundTerm, NullValue};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// An [`Instance`] plus incrementally maintained position and null indexes, both
/// holding [`FactId`]s into the instance's arena.
///
/// All mutation goes through [`IndexedInstance::insert`], [`IndexedInstance::remove`]
/// and [`IndexedInstance::substitute_in_place`], which keep the indexes consistent
/// with the underlying fact set.
#[derive(Default)]
pub struct IndexedInstance {
    instance: Instance,
    /// Per-(predicate, position) index: maps the ground term at that position to the
    /// ids of the facts carrying it there.
    by_position: HashMap<(Predicate, usize, GroundTerm), Vec<FactId>>,
    /// Ids of the facts mentioning each labeled null (each fact listed once per
    /// distinct null), so EGD substitution touches only the facts it rewrites.
    by_null: HashMap<NullValue, Vec<FactId>>,
    /// Number of position-index lookups served (diagnostics; lets tests assert that a
    /// caller routed through the indexed path rather than a scan). Atomic so the
    /// counter does not cost the type its `Sync`-ness.
    probes: AtomicU64,
}

impl Clone for IndexedInstance {
    fn clone(&self) -> Self {
        IndexedInstance {
            instance: self.instance.clone(),
            by_position: self.by_position.clone(),
            by_null: self.by_null.clone(),
            probes: AtomicU64::new(self.probes.load(Ordering::Relaxed)),
        }
    }
}

impl IndexedInstance {
    /// Creates an empty indexed instance.
    pub fn new() -> Self {
        IndexedInstance::default()
    }

    /// Builds the indexes over `instance` (taking ownership, preserving its
    /// labeled-null allocator state and arena).
    ///
    /// Facts are indexed in sorted order so that join candidate enumeration — and any
    /// chase sequence built on it — is reproducible across process runs.
    pub fn from_instance(instance: Instance) -> Self {
        let mut out = IndexedInstance {
            instance,
            by_position: HashMap::new(),
            by_null: HashMap::new(),
            probes: AtomicU64::new(0),
        };
        for id in out.instance.sorted_fact_ids() {
            out.index_fact(id);
        }
        out
    }

    /// Records `id` in the position and null indexes (the single place the indexing
    /// scheme is defined; `from_instance`, `insert` and `substitute_in_place` all go
    /// through it).
    fn index_fact(&mut self, id: FactId) {
        let store = self.instance.store();
        let predicate = store.predicate_of(id);
        let mut nulls: Vec<NullValue> = Vec::new();
        for (i, t) in store.terms(id).iter().enumerate() {
            self.by_position
                .entry((predicate, i, t))
                .or_default()
                .push(id);
            if let GroundTerm::Null(n) = t {
                nulls.push(n);
            }
        }
        nulls.sort_unstable();
        nulls.dedup();
        for n in nulls {
            self.by_null.entry(n).or_default().push(id);
        }
    }

    /// Removes `id` from the position and null indexes.
    fn unindex_fact(&mut self, id: FactId) {
        let store = self.instance.store();
        let predicate = store.predicate_of(id);
        for (i, t) in store.terms(id).iter().enumerate() {
            if let Some(v) = self.by_position.get_mut(&(predicate, i, t)) {
                v.retain(|&f| f != id);
                if v.is_empty() {
                    self.by_position.remove(&(predicate, i, t));
                }
            }
        }
        for t in store.terms(id) {
            if let GroundTerm::Null(n) = t {
                if let Some(v) = self.by_null.get_mut(&n) {
                    v.retain(|&f| f != id);
                    if v.is_empty() {
                        self.by_null.remove(&n);
                    }
                }
            }
        }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The arena-interned fact store behind the indexes.
    pub fn store(&self) -> &FactStore {
        self.instance.store()
    }

    /// Consumes the index, returning the instance.
    pub fn into_instance(self) -> Instance {
        self.instance
    }

    /// Number of stored facts.
    pub fn len(&self) -> usize {
        self.instance.len()
    }

    /// Returns `true` iff no fact is stored.
    pub fn is_empty(&self) -> bool {
        self.instance.is_empty()
    }

    /// Returns `true` iff the fact is stored.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.instance.contains(fact)
    }

    /// Allocates a labeled null distinct from every null in the stored facts.
    pub fn fresh_null(&mut self) -> NullValue {
        self.instance.fresh_null()
    }

    /// Ids of the facts of the given predicate (empty slice if none).
    pub fn ids_of(&self, predicate: Predicate) -> &[FactId] {
        self.instance.ids_of(predicate)
    }

    /// Inserts a fact, updating all indexes; returns `true` iff it was new.
    pub fn insert(&mut self, fact: Fact) -> bool {
        self.insert_full(fact).1
    }

    /// Inserts a fact, updating all indexes; returns its interned id and whether it
    /// was new.
    pub fn insert_full(&mut self, fact: Fact) -> (FactId, bool) {
        let (id, new) = self.instance.insert_full(fact);
        if new {
            self.index_fact(id);
        }
        (id, new)
    }

    /// Inserts a fact given as predicate + terms, updating all indexes; returns its
    /// interned id and whether it was new.
    pub fn insert_parts(&mut self, predicate: Predicate, terms: &[GroundTerm]) -> (FactId, bool) {
        let (id, new) = self.instance.insert_parts(predicate, terms);
        if new {
            self.index_fact(id);
        }
        (id, new)
    }

    /// Inserts a copy of the fact `id` of `src` (a different store), updating all
    /// indexes; returns the local interned id and whether it was new. Cells are
    /// translated store-to-store — see [`Instance::insert_copied`].
    pub fn insert_copied(&mut self, src: &FactStore, id: FactId) -> (FactId, bool) {
        let (local, new) = self.instance.insert_copied(src, id);
        if new {
            self.index_fact(local);
        }
        (local, new)
    }

    /// Removes a fact, updating all indexes; returns `true` iff it was present.
    pub fn remove(&mut self, fact: &Fact) -> bool {
        match self.instance.store().lookup_fact(fact) {
            Some(id) => self.remove_id(id),
            None => false,
        }
    }

    /// Removes an interned fact by id, updating all indexes; returns `true` iff it
    /// was present.
    pub fn remove_id(&mut self, id: FactId) -> bool {
        if !self.instance.remove_id(id) {
            return false;
        }
        self.unindex_fact(id);
        true
    }

    /// Removes a batch of facts by id; returns how many were present
    /// (duplicates count once). Delegates the dense-list maintenance to
    /// [`Instance::remove_ids`], which sweeps each affected per-predicate
    /// list once per batch instead of once per id.
    pub fn remove_ids(&mut self, ids: &[FactId]) -> usize {
        let mut seen: HashSet<FactId> = HashSet::with_capacity(ids.len());
        let present: Vec<FactId> = ids
            .iter()
            .copied()
            .filter(|&id| self.instance.contains_id(id) && seen.insert(id))
            .collect();
        self.instance.remove_ids(&present);
        for &id in &present {
            self.unindex_fact(id);
        }
        present.len()
    }

    /// Applies a null substitution `γ` in place and returns the id delta: one
    /// `(old, new)` pair per rewritten fact (the facts of `K γ` that arose from a
    /// fact of `K` mentioning the substituted null).
    ///
    /// The null-occurrence index gives exactly the facts that mention the null, so
    /// the rewrite touches only those — the delta the incremental trigger engine
    /// re-seeds its search from.
    pub fn substitute_in_place(&mut self, gamma: &NullSubstitution) -> Vec<(FactId, FactId)> {
        let Some((null, _)) = gamma.mapping() else {
            return Vec::new();
        };
        let changed = self.by_null.remove(&null).unwrap_or_default();
        let mut delta = Vec::with_capacity(changed.len());
        for id in changed {
            // The fact's entry in `by_null[null]` is already gone; `remove_id`
            // clears the position buckets and any other null lists it is on.
            self.instance.remove_id(id);
            self.unindex_fact(id);
            let new = self.instance.store_mut().intern_rewritten(id, gamma);
            if self.instance.insert_id(new) {
                self.index_fact(new);
            }
            delta.push((id, new));
        }
        delta
    }

    /// Ids of the facts of `predicate` carrying `term` at position `position` (empty
    /// slice if none). O(1) lookup instead of a scan over all facts of the predicate.
    pub fn facts_by_predicate_position(
        &self,
        predicate: Predicate,
        position: usize,
        term: GroundTerm,
    ) -> &[FactId] {
        self.probes.fetch_add(1, Ordering::Relaxed);
        self.by_position
            .get(&(predicate, position, term))
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// The candidate fact ids for `atom` under `assignment`: the smallest
    /// per-(predicate, position) bucket among the atom's bound positions, or all
    /// facts of the predicate when no position is bound.
    ///
    /// Every fact the atom can map to is in the returned slice; the slice may
    /// contain non-matching facts (unification still has to check the remaining
    /// positions), but for selective positions it is far smaller than the
    /// per-predicate list.
    pub fn candidates_for<'a>(
        &'a self,
        atom: &Atom,
        assignment: &crate::homomorphism::Assignment,
    ) -> &'a [FactId] {
        select_smallest_bucket(
            atom,
            assignment,
            |i, g| self.facts_by_predicate_position(atom.predicate, i, g),
            |b| b.len(),
        )
        .unwrap_or_else(|| self.instance.ids_of(atom.predicate))
    }

    /// An upper bound on the number of candidates for `atom` under `assignment`
    /// (the length of [`IndexedInstance::candidates_for`]'s result), used to order
    /// join atoms most-selective-first.
    pub fn candidate_count(
        &self,
        atom: &Atom,
        assignment: &crate::homomorphism::Assignment,
    ) -> usize {
        self.candidates_for(atom, assignment).len()
    }

    /// Total number of position-index lookups served so far. Monotone counter; lets
    /// tests prove that an evaluation routed through the maintained index.
    pub fn probe_count(&self) -> u64 {
        self.probes.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for IndexedInstance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IndexedInstance({:?})", self.instance)
    }
}

impl PartialEq for IndexedInstance {
    fn eq(&self, other: &Self) -> bool {
        self.instance == other.instance
    }
}

impl Eq for IndexedInstance {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Constant;

    fn cst(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }
    fn null(i: u64) -> GroundTerm {
        GroundTerm::Null(NullValue(i))
    }

    #[test]
    fn position_index_lookup() {
        let k = IndexedInstance::from_instance(Instance::from_facts(vec![
            Fact::from_parts("E", vec![cst("a"), cst("b")]),
            Fact::from_parts("E", vec![cst("a"), cst("c")]),
            Fact::from_parts("E", vec![cst("b"), cst("c")]),
        ]));
        let e = Predicate::new("E", 2);
        assert_eq!(k.facts_by_predicate_position(e, 0, cst("a")).len(), 2);
        assert_eq!(k.facts_by_predicate_position(e, 1, cst("c")).len(), 2);
        assert_eq!(k.facts_by_predicate_position(e, 0, cst("c")).len(), 0);
        assert_eq!(k.facts_by_predicate_position(e, 1, cst("z")).len(), 0);
        assert!(k.probe_count() >= 4);
    }

    #[test]
    fn position_index_stays_consistent_after_remove() {
        let mut k = IndexedInstance::new();
        k.insert(Fact::from_parts("E", vec![cst("a"), cst("b")]));
        k.insert(Fact::from_parts("E", vec![cst("a"), cst("c")]));
        let e = Predicate::new("E", 2);
        k.remove(&Fact::from_parts("E", vec![cst("a"), cst("b")]));
        assert_eq!(k.facts_by_predicate_position(e, 0, cst("a")).len(), 1);
        assert_eq!(k.facts_by_predicate_position(e, 1, cst("b")).len(), 0);
    }

    #[test]
    fn substitute_in_place_matches_apply_substitution() {
        let base = Instance::from_facts(vec![
            Fact::from_parts("E", vec![cst("a"), null(1)]),
            Fact::from_parts("E", vec![null(1), null(2)]),
            Fact::from_parts("E", vec![cst("a"), cst("a")]),
            Fact::from_parts("N", vec![cst("b")]),
        ]);
        let gamma = NullSubstitution::single(NullValue(1), cst("a"));
        let rebuilt = base.apply_substitution(&gamma);
        let mut indexed = IndexedInstance::from_instance(base);
        let delta = indexed.substitute_in_place(&gamma);
        assert_eq!(indexed.instance(), &rebuilt);
        // Exactly the two facts mentioning η1 were rewritten.
        assert_eq!(delta.len(), 2);
        let rewritten: Vec<Fact> = delta
            .iter()
            .map(|&(_, new)| indexed.store().fact(new))
            .collect();
        assert!(rewritten.contains(&Fact::from_parts("E", vec![cst("a"), cst("a")])));
        assert!(rewritten.contains(&Fact::from_parts("E", vec![cst("a"), null(2)])));
    }

    #[test]
    fn indexes_stay_consistent_after_in_place_substitution() {
        let mut k = IndexedInstance::from_instance(Instance::from_facts(vec![
            Fact::from_parts("E", vec![cst("a"), null(1)]),
            Fact::from_parts("E", vec![cst("a"), cst("a")]),
        ]));
        let e = Predicate::new("E", 2);
        k.substitute_in_place(&NullSubstitution::single(NullValue(1), cst("a")));
        // The two facts collapsed: every index must agree on the single survivor.
        assert_eq!(k.len(), 1);
        assert_eq!(k.ids_of(e).len(), 1);
        assert_eq!(k.facts_by_predicate_position(e, 0, cst("a")).len(), 1);
        assert_eq!(k.facts_by_predicate_position(e, 1, cst("a")).len(), 1);
        assert_eq!(k.facts_by_predicate_position(e, 1, null(1)).len(), 0);
        assert!(k.instance().nulls().is_empty());
    }

    #[test]
    fn repeated_null_occurrences_are_indexed_once() {
        // E(η1, η1) mentions η1 twice; substitution must rewrite it exactly once.
        let mut k = IndexedInstance::new();
        k.insert(Fact::from_parts("E", vec![null(1), null(1)]));
        let delta = k.substitute_in_place(&NullSubstitution::single(NullValue(1), cst("a")));
        assert_eq!(delta.len(), 1);
        assert_eq!(
            k.store().fact(delta[0].1),
            Fact::from_parts("E", vec![cst("a"), cst("a")])
        );
        assert_eq!(k.len(), 1);
    }

    #[test]
    fn chained_in_place_substitutions() {
        // γ1 = {η1/η2} then γ2 = {η2/a}: the null index must track rewritten facts.
        let mut k = IndexedInstance::new();
        k.insert(Fact::from_parts("E", vec![null(1), cst("b")]));
        let r1 = k.substitute_in_place(&NullSubstitution::single(NullValue(1), null(2)));
        assert_eq!(r1.len(), 1);
        assert_eq!(
            k.store().fact(r1[0].1),
            Fact::from_parts("E", vec![null(2), cst("b")])
        );
        let r2 = k.substitute_in_place(&NullSubstitution::single(NullValue(2), cst("a")));
        assert_eq!(r2.len(), 1);
        assert_eq!(
            k.store().fact(r2[0].1),
            Fact::from_parts("E", vec![cst("a"), cst("b")])
        );
        assert!(k.instance().nulls().is_empty());
        assert_eq!(k.len(), 1);
    }

    #[test]
    fn empty_substitution_in_place_is_a_no_op() {
        let mut k = IndexedInstance::new();
        k.insert(Fact::from_parts("E", vec![cst("a"), null(1)]));
        let delta = k.substitute_in_place(&NullSubstitution::empty());
        assert!(delta.is_empty());
        assert_eq!(k.len(), 1);
    }
}
