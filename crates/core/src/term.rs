//! Terms: constants, labeled nulls and variables (Section 2 of the paper).

use crate::interner::Symbol;
use std::fmt;

/// A constant from the infinite set `Consts`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Constant(pub Symbol);

/// A labeled null from the infinite set `Nulls`, written `η_k` in the paper.
///
/// Nulls are identified by a numeric label; fresh nulls are allocated by
/// [`crate::instance::Instance::fresh_null`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NullValue(pub u64);

/// A variable from the infinite set `Vars`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Variable(pub Symbol);

/// A term is a constant, a labeled null, or a variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A constant.
    Const(Constant),
    /// A labeled null.
    Null(NullValue),
    /// A variable.
    Var(Variable),
}

/// A ground term: a constant or a labeled null (what may occur in a fact).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GroundTerm {
    /// A constant.
    Const(Constant),
    /// A labeled null.
    Null(NullValue),
}

impl Constant {
    /// Creates a constant with the given name.
    pub fn new(name: &str) -> Self {
        Constant(Symbol::new(name))
    }

    /// The constant's name.
    pub fn name(&self) -> String {
        self.0.as_str()
    }
}

impl Variable {
    /// Creates a variable with the given name.
    pub fn new(name: &str) -> Self {
        Variable(Symbol::new(name))
    }

    /// The variable's name.
    pub fn name(&self) -> String {
        self.0.as_str()
    }
}

impl NullValue {
    /// The numeric label of the null.
    pub fn label(&self) -> u64 {
        self.0
    }
}

impl Term {
    /// Returns `true` iff the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// Returns `true` iff the term is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }

    /// Returns `true` iff the term is a labeled null.
    pub fn is_null(&self) -> bool {
        matches!(self, Term::Null(_))
    }

    /// Returns the variable if this term is one.
    pub fn as_var(&self) -> Option<Variable> {
        match self {
            Term::Var(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the ground term if this term is ground (constant or null).
    pub fn as_ground(&self) -> Option<GroundTerm> {
        match self {
            Term::Const(c) => Some(GroundTerm::Const(*c)),
            Term::Null(n) => Some(GroundTerm::Null(*n)),
            Term::Var(_) => None,
        }
    }
}

impl GroundTerm {
    /// Returns `true` iff the ground term is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, GroundTerm::Const(_))
    }

    /// Returns `true` iff the ground term is a labeled null.
    pub fn is_null(&self) -> bool {
        matches!(self, GroundTerm::Null(_))
    }

    /// Returns the null if this ground term is one.
    pub fn as_null(&self) -> Option<NullValue> {
        match self {
            GroundTerm::Null(n) => Some(*n),
            GroundTerm::Const(_) => None,
        }
    }

    /// Returns the constant if this ground term is one.
    pub fn as_const(&self) -> Option<Constant> {
        match self {
            GroundTerm::Const(c) => Some(*c),
            GroundTerm::Null(_) => None,
        }
    }
}

impl From<GroundTerm> for Term {
    fn from(g: GroundTerm) -> Term {
        match g {
            GroundTerm::Const(c) => Term::Const(c),
            GroundTerm::Null(n) => Term::Null(n),
        }
    }
}

impl From<Constant> for Term {
    fn from(c: Constant) -> Term {
        Term::Const(c)
    }
}

impl From<Variable> for Term {
    fn from(v: Variable) -> Term {
        Term::Var(v)
    }
}

impl From<NullValue> for Term {
    fn from(n: NullValue) -> Term {
        Term::Null(n)
    }
}

impl From<Constant> for GroundTerm {
    fn from(c: Constant) -> GroundTerm {
        GroundTerm::Const(c)
    }
}

impl From<NullValue> for GroundTerm {
    fn from(n: NullValue) -> GroundTerm {
        GroundTerm::Null(n)
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "?{}", self.0)
    }
}

impl fmt::Display for NullValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_:n{}", self.0)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Const(c) => write!(f, "{c}"),
            Term::Null(n) => write!(f, "{n}"),
            Term::Var(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Display for GroundTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundTerm::Const(c) => write!(f, "{c}"),
            GroundTerm::Null(n) => write!(f, "{n}"),
        }
    }
}

impl fmt::Debug for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Debug for Variable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Debug for NullValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Debug for GroundTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_kind_predicates() {
        let c = Term::Const(Constant::new("a"));
        let v = Term::Var(Variable::new("x"));
        let n = Term::Null(NullValue(3));
        assert!(c.is_const() && !c.is_var() && !c.is_null());
        assert!(v.is_var() && !v.is_const() && !v.is_null());
        assert!(n.is_null() && !n.is_const() && !n.is_var());
    }

    #[test]
    fn ground_term_conversion() {
        let c = Term::Const(Constant::new("a"));
        let v = Term::Var(Variable::new("x"));
        assert_eq!(c.as_ground(), Some(GroundTerm::Const(Constant::new("a"))));
        assert_eq!(v.as_ground(), None);
        let back: Term = GroundTerm::Const(Constant::new("a")).into();
        assert_eq!(back, c);
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(Constant::new("a"), Constant::new("a"));
        assert_ne!(Constant::new("a"), Constant::new("b"));
        assert_eq!(Variable::new("x"), Variable::new("x"));
        assert_eq!(NullValue(1), NullValue(1));
        assert_ne!(NullValue(1), NullValue(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Term::Const(Constant::new("alice"))), "alice");
        assert_eq!(format!("{}", Term::Var(Variable::new("x"))), "?x");
        assert_eq!(format!("{}", Term::Null(NullValue(7))), "_:n7");
    }

    #[test]
    fn ground_term_accessors() {
        let n = GroundTerm::Null(NullValue(5));
        let c = GroundTerm::Const(Constant::new("a"));
        assert_eq!(n.as_null(), Some(NullValue(5)));
        assert_eq!(n.as_const(), None);
        assert_eq!(c.as_const(), Some(Constant::new("a")));
        assert_eq!(c.as_null(), None);
    }
}
