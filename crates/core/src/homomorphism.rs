//! Homomorphisms from conjunctions of atoms into instances — the workspace's single
//! join engine.
//!
//! A homomorphism `h : Dom(A1) → Dom(A2)` maps variables to ground terms (and is the
//! identity on constants), such that every atom of `A1` is sent to a fact of `A2`
//! (Section 2 of the paper). Every chase variant and every termination criterion
//! bottlenecks on this one primitive — trigger discovery, TGD-activity checks, EGD
//! satisfaction, core computation, MFA saturation — so this module owns the one
//! backtracking join everybody shares:
//!
//! * a [`JoinPlan`] orders the body atoms most-selective-first (see its docs for the
//!   exact heuristic);
//! * per-atom candidate enumeration goes through a per-(predicate, position) index —
//!   either the incrementally maintained one of an
//!   [`IndexedInstance`]
//!   ([`HomomorphismSearch::over_index`]) or a transient per-query index built over a
//!   plain [`Instance`] ([`HomomorphismSearch::new`]);
//! * the early-exit callback interface lets callers stop at the first witness.
//!
//! A deliberately index-free, plan-free reference implementation is retained as
//! [`naive_homomorphisms_extending`] for differential testing of the engine.

use crate::atom::{Atom, Fact, Predicate};
use crate::fact_store::{FactId, FactStore};
use crate::index::IndexedInstance;
use crate::instance::Instance;
use crate::term::{GroundTerm, Term, Variable};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;
use std::ops::ControlFlow;

/// A (partial) assignment of variables to ground terms — the variable part of a
/// homomorphism. Constants are always mapped to themselves.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Assignment {
    map: HashMap<Variable, GroundTerm>,
}

impl Assignment {
    /// Creates an empty assignment.
    pub fn new() -> Self {
        Assignment::default()
    }

    /// Creates an assignment from pairs.
    pub fn from_pairs<I: IntoIterator<Item = (Variable, GroundTerm)>>(pairs: I) -> Self {
        Assignment {
            map: pairs.into_iter().collect(),
        }
    }

    /// Looks up a variable.
    pub fn get(&self, v: Variable) -> Option<GroundTerm> {
        self.map.get(&v).copied()
    }

    /// Binds a variable (overwrites any previous binding).
    pub fn bind(&mut self, v: Variable, t: GroundTerm) {
        self.map.insert(v, t);
    }

    /// Removes a binding (used by backtracking searches).
    pub fn unbind(&mut self, v: Variable) {
        self.map.remove(&v);
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` iff no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over the bindings in an arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (Variable, GroundTerm)> + '_ {
        self.map.iter().map(|(v, t)| (*v, *t))
    }

    /// Applies the assignment to a term: bound variables are replaced by their image,
    /// ground terms are returned unchanged, unbound variables yield `None`.
    pub fn apply_term(&self, t: &Term) -> Option<GroundTerm> {
        match t {
            Term::Const(c) => Some(GroundTerm::Const(*c)),
            Term::Null(n) => Some(GroundTerm::Null(*n)),
            Term::Var(v) => self.get(*v),
        }
    }

    /// Applies the assignment to an atom, producing a fact if all variables are bound.
    pub fn apply_atom(&self, atom: &Atom) -> Option<crate::atom::Fact> {
        let mut terms = Vec::with_capacity(atom.terms.len());
        for t in &atom.terms {
            terms.push(self.apply_term(t)?);
        }
        Some(crate::atom::Fact {
            predicate: atom.predicate,
            terms,
        })
    }

    /// Applies the assignment to an atom, leaving unbound variables in place.
    pub fn apply_atom_partial(&self, atom: &Atom) -> Atom {
        atom.map_terms(|t| match t {
            Term::Var(v) => match self.get(*v) {
                Some(g) => g.into(),
                None => *t,
            },
            _ => *t,
        })
    }

    /// Returns a canonical, sorted vector of bindings (useful as a hash key).
    pub fn canonical(&self) -> Vec<(Variable, GroundTerm)> {
        let mut v: Vec<_> = self.map.iter().map(|(a, b)| (*a, *b)).collect();
        v.sort();
        v
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, t)) in self.canonical().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} -> {t}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Tries to unify `atom` with `fact` under `assignment`, binding unbound variables.
/// On success returns the newly bound variables; on failure the assignment is
/// rolled back and `None` is returned.
pub fn unify_atom_with_fact(
    atom: &Atom,
    fact: &Fact,
    assignment: &mut Assignment,
) -> Option<Vec<Variable>> {
    debug_assert_eq!(atom.predicate, fact.predicate);
    unify_atom_with_terms(atom, &fact.terms, assignment)
}

/// Tries to unify `atom` with a fact given by its argument terms as a value
/// slice under `assignment`. The predicate is assumed to match. Semantics are
/// those of [`unify_atom_with_fact`]; facts already interned in a
/// [`FactStore`] unify without materialising a slice via
/// [`unify_atom_with_stored`].
pub fn unify_atom_with_terms(
    atom: &Atom,
    fact_terms: &[GroundTerm],
    assignment: &mut Assignment,
) -> Option<Vec<Variable>> {
    debug_assert_eq!(atom.terms.len(), fact_terms.len());
    let mut new_bindings: Vec<Variable> = Vec::new();
    for (t, g) in atom.terms.iter().zip(fact_terms.iter()) {
        let ok = match t {
            Term::Const(c) => GroundTerm::Const(*c) == *g,
            Term::Null(n) => GroundTerm::Null(*n) == *g,
            Term::Var(v) => match assignment.get(*v) {
                Some(bound) => bound == *g,
                None => {
                    assignment.bind(*v, *g);
                    new_bindings.push(*v);
                    true
                }
            },
        };
        if !ok {
            for v in &new_bindings {
                assignment.unbind(*v);
            }
            return None;
        }
    }
    Some(new_bindings)
}

/// Tries to unify `atom` with the interned fact `id` of `store` under
/// `assignment` — the hot-path variant of [`unify_atom_with_terms`], reading
/// each position straight from the store's column strips (two array reads per
/// position, no term vector). The predicate is assumed to match.
pub fn unify_atom_with_stored(
    atom: &Atom,
    store: &FactStore,
    id: FactId,
    assignment: &mut Assignment,
) -> Option<Vec<Variable>> {
    let view = store.terms(id);
    debug_assert_eq!(atom.terms.len(), view.len());
    let mut new_bindings: Vec<Variable> = Vec::new();
    for (pos, t) in atom.terms.iter().enumerate() {
        let g = view.get(pos);
        let ok = match t {
            Term::Const(c) => GroundTerm::Const(*c) == g,
            Term::Null(n) => GroundTerm::Null(*n) == g,
            Term::Var(v) => match assignment.get(*v) {
                Some(bound) => bound == g,
                None => {
                    assignment.bind(*v, g);
                    new_bindings.push(*v);
                    true
                }
            },
        };
        if !ok {
            for v in &new_bindings {
                assignment.unbind(*v);
            }
            return None;
        }
    }
    Some(new_bindings)
}

// ---------------------------------------------------------------------------------
// Join planning
// ---------------------------------------------------------------------------------

/// A static join order over the atoms of a conjunctive body, most-selective-first.
///
/// The plan is computed greedily. Starting from the variables already bound (by the
/// caller's partial assignment, or by a seed fact), it repeatedly appends the
/// remaining atom with the smallest key
///
/// ```text
/// (number of distinct still-unbound variables,  candidate-count estimate,  original index)
/// ```
///
/// and marks that atom's variables bound. The three components mean:
///
/// 1. **bound positions first** — an atom whose positions are already ground
///    (constants, nulls, or variables bound earlier) acts as a filter or an index
///    probe rather than a generator, so it runs as early as possible;
/// 2. **small relations first** — among equally bound atoms, the one with the
///    smallest candidate estimate (the smallest per-(predicate, position) bucket over
///    its statically ground positions, or the predicate's fact count) generates the
///    fewest branches;
/// 3. **stability** — ties are broken by the original atom index, so equal-selectivity
///    bodies keep their textual order and plans are reproducible.
///
/// The estimate is *static*: it is computed once against the initial bindings, not
/// re-evaluated as the join binds more variables. Candidate enumeration at execution
/// time still consults the index with the *full* current assignment, so later atoms
/// benefit from every binding made before them regardless of the plan-time estimate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinPlan {
    order: Vec<usize>,
}

impl JoinPlan {
    /// Plans a join over `atoms`, given the variables bound by `partial` and a
    /// per-atom candidate-count estimate (`cardinality(i)` estimates the candidates
    /// for `atoms[i]` under `partial`; see the type-level docs).
    pub fn new(
        atoms: &[Atom],
        partial: &Assignment,
        cardinality: impl FnMut(usize) -> usize,
    ) -> JoinPlan {
        let include: Vec<usize> = (0..atoms.len()).collect();
        JoinPlan::for_subset(atoms, &include, partial, cardinality)
    }

    /// Plans a join over the subset `include` of `atoms` (used by seeded searches,
    /// where the seed atom is already matched and excluded from the plan).
    pub fn for_subset(
        atoms: &[Atom],
        include: &[usize],
        partial: &Assignment,
        mut cardinality: impl FnMut(usize) -> usize,
    ) -> JoinPlan {
        let mut bound: HashSet<Variable> = partial.iter().map(|(v, _)| v).collect();
        let estimates: HashMap<usize, usize> =
            include.iter().map(|&i| (i, cardinality(i))).collect();
        let mut remaining: Vec<usize> = include.to_vec();
        remaining.sort_unstable();
        let mut order = Vec::with_capacity(remaining.len());
        while !remaining.is_empty() {
            // `min_by_key` keeps the first minimum; `remaining` is in ascending
            // original-index order, so ties resolve to the lowest index (stability).
            let (pos, _) = remaining
                .iter()
                .enumerate()
                .map(|(pos, &ai)| {
                    let unbound = atoms[ai]
                        .terms
                        .iter()
                        .filter_map(|t| match t {
                            Term::Var(v) if !bound.contains(v) => Some(*v),
                            _ => None,
                        })
                        .collect::<BTreeSet<_>>()
                        .len();
                    (pos, (unbound, estimates[&ai]))
                })
                .min_by_key(|&(_, key)| key)
                .expect("remaining is non-empty");
            let ai = remaining.remove(pos);
            for v in atoms[ai].variables() {
                bound.insert(v);
            }
            order.push(ai);
        }
        JoinPlan { order }
    }

    /// The planned atom order (indices into the atom slice the plan was built for).
    pub fn order(&self) -> &[usize] {
        &self.order
    }
}

// ---------------------------------------------------------------------------------
// Candidate sources
// ---------------------------------------------------------------------------------

/// Selects the smallest candidate bucket among the atom's ground positions under
/// `assignment` — the one bucket-selection heuristic shared by the transient
/// per-query index and the maintained [`IndexedInstance`] index, so the two cannot
/// drift. A position is ground when it carries a constant, a null, or a variable
/// bound by `assignment`; the scan stops early on an empty bucket (no candidate can
/// match). Returns `None` when no position is ground (callers fall back to the
/// per-predicate scan).
pub(crate) fn select_smallest_bucket<B>(
    atom: &Atom,
    assignment: &Assignment,
    mut bucket_for: impl FnMut(usize, GroundTerm) -> B,
    len_of: impl Fn(&B) -> usize,
) -> Option<B> {
    let mut best: Option<B> = None;
    for (i, term) in atom.terms.iter().enumerate() {
        let ground: Option<GroundTerm> = match term {
            Term::Const(c) => Some(GroundTerm::Const(*c)),
            Term::Null(n) => Some(GroundTerm::Null(*n)),
            Term::Var(v) => assignment.get(*v),
        };
        if let Some(g) = ground {
            let bucket = bucket_for(i, g);
            let bucket_len = len_of(&bucket);
            if best.as_ref().is_none_or(|b| bucket_len < len_of(b)) {
                best = Some(bucket);
            }
            if bucket_len == 0 {
                break;
            }
        }
    }
    best
}

/// A transient per-(predicate, position) index over a plain [`Instance`], built for
/// the predicates of one query. Buckets hold [`FactId`]s into the instance's arena,
/// so facts are never cloned.
struct QueryIndex {
    buckets: HashMap<(Predicate, usize, GroundTerm), Vec<FactId>>,
}

impl QueryIndex {
    fn build(atoms: &[Atom], instance: &Instance) -> QueryIndex {
        let mut buckets: HashMap<(Predicate, usize, GroundTerm), Vec<FactId>> = HashMap::new();
        let predicates: BTreeSet<Predicate> = atoms.iter().map(|a| a.predicate).collect();
        let store = instance.store();
        // Column-major build: one pass per (predicate, position) over that
        // position's contiguous strip — cache-linear, instead of striding
        // across every fact's full row.
        for p in predicates {
            let Some(pid) = store.lookup_predicate(p) else {
                continue;
            };
            for pos in 0..p.arity {
                let col = store.column(pid, pos);
                for &id in instance.ids_of(p) {
                    let t = store.term(col[store.row_of(id)]);
                    buckets.entry((p, pos, t)).or_default().push(id);
                }
            }
        }
        QueryIndex { buckets }
    }

    /// The smallest bucket among the atom's ground positions under `assignment`, or
    /// `None` when no position is ground (callers fall back to the predicate scan).
    fn best_bucket(&self, atom: &Atom, assignment: &Assignment) -> Option<&[FactId]> {
        const EMPTY: &[FactId] = &[];
        select_smallest_bucket(
            atom,
            assignment,
            |i, g| {
                self.buckets
                    .get(&(atom.predicate, i, g))
                    .map(|v| v.as_slice())
                    .unwrap_or(EMPTY)
            },
            |b| b.len(),
        )
    }
}

enum Source<'a> {
    /// A plain instance plus a transient index over the query's predicates.
    Scan {
        instance: &'a Instance,
        index: QueryIndex,
    },
    /// An instance with incrementally maintained indexes.
    Indexed(&'a IndexedInstance),
}

impl Source<'_> {
    /// Candidate-count estimate for `atom` under `h` (plan-time and ordering hints).
    fn candidate_count(&self, atom: &Atom, h: &Assignment) -> usize {
        match self {
            Source::Scan { instance, index } => match index.best_bucket(atom, h) {
                Some(bucket) => bucket.len(),
                None => instance.ids_of(atom.predicate).len(),
            },
            Source::Indexed(ix) => ix.candidate_count(atom, h),
        }
    }

    /// The arena behind the candidate ids this source enumerates.
    fn store(&self) -> &FactStore {
        match self {
            Source::Scan { instance, .. } => instance.store(),
            Source::Indexed(ix) => ix.store(),
        }
    }
}

// ---------------------------------------------------------------------------------
// The search
// ---------------------------------------------------------------------------------

/// Backtracking homomorphism search from a conjunction of atoms into an instance,
/// executing a [`JoinPlan`] over an indexed candidate source.
pub struct HomomorphismSearch<'a> {
    atoms: &'a [Atom],
    source: Source<'a>,
}

impl<'a> HomomorphismSearch<'a> {
    /// Creates a search for homomorphisms from `atoms` into `instance`.
    ///
    /// Builds a transient per-(predicate, position) index over the predicates the
    /// query mentions (cost: one pass over their facts), so that the join itself is
    /// index-backed even though plain instances maintain no indexes.
    pub fn new(atoms: &'a [Atom], instance: &'a Instance) -> Self {
        HomomorphismSearch {
            atoms,
            source: Source::Scan {
                instance,
                index: QueryIndex::build(atoms, instance),
            },
        }
    }

    /// Creates a search for homomorphisms from `atoms` into an [`IndexedInstance`],
    /// reusing its incrementally maintained indexes (no per-query build cost). This
    /// is the entry point of the delta-driven trigger engine.
    pub fn over_index(atoms: &'a [Atom], index: &'a IndexedInstance) -> Self {
        HomomorphismSearch {
            atoms,
            source: Source::Indexed(index),
        }
    }

    /// Visits every homomorphism extending `partial`, invoking `visit` for each.
    /// The visitor can stop the enumeration early by returning
    /// [`ControlFlow::Break`].
    pub fn for_each_extending<B>(
        &self,
        partial: &Assignment,
        visit: &mut impl FnMut(&Assignment) -> ControlFlow<B>,
    ) -> Option<B> {
        let plan = JoinPlan::new(self.atoms, partial, |i| {
            self.source.candidate_count(&self.atoms[i], partial)
        });
        let mut assignment = partial.clone();
        match self.search(plan.order(), 0, &mut assignment, visit) {
            ControlFlow::Break(b) => Some(b),
            ControlFlow::Continue(()) => None,
        }
    }

    /// Visits every homomorphism in which atom `seed_index` is mapped to `seed_fact`
    /// — the semi-naive seeding step of delta-driven trigger discovery. The seed is
    /// unified from the given fact value; [`HomomorphismSearch::for_each_seeded_id`]
    /// is the allocation-free entry point for seeds already interned in the source's
    /// [`FactStore`].
    pub fn for_each_seeded<B>(
        &self,
        seed_index: usize,
        seed_fact: &Fact,
        visit: &mut impl FnMut(&Assignment) -> ControlFlow<B>,
    ) -> Option<B> {
        if self.atoms[seed_index].predicate != seed_fact.predicate {
            return None;
        }
        let mut assignment = Assignment::new();
        unify_atom_with_terms(&self.atoms[seed_index], &seed_fact.terms, &mut assignment)?;
        self.seeded_continue(seed_index, assignment, visit)
    }

    /// Visits every homomorphism in which atom `seed_index` is mapped to the
    /// interned fact `seed` of the source's store. The seed unifies straight
    /// from the store's strips — no term slice is materialised.
    pub fn for_each_seeded_id<B>(
        &self,
        seed_index: usize,
        seed: FactId,
        visit: &mut impl FnMut(&Assignment) -> ControlFlow<B>,
    ) -> Option<B> {
        let store = self.source.store();
        if self.atoms[seed_index].predicate != store.predicate_of(seed) {
            return None;
        }
        let mut assignment = Assignment::new();
        unify_atom_with_stored(&self.atoms[seed_index], store, seed, &mut assignment)?;
        self.seeded_continue(seed_index, assignment, visit)
    }

    fn seeded_continue<B>(
        &self,
        seed_index: usize,
        mut assignment: Assignment,
        visit: &mut impl FnMut(&Assignment) -> ControlFlow<B>,
    ) -> Option<B> {
        let include: Vec<usize> = (0..self.atoms.len()).filter(|&i| i != seed_index).collect();
        let plan = JoinPlan::for_subset(self.atoms, &include, &assignment, |i| {
            self.source.candidate_count(&self.atoms[i], &assignment)
        });
        match self.search(plan.order(), 0, &mut assignment, visit) {
            ControlFlow::Break(b) => Some(b),
            ControlFlow::Continue(()) => None,
        }
    }

    fn search<B>(
        &self,
        order: &[usize],
        depth: usize,
        assignment: &mut Assignment,
        visit: &mut impl FnMut(&Assignment) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        if depth == order.len() {
            return visit(assignment);
        }
        let atom = &self.atoms[order[depth]];
        match &self.source {
            Source::Indexed(ix) => {
                for &id in ix.candidates_for(atom, assignment) {
                    self.try_id(order, depth, atom, id, assignment, visit)?;
                }
            }
            Source::Scan { instance, index } => {
                let candidates = match index.best_bucket(atom, assignment) {
                    Some(bucket) => bucket,
                    None => instance.ids_of(atom.predicate),
                };
                for &id in candidates {
                    self.try_id(order, depth, atom, id, assignment, visit)?;
                }
            }
        }
        ControlFlow::Continue(())
    }

    fn try_id<B>(
        &self,
        order: &[usize],
        depth: usize,
        atom: &Atom,
        id: FactId,
        assignment: &mut Assignment,
        visit: &mut impl FnMut(&Assignment) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        if let Some(new_bindings) =
            unify_atom_with_stored(atom, self.source.store(), id, assignment)
        {
            let flow = self.search(order, depth + 1, assignment, visit);
            for v in &new_bindings {
                assignment.unbind(*v);
            }
            flow
        } else {
            ControlFlow::Continue(())
        }
    }
}

// ---------------------------------------------------------------------------------
// Convenience entry points
// ---------------------------------------------------------------------------------

/// Returns every homomorphism from `atoms` into `instance` extending `partial`.
pub fn homomorphisms_extending(
    atoms: &[Atom],
    instance: &Instance,
    partial: &Assignment,
) -> Vec<Assignment> {
    let mut out = Vec::new();
    HomomorphismSearch::new(atoms, instance).for_each_extending::<()>(partial, &mut |a| {
        out.push(a.clone());
        ControlFlow::Continue(())
    });
    out
}

/// Returns every homomorphism from `atoms` into `instance`.
pub fn homomorphisms(atoms: &[Atom], instance: &Instance) -> Vec<Assignment> {
    homomorphisms_extending(atoms, instance, &Assignment::new())
}

/// Returns some homomorphism from `atoms` into `instance` extending `partial`, if any.
pub fn find_homomorphism_extending(
    atoms: &[Atom],
    instance: &Instance,
    partial: &Assignment,
) -> Option<Assignment> {
    HomomorphismSearch::new(atoms, instance)
        .for_each_extending(partial, &mut |a| ControlFlow::Break(a.clone()))
}

/// Returns `true` iff some homomorphism from `atoms` into `instance` extends `partial`.
pub fn exists_homomorphism_extending(
    atoms: &[Atom],
    instance: &Instance,
    partial: &Assignment,
) -> bool {
    find_homomorphism_extending(atoms, instance, partial).is_some()
}

/// Returns `true` iff some homomorphism from `atoms` into `instance` exists.
pub fn exists_homomorphism(atoms: &[Atom], instance: &Instance) -> bool {
    exists_homomorphism_extending(atoms, instance, &Assignment::new())
}

/// Reference implementation retained for differential testing: enumerate every
/// homomorphism from `atoms` into `instance` extending `partial` by plain
/// backtracking over `facts_of(predicate)` scans, in textual atom order — no
/// indexes, no join planning. Exponentially slower than the engine on selective
/// joins; never use it outside tests.
pub fn naive_homomorphisms_extending(
    atoms: &[Atom],
    instance: &Instance,
    partial: &Assignment,
) -> Vec<Assignment> {
    fn recurse(
        atoms: &[Atom],
        instance: &Instance,
        depth: usize,
        assignment: &mut Assignment,
        out: &mut Vec<Assignment>,
    ) {
        let Some(atom) = atoms.get(depth) else {
            out.push(assignment.clone());
            return;
        };
        for &id in instance.ids_of(atom.predicate) {
            if let Some(new_bindings) =
                unify_atom_with_stored(atom, instance.store(), id, assignment)
            {
                recurse(atoms, instance, depth + 1, assignment, out);
                for v in &new_bindings {
                    assignment.unbind(*v);
                }
            }
        }
    }
    let mut out = Vec::new();
    recurse(atoms, instance, 0, &mut partial.clone(), &mut out);
    out
}

/// Searches for a homomorphism from instance `from` into instance `to`, i.e. a mapping
/// of the labeled nulls of `from` to ground terms of `to` that is the identity on
/// constants and maps every fact of `from` to a fact of `to`.
///
/// This is the notion used to define universal models and cores. Returns the null
/// mapping if one exists.
pub fn instance_homomorphism(
    from: &Instance,
    to: &Instance,
) -> Option<HashMap<crate::term::NullValue, GroundTerm>> {
    // Convert the nulls of `from` into variables and reuse the atom-level search.
    let store = from.store();
    let atoms: Vec<Atom> = from
        .fact_ids()
        .map(|id| Atom {
            predicate: store.predicate_of(id),
            terms: store
                .terms(id)
                .iter()
                .map(|t| match t {
                    GroundTerm::Null(n) => Term::Var(Variable::new(&format!("__null_{}", n.0))),
                    GroundTerm::Const(c) => Term::Const(c),
                })
                .collect(),
        })
        .collect();
    let assignment = find_homomorphism_extending(&atoms, to, &Assignment::new())?;
    let mut out = HashMap::new();
    for n in from.nulls() {
        let v = Variable::new(&format!("__null_{}", n.0));
        if let Some(g) = assignment.get(v) {
            out.insert(n, g);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Fact;
    use crate::builder::{atom, cst, var};
    use crate::term::{Constant, NullValue};

    fn gc(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }
    fn gn(i: u64) -> GroundTerm {
        GroundTerm::Null(NullValue(i))
    }

    fn path_instance() -> Instance {
        Instance::from_facts(vec![
            Fact::from_parts("E", vec![gc("a"), gc("b")]),
            Fact::from_parts("E", vec![gc("b"), gc("c")]),
            Fact::from_parts("E", vec![gc("c"), gc("d")]),
            Fact::from_parts("N", vec![gc("a")]),
        ])
    }

    #[test]
    fn single_atom_homomorphisms() {
        let k = path_instance();
        let homs = homomorphisms(&[atom("E", vec![var("x"), var("y")])], &k);
        assert_eq!(homs.len(), 3);
    }

    #[test]
    fn join_two_atoms() {
        let k = path_instance();
        // E(x,y), E(y,z): two-step paths a->b->c and b->c->d.
        let homs = homomorphisms(
            &[
                atom("E", vec![var("x"), var("y")]),
                atom("E", vec![var("y"), var("z")]),
            ],
            &k,
        );
        assert_eq!(homs.len(), 2);
        for h in &homs {
            let x = h.get(Variable::new("x")).unwrap();
            let y = h.get(Variable::new("y")).unwrap();
            assert!(k.contains(&Fact::from_parts("E", vec![x, y])));
        }
    }

    #[test]
    fn repeated_variable_constrains_match() {
        let mut k = path_instance();
        let homs = homomorphisms(&[atom("E", vec![var("x"), var("x")])], &k);
        assert!(homs.is_empty());
        k.insert(Fact::from_parts("E", vec![gc("e"), gc("e")]));
        let homs = homomorphisms(&[atom("E", vec![var("x"), var("x")])], &k);
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].get(Variable::new("x")), Some(gc("e")));
    }

    #[test]
    fn constants_in_query_atoms_must_match() {
        let k = path_instance();
        let homs = homomorphisms(&[atom("E", vec![cst("a"), var("y")])], &k);
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].get(Variable::new("y")), Some(gc("b")));
        let none = homomorphisms(&[atom("E", vec![cst("z"), var("y")])], &k);
        assert!(none.is_empty());
    }

    #[test]
    fn partial_assignment_is_respected() {
        let k = path_instance();
        let partial = Assignment::from_pairs([(Variable::new("x"), gc("b"))]);
        let homs = homomorphisms_extending(&[atom("E", vec![var("x"), var("y")])], &k, &partial);
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].get(Variable::new("y")), Some(gc("c")));
    }

    #[test]
    fn exists_homomorphism_early_exit() {
        let k = path_instance();
        assert!(exists_homomorphism(
            &[atom("E", vec![var("x"), var("y")])],
            &k
        ));
        assert!(!exists_homomorphism(&[atom("Missing", vec![var("x")])], &k));
    }

    #[test]
    fn example2_of_the_paper() {
        // K2 = {N(a), E(a, η1)}; h2 = {x -> a, y -> η1} is a homomorphism from the body
        // of r2 (and of r3) to K2.
        let k2 = Instance::from_facts(vec![
            Fact::from_parts("N", vec![gc("a")]),
            Fact::from_parts("E", vec![gc("a"), gn(1)]),
        ]);
        let homs = homomorphisms(&[atom("E", vec![var("x"), var("y")])], &k2);
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].get(Variable::new("x")), Some(gc("a")));
        assert_eq!(homs[0].get(Variable::new("y")), Some(gn(1)));
    }

    #[test]
    fn nulls_in_query_atoms_behave_as_constants() {
        let k = Instance::from_facts(vec![Fact::from_parts("E", vec![gc("a"), gn(1)])]);
        let q = vec![Atom::from_parts(
            "E",
            vec![Term::Var(Variable::new("x")), Term::Null(NullValue(1))],
        )];
        let homs = homomorphisms(&q, &k);
        assert_eq!(homs.len(), 1);
        let q2 = vec![Atom::from_parts(
            "E",
            vec![Term::Var(Variable::new("x")), Term::Null(NullValue(2))],
        )];
        assert!(homomorphisms(&q2, &k).is_empty());
    }

    #[test]
    fn instance_homomorphism_example3() {
        // J1 = D ∪ {E(a, η1), E(η2, d)}, J2 = D ∪ {E(a, d)}: there is a homomorphism
        // J1 -> J2 (η1 ↦ d, η2 ↦ a) but none from J2 to J1... actually J2 -> J1 fails
        // because E(a, d) has no preimage... E(a,d) must map to a fact of J1; E(a, η1)
        // and E(η2, d) both differ on a constant, so no homomorphism exists.
        let d = vec![
            Fact::from_parts("P", vec![gc("a"), gc("b")]),
            Fact::from_parts("Q", vec![gc("c"), gc("d")]),
        ];
        let mut j1 = Instance::from_facts(d.clone());
        j1.insert(Fact::from_parts("E", vec![gc("a"), gn(1)]));
        j1.insert(Fact::from_parts("E", vec![gn(2), gc("d")]));
        let mut j2 = Instance::from_facts(d);
        j2.insert(Fact::from_parts("E", vec![gc("a"), gc("d")]));

        let h = instance_homomorphism(&j1, &j2).expect("J1 -> J2 must exist");
        assert_eq!(h.get(&NullValue(1)), Some(&gc("d")));
        assert_eq!(h.get(&NullValue(2)), Some(&gc("a")));
        assert!(instance_homomorphism(&j2, &j1).is_none());
    }

    #[test]
    fn assignment_apply_atom() {
        let a =
            Assignment::from_pairs([(Variable::new("x"), gc("a")), (Variable::new("y"), gn(1))]);
        let fact = a.apply_atom(&atom("E", vec![var("x"), var("y")])).unwrap();
        assert_eq!(fact, Fact::from_parts("E", vec![gc("a"), gn(1)]));
        assert!(a.apply_atom(&atom("E", vec![var("x"), var("z")])).is_none());
        let partial = a.apply_atom_partial(&atom("E", vec![var("x"), var("z")]));
        assert_eq!(partial.terms[0], Term::Const(Constant::new("a")));
        assert!(partial.terms[1].is_var());
    }

    #[test]
    fn indexed_and_scan_searches_agree() {
        let k = path_instance();
        let q = vec![
            atom("E", vec![var("x"), var("y")]),
            atom("E", vec![var("y"), var("z")]),
        ];
        let via_scan: BTreeSet<_> = homomorphisms(&q, &k)
            .iter()
            .map(|h| h.canonical())
            .collect();
        let ix = IndexedInstance::from_instance(k.clone());
        let mut via_index = BTreeSet::new();
        HomomorphismSearch::over_index(&q, &ix).for_each_extending::<()>(
            &Assignment::new(),
            &mut |h| {
                via_index.insert(h.canonical());
                ControlFlow::Continue(())
            },
        );
        let via_naive: BTreeSet<_> = naive_homomorphisms_extending(&q, &k, &Assignment::new())
            .iter()
            .map(|h| h.canonical())
            .collect();
        assert_eq!(via_scan, via_index);
        assert_eq!(via_scan, via_naive);
        assert_eq!(via_scan.len(), 2);
    }

    #[test]
    fn zero_ary_and_empty_queries() {
        // Empty atom list: exactly the partial assignment is visited.
        let k = path_instance();
        let homs = homomorphisms(&[], &k);
        assert_eq!(homs.len(), 1);
        assert!(homs[0].is_empty());
        // 0-ary predicates join like any other atom.
        let mut k = Instance::new();
        k.insert(Fact::from_parts("Init", vec![]));
        k.insert(Fact::from_parts("N", vec![gc("a")]));
        let q = vec![atom("Init", vec![]), atom("N", vec![var("x")])];
        let homs = homomorphisms(&q, &k);
        assert_eq!(homs.len(), 1);
        assert!(homomorphisms(&[atom("Missing0", vec![])], &k).is_empty());
    }

    // -----------------------------------------------------------------------------
    // JoinPlan ordering (satellite: unit tests for the selectivity heuristic)
    // -----------------------------------------------------------------------------

    #[test]
    fn join_plan_puts_bound_atoms_before_free_atoms() {
        // Atom 1 has a constant (1 unbound var), atom 0 is fully free (2 unbound).
        let atoms = vec![
            atom("E", vec![var("x"), var("y")]),
            atom("E", vec![cst("a"), var("z")]),
        ];
        let plan = JoinPlan::new(&atoms, &Assignment::new(), |_| 10);
        assert_eq!(plan.order(), &[1, 0]);
    }

    #[test]
    fn join_plan_respects_partial_bindings() {
        // With y pre-bound, atom 1 (one unbound var) beats atom 0 (two unbound vars).
        let atoms = vec![
            atom("E", vec![var("u"), var("w")]),
            atom("E", vec![var("y"), var("z")]),
        ];
        let partial = Assignment::from_pairs([(Variable::new("y"), gc("b"))]);
        let plan = JoinPlan::new(&atoms, &partial, |_| 10);
        assert_eq!(plan.order(), &[1, 0]);
    }

    #[test]
    fn join_plan_orders_by_cardinality_when_boundness_ties() {
        // Same unbound-variable count, different candidate estimates: smaller first.
        let atoms = vec![
            atom("Big", vec![var("x")]),
            atom("Small", vec![var("y")]),
            atom("Mid", vec![var("z")]),
        ];
        let plan = JoinPlan::new(&atoms, &Assignment::new(), |i| [100, 1, 10][i]);
        assert_eq!(plan.order(), &[1, 2, 0]);
    }

    #[test]
    fn join_plan_ties_are_stable_in_textual_order() {
        // Identical selectivity on every key component: original order is kept.
        let atoms = vec![
            atom("P", vec![var("a")]),
            atom("P", vec![var("b")]),
            atom("P", vec![var("c")]),
        ];
        let plan = JoinPlan::new(&atoms, &Assignment::new(), |_| 5);
        assert_eq!(plan.order(), &[0, 1, 2]);
    }

    #[test]
    fn join_plan_chains_through_shared_variables() {
        // Picking the constant-rooted atom first makes its neighbour next-most bound.
        let atoms = vec![
            atom("E", vec![var("y"), var("z")]),
            atom("E", vec![cst("a"), var("y")]),
        ];
        let plan = JoinPlan::new(&atoms, &Assignment::new(), |_| 10);
        // Atom 1 first (constant), then atom 0 whose y is now bound.
        assert_eq!(plan.order(), &[1, 0]);
    }
}
