//! Homomorphisms from conjunctions of atoms into instances.
//!
//! A homomorphism `h : Dom(A1) → Dom(A2)` maps variables to ground terms (and is the
//! identity on constants), such that every atom of `A1` is sent to a fact of `A2`
//! (Section 2 of the paper). This module provides a backtracking search over the
//! per-predicate indexes of [`Instance`], with an early-exit callback interface so that
//! callers can stop at the first witness.

use crate::atom::Atom;
use crate::instance::Instance;
use crate::term::{GroundTerm, Term, Variable};
use std::collections::HashMap;
use std::fmt;
use std::ops::ControlFlow;

/// A (partial) assignment of variables to ground terms — the variable part of a
/// homomorphism. Constants are always mapped to themselves.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Assignment {
    map: HashMap<Variable, GroundTerm>,
}

impl Assignment {
    /// Creates an empty assignment.
    pub fn new() -> Self {
        Assignment::default()
    }

    /// Creates an assignment from pairs.
    pub fn from_pairs<I: IntoIterator<Item = (Variable, GroundTerm)>>(pairs: I) -> Self {
        Assignment {
            map: pairs.into_iter().collect(),
        }
    }

    /// Looks up a variable.
    pub fn get(&self, v: Variable) -> Option<GroundTerm> {
        self.map.get(&v).copied()
    }

    /// Binds a variable (overwrites any previous binding).
    pub fn bind(&mut self, v: Variable, t: GroundTerm) {
        self.map.insert(v, t);
    }

    /// Removes a binding (used by backtracking searches).
    pub fn unbind(&mut self, v: Variable) {
        self.map.remove(&v);
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` iff no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over the bindings in an arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (Variable, GroundTerm)> + '_ {
        self.map.iter().map(|(v, t)| (*v, *t))
    }

    /// Applies the assignment to a term: bound variables are replaced by their image,
    /// ground terms are returned unchanged, unbound variables yield `None`.
    pub fn apply_term(&self, t: &Term) -> Option<GroundTerm> {
        match t {
            Term::Const(c) => Some(GroundTerm::Const(*c)),
            Term::Null(n) => Some(GroundTerm::Null(*n)),
            Term::Var(v) => self.get(*v),
        }
    }

    /// Applies the assignment to an atom, producing a fact if all variables are bound.
    pub fn apply_atom(&self, atom: &Atom) -> Option<crate::atom::Fact> {
        let mut terms = Vec::with_capacity(atom.terms.len());
        for t in &atom.terms {
            terms.push(self.apply_term(t)?);
        }
        Some(crate::atom::Fact {
            predicate: atom.predicate,
            terms,
        })
    }

    /// Applies the assignment to an atom, leaving unbound variables in place.
    pub fn apply_atom_partial(&self, atom: &Atom) -> Atom {
        atom.map_terms(|t| match t {
            Term::Var(v) => match self.get(*v) {
                Some(g) => g.into(),
                None => *t,
            },
            _ => *t,
        })
    }

    /// Returns a canonical, sorted vector of bindings (useful as a hash key).
    pub fn canonical(&self) -> Vec<(Variable, GroundTerm)> {
        let mut v: Vec<_> = self.map.iter().map(|(a, b)| (*a, *b)).collect();
        v.sort();
        v
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, t)) in self.canonical().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} -> {t}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Backtracking homomorphism search from a conjunction of atoms into an instance.
pub struct HomomorphismSearch<'a> {
    atoms: &'a [Atom],
    instance: &'a Instance,
}

impl<'a> HomomorphismSearch<'a> {
    /// Creates a search for homomorphisms from `atoms` into `instance`.
    pub fn new(atoms: &'a [Atom], instance: &'a Instance) -> Self {
        HomomorphismSearch { atoms, instance }
    }

    /// Visits every homomorphism extending `partial`, invoking `visit` for each.
    /// The visitor can stop the enumeration early by returning
    /// [`ControlFlow::Break`].
    pub fn for_each_extending<B>(
        &self,
        partial: &Assignment,
        visit: &mut impl FnMut(&Assignment) -> ControlFlow<B>,
    ) -> Option<B> {
        // Order atoms greedily: prefer atoms with many bound terms and few candidate
        // facts, recomputed at every level of the search tree.
        let mut remaining: Vec<usize> = (0..self.atoms.len()).collect();
        let mut assignment = partial.clone();
        match self.search(&mut remaining, &mut assignment, visit) {
            ControlFlow::Break(b) => Some(b),
            ControlFlow::Continue(()) => None,
        }
    }

    fn search<B>(
        &self,
        remaining: &mut Vec<usize>,
        assignment: &mut Assignment,
        visit: &mut impl FnMut(&Assignment) -> ControlFlow<B>,
    ) -> ControlFlow<B> {
        if remaining.is_empty() {
            return visit(assignment);
        }
        // Pick the most constrained atom: fewest candidate facts given current bindings.
        let (pick_pos, _) = remaining
            .iter()
            .enumerate()
            .map(|(pos, &ai)| {
                let atom = &self.atoms[ai];
                let candidates = self.instance.facts_of(atom.predicate).len();
                let unbound = atom
                    .terms
                    .iter()
                    .filter(|t| matches!(t, Term::Var(v) if assignment.get(*v).is_none()))
                    .count();
                (pos, (unbound, candidates))
            })
            .min_by_key(|&(_, key)| key)
            .expect("remaining is non-empty");
        let atom_idx = remaining.swap_remove(pick_pos);
        let atom = &self.atoms[atom_idx];

        let facts = self.instance.facts_of(atom.predicate);
        for fact in facts {
            // Try to unify atom with fact under the current assignment.
            let mut new_bindings: Vec<Variable> = Vec::new();
            let mut ok = true;
            for (t, g) in atom.terms.iter().zip(fact.terms.iter()) {
                match t {
                    Term::Const(c) => {
                        if GroundTerm::Const(*c) != *g {
                            ok = false;
                            break;
                        }
                    }
                    Term::Null(n) => {
                        if GroundTerm::Null(*n) != *g {
                            ok = false;
                            break;
                        }
                    }
                    Term::Var(v) => match assignment.get(*v) {
                        Some(bound) => {
                            if bound != *g {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            assignment.bind(*v, *g);
                            new_bindings.push(*v);
                        }
                    },
                }
            }
            if ok {
                let flow = self.search(remaining, assignment, visit);
                for v in &new_bindings {
                    assignment.map.remove(v);
                }
                if let ControlFlow::Break(b) = flow {
                    remaining.push(atom_idx);
                    let last = remaining.len() - 1;
                    remaining.swap(pick_pos, last);
                    return ControlFlow::Break(b);
                }
            } else {
                for v in &new_bindings {
                    assignment.map.remove(v);
                }
            }
        }
        // Restore `remaining` exactly as we found it (order irrelevant, content matters).
        remaining.push(atom_idx);
        let last = remaining.len() - 1;
        remaining.swap(pick_pos, last);
        ControlFlow::Continue(())
    }
}

/// Returns every homomorphism from `atoms` into `instance` extending `partial`.
pub fn homomorphisms_extending(
    atoms: &[Atom],
    instance: &Instance,
    partial: &Assignment,
) -> Vec<Assignment> {
    let mut out = Vec::new();
    HomomorphismSearch::new(atoms, instance).for_each_extending::<()>(partial, &mut |a| {
        out.push(a.clone());
        ControlFlow::Continue(())
    });
    out
}

/// Returns every homomorphism from `atoms` into `instance`.
pub fn homomorphisms(atoms: &[Atom], instance: &Instance) -> Vec<Assignment> {
    homomorphisms_extending(atoms, instance, &Assignment::new())
}

/// Returns some homomorphism from `atoms` into `instance` extending `partial`, if any.
pub fn find_homomorphism_extending(
    atoms: &[Atom],
    instance: &Instance,
    partial: &Assignment,
) -> Option<Assignment> {
    HomomorphismSearch::new(atoms, instance)
        .for_each_extending(partial, &mut |a| ControlFlow::Break(a.clone()))
}

/// Returns `true` iff some homomorphism from `atoms` into `instance` extends `partial`.
pub fn exists_homomorphism_extending(
    atoms: &[Atom],
    instance: &Instance,
    partial: &Assignment,
) -> bool {
    find_homomorphism_extending(atoms, instance, partial).is_some()
}

/// Returns `true` iff some homomorphism from `atoms` into `instance` exists.
pub fn exists_homomorphism(atoms: &[Atom], instance: &Instance) -> bool {
    exists_homomorphism_extending(atoms, instance, &Assignment::new())
}

/// Searches for a homomorphism from instance `from` into instance `to`, i.e. a mapping
/// of the labeled nulls of `from` to ground terms of `to` that is the identity on
/// constants and maps every fact of `from` to a fact of `to`.
///
/// This is the notion used to define universal models and cores. Returns the null
/// mapping if one exists.
pub fn instance_homomorphism(
    from: &Instance,
    to: &Instance,
) -> Option<HashMap<crate::term::NullValue, GroundTerm>> {
    // Convert the nulls of `from` into variables and reuse the atom-level search.
    let atoms: Vec<Atom> = from
        .facts()
        .map(|f| {
            f.to_atom().map_terms(|t| match t {
                Term::Null(n) => Term::Var(Variable::new(&format!("__null_{}", n.0))),
                other => *other,
            })
        })
        .collect();
    let assignment = find_homomorphism_extending(&atoms, to, &Assignment::new())?;
    let mut out = HashMap::new();
    for n in from.nulls() {
        let v = Variable::new(&format!("__null_{}", n.0));
        if let Some(g) = assignment.get(v) {
            out.insert(n, g);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Fact;
    use crate::builder::{atom, cst, var};
    use crate::term::{Constant, NullValue};

    fn gc(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }
    fn gn(i: u64) -> GroundTerm {
        GroundTerm::Null(NullValue(i))
    }

    fn path_instance() -> Instance {
        Instance::from_facts(vec![
            Fact::from_parts("E", vec![gc("a"), gc("b")]),
            Fact::from_parts("E", vec![gc("b"), gc("c")]),
            Fact::from_parts("E", vec![gc("c"), gc("d")]),
            Fact::from_parts("N", vec![gc("a")]),
        ])
    }

    #[test]
    fn single_atom_homomorphisms() {
        let k = path_instance();
        let homs = homomorphisms(&[atom("E", vec![var("x"), var("y")])], &k);
        assert_eq!(homs.len(), 3);
    }

    #[test]
    fn join_two_atoms() {
        let k = path_instance();
        // E(x,y), E(y,z): two-step paths a->b->c and b->c->d.
        let homs = homomorphisms(
            &[
                atom("E", vec![var("x"), var("y")]),
                atom("E", vec![var("y"), var("z")]),
            ],
            &k,
        );
        assert_eq!(homs.len(), 2);
        for h in &homs {
            let x = h.get(Variable::new("x")).unwrap();
            let y = h.get(Variable::new("y")).unwrap();
            assert!(k.contains(&Fact::from_parts("E", vec![x, y])));
        }
    }

    #[test]
    fn repeated_variable_constrains_match() {
        let mut k = path_instance();
        let homs = homomorphisms(&[atom("E", vec![var("x"), var("x")])], &k);
        assert!(homs.is_empty());
        k.insert(Fact::from_parts("E", vec![gc("e"), gc("e")]));
        let homs = homomorphisms(&[atom("E", vec![var("x"), var("x")])], &k);
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].get(Variable::new("x")), Some(gc("e")));
    }

    #[test]
    fn constants_in_query_atoms_must_match() {
        let k = path_instance();
        let homs = homomorphisms(&[atom("E", vec![cst("a"), var("y")])], &k);
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].get(Variable::new("y")), Some(gc("b")));
        let none = homomorphisms(&[atom("E", vec![cst("z"), var("y")])], &k);
        assert!(none.is_empty());
    }

    #[test]
    fn partial_assignment_is_respected() {
        let k = path_instance();
        let partial = Assignment::from_pairs([(Variable::new("x"), gc("b"))]);
        let homs = homomorphisms_extending(&[atom("E", vec![var("x"), var("y")])], &k, &partial);
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].get(Variable::new("y")), Some(gc("c")));
    }

    #[test]
    fn exists_homomorphism_early_exit() {
        let k = path_instance();
        assert!(exists_homomorphism(
            &[atom("E", vec![var("x"), var("y")])],
            &k
        ));
        assert!(!exists_homomorphism(&[atom("Missing", vec![var("x")])], &k));
    }

    #[test]
    fn example2_of_the_paper() {
        // K2 = {N(a), E(a, η1)}; h2 = {x -> a, y -> η1} is a homomorphism from the body
        // of r2 (and of r3) to K2.
        let k2 = Instance::from_facts(vec![
            Fact::from_parts("N", vec![gc("a")]),
            Fact::from_parts("E", vec![gc("a"), gn(1)]),
        ]);
        let homs = homomorphisms(&[atom("E", vec![var("x"), var("y")])], &k2);
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].get(Variable::new("x")), Some(gc("a")));
        assert_eq!(homs[0].get(Variable::new("y")), Some(gn(1)));
    }

    #[test]
    fn nulls_in_query_atoms_behave_as_constants() {
        let k = Instance::from_facts(vec![Fact::from_parts("E", vec![gc("a"), gn(1)])]);
        let q = vec![Atom::from_parts(
            "E",
            vec![Term::Var(Variable::new("x")), Term::Null(NullValue(1))],
        )];
        let homs = homomorphisms(&q, &k);
        assert_eq!(homs.len(), 1);
        let q2 = vec![Atom::from_parts(
            "E",
            vec![Term::Var(Variable::new("x")), Term::Null(NullValue(2))],
        )];
        assert!(homomorphisms(&q2, &k).is_empty());
    }

    #[test]
    fn instance_homomorphism_example3() {
        // J1 = D ∪ {E(a, η1), E(η2, d)}, J2 = D ∪ {E(a, d)}: there is a homomorphism
        // J1 -> J2 (η1 ↦ d, η2 ↦ a) but none from J2 to J1... actually J2 -> J1 fails
        // because E(a, d) has no preimage... E(a,d) must map to a fact of J1; E(a, η1)
        // and E(η2, d) both differ on a constant, so no homomorphism exists.
        let d = vec![
            Fact::from_parts("P", vec![gc("a"), gc("b")]),
            Fact::from_parts("Q", vec![gc("c"), gc("d")]),
        ];
        let mut j1 = Instance::from_facts(d.clone());
        j1.insert(Fact::from_parts("E", vec![gc("a"), gn(1)]));
        j1.insert(Fact::from_parts("E", vec![gn(2), gc("d")]));
        let mut j2 = Instance::from_facts(d);
        j2.insert(Fact::from_parts("E", vec![gc("a"), gc("d")]));

        let h = instance_homomorphism(&j1, &j2).expect("J1 -> J2 must exist");
        assert_eq!(h.get(&NullValue(1)), Some(&gc("d")));
        assert_eq!(h.get(&NullValue(2)), Some(&gc("a")));
        assert!(instance_homomorphism(&j2, &j1).is_none());
    }

    #[test]
    fn assignment_apply_atom() {
        let a =
            Assignment::from_pairs([(Variable::new("x"), gc("a")), (Variable::new("y"), gn(1))]);
        let fact = a.apply_atom(&atom("E", vec![var("x"), var("y")])).unwrap();
        assert_eq!(fact, Fact::from_parts("E", vec![gc("a"), gn(1)]));
        assert!(a.apply_atom(&atom("E", vec![var("x"), var("z")])).is_none());
        let partial = a.apply_atom_partial(&atom("E", vec![var("x"), var("z")]));
        assert_eq!(partial.terms[0], Term::Const(Constant::new("a")));
        assert!(partial.terms[1].is_var());
    }
}
