//! Instances: finite sets of facts backed by an interned, columnar [`FactStore`].
//!
//! An [`Instance`] owns a [`FactStore`] (dictionary-compressed column strips
//! interning every fact it has ever seen) and represents its fact set as a live
//! [`FactId`] set plus
//! per-predicate id lists. Membership, insertion and removal are integer-set
//! operations against interned ids — no `Fact` values are stored, cloned or hashed
//! on the hot paths. The legacy [`Fact`]-value API ([`Instance::insert`],
//! [`Instance::contains`], [`Instance::facts`], [`Instance::sorted_facts`], …)
//! remains as a thin view layer that interns/materialises at the boundary.
//!
//! Deliberately, an `Instance` maintains *no* per-(predicate, position) or per-null
//! indexes: those cost ~(arity + 2)× extra work and memory on every insert, which
//! most consumers never recoup. Join-heavy code opts into
//! [`IndexedInstance`](crate::index::IndexedInstance), and one-shot queries get a
//! transient per-query index from
//! [`HomomorphismSearch::new`](crate::homomorphism::HomomorphismSearch::new).

use crate::atom::{Fact, Predicate};
use crate::error::CoreError;
use crate::fact_store::{FactId, FactStore, PredicateId};
use crate::id_set::FactIdSet;
use crate::substitution::NullSubstitution;
use crate::term::{Constant, GroundTerm, NullValue};
use std::collections::{BTreeSet, HashSet};
use std::fmt;

/// A finite set of facts over constants and labeled nulls, stored as interned
/// [`FactId`]s over an owned [`FactStore`].
///
/// A *database* is an instance whose facts contain no labeled nulls
/// (see [`Instance::is_database`]).
#[derive(Clone, Default)]
pub struct Instance {
    store: FactStore,
    /// The facts currently present, as interned ids.
    live: FactIdSet,
    /// Per-predicate id lists (insertion order), indexed by `PredicateId`.
    by_predicate: Vec<Vec<FactId>>,
    next_null: u64,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Instance::default()
    }

    /// Creates an instance from an iterator of facts.
    pub fn from_facts<I: IntoIterator<Item = Fact>>(facts: I) -> Self {
        let mut inst = Instance::new();
        for f in facts {
            inst.insert(f);
        }
        inst
    }

    /// Creates an instance pre-sized for a bulk load — see
    /// [`FactStore::with_capacity`]. The live set and the per-predicate id lists
    /// are reserved alongside the store, so loading `facts` facts performs no
    /// rehash or reallocation doubling.
    pub fn with_capacity(predicates: usize, facts: usize, terms: usize) -> Self {
        Instance {
            store: FactStore::with_capacity(predicates, facts, terms),
            live: FactIdSet::with_capacity(facts),
            by_predicate: Vec::with_capacity(predicates),
            next_null: 0,
        }
    }

    /// The instance's arena-interned fact store (ids, term slices, rendering).
    pub fn store(&self) -> &FactStore {
        &self.store
    }

    /// Mutable access to the store, for same-crate index maintenance
    /// ([`IndexedInstance`](crate::index::IndexedInstance)). Interning through it
    /// is safe (the store is append-only); liveness stays with the instance.
    pub(crate) fn store_mut(&mut self) -> &mut FactStore {
        &mut self.store
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Returns `true` iff the instance has no facts.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Returns `true` iff the fact is present.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.store
            .lookup_fact(fact)
            .is_some_and(|id| self.live.contains(id))
    }

    /// Returns `true` iff the interned fact `id` is present.
    pub fn contains_id(&self, id: FactId) -> bool {
        self.live.contains(id)
    }

    /// The interned id of a *present* fact, or `None` if the fact is absent
    /// (never interned, or interned but removed).
    ///
    /// This is the id surface external fact-level bookkeeping (e.g. the support
    /// ledger of `chase_ivm`) resolves through: unlike
    /// [`FactStore::lookup_fact`], a tombstoned fact — interned once, since
    /// removed — does not resolve.
    pub fn id_of(&self, fact: &Fact) -> Option<FactId> {
        self.store
            .lookup_fact(fact)
            .filter(|&id| self.live.contains(id))
    }

    /// The interned id of a *present* fact given as predicate + terms
    /// (cross-store lookup; nothing is interned). See [`Instance::id_of`].
    pub fn id_of_parts(&self, predicate: Predicate, terms: &[GroundTerm]) -> Option<FactId> {
        self.store
            .lookup(predicate, terms)
            .filter(|&id| self.live.contains(id))
    }

    /// Returns `true` iff a fact with this predicate and these argument terms is
    /// present (cross-store containment check; nothing is interned).
    pub fn contains_parts(&self, predicate: Predicate, terms: &[GroundTerm]) -> bool {
        self.store
            .lookup(predicate, terms)
            .is_some_and(|id| self.live.contains(id))
    }

    /// Inserts a fact; returns `true` iff it was not already present.
    ///
    /// Inserting a fact that mentions a null with a label `≥` the internal null counter
    /// bumps the counter, so that [`Instance::fresh_null`] never collides.
    pub fn insert(&mut self, fact: Fact) -> bool {
        self.insert_full(fact).1
    }

    /// Inserts a fact, returning its interned id and whether it was new.
    pub fn insert_full(&mut self, fact: Fact) -> (FactId, bool) {
        let id = self.store.intern_fact(&fact);
        (id, self.insert_id(id))
    }

    /// Inserts a fact given as predicate + terms (no [`Fact`] value needed),
    /// returning its interned id and whether it was new.
    pub fn insert_parts(&mut self, predicate: Predicate, terms: &[GroundTerm]) -> (FactId, bool) {
        let id = self.store.intern(predicate, terms);
        (id, self.insert_id(id))
    }

    /// Bulk insertion: interns `batch` through
    /// [`FactStore::try_intern_batch`] — sorted, cache-friendly table sweeps
    /// instead of one dependent walk per fact — and makes every fact live.
    /// Returns the number of facts that were not already present. Equivalent
    /// to calling [`Instance::insert_parts`] per element (same fact ids, same
    /// final state); this is the intended path for million-fact loads.
    pub fn try_extend_parts(
        &mut self,
        batch: &[(Predicate, &[GroundTerm])],
    ) -> Result<usize, CoreError> {
        let (ids, max_null) = self.store.try_intern_batch_tracking_nulls(batch)?;
        // The interning pass already saw every term value, so the null
        // allocator bumps off its report — no per-fact dictionary re-reads
        // (which at 10M facts is ~2.4 random DRAM hits per fact).
        if let Some(n) = max_null {
            if n >= self.next_null {
                self.next_null = n + 1;
            }
        }
        let mut added = 0;
        for id in ids {
            if self.live.insert(id) {
                let pid = self.store.predicate_id_of(id);
                if self.by_predicate.len() <= pid.0 as usize {
                    self.by_predicate.resize_with(pid.0 as usize + 1, Vec::new);
                }
                self.by_predicate[pid.0 as usize].push(id);
                added += 1;
            }
        }
        Ok(added)
    }

    /// Bulk insertion ([`Instance::try_extend_parts`]) that panics on capacity
    /// exhaustion, mirroring [`Instance::insert_parts`].
    pub fn extend_parts(&mut self, batch: &[(Predicate, &[GroundTerm])]) -> usize {
        match self.try_extend_parts(batch) {
            Ok(added) => added,
            Err(e) => panic!("{e}"),
        }
    }

    /// Inserts a copy of the fact `id` of `src` (a *different* store), returning
    /// the local interned id and whether it was new. The copy translates
    /// dictionary cells directly — no `Fact` value or term vector is
    /// materialised.
    pub fn insert_copied(&mut self, src: &FactStore, id: FactId) -> (FactId, bool) {
        let local = self.store.intern_copied(src, id);
        (local, self.insert_id(local))
    }

    /// Inserts an already-interned fact by id; returns `true` iff it was new.
    pub fn insert_id(&mut self, id: FactId) -> bool {
        for t in self.store.terms(id) {
            if let GroundTerm::Null(n) = t {
                if n.0 >= self.next_null {
                    self.next_null = n.0 + 1;
                }
            }
        }
        if self.live.insert(id) {
            let pid = self.store.predicate_id_of(id);
            if self.by_predicate.len() <= pid.0 as usize {
                self.by_predicate.resize_with(pid.0 as usize + 1, Vec::new);
            }
            self.by_predicate[pid.0 as usize].push(id);
            true
        } else {
            false
        }
    }

    /// Removes a fact; returns `true` iff it was present.
    pub fn remove(&mut self, fact: &Fact) -> bool {
        match self.store.lookup_fact(fact) {
            Some(id) => self.remove_id(id),
            None => false,
        }
    }

    /// Removes an interned fact by id; returns `true` iff it was present.
    ///
    /// Removal is **tombstoning at the store level**: the id is evicted from the
    /// live set *and* from the dense per-predicate id list (so
    /// [`Instance::fact_ids`], [`Instance::ids_of`] and
    /// [`Instance::sorted_fact_ids`] agree immediately), but the fact stays
    /// interned in the append-only arena. Consequences external id-holders (the
    /// `chase_ivm` support ledger) rely on:
    ///
    /// * re-inserting the same fact later yields the **same id** (the arena's
    ///   dedup table survives removal), so retract-then-rederive round-trips
    ///   preserve identity;
    /// * a removed id still resolves through the *store*
    ///   ([`FactStore::fact`], [`FactStore::terms`]), so the removed fact's value
    ///   can be reconstructed — [`Instance::id_of`] is the live-checked lookup;
    /// * [`Instance::compact`] **re-issues ids** and must therefore never be
    ///   called while any external ledger still holds ids into this instance.
    pub fn remove_id(&mut self, id: FactId) -> bool {
        if self.live.remove(id) {
            let pid = self.store.predicate_id_of(id);
            if let Some(v) = self.by_predicate.get_mut(pid.0 as usize) {
                v.retain(|&f| f != id);
            }
            true
        } else {
            false
        }
    }

    /// Removes a batch of interned facts by id; returns how many were present
    /// (duplicates count once). Same semantics as [`Instance::remove_id`] per
    /// id, but each affected dense per-predicate list is swept **once per
    /// batch** instead of once per id — a large retraction is
    /// O(batch + affected lists), not O(batch × predicate list).
    pub fn remove_ids(&mut self, ids: &[FactId]) -> usize {
        let mut dead: HashSet<FactId> = HashSet::with_capacity(ids.len());
        let mut affected: HashSet<PredicateId> = HashSet::new();
        for &id in ids {
            if self.live.remove(id) {
                dead.insert(id);
                affected.insert(self.store.predicate_id_of(id));
            }
        }
        for pid in affected {
            if let Some(v) = self.by_predicate.get_mut(pid.0 as usize) {
                v.retain(|f| !dead.contains(f));
            }
        }
        dead.len()
    }

    /// Iterates over all facts (arbitrary order), materialising each from the arena.
    pub fn facts(&self) -> impl Iterator<Item = Fact> + '_ {
        self.live.iter().map(|id| self.store.fact(id))
    }

    /// Iterates over the ids of all present facts (arbitrary order).
    pub fn fact_ids(&self) -> impl Iterator<Item = FactId> + '_ {
        self.live.iter()
    }

    /// Ids of the facts of the given predicate, in insertion order (empty slice if
    /// none).
    pub fn ids_of(&self, predicate: Predicate) -> &[FactId] {
        match self.store.lookup_predicate(predicate) {
            Some(pid) => self.ids_of_pid(pid),
            None => &[],
        }
    }

    fn ids_of_pid(&self, pid: PredicateId) -> &[FactId] {
        self.by_predicate
            .get(pid.0 as usize)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// Facts of the given predicate, materialised from the arena in insertion order.
    pub fn facts_of(&self, predicate: Predicate) -> impl Iterator<Item = Fact> + '_ {
        self.ids_of(predicate).iter().map(|&id| self.store.fact(id))
    }

    /// All predicates with at least one fact.
    pub fn predicates(&self) -> impl Iterator<Item = Predicate> + '_ {
        self.by_predicate
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.is_empty())
            .map(|(i, _)| self.store.predicate(PredicateId(i as u32)))
    }

    /// All labeled nulls occurring in the instance.
    pub fn nulls(&self) -> BTreeSet<NullValue> {
        self.live
            .iter()
            .flat_map(|id| self.store.terms(id))
            .filter_map(|t| t.as_null())
            .collect()
    }

    /// All constants occurring in the instance.
    pub fn constants(&self) -> BTreeSet<Constant> {
        self.live
            .iter()
            .flat_map(|id| self.store.terms(id))
            .filter_map(|t| t.as_const())
            .collect()
    }

    /// Returns `true` iff no labeled null occurs (i.e. the instance is a database).
    pub fn is_database(&self) -> bool {
        self.live
            .iter()
            .all(|id| self.store.terms(id).iter().all(|t| t.is_const()))
    }

    /// Allocates a fresh labeled null, distinct from every null in the instance.
    pub fn fresh_null(&mut self) -> NullValue {
        let n = NullValue(self.next_null);
        self.next_null += 1;
        n
    }

    /// The restriction `J↓`: the facts that contain no labeled nulls.
    pub fn null_free_part(&self) -> Instance {
        let mut out = Instance::new();
        for id in self.live.iter() {
            if self.store.terms(id).iter().all(|t| t.is_const()) {
                out.insert_copied(&self.store, id);
            }
        }
        out
    }

    /// Applies a null substitution `γ` to every fact, i.e. computes `K γ`.
    ///
    /// The resulting instance may have fewer facts than `self` because distinct facts
    /// can collapse onto each other.
    pub fn apply_substitution(&self, gamma: &NullSubstitution) -> Instance {
        let mut out = self.clone();
        if !gamma.is_empty() {
            out.substitute_in_place_ids(gamma);
            // No ids escape this call, so compact away the dead history (the
            // rewritten-away facts plus whatever the clone inherited): loops that
            // substitute repeatedly through this value API — the naive chase's
            // EGD path — stay O(live facts) per step instead of accreting arena.
            out.compact();
        }
        out
    }

    /// Applies a null substitution `γ` in place, i.e. turns `self` into `K γ`, and
    /// returns the rewritten facts (the facts of `K γ` that arose from a fact of `K`
    /// mentioning the substituted null), in the order induced by the sorted
    /// pre-substitution facts.
    ///
    /// This is the [`Fact`]-value view over [`Instance::substitute_in_place_ids`];
    /// callers on the hot path (the trigger engine, the core chase) consume the id
    /// delta directly.
    pub fn substitute_in_place(&mut self, gamma: &NullSubstitution) -> Vec<Fact> {
        self.substitute_in_place_ids(gamma)
            .iter()
            .map(|&(_, new)| self.store.fact(new))
            .collect()
    }

    /// Applies a null substitution `γ` in place and returns the id delta: one
    /// `(old, new)` pair per rewritten fact, ordered by the sorted pre-substitution
    /// facts. The rewrite locates affected facts by scanning the live set; callers
    /// that substitute repeatedly against a large evolving instance should use
    /// [`IndexedInstance::substitute_in_place`](crate::index::IndexedInstance::substitute_in_place),
    /// whose per-null occurrence index finds them without a scan.
    pub fn substitute_in_place_ids(&mut self, gamma: &NullSubstitution) -> Vec<(FactId, FactId)> {
        let Some((null, _)) = gamma.mapping() else {
            return Vec::new();
        };
        // A null that was never interned occurs in no fact: nothing to rewrite.
        let Some(needle) = self.store.term_id(GroundTerm::Null(null)) else {
            return Vec::new();
        };
        let mut changed: Vec<FactId> = self
            .live
            .iter()
            .filter(|&id| self.store.mentions(id, needle))
            .collect();
        changed.sort_by(|&a, &b| self.store.compare(a, b));
        let mut delta = Vec::with_capacity(changed.len());
        for id in changed {
            self.remove_id(id);
            let new = self.store.intern_rewritten(id, gamma);
            self.insert_id(new);
            delta.push((id, new));
        }
        delta
    }

    /// Rebuilds the arena to contain exactly the live facts, dropping dead
    /// interning history (facts that were removed or rewritten away). Ids are
    /// re-issued; the labeled-null allocator state and the per-predicate
    /// insertion order are preserved.
    ///
    /// The store is append-only, so long-running remove/substitute-heavy loops
    /// (the core chase clones its instance every round) accumulate dead arena
    /// entries that every `clone` would otherwise keep copying; compacting resets
    /// the clone cost to O(live facts).
    ///
    /// The rebuild is strip-aware: the fresh store is pre-sized for exactly the
    /// live facts, and each live fact's cells are translated dictionary-id →
    /// dictionary-id through a memo table (one dictionary hash lookup per
    /// *distinct* surviving term; every further occurrence is a 4-byte array
    /// read) — no `GroundTerm` vectors or re-hashing of term values per fact.
    ///
    /// Compaction does not interact with snapshots on disk: a file written by
    /// [`Instance::save`] is a self-contained image carrying its own id space,
    /// so compacting (or otherwise mutating) this instance afterwards never
    /// invalidates a later [`Instance::load`] of that file. Only *in-memory* id
    /// holders are invalidated by the re-issue.
    pub fn compact(&mut self) {
        if self.store.len() == self.live.len() {
            return;
        }
        let mut fresh = Instance::with_capacity(
            self.store.predicate_count(),
            self.live.len(),
            self.store.term_count(),
        );
        let mut memo = vec![u32::MAX; self.store.term_count()];
        for list in &self.by_predicate {
            for &id in list {
                let new = fresh.store.intern_translated(&self.store, id, &mut memo);
                fresh.insert_id(new);
            }
        }
        fresh.next_null = self.next_null;
        *self = fresh;
    }

    /// Returns `true` iff `other` contains every fact of `self`.
    pub fn is_subinstance_of(&self, other: &Instance) -> bool {
        self.live.iter().all(|id| {
            other
                .store
                .lookup_copied(&self.store, id)
                .is_some_and(|oid| other.live.contains(oid))
        })
    }

    /// Set-union of two instances.
    pub fn union(&self, other: &Instance) -> Instance {
        let mut out = self.clone();
        for id in other.live.iter() {
            out.insert_copied(&other.store, id);
        }
        out
    }

    /// Writes the instance to `path` as a versioned, checksummed binary
    /// snapshot — dictionary, column strips, live-id set and null-allocator
    /// state, each strip as one contiguous write. The full interning history is
    /// persisted (including tombstoned facts), so a loaded instance reproduces
    /// this one's [`FactId`] space exactly. See [`crate::persist`] for the
    /// format specification.
    pub fn save<P: AsRef<std::path::Path>>(
        &self,
        path: P,
    ) -> Result<(), crate::persist::PersistError> {
        crate::persist::save(self, path.as_ref())
    }

    /// Reads an instance previously written by [`Instance::save`], validating
    /// the format version, structural invariants and the trailing checksum. The
    /// loaded instance is id-identical to the saved one: `sorted_fact_ids`,
    /// `Display` and all join results coincide.
    pub fn load<P: AsRef<std::path::Path>>(
        path: P,
    ) -> Result<Instance, crate::persist::PersistError> {
        crate::persist::load(path.as_ref())
    }

    /// The live id set (snapshot serialization).
    pub(crate) fn live_ids(&self) -> &FactIdSet {
        &self.live
    }

    /// The per-predicate id lists in `PredicateId` order (snapshot
    /// serialization; preserves insertion order across a save/load cycle).
    pub(crate) fn predicate_lists(&self) -> &[Vec<FactId>] {
        &self.by_predicate
    }

    /// The null-allocator state (snapshot serialization).
    pub(crate) fn next_null_state(&self) -> u64 {
        self.next_null
    }

    /// Reassembles an instance from deserialized snapshot parts. The caller
    /// ([`crate::persist`]) has validated that `live` and `by_predicate` agree
    /// and refer to interned ids of `store`.
    pub(crate) fn from_loaded_parts(
        store: FactStore,
        live: FactIdSet,
        by_predicate: Vec<Vec<FactId>>,
        next_null: u64,
    ) -> Instance {
        Instance {
            store,
            live,
            by_predicate,
            next_null,
        }
    }

    /// The present fact ids in the deterministic sorted-fact order.
    pub fn sorted_fact_ids(&self) -> Vec<FactId> {
        let mut v: Vec<FactId> = self.live.iter().collect();
        v.sort_by(|&a, &b| self.store.compare(a, b));
        v
    }

    /// A deterministic, sorted vector of the facts (useful for tests). Materialises
    /// every fact; displays and iteration should prefer
    /// [`Instance::sorted_fact_ids`] + the store.
    pub fn sorted_facts(&self) -> Vec<Fact> {
        self.sorted_fact_ids()
            .into_iter()
            .map(|id| self.store.fact(id))
            .collect()
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.live.len() == other.live.len() && self.is_subinstance_of(other)
    }
}

impl Eq for Instance {}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, id) in self.sorted_fact_ids().into_iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            self.store.fmt_fact(id, f)?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromIterator<Fact> for Instance {
    fn from_iter<T: IntoIterator<Item = Fact>>(iter: T) -> Self {
        Instance::from_facts(iter)
    }
}

impl Extend<Fact> for Instance {
    fn extend<T: IntoIterator<Item = Fact>>(&mut self, iter: T) {
        for f in iter {
            self.insert(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Constant, GroundTerm};

    fn cst(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }
    fn null(i: u64) -> GroundTerm {
        GroundTerm::Null(NullValue(i))
    }

    #[test]
    fn extend_parts_matches_per_fact_inserts() {
        let p = Predicate::new("P", 2);
        let q = Predicate::new("Q", 1);
        let batch: Vec<(Predicate, Vec<GroundTerm>)> = vec![
            (p, vec![cst("a"), null(4)]),
            (q, vec![cst("a")]),
            (p, vec![cst("a"), null(4)]), // in-batch duplicate
            (q, vec![null(9)]),
        ];
        let borrowed: Vec<(Predicate, &[GroundTerm])> =
            batch.iter().map(|(pr, ts)| (*pr, ts.as_slice())).collect();

        let mut bulk = Instance::new();
        bulk.insert_parts(q, &[cst("seed")]);
        assert_eq!(bulk.extend_parts(&borrowed), 3, "duplicates count once");
        assert_eq!(bulk.extend_parts(&borrowed), 0, "idempotent");

        let mut seq = Instance::new();
        seq.insert_parts(q, &[cst("seed")]);
        for (pr, ts) in &batch {
            seq.insert_parts(*pr, ts);
        }
        assert_eq!(bulk, seq);
        assert_eq!(bulk.sorted_fact_ids(), seq.sorted_fact_ids());
        assert_eq!(
            bulk.fresh_null(),
            seq.fresh_null(),
            "the bulk path bumps the null allocator past every batch null"
        );
    }

    #[test]
    fn insert_is_idempotent() {
        let mut k = Instance::new();
        assert!(k.insert(Fact::from_parts("N", vec![cst("a")])));
        assert!(!k.insert(Fact::from_parts("N", vec![cst("a")])));
        assert_eq!(k.len(), 1);
        // The store interned the fact exactly once.
        assert_eq!(k.store().len(), 1);
    }

    #[test]
    fn facts_of_predicate_index() {
        let k = Instance::from_facts(vec![
            Fact::from_parts("N", vec![cst("a")]),
            Fact::from_parts("E", vec![cst("a"), cst("b")]),
            Fact::from_parts("E", vec![cst("b"), cst("c")]),
        ]);
        assert_eq!(k.ids_of(Predicate::new("E", 2)).len(), 2);
        assert_eq!(k.ids_of(Predicate::new("N", 1)).len(), 1);
        assert_eq!(k.ids_of(Predicate::new("M", 1)).len(), 0);
        assert_eq!(k.facts_of(Predicate::new("E", 2)).count(), 2);
    }

    #[test]
    fn remove_ids_matches_per_id_removal() {
        let facts: Vec<Fact> = (0..10)
            .map(|i| Fact::from_parts("E", vec![cst(&format!("a{i}")), cst(&format!("b{i}"))]))
            .chain((0..5).map(|i| Fact::from_parts("N", vec![cst(&format!("a{i}"))])))
            .collect();
        let mut batched = Instance::from_facts(facts.iter().cloned());
        let mut one_by_one = batched.clone();
        let mut targets: Vec<FactId> = facts
            .iter()
            .step_by(3)
            .map(|f| batched.id_of(f).expect("live"))
            .collect();
        targets.push(targets[0]); // duplicates count once
        targets.push(FactId(9999)); // unknown ids are skipped
        assert_eq!(batched.remove_ids(&targets), 5);
        let mut removed = 0;
        for &id in &targets {
            removed += usize::from(one_by_one.remove_id(id));
        }
        assert_eq!(removed, 5);
        assert_eq!(batched.len(), one_by_one.len());
        assert_eq!(batched.sorted_fact_ids(), one_by_one.sorted_fact_ids());
        for p in [Predicate::new("E", 2), Predicate::new("N", 1)] {
            assert_eq!(batched.ids_of(p), one_by_one.ids_of(p));
        }
        // Removing an already-removed batch is a no-op.
        assert_eq!(batched.remove_ids(&targets), 0);
    }

    #[test]
    fn fresh_nulls_never_collide_with_inserted_nulls() {
        let mut k = Instance::new();
        k.insert(Fact::from_parts("E", vec![cst("a"), null(7)]));
        let n = k.fresh_null();
        assert!(n.0 > 7);
        let m = k.fresh_null();
        assert_ne!(n, m);
    }

    #[test]
    fn database_detection_and_null_free_part() {
        let mut k = Instance::new();
        k.insert(Fact::from_parts("N", vec![cst("a")]));
        assert!(k.is_database());
        k.insert(Fact::from_parts("E", vec![cst("a"), null(0)]));
        assert!(!k.is_database());
        let down = k.null_free_part();
        assert_eq!(down.len(), 1);
        assert!(down.is_database());
    }

    #[test]
    fn substitution_can_collapse_facts() {
        // {E(a, η1), E(a, a)} γ with γ = {η1/a} collapses to {E(a, a)}.
        let k = Instance::from_facts(vec![
            Fact::from_parts("E", vec![cst("a"), null(1)]),
            Fact::from_parts("E", vec![cst("a"), cst("a")]),
        ]);
        let gamma = NullSubstitution::single(NullValue(1), cst("a"));
        let j = k.apply_substitution(&gamma);
        assert_eq!(j.len(), 1);
        assert!(j.contains(&Fact::from_parts("E", vec![cst("a"), cst("a")])));
    }

    #[test]
    fn union_and_subinstance() {
        let a = Instance::from_facts(vec![Fact::from_parts("N", vec![cst("a")])]);
        let b = Instance::from_facts(vec![Fact::from_parts("N", vec![cst("b")])]);
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert!(a.is_subinstance_of(&u));
        assert!(b.is_subinstance_of(&u));
        assert!(!u.is_subinstance_of(&a));
    }

    #[test]
    fn remove_keeps_index_consistent() {
        let mut k = Instance::from_facts(vec![
            Fact::from_parts("E", vec![cst("a"), cst("b")]),
            Fact::from_parts("E", vec![cst("b"), cst("c")]),
        ]);
        let f = Fact::from_parts("E", vec![cst("a"), cst("b")]);
        assert!(k.remove(&f));
        assert!(!k.remove(&f));
        assert_eq!(k.ids_of(Predicate::new("E", 2)).len(), 1);
        assert_eq!(k.len(), 1);
    }

    #[test]
    fn substitute_in_place_matches_apply_substitution() {
        let k = Instance::from_facts(vec![
            Fact::from_parts("E", vec![cst("a"), null(1)]),
            Fact::from_parts("E", vec![null(1), null(2)]),
            Fact::from_parts("E", vec![cst("a"), cst("a")]),
            Fact::from_parts("N", vec![cst("b")]),
        ]);
        let gamma = NullSubstitution::single(NullValue(1), cst("a"));
        let rebuilt = k.apply_substitution(&gamma);
        let mut in_place = k.clone();
        let rewritten = in_place.substitute_in_place(&gamma);
        assert_eq!(in_place, rebuilt);
        // Exactly the two facts mentioning η1 were rewritten.
        assert_eq!(rewritten.len(), 2);
        assert!(rewritten.contains(&Fact::from_parts("E", vec![cst("a"), cst("a")])));
        assert!(rewritten.contains(&Fact::from_parts("E", vec![cst("a"), null(2)])));
    }

    #[test]
    fn substitute_in_place_ids_report_the_delta() {
        let mut k = Instance::from_facts(vec![
            Fact::from_parts("E", vec![cst("a"), null(1)]),
            Fact::from_parts("N", vec![cst("b")]),
        ]);
        let old_id = k
            .store()
            .lookup_fact(&Fact::from_parts("E", vec![cst("a"), null(1)]));
        let delta = k.substitute_in_place_ids(&NullSubstitution::single(NullValue(1), cst("b")));
        assert_eq!(delta.len(), 1);
        assert_eq!(Some(delta[0].0), old_id);
        assert_eq!(
            k.store().fact(delta[0].1),
            Fact::from_parts("E", vec![cst("a"), cst("b")])
        );
        assert!(!k.contains_id(delta[0].0));
        assert!(k.contains_id(delta[0].1));
    }

    #[test]
    fn predicate_index_stays_consistent_after_in_place_substitution() {
        let mut k = Instance::from_facts(vec![
            Fact::from_parts("E", vec![cst("a"), null(1)]),
            Fact::from_parts("E", vec![cst("a"), cst("a")]),
        ]);
        let e = Predicate::new("E", 2);
        k.substitute_in_place(&NullSubstitution::single(NullValue(1), cst("a")));
        // The two facts collapsed: the index must agree on the single survivor.
        assert_eq!(k.len(), 1);
        assert_eq!(k.ids_of(e).len(), 1);
        assert!(k.nulls().is_empty());
    }

    #[test]
    fn repeated_null_occurrences_rewrite_once() {
        // E(η1, η1) mentions η1 twice; substitution must rewrite it exactly once.
        let mut k = Instance::from_facts(vec![Fact::from_parts("E", vec![null(1), null(1)])]);
        let rewritten = k.substitute_in_place(&NullSubstitution::single(NullValue(1), cst("a")));
        assert_eq!(
            rewritten,
            vec![Fact::from_parts("E", vec![cst("a"), cst("a")])]
        );
        assert_eq!(k.len(), 1);
    }

    #[test]
    fn chained_in_place_substitutions() {
        // γ1 = {η1/η2} then γ2 = {η2/a}: the rewrite must track rewritten facts.
        let mut k = Instance::from_facts(vec![Fact::from_parts("E", vec![null(1), cst("b")])]);
        let r1 = k.substitute_in_place(&NullSubstitution::single(NullValue(1), null(2)));
        assert_eq!(r1, vec![Fact::from_parts("E", vec![null(2), cst("b")])]);
        let r2 = k.substitute_in_place(&NullSubstitution::single(NullValue(2), cst("a")));
        assert_eq!(r2, vec![Fact::from_parts("E", vec![cst("a"), cst("b")])]);
        assert!(k.nulls().is_empty());
        assert_eq!(k.len(), 1);
    }

    #[test]
    fn empty_substitution_in_place_is_a_no_op() {
        let mut k = Instance::from_facts(vec![Fact::from_parts("E", vec![cst("a"), null(1)])]);
        let rewritten = k.substitute_in_place(&NullSubstitution::empty());
        assert!(rewritten.is_empty());
        assert_eq!(k.len(), 1);
    }

    #[test]
    fn equality_ignores_null_counter_and_store_history() {
        let mut a = Instance::new();
        a.insert(Fact::from_parts("N", vec![cst("a")]));
        let mut b = Instance::new();
        b.fresh_null();
        // Interning history differs (b saw an extra fact that was removed again),
        // but equality is over the live fact sets.
        b.insert(Fact::from_parts("N", vec![cst("zzz")]));
        b.remove(&Fact::from_parts("N", vec![cst("zzz")]));
        b.insert(Fact::from_parts("N", vec![cst("a")]));
        assert_eq!(a, b);
    }

    #[test]
    fn constants_and_nulls_collection() {
        let k = Instance::from_facts(vec![Fact::from_parts("E", vec![cst("a"), null(3)])]);
        assert!(k.constants().contains(&Constant::new("a")));
        assert!(k.nulls().contains(&NullValue(3)));
    }

    #[test]
    fn compact_drops_dead_arena_history() {
        let mut k = Instance::new();
        k.insert(Fact::from_parts("E", vec![cst("a"), null(1)]));
        k.insert(Fact::from_parts("E", vec![cst("a"), cst("b")]));
        k.insert(Fact::from_parts("N", vec![cst("z")]));
        k.remove(&Fact::from_parts("N", vec![cst("z")]));
        k.substitute_in_place(&NullSubstitution::single(NullValue(1), cst("b")));
        // Arena holds 3 interned facts (the substitution image E(a, b) dedups
        // onto the already-interned fact), only 1 is live.
        assert_eq!(k.store().len(), 3);
        assert_eq!(k.len(), 1);
        let before = k.clone();
        k.compact();
        assert_eq!(k.store().len(), 1);
        assert_eq!(k, before);
        assert_eq!(k.ids_of(Predicate::new("E", 2)).len(), 1);
        // The null allocator still avoids every historical null.
        assert!(k.fresh_null().0 > 1);
        // Compacting a fully-live instance is a no-op.
        let mut d = Instance::from_facts(vec![Fact::from_parts("N", vec![cst("a")])]);
        d.compact();
        assert_eq!(d.store().len(), 1);
    }

    #[test]
    fn removal_evicts_the_id_from_every_iteration_surface() {
        // The tombstone contract of `remove_id`: the id disappears from the
        // live set, the per-predicate list and the sorted id list *together*,
        // so ledgers iterating any surface agree with membership.
        let mut k = Instance::from_facts(vec![
            Fact::from_parts("E", vec![cst("a"), cst("b")]),
            Fact::from_parts("E", vec![cst("b"), cst("c")]),
            Fact::from_parts("N", vec![cst("a")]),
        ]);
        let id = k
            .id_of(&Fact::from_parts("E", vec![cst("a"), cst("b")]))
            .unwrap();
        assert!(k.remove_id(id));
        assert!(!k.contains_id(id));
        assert!(k.fact_ids().all(|f| f != id));
        assert!(!k.ids_of(Predicate::new("E", 2)).contains(&id));
        assert!(!k.sorted_fact_ids().contains(&id));
        assert_eq!(k.ids_of(Predicate::new("E", 2)).len(), 1);
        assert_eq!(k.fact_ids().count(), 2);
        assert_eq!(k.sorted_fact_ids().len(), 2);
        // The live-checked lookup no longer resolves; the raw store still does.
        assert_eq!(
            k.id_of(&Fact::from_parts("E", vec![cst("a"), cst("b")])),
            None
        );
        assert_eq!(
            k.store()
                .lookup_fact(&Fact::from_parts("E", vec![cst("a"), cst("b")])),
            Some(id)
        );
    }

    #[test]
    fn compact_reissues_ids_removal_does_not() {
        // `remove_id` keeps surviving ids stable; `compact` re-issues them.
        // External ledgers may hold ids across removals but never across
        // compaction.
        let mut k = Instance::from_facts(vec![
            Fact::from_parts("N", vec![cst("a")]),
            Fact::from_parts("N", vec![cst("b")]),
        ]);
        let b = k.id_of(&Fact::from_parts("N", vec![cst("b")])).unwrap();
        k.remove(&Fact::from_parts("N", vec![cst("a")]));
        assert_eq!(k.id_of(&Fact::from_parts("N", vec![cst("b")])), Some(b));
        k.compact();
        // After compaction the fact is still present but its id was re-issued
        // from a fresh arena; the old id must not be trusted.
        let b_after = k.id_of(&Fact::from_parts("N", vec![cst("b")])).unwrap();
        assert_eq!(k.len(), 1);
        assert_ne!(b, b_after, "compaction re-issues ids from a fresh arena");
    }

    #[test]
    fn removed_facts_stay_interned_but_not_live() {
        let mut k = Instance::new();
        let (id, _) = k.insert_full(Fact::from_parts("N", vec![cst("a")]));
        k.remove_id(id);
        assert!(!k.contains_id(id));
        assert_eq!(k.store().len(), 1);
        // Re-inserting yields the same id.
        let (id2, new) = k.insert_full(Fact::from_parts("N", vec![cst("a")]));
        assert_eq!(id, id2);
        assert!(new);
    }
}
