//! Instances: finite sets of facts with a per-predicate index.
//!
//! An [`Instance`] stores facts (atoms over constants and labeled nulls), indexed by
//! predicate so that homomorphism search can iterate only over candidate facts. The
//! instance also owns the labeled-null allocator used by the chase.
//!
//! Deliberately, an `Instance` maintains *no* per-(predicate, position) or per-null
//! indexes: those cost ~(arity + 2)× extra work and memory on every insert, which
//! most consumers never recoup. Join-heavy code opts into
//! [`IndexedInstance`](crate::index::IndexedInstance), and one-shot queries get a
//! transient per-query index from
//! [`HomomorphismSearch::new`](crate::homomorphism::HomomorphismSearch::new).

use crate::atom::{Fact, Predicate};
use crate::substitution::NullSubstitution;
use crate::term::{Constant, NullValue};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::fmt;

/// A finite set of facts over constants and labeled nulls.
///
/// A *database* is an instance whose facts contain no labeled nulls
/// (see [`Instance::is_database`]).
#[derive(Clone, Default)]
pub struct Instance {
    facts: HashSet<Fact>,
    by_predicate: HashMap<Predicate, Vec<Fact>>,
    next_null: u64,
}

impl Instance {
    /// Creates an empty instance.
    pub fn new() -> Self {
        Instance::default()
    }

    /// Creates an instance from an iterator of facts.
    pub fn from_facts<I: IntoIterator<Item = Fact>>(facts: I) -> Self {
        let mut inst = Instance::new();
        for f in facts {
            inst.insert(f);
        }
        inst
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Returns `true` iff the instance has no facts.
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Returns `true` iff the fact is present.
    pub fn contains(&self, fact: &Fact) -> bool {
        self.facts.contains(fact)
    }

    /// Inserts a fact; returns `true` iff it was not already present.
    ///
    /// Inserting a fact that mentions a null with a label `≥` the internal null counter
    /// bumps the counter, so that [`Instance::fresh_null`] never collides.
    pub fn insert(&mut self, fact: Fact) -> bool {
        for n in fact.nulls() {
            if n.0 >= self.next_null {
                self.next_null = n.0 + 1;
            }
        }
        if self.facts.insert(fact.clone()) {
            self.by_predicate
                .entry(fact.predicate)
                .or_default()
                .push(fact);
            true
        } else {
            false
        }
    }

    /// Removes a fact; returns `true` iff it was present.
    pub fn remove(&mut self, fact: &Fact) -> bool {
        if self.facts.remove(fact) {
            if let Some(v) = self.by_predicate.get_mut(&fact.predicate) {
                v.retain(|f| f != fact);
            }
            true
        } else {
            false
        }
    }

    /// Iterates over all facts (arbitrary order).
    pub fn facts(&self) -> impl Iterator<Item = &Fact> {
        self.facts.iter()
    }

    /// Facts of the given predicate (empty slice if none).
    pub fn facts_of(&self, predicate: Predicate) -> &[Fact] {
        self.by_predicate
            .get(&predicate)
            .map(|v| v.as_slice())
            .unwrap_or(&[])
    }

    /// All predicates with at least one fact.
    pub fn predicates(&self) -> impl Iterator<Item = Predicate> + '_ {
        self.by_predicate
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(p, _)| *p)
    }

    /// All labeled nulls occurring in the instance.
    pub fn nulls(&self) -> BTreeSet<NullValue> {
        self.facts.iter().flat_map(|f| f.nulls()).collect()
    }

    /// All constants occurring in the instance.
    pub fn constants(&self) -> BTreeSet<Constant> {
        self.facts
            .iter()
            .flat_map(|f| f.terms.iter())
            .filter_map(|t| t.as_const())
            .collect()
    }

    /// Returns `true` iff no labeled null occurs (i.e. the instance is a database).
    pub fn is_database(&self) -> bool {
        self.facts.iter().all(Fact::is_null_free)
    }

    /// Allocates a fresh labeled null, distinct from every null in the instance.
    pub fn fresh_null(&mut self) -> NullValue {
        let n = NullValue(self.next_null);
        self.next_null += 1;
        n
    }

    /// The restriction `J↓`: the facts that contain no labeled nulls.
    pub fn null_free_part(&self) -> Instance {
        Instance::from_facts(self.facts.iter().filter(|f| f.is_null_free()).cloned())
    }

    /// Applies a null substitution `γ` to every fact, i.e. computes `K γ`.
    ///
    /// The resulting instance may have fewer facts than `self` because distinct facts
    /// can collapse onto each other.
    pub fn apply_substitution(&self, gamma: &NullSubstitution) -> Instance {
        if gamma.is_empty() {
            return self.clone();
        }
        let mut out = Instance::new();
        out.next_null = self.next_null;
        for f in &self.facts {
            out.insert(f.apply(gamma));
        }
        out
    }

    /// Applies a null substitution `γ` in place, i.e. turns `self` into `K γ`, and
    /// returns the rewritten facts (the facts of `K γ` that arose from a fact of `K`
    /// mentioning the substituted null), in sorted order.
    ///
    /// Unlike [`Instance::apply_substitution`], which rebuilds the whole instance,
    /// this rewrites only the facts that mention the substituted null — but it has
    /// to *find* them by scanning the fact set. Callers that substitute repeatedly
    /// against a large evolving instance should use
    /// [`IndexedInstance::substitute_in_place`](crate::index::IndexedInstance::substitute_in_place),
    /// whose per-null occurrence index locates the affected facts without a scan.
    pub fn substitute_in_place(&mut self, gamma: &NullSubstitution) -> Vec<Fact> {
        let Some((null, _)) = gamma.mapping() else {
            return Vec::new();
        };
        let mut changed: Vec<Fact> = self
            .facts
            .iter()
            .filter(|f| f.nulls().contains(&null))
            .cloned()
            .collect();
        changed.sort();
        let mut rewritten = Vec::with_capacity(changed.len());
        for f in changed {
            self.remove(&f);
            let g = f.apply(gamma);
            self.insert(g.clone());
            rewritten.push(g);
        }
        rewritten
    }

    /// Returns `true` iff `other` contains every fact of `self`.
    pub fn is_subinstance_of(&self, other: &Instance) -> bool {
        self.facts.iter().all(|f| other.contains(f))
    }

    /// Set-union of two instances.
    pub fn union(&self, other: &Instance) -> Instance {
        let mut out = self.clone();
        for f in other.facts() {
            out.insert(f.clone());
        }
        out
    }

    /// A deterministic, sorted vector of the facts (useful for displays and tests).
    pub fn sorted_facts(&self) -> Vec<Fact> {
        let mut v: Vec<Fact> = self.facts.iter().cloned().collect();
        v.sort();
        v
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.facts == other.facts
    }
}

impl Eq for Instance {}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, fact) in self.sorted_facts().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{fact}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl FromIterator<Fact> for Instance {
    fn from_iter<T: IntoIterator<Item = Fact>>(iter: T) -> Self {
        Instance::from_facts(iter)
    }
}

impl Extend<Fact> for Instance {
    fn extend<T: IntoIterator<Item = Fact>>(&mut self, iter: T) {
        for f in iter {
            self.insert(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::{Constant, GroundTerm};

    fn cst(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }
    fn null(i: u64) -> GroundTerm {
        GroundTerm::Null(NullValue(i))
    }

    #[test]
    fn insert_is_idempotent() {
        let mut k = Instance::new();
        assert!(k.insert(Fact::from_parts("N", vec![cst("a")])));
        assert!(!k.insert(Fact::from_parts("N", vec![cst("a")])));
        assert_eq!(k.len(), 1);
    }

    #[test]
    fn facts_of_predicate_index() {
        let k = Instance::from_facts(vec![
            Fact::from_parts("N", vec![cst("a")]),
            Fact::from_parts("E", vec![cst("a"), cst("b")]),
            Fact::from_parts("E", vec![cst("b"), cst("c")]),
        ]);
        assert_eq!(k.facts_of(Predicate::new("E", 2)).len(), 2);
        assert_eq!(k.facts_of(Predicate::new("N", 1)).len(), 1);
        assert_eq!(k.facts_of(Predicate::new("M", 1)).len(), 0);
    }

    #[test]
    fn fresh_nulls_never_collide_with_inserted_nulls() {
        let mut k = Instance::new();
        k.insert(Fact::from_parts("E", vec![cst("a"), null(7)]));
        let n = k.fresh_null();
        assert!(n.0 > 7);
        let m = k.fresh_null();
        assert_ne!(n, m);
    }

    #[test]
    fn database_detection_and_null_free_part() {
        let mut k = Instance::new();
        k.insert(Fact::from_parts("N", vec![cst("a")]));
        assert!(k.is_database());
        k.insert(Fact::from_parts("E", vec![cst("a"), null(0)]));
        assert!(!k.is_database());
        let down = k.null_free_part();
        assert_eq!(down.len(), 1);
        assert!(down.is_database());
    }

    #[test]
    fn substitution_can_collapse_facts() {
        // {E(a, η1), E(a, a)} γ with γ = {η1/a} collapses to {E(a, a)}.
        let k = Instance::from_facts(vec![
            Fact::from_parts("E", vec![cst("a"), null(1)]),
            Fact::from_parts("E", vec![cst("a"), cst("a")]),
        ]);
        let gamma = NullSubstitution::single(NullValue(1), cst("a"));
        let j = k.apply_substitution(&gamma);
        assert_eq!(j.len(), 1);
        assert!(j.contains(&Fact::from_parts("E", vec![cst("a"), cst("a")])));
    }

    #[test]
    fn union_and_subinstance() {
        let a = Instance::from_facts(vec![Fact::from_parts("N", vec![cst("a")])]);
        let b = Instance::from_facts(vec![Fact::from_parts("N", vec![cst("b")])]);
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert!(a.is_subinstance_of(&u));
        assert!(b.is_subinstance_of(&u));
        assert!(!u.is_subinstance_of(&a));
    }

    #[test]
    fn remove_keeps_index_consistent() {
        let mut k = Instance::from_facts(vec![
            Fact::from_parts("E", vec![cst("a"), cst("b")]),
            Fact::from_parts("E", vec![cst("b"), cst("c")]),
        ]);
        let f = Fact::from_parts("E", vec![cst("a"), cst("b")]);
        assert!(k.remove(&f));
        assert!(!k.remove(&f));
        assert_eq!(k.facts_of(Predicate::new("E", 2)).len(), 1);
        assert_eq!(k.len(), 1);
    }

    #[test]
    fn substitute_in_place_matches_apply_substitution() {
        let k = Instance::from_facts(vec![
            Fact::from_parts("E", vec![cst("a"), null(1)]),
            Fact::from_parts("E", vec![null(1), null(2)]),
            Fact::from_parts("E", vec![cst("a"), cst("a")]),
            Fact::from_parts("N", vec![cst("b")]),
        ]);
        let gamma = NullSubstitution::single(NullValue(1), cst("a"));
        let rebuilt = k.apply_substitution(&gamma);
        let mut in_place = k.clone();
        let rewritten = in_place.substitute_in_place(&gamma);
        assert_eq!(in_place, rebuilt);
        // Exactly the two facts mentioning η1 were rewritten.
        assert_eq!(rewritten.len(), 2);
        assert!(rewritten.contains(&Fact::from_parts("E", vec![cst("a"), cst("a")])));
        assert!(rewritten.contains(&Fact::from_parts("E", vec![cst("a"), null(2)])));
    }

    #[test]
    fn predicate_index_stays_consistent_after_in_place_substitution() {
        let mut k = Instance::from_facts(vec![
            Fact::from_parts("E", vec![cst("a"), null(1)]),
            Fact::from_parts("E", vec![cst("a"), cst("a")]),
        ]);
        let e = Predicate::new("E", 2);
        k.substitute_in_place(&NullSubstitution::single(NullValue(1), cst("a")));
        // The two facts collapsed: the index must agree on the single survivor.
        assert_eq!(k.len(), 1);
        assert_eq!(k.facts_of(e).len(), 1);
        assert!(k.nulls().is_empty());
    }

    #[test]
    fn repeated_null_occurrences_rewrite_once() {
        // E(η1, η1) mentions η1 twice; substitution must rewrite it exactly once.
        let mut k = Instance::from_facts(vec![Fact::from_parts("E", vec![null(1), null(1)])]);
        let rewritten = k.substitute_in_place(&NullSubstitution::single(NullValue(1), cst("a")));
        assert_eq!(
            rewritten,
            vec![Fact::from_parts("E", vec![cst("a"), cst("a")])]
        );
        assert_eq!(k.len(), 1);
    }

    #[test]
    fn chained_in_place_substitutions() {
        // γ1 = {η1/η2} then γ2 = {η2/a}: the null index must track rewritten facts.
        let mut k = Instance::from_facts(vec![Fact::from_parts("E", vec![null(1), cst("b")])]);
        let r1 = k.substitute_in_place(&NullSubstitution::single(NullValue(1), null(2)));
        assert_eq!(r1, vec![Fact::from_parts("E", vec![null(2), cst("b")])]);
        let r2 = k.substitute_in_place(&NullSubstitution::single(NullValue(2), cst("a")));
        assert_eq!(r2, vec![Fact::from_parts("E", vec![cst("a"), cst("b")])]);
        assert!(k.nulls().is_empty());
        assert_eq!(k.len(), 1);
    }

    #[test]
    fn empty_substitution_in_place_is_a_no_op() {
        let mut k = Instance::from_facts(vec![Fact::from_parts("E", vec![cst("a"), null(1)])]);
        let rewritten = k.substitute_in_place(&NullSubstitution::empty());
        assert!(rewritten.is_empty());
        assert_eq!(k.len(), 1);
    }

    #[test]
    fn equality_ignores_null_counter() {
        let mut a = Instance::new();
        a.insert(Fact::from_parts("N", vec![cst("a")]));
        let mut b = Instance::new();
        b.fresh_null();
        b.insert(Fact::from_parts("N", vec![cst("a")]));
        assert_eq!(a, b);
    }

    #[test]
    fn constants_and_nulls_collection() {
        let k = Instance::from_facts(vec![Fact::from_parts("E", vec![cst("a"), null(3)])]);
        assert!(k.constants().contains(&Constant::new("a")));
        assert!(k.nulls().contains(&NullValue(3)));
    }
}
