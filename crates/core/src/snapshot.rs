//! Read-only, `Send + Sync` snapshots of indexed instances for parallel readers.
//!
//! A [`Snapshot`] freezes an [`IndexedInstance`] behind a shared borrow so that any
//! number of worker threads can run joins against it concurrently — the substrate of
//! round-parallel trigger discovery in `chase_trigger`/`chase_engine`. It is a pure
//! view: it owns nothing, costs nothing to copy, and exposes only the read side of
//! the instance (arena term slices, candidate buckets, the join engine).
//!
//! ## Why this is sound
//!
//! * The [`FactStore`] arena is **append-only** and has no interior mutability on
//!   its read path: every `&self` method reads plain `Vec`/`HashMap` state, so
//!   sharing `&FactStore` across threads is data-race-free by construction (the
//!   open-addressing dedup table is probed read-only by `lookup`; only `&mut self`
//!   interning mutates it).
//! * The [`IndexedInstance`] position/null indexes are likewise only mutated
//!   through `&mut self`; its one piece of interior mutability — the `probe_count`
//!   diagnostics counter — is an `AtomicU64` precisely so the type stays `Sync`.
//! * The snapshot holds a shared borrow for its whole lifetime, so the borrow
//!   checker rules out *any* concurrent mutation, including
//!   [`Instance::compact`](crate::Instance::compact), which re-issues every
//!   [`FactId`] and would otherwise dangle ids captured by the snapshot:
//!
//! ```compile_fail
//! use chase_core::snapshot::Snapshot;
//! use chase_core::{Fact, GroundTerm, IndexedInstance, Instance, NullValue};
//!
//! let mut indexed = IndexedInstance::new();
//! indexed.insert(Fact::from_parts(
//!     "E",
//!     vec![GroundTerm::Null(NullValue(0)), GroundTerm::Null(NullValue(1))],
//! ));
//! let ids: Vec<_> = indexed.instance().fact_ids().collect();
//! let snapshot = Snapshot::new(&indexed);
//! // `compact()` needs the owned instance back, which moves `indexed` while the
//! // snapshot still borrows it: rejected at compile time (E0505). A snapshot taken
//! // before a compaction can therefore never observe re-issued (dangling) ids.
//! let mut instance = indexed.into_instance();
//! instance.compact();
//! let _ = snapshot.terms(ids[0]);
//! ```
//!
//! On top of the compile-time guarantee, every id-keyed accessor also carries a
//! runtime assert against the snapshot's interning horizon (the store length at
//! snapshot time), so an id fabricated out of thin air — or smuggled in from a
//! *different* store — fails loudly instead of reading someone else's span.

use std::time::Duration;

use crate::atom::{Atom, Predicate};
use crate::fact_store::{FactId, FactStore, FactTerms};
use crate::homomorphism::{Assignment, HomomorphismSearch};
use crate::index::IndexedInstance;
use crate::instance::Instance;

/// Work done by one worker over its shard of a snapshot during a single
/// discovery batch: how many interned fact ids it scanned as seeds, how many
/// triggers its joins produced, and how long the shard took wall-clock.
///
/// Shard stats are the raw material for attributing parallel-discovery cost:
/// a balanced round has near-equal `elapsed` across workers, while a skewed
/// predicate distribution shows up as one hot shard. They are collected by
/// `chase_trigger::parallel::discover_batch_instrumented` and surfaced
/// through the `ChaseObserver::discovery_completed` phase event.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Index of the worker that processed the shard (0-based; sequential
    /// discovery reports a single shard for worker 0).
    pub worker: usize,
    /// Seed fact ids scanned by this shard.
    pub facts_scanned: usize,
    /// Triggers the shard's joins produced (before cross-shard dedup).
    pub triggers_found: usize,
    /// Wall-clock time of the shard, measured inside the worker.
    pub elapsed: Duration,
}

/// One discovery batch: the per-worker [`ShardStats`] plus the wall-clock of
/// the whole batch as seen by the coordinating thread (spawn + join overhead
/// included, which is why `elapsed` can exceed the max shard time).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DiscoveryStats {
    /// Per-worker shard statistics, in worker order.
    pub shards: Vec<ShardStats>,
    /// End-to-end batch wall-clock (coordinator view).
    pub elapsed: Duration,
}

impl DiscoveryStats {
    /// Total seed fact ids scanned across all shards.
    pub fn facts_scanned(&self) -> usize {
        self.shards.iter().map(|s| s.facts_scanned).sum()
    }

    /// Total triggers produced across all shards (before dedup).
    pub fn triggers_found(&self) -> usize {
        self.shards.iter().map(|s| s.triggers_found).sum()
    }
}

/// A read-only view of an [`IndexedInstance`] frozen at construction time.
///
/// `Snapshot` is `Copy` (it is two words plus two counters) and `Send + Sync`, so
/// every job handed to the persistent worker pool ([`crate::pool`]) can carry its
/// own copy. See the [module docs](self) for the soundness argument and the
/// compile-time `compact()` guarantee.
#[derive(Clone, Copy, Debug)]
pub struct Snapshot<'a> {
    indexed: &'a IndexedInstance,
    /// Live fact count at snapshot time.
    live: usize,
    /// Interned fact count at snapshot time — the id horizon: every `FactId` below
    /// it is valid for the whole lifetime of the snapshot (the store is
    /// append-only), everything at or above it is rejected.
    horizon: usize,
}

impl<'a> Snapshot<'a> {
    /// Freezes `indexed` into a shareable read-only view.
    pub fn new(indexed: &'a IndexedInstance) -> Self {
        Snapshot {
            indexed,
            live: indexed.len(),
            horizon: indexed.store().len(),
        }
    }

    /// The underlying indexed instance (for the join engine's
    /// [`HomomorphismSearch::over_index`]).
    pub fn indexed(&self) -> &'a IndexedInstance {
        self.indexed
    }

    /// The underlying instance.
    pub fn instance(&self) -> &'a Instance {
        self.indexed.instance()
    }

    /// The arena-interned fact store behind the snapshot.
    pub fn store(&self) -> &'a FactStore {
        self.indexed.store()
    }

    /// Number of live facts at snapshot time.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` iff the snapshot saw no live facts.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The id horizon: the number of interned facts at snapshot time. Every
    /// [`FactId`] strictly below the horizon is resolvable through this snapshot.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    #[track_caller]
    fn check(&self, id: FactId) {
        assert!(
            (id.0 as usize) < self.horizon,
            "FactId({}) is beyond this snapshot's interning horizon ({}); \
             it was not interned in the snapshotted store",
            id.0,
            self.horizon
        );
    }

    /// The argument terms of an interned fact (runtime-checked against the
    /// horizon), as a [`FactTerms`] view over the store's column strips.
    #[track_caller]
    pub fn terms(&self, id: FactId) -> FactTerms<'a> {
        self.check(id);
        self.store().terms(id)
    }

    /// The predicate of an interned fact (runtime-checked against the horizon).
    #[track_caller]
    pub fn predicate_of(&self, id: FactId) -> Predicate {
        self.check(id);
        self.store().predicate_of(id)
    }

    /// Returns `true` iff the interned fact was live at snapshot time.
    #[track_caller]
    pub fn contains_id(&self, id: FactId) -> bool {
        self.check(id);
        self.indexed.instance().contains_id(id)
    }

    /// A join over the snapshot: homomorphism search from `atoms` through the
    /// maintained indexes. Workers call this concurrently; the search itself only
    /// reads.
    pub fn search(&self, atoms: &'a [Atom]) -> HomomorphismSearch<'a> {
        HomomorphismSearch::over_index(atoms, self.indexed)
    }

    /// The candidate fact ids for `atom` under `assignment` — see
    /// [`IndexedInstance::candidates_for`].
    pub fn candidates_for(&self, atom: &Atom, assignment: &Assignment) -> &'a [FactId] {
        self.indexed.candidates_for(atom, assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Fact;
    use crate::term::{Constant, GroundTerm, NullValue};
    use std::ops::ControlFlow;

    fn cst(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }

    /// The tentpole contract: snapshots (and the store/index they view) cross
    /// thread boundaries. A compile-time assertion, not a runtime test.
    #[test]
    fn snapshot_store_and_index_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Snapshot<'_>>();
        assert_send_sync::<FactStore>();
        assert_send_sync::<IndexedInstance>();
        assert_send_sync::<Instance>();
    }

    #[test]
    fn snapshot_reads_match_the_instance() {
        let mut indexed = IndexedInstance::new();
        let (id, _) = indexed.insert_full(Fact::from_parts("E", vec![cst("a"), cst("b")]));
        indexed.insert(Fact::from_parts("N", vec![cst("a")]));
        let snap = Snapshot::new(&indexed);
        assert_eq!(snap.len(), 2);
        assert_eq!(snap.horizon(), 2);
        assert!(snap.contains_id(id));
        assert_eq!(snap.terms(id), &[cst("a"), cst("b")]);
        assert_eq!(snap.predicate_of(id), Predicate::new("E", 2));
    }

    #[test]
    fn concurrent_readers_share_one_snapshot() {
        let mut indexed = IndexedInstance::new();
        for i in 0..64 {
            indexed.insert(Fact::from_parts(
                "E",
                vec![cst(&format!("v{i}")), cst(&format!("v{}", i + 1))],
            ));
        }
        let snap = Snapshot::new(&indexed);
        let atoms = vec![crate::builder::atom(
            "E",
            vec![crate::builder::var("x"), crate::builder::var("y")],
        )];
        let atoms = &atoms;
        let counts: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(move || {
                        let mut n = 0usize;
                        snap.search(atoms).for_each_extending::<()>(
                            &Assignment::new(),
                            &mut |_| {
                                n += 1;
                                ControlFlow::Continue(())
                            },
                        );
                        n
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(counts, vec![64; 4]);
    }

    /// Satellite regression: the *runtime* half of the dangling-id protection. The
    /// compile-time half (a snapshot taken before `compact()` cannot be used after
    /// it) is pinned by the `compile_fail` doctest in the module docs.
    #[test]
    #[should_panic(expected = "beyond this snapshot's interning horizon")]
    fn ids_beyond_the_horizon_are_rejected() {
        let mut indexed = IndexedInstance::new();
        indexed.insert(Fact::from_parts("N", vec![cst("a")]));
        let snap = Snapshot::new(&indexed);
        // FactId(1) was never interned here: a compacted-elsewhere or foreign id.
        let _ = snap.terms(FactId(1));
    }

    #[test]
    #[should_panic(expected = "beyond this snapshot's interning horizon")]
    fn nulls_do_not_widen_the_horizon() {
        let mut indexed = IndexedInstance::new();
        indexed.insert(Fact::from_parts(
            "E",
            vec![GroundTerm::Null(NullValue(3)), cst("a")],
        ));
        let snap = Snapshot::new(&indexed);
        let _ = snap.predicate_of(FactId(7));
    }
}
