//! A persistent, process-wide worker pool for the parallel chase paths.
//!
//! PR 5's round-parallel discovery spawned a fresh [`std::thread::scope`] every
//! round, paying thread creation and teardown on each drain — measurable pure
//! overhead on the 1-CPU bench container and wasted work everywhere else. This
//! module replaces that with **long-lived workers fed by channels**: threads are
//! spawned once (growing on demand, never shrinking) and parked on a shared
//! [`mpsc`] receiver between batches, so steady-state dispatch is a channel send
//! plus a wake-up instead of a `clone`/`spawn`/`join` cycle.
//!
//! # Architecture
//!
//! - One global [`WorkerPool`] (see [`global`]) shared by trigger discovery
//!   (`chase_trigger::parallel`), the conflict-aware standard chase
//!   (`chase_trigger::TriggerEngine::next_active_batch`), the round-parallel
//!   oblivious runners (`chase_engine::parallel`), and `core_of`'s fold search.
//!   Sharing one pool keeps the thread count bounded by the largest `workers(n)`
//!   ever requested, not by the number of subsystems.
//! - **Channel protocol:** submitters push type-erased jobs into a single
//!   shared injector queue (a mutex-guarded deque paired with a condvar — an
//!   MPMC channel in which a *blocked consumer holds no lock*, which is what
//!   lets the caller steal; see below) and wake the workers; workers loop
//!   `wait → pop → run`. Results travel back over a per-call [`mpsc`] channel
//!   created by each [`run_jobs`] invocation, so concurrent submitters never
//!   see each other's results even though they share the injector.
//! - **Caller participation:** the submitting thread does not block idle while
//!   its jobs run — it steals queued jobs from the shared injector and executes
//!   them inline until all of its own results have arrived. A pool sized for
//!   `workers(n)` therefore holds only `n - 1` threads; the caller is the
//!   n-th lane. This also makes *nested* `run_jobs` calls deadlock-free: a job
//!   that itself submits a batch drains the queue from inside a worker thread.
//!
//! # Determinism
//!
//! The pool is deliberately order-oblivious: [`run_jobs`] returns results in
//! **submission order** regardless of which thread ran which job or in what
//! order they finished. Every deterministic-merge argument made by the callers
//! (canonical trigger merge, shard-order concatenation, first-success-in-wave
//! fold selection) only needs that positional guarantee.
//!
//! # Lifetime safety
//!
//! Jobs borrow from the caller's stack (`&DependencySet`, [`Snapshot`]s, …) but
//! travel through a `'static` channel, so [`run_jobs`] erases their lifetime
//! internally. This is sound because `run_jobs` is a completion barrier: it does
//! not return until every submitted job has finished running (it collects
//! exactly one result per job, and panicking jobs still send a result), so the
//! borrows outlive every use. The global pool's injector is never dropped,
//! meaning a submitted job can never be silently discarded while borrowed data
//! goes out of scope.

#![allow(unsafe_code)] // lifetime erasure for scoped jobs; see `run_jobs` safety comment

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::thread;

/// A type-erased unit of work after lifetime erasure.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// A scoped job as submitted by callers: may borrow from the caller's stack.
pub type ScopedJob<'env, T> = Box<dyn FnOnce() -> T + Send + 'env>;

/// Locks a mutex, ignoring poisoning.
///
/// Pool state (the job deque, a spawn counter) is never left logically
/// inconsistent by a panic — job panics are caught *inside* the job wrapper and
/// the critical sections here contain no unwinding code paths — so recovering
/// the guard is always safe and keeps one panicked run from wedging every later
/// parallel call in the process.
fn lock_unpoisoned<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// State shared between the pool handle and its worker threads: the injector
/// queue all workers (and stealing callers) pull from.
///
/// Deliberately a deque + condvar rather than a `Mutex<mpsc::Receiver>`: a
/// worker parked in `Condvar::wait` holds no lock, so a caller's non-blocking
/// [`WorkerPool::try_steal`] always gets through. (A consumer blocked inside
/// `Receiver::recv` would sit *inside* the mutex and deadlock the steal.)
struct PoolShared {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled on every submission; workers wait on it when the queue is dry.
    available: Condvar,
}

/// A persistent pool of worker threads fed by a shared channel.
///
/// Obtain the process-wide instance with [`with_workers`]; constructing private
/// pools is possible (tests do) but defeats the reuse the pool exists for.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    /// Number of worker threads spawned so far (grow-only).
    spawned: Mutex<usize>,
}

impl Default for WorkerPool {
    fn default() -> Self {
        WorkerPool::new()
    }
}

impl WorkerPool {
    /// Creates an empty pool with no worker threads.
    ///
    /// Threads are added by [`ensure_workers`](WorkerPool::ensure_workers);
    /// until then [`run_jobs`](WorkerPool::run_jobs) still completes (the
    /// caller steals every job), so a pool is usable at any size.
    pub fn new() -> Self {
        WorkerPool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(VecDeque::new()),
                available: Condvar::new(),
            }),
            spawned: Mutex::new(0),
        }
    }

    /// Grows the pool so that a `run_jobs` call from a single submitter can use
    /// `workers` lanes of parallelism: `workers - 1` pool threads plus the
    /// submitting thread itself.
    ///
    /// Grow-only: requesting fewer workers than a previous call never stops
    /// threads. `workers == 0` is treated as 1 (the caller-only pool), matching
    /// the `Chase::workers(0)` normalization.
    pub fn ensure_workers(&self, workers: usize) {
        let target = workers.max(1) - 1;
        let mut spawned = lock_unpoisoned(&self.spawned);
        while *spawned < target {
            let shared = Arc::clone(&self.shared);
            thread::Builder::new()
                .name(format!("chase-pool-{}", *spawned))
                .spawn(move || worker_loop(&shared))
                .expect("failed to spawn chase pool worker thread");
            *spawned += 1;
        }
    }

    /// Number of worker threads currently alive (excluding submitting threads).
    pub fn threads(&self) -> usize {
        *lock_unpoisoned(&self.spawned)
    }

    /// Runs every job and returns their results **in submission order**.
    ///
    /// Blocks until all jobs have completed; the calling thread participates by
    /// stealing queued jobs while it waits. If any job panics, the panic is
    /// re-raised on the calling thread — but only after every job in the batch
    /// has finished, so borrowed data is never freed under a running job.
    ///
    /// Jobs may themselves call `run_jobs` (the nested caller steals), but a
    /// deep recursion serializes: stolen jobs run inline on whatever thread
    /// picked them up.
    pub fn run_jobs<'env, T: Send + 'env>(&self, jobs: Vec<ScopedJob<'env, T>>) -> Vec<T> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        if n == 1 {
            // One job: running it inline is strictly cheaper than a dispatch
            // round-trip and keeps single-worker paths allocation-free.
            let mut jobs = jobs;
            return vec![jobs.pop().expect("len checked")()];
        }

        let (done_tx, done_rx) = mpsc::channel::<(usize, thread::Result<T>)>();
        {
            // Enqueue under one lock so a submitter's jobs are contiguous in
            // the queue, then wake every parked worker.
            let mut queue = lock_unpoisoned(&self.shared.queue);
            for (index, job) in jobs.into_iter().enumerate() {
                let done = done_tx.clone();
                let task: ScopedJob<'env, ()> = Box::new(move || {
                    let result = panic::catch_unwind(AssertUnwindSafe(job));
                    // The receiver only disappears if the submitter panicked
                    // for an unrelated reason; dropping the result is fine.
                    let _ = done.send((index, result));
                });
                // SAFETY: `run_jobs` does not return before it has received
                // exactly `n` results, one per submitted task, and each task
                // sends its result only after the borrowed job has finished
                // running (including by panic, which `catch_unwind` converts
                // into a result). The queue outlives the pool and is never
                // cleared without running the jobs, so a queued task cannot be
                // dropped unrun while the submitter is still waiting. Hence
                // every `'env` borrow captured by the job strictly outlives
                // its use, and erasing the lifetime to `'static` for
                // transport is sound.
                let task: Job = unsafe {
                    std::mem::transmute::<ScopedJob<'env, ()>, ScopedJob<'static, ()>>(task)
                };
                queue.push_back(task);
            }
            self.shared.available.notify_all();
        }
        drop(done_tx);

        let mut slots: Vec<Option<thread::Result<T>>> = Vec::with_capacity(n);
        slots.resize_with(n, || None);
        let mut completed = 0;
        while completed < n {
            // Prefer stealing real work over blocking on the results channel:
            // with fewer pool threads than jobs (always, since the caller is a
            // lane) this is what closes the batch.
            if let Some(task) = self.try_steal() {
                task();
                continue;
            }
            match done_rx.recv() {
                Ok((index, result)) => {
                    slots[index] = Some(result);
                    completed += 1;
                }
                Err(_) => unreachable!("tasks hold the sender until they have reported"),
            }
        }

        let mut out = Vec::with_capacity(n);
        for slot in slots {
            match slot.expect("barrier collected every result") {
                Ok(value) => out.push(value),
                Err(payload) => panic::resume_unwind(payload),
            }
        }
        out
    }

    /// Takes one queued job, if any is waiting, without blocking.
    fn try_steal(&self) -> Option<Job> {
        lock_unpoisoned(&self.shared.queue).pop_front()
    }
}

/// The worker thread body: park until a job is queued, run it, repeat forever.
fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut queue = lock_unpoisoned(&shared.queue);
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                // `wait` releases the lock while parked — crucial, or callers
                // could never steal from an idle pool.
                queue = match shared.available.wait(queue) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
            // The guard drops here, before the job runs.
        };
        job();
    }
}

/// The process-wide pool shared by every parallel chase path.
fn global() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(WorkerPool::new)
}

/// Returns the global pool, grown (never shrunk) to serve `workers` lanes.
///
/// This is the entry point every parallel path uses:
///
/// ```
/// use chase_core::pool::{self, ScopedJob};
///
/// let inputs = [1u64, 2, 3, 4];
/// let jobs: Vec<ScopedJob<'_, u64>> = inputs
///     .iter()
///     .map(|&x| Box::new(move || x * x) as ScopedJob<'_, u64>)
///     .collect();
/// let squares = pool::with_workers(4).run_jobs(jobs);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn with_workers(workers: usize) -> &'static WorkerPool {
    let pool = global();
    pool.ensure_workers(workers);
    pool
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn squares(pool: &WorkerPool, upto: usize) -> Vec<usize> {
        let jobs: Vec<ScopedJob<'_, usize>> = (0..upto)
            .map(|i| Box::new(move || i * i) as ScopedJob<'_, usize>)
            .collect();
        pool.run_jobs(jobs)
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = WorkerPool::new();
        pool.ensure_workers(4);
        let expected: Vec<usize> = (0..64).map(|i| i * i).collect();
        assert_eq!(squares(&pool, 64), expected);
    }

    #[test]
    fn zero_thread_pool_still_completes_via_caller_stealing() {
        let pool = WorkerPool::new();
        assert_eq!(pool.threads(), 0);
        assert_eq!(squares(&pool, 8), vec![0, 1, 4, 9, 16, 25, 36, 49]);
    }

    #[test]
    fn jobs_borrow_caller_stack_data() {
        let pool = WorkerPool::new();
        pool.ensure_workers(3);
        let data: Vec<u32> = (0..100).collect();
        let view: &[u32] = &data;
        let jobs: Vec<ScopedJob<'_, u32>> = view
            .chunks(7)
            .map(|chunk| Box::new(move || chunk.iter().sum::<u32>()) as ScopedJob<'_, u32>)
            .collect();
        let total: u32 = pool.run_jobs(jobs).into_iter().sum();
        assert_eq!(total, data.iter().sum::<u32>());
    }

    #[test]
    fn ensure_workers_is_grow_only_and_zero_means_one_lane() {
        let pool = WorkerPool::new();
        pool.ensure_workers(0);
        assert_eq!(
            pool.threads(),
            0,
            "workers(0) normalizes to the caller lane"
        );
        pool.ensure_workers(4);
        assert_eq!(pool.threads(), 3);
        pool.ensure_workers(2);
        assert_eq!(pool.threads(), 3, "pool never shrinks");
        pool.ensure_workers(6);
        assert_eq!(pool.threads(), 5);
    }

    #[test]
    fn pool_is_reused_across_batches() {
        let pool = WorkerPool::new();
        pool.ensure_workers(4);
        let before = pool.threads();
        for round in 0..32 {
            let got = squares(&pool, 16);
            assert_eq!(got[15], 225, "round {round}");
        }
        assert_eq!(pool.threads(), before, "no re-spawn between batches");
    }

    #[test]
    fn panicking_job_propagates_after_the_batch_completes() {
        let pool = WorkerPool::new();
        pool.ensure_workers(2);
        let ran = AtomicUsize::new(0);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            let jobs: Vec<ScopedJob<'_, ()>> = (0..8)
                .map(|i| {
                    let ran = &ran;
                    Box::new(move || {
                        if i == 3 {
                            panic!("boom");
                        }
                        ran.fetch_add(1, Ordering::SeqCst);
                    }) as ScopedJob<'_, ()>
                })
                .collect();
            pool.run_jobs(jobs);
        }));
        assert!(result.is_err(), "the job panic must surface to the caller");
        assert_eq!(
            ran.load(Ordering::SeqCst),
            7,
            "all non-panicking jobs still ran to completion"
        );
        // The pool must remain usable after a panicked batch.
        assert_eq!(squares(&pool, 4), vec![0, 1, 4, 9]);
    }

    #[test]
    fn nested_run_jobs_from_inside_a_job_completes() {
        let pool = WorkerPool::new();
        pool.ensure_workers(2);
        let inner_pool = &pool;
        let jobs: Vec<ScopedJob<'_, usize>> = (0usize..4)
            .map(|i| {
                Box::new(move || {
                    let inner: Vec<ScopedJob<'_, usize>> = (0..3)
                        .map(|j| Box::new(move || i * 10 + j) as ScopedJob<'_, usize>)
                        .collect();
                    inner_pool.run_jobs(inner).into_iter().sum()
                }) as ScopedJob<'_, usize>
            })
            .collect();
        let got = pool.run_jobs(jobs);
        assert_eq!(got, vec![3, 33, 63, 93]);
    }

    #[test]
    fn global_pool_grows_on_demand() {
        let before = global().threads();
        let pool = with_workers(2);
        assert!(pool.threads() >= 1);
        assert!(pool.threads() >= before);
        let results = squares(pool, 32);
        assert_eq!(results[31], 31 * 31);
    }
}
