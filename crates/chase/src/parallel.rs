//! The round-parallel chase runner for the (semi-)oblivious variants.
//!
//! The paper's oblivious and semi-oblivious chases fire *every* trigger of a round
//! (modulo the fired-key comparison) — there is no activity check whose outcome
//! depends on what else fired in the meantime. That makes their rounds honest:
//! discovery can run against a frozen snapshot of the instance and the discovered
//! batch can be applied wholesale, and the result is the same set of steps a
//! sequential run would fire, in a different order. This module exploits exactly
//! that:
//!
//! 1. **snapshot** — the round's new facts (the delta) are discovered against a
//!    read-only [`Snapshot`] of the [`FactIndex`], sharded over disjoint
//!    `FactId` ranges of the delta as jobs on the persistent worker pool
//!    ([`chase_core::pool`] — long-lived channel-fed threads, no per-round
//!    spawn; see [`chase_trigger::parallel::discover_batch`]);
//! 2. **deterministic merge** — the merged candidates are deduped and sorted by
//!    the canonical `(DepId, body FactIds)` order
//!    ([`chase_trigger::sort_canonical`], keys computed for dedup survivors
//!    only), which does not depend on the worker count or any hash order;
//! 3. **sequential apply** — the sorted batch is applied one trigger at a time
//!    with the same fired-key dedup and the same per-step budget-clock cadence
//!    as the sequential runner, so fresh-null numbering, [`ChaseObserver`] event
//!    streams and budget accounting are bitwise-identical **at any worker count**.
//!
//! Relative to the *sequential* oblivious runner the only difference is the order
//! in which the (identical) set of triggers fires, so terminating runs produce
//! instances equal up to a renaming of labeled nulls with identical
//! [`ChaseStats`]; `tests/property_tests.rs` proves this differentially over
//! random ontology corpora.
//!
//! ## Why only the oblivious variants batch whole rounds
//!
//! * The **standard chase** checks *activity* at application time: whether a
//!   trigger fires depends on the facts added earlier in the sequence, so
//!   batching a whole round against a stale snapshot genuinely changes the result
//!   (a trigger can fire on the ∃-null it would have found satisfied one step
//!   later — not even isomorphic). The standard chase therefore keeps the
//!   sequential *apply* order and parallelises the read-only phases around it:
//!   each drain of the delta worklist runs sharded with an order-preserving
//!   merge ([`chase_trigger::TriggerEngine::drain_deltas_parallel`]), and
//!   conflict-aware scheduling ([`chase_trigger::ConflictSchedule`]) evaluates
//!   the activity checks of a conflict-free prefix of the trigger order
//!   concurrently against the frozen pre-batch instance
//!   ([`chase_trigger::TriggerEngine::next_active_batch`]). Both are
//!   bitwise-identical to the sequential runner.
//! * **EGD-bearing** dependency sets fall back to the sequential runners
//!   entirely: an EGD substitution rewrites the pending state (`h ↦ γ∘h`) and the
//!   fired-key sets, so which triggers exist — and even how many steps fire —
//!   depends on the interleaving of substitutions with TGD steps. Two orders of
//!   the same round can produce non-isomorphic results, so no deterministic merge
//!   can honour the equivalence contract; the run stays sequential instead.
//! * The **core chase** already fires all triggers per round (logically); its
//!   execution cost is dominated by core computation, whose per-null fold
//!   search `workers > 1` parallelises deterministically
//!   ([`crate::core_of::core_of_with_workers`]) — the round's trigger scan and
//!   applies stay sequential.

use crate::budget::{BudgetClock, ChaseBudget};
use crate::observer::{record_step_effect, ChaseObserver};
use crate::result::{ChaseOutcome, ChaseStats};
use crate::step::{StepEffect, Trigger};
use chase_core::{DependencySet, FactId, GroundTerm, Instance, Snapshot, Variable};
use chase_trigger::{
    discover_batch, discover_batch_instrumented, sort_canonical, FactIndex, SeedAtoms,
};
use std::collections::HashSet;
use std::time::Instant;

/// Runs the (semi-)oblivious chase round-parallel. Callers guarantee `sigma` has
/// no EGDs (the dispatcher in [`crate::oblivious`] falls back to the sequential
/// runner otherwise) and `workers >= 1`.
///
/// `key_vars` holds, per dependency, the variables of the fired-key comparison —
/// all body variables for the oblivious chase, the frontier for the
/// semi-oblivious chase (see `key_variables` in [`crate::oblivious`]).
pub(crate) fn run_oblivious_parallel(
    sigma: &DependencySet,
    key_vars: &[Vec<Variable>],
    budget: &ChaseBudget,
    database: &Instance,
    observer: &mut dyn ChaseObserver,
    workers: usize,
) -> ChaseOutcome {
    debug_assert!(
        sigma.egd_ids().is_empty(),
        "the round-parallel runner requires an EGD-free dependency set"
    );
    let clock = BudgetClock::start(budget);
    let seeds = SeedAtoms::new(sigma);
    let mut index = FactIndex::new();
    // The round-0 delta is the database itself, loaded through the one shared
    // routine ([`FactIndex::insert_database`]) the sequential engine also uses.
    let mut delta: Vec<FactId> = index.insert_database(database);
    // Fired trigger keys per dependency. Σ is EGD-free, so keys are never
    // rewritten and a plain set suffices (contrast with the sequential runner's
    // γ-propagation).
    let mut fired: Vec<HashSet<Vec<GroundTerm>>> = vec![HashSet::new(); sigma.len()];
    // Every assignment ever discovered, per dependency: cross-round dedup, since
    // later rounds re-discover joins whose facts span multiple rounds.
    let mut seen: Vec<HashSet<Vec<(Variable, GroundTerm)>>> = vec![HashSet::new(); sigma.len()];
    let mut stats = ChaseStats::default();
    let mut round = 0usize;
    // Phase instrumentation is opt-in (consulted once): without it the loop
    // below performs no clock reads beyond the budget's own.
    let phases = observer.observes_phases();
    loop {
        // Discovery round: every candidate seeded from the delta, against a
        // frozen snapshot, sharded across workers, merged in batch order.
        let had_delta = !delta.is_empty();
        let mut batch = if !had_delta {
            // A zero-length delta discovers nothing: skip the snapshot and, in
            // particular, emit no empty-shard `discovery_completed` event (a
            // round whose steps added no new facts would otherwise report a
            // phantom zero-fact discovery round).
            Vec::new()
        } else {
            let snapshot = Snapshot::new(index.indexed());
            if phases {
                let (batch, discovery) =
                    discover_batch_instrumented(sigma, &seeds, snapshot, &delta, workers);
                observer.discovery_completed(&discovery);
                batch
            } else {
                discover_batch(sigma, &seeds, snapshot, &delta, workers)
            }
        };
        delta.clear();
        // Dedup in (deterministic) batch order, then impose the canonical
        // (DepId, body FactIds) merge order for application — keys are computed
        // here, for the dedup survivors only.
        // No discovery sweep ⇒ nothing to merge either: the skipped round
        // emits neither event (discovery/merge events stay paired).
        let merge_start = (phases && had_delta).then(Instant::now);
        let candidates = batch.len();
        batch.retain(|t| seen[t.dep.0].insert(t.assignment.canonical()));
        sort_canonical(sigma, index.store(), &mut batch);
        if let Some(start) = merge_start {
            observer.merge_completed(candidates, batch.len(), start.elapsed());
        }
        if batch.is_empty() {
            // Mirror the sequential loop's cadence: the budget is checked once
            // more before concluding that no applicable trigger remains.
            let tripped = clock.check_step(&stats, index.len());
            if phases {
                observer.budget_checked(tripped);
            }
            if let Some(limit) = tripped {
                return ChaseOutcome::BudgetExhausted {
                    limit,
                    instance: index.into_instance(),
                    stats,
                };
            }
            return ChaseOutcome::Terminated {
                instance: index.into_instance(),
                stats,
            };
        }
        let steps_before = stats.steps;
        for candidate in batch {
            // Fired-key dedup at application time, exactly like the sequential
            // runner's accept closure (rejected candidates consume no budget).
            let key: Vec<GroundTerm> = key_vars[candidate.dep.0]
                .iter()
                .map(|&v| {
                    candidate
                        .assignment
                        .get(v)
                        .expect("body variables are bound")
                })
                .collect();
            if !fired[candidate.dep.0].insert(key) {
                continue;
            }
            let tripped = clock.check_step(&stats, index.len());
            if phases {
                observer.budget_checked(tripped);
            }
            if let Some(limit) = tripped {
                return ChaseOutcome::BudgetExhausted {
                    limit,
                    instance: index.into_instance(),
                    stats,
                };
            }
            // Apply the TGD step natively on the index (Σ is EGD-free).
            let tgd = sigma
                .get(candidate.dep)
                .as_tgd()
                .expect("EGD-free dependency set");
            let mut extended = candidate.assignment.clone();
            let ex = tgd.existential_variables();
            let fresh_nulls = ex.len();
            for v in ex {
                let n = index.fresh_null();
                extended.bind(v, GroundTerm::Null(n));
            }
            let mut added = Vec::new();
            for atom in &tgd.head {
                let fact = extended
                    .apply_atom(atom)
                    .expect("all head variables are bound after extension");
                let (id, new) = index.insert_full(fact.clone());
                if new {
                    delta.push(id);
                    added.push(fact);
                }
            }
            let trigger = Trigger {
                dep: candidate.dep,
                assignment: candidate.assignment,
            };
            let effect = StepEffect::AddedFacts {
                facts: added,
                fresh_nulls,
            };
            if record_step_effect(sigma, &trigger, &effect, &mut stats, observer).is_some() {
                unreachable!("TGD steps cannot fail");
            }
        }
        // Round-granular events, in the unified order pinned by
        // `tests/api_redesign.rs`: `round_completed` immediately followed by
        // `round_nulls`, after all of the round's step/null events. A sweep in
        // which every candidate was fired-key-rejected applied no step and
        // reports no round — observers never see phantom no-op rounds.
        if stats.steps > steps_before {
            round += 1;
            observer.round_completed(round, index.len());
            observer.round_nulls(index.instance().nulls().len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::TraceObserver;
    use crate::session::Chase;
    use crate::ObliviousVariant;
    use chase_core::parser::parse_program;

    fn closure_program(n: usize) -> chase_core::Program {
        let mut src = String::from("t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z).\n");
        for i in 0..n {
            src.push_str(&format!("E(v{i}, v{}).\n", i + 1));
        }
        parse_program(&src).unwrap()
    }

    #[test]
    fn zero_length_delta_rounds_emit_no_discovery_events() {
        // Satellite: a round whose delta is empty (steps that added nothing
        // new, or an empty database) must not emit a phantom zero-fact
        // `discovery_completed` shard event.
        use crate::observer::{ChaseEvent, EventObserver};
        let p = closure_program(6);
        let count_rounds = |db: &chase_core::Instance| {
            let mut discoveries = Vec::new();
            let mut obs = EventObserver(|e: ChaseEvent| {
                if let ChaseEvent::DiscoveryCompleted { stats } = e {
                    discoveries.push(stats.facts_scanned());
                }
            });
            let out = Chase::semi_oblivious(&p.dependencies)
                .workers(4)
                .run_observed(db, &mut obs);
            assert!(out.is_terminating());
            discoveries
        };
        // Empty database: the single (empty) round discovers nothing.
        assert!(count_rounds(&chase_core::Instance::new()).is_empty());
        // Real run: every reported discovery round scanned at least one fact.
        let discoveries = count_rounds(&p.database);
        assert!(!discoveries.is_empty());
        assert!(discoveries.iter().all(|&scanned| scanned > 0));
    }

    #[test]
    fn parallel_closure_matches_sequential_exactly() {
        // Full TGDs invent no nulls, so the parallel result must be *equal* to
        // the sequential one, not merely isomorphic.
        let p = closure_program(12);
        for variant in [ObliviousVariant::Oblivious, ObliviousVariant::SemiOblivious] {
            let sequential = Chase::oblivious(&p.dependencies, variant).run(&p.database);
            for workers in [2, 4] {
                let parallel = Chase::oblivious(&p.dependencies, variant)
                    .workers(workers)
                    .run(&p.database);
                assert!(parallel.is_terminating());
                assert_eq!(
                    sequential.instance().unwrap(),
                    parallel.instance().unwrap(),
                    "{variant:?} at {workers} workers"
                );
                assert_eq!(sequential.stats(), parallel.stats());
            }
        }
    }

    #[test]
    fn parallel_runs_are_byte_identical_across_worker_counts() {
        let p = parse_program(
            r#"
            r1: A(?x) -> exists ?y: R(?x, ?y).
            r2: R(?x, ?y) -> S(?y, ?x).
            r3: S(?x, ?y) -> exists ?z: R(?x, ?z).
            A(a). A(b). A(c).
            "#,
        )
        .unwrap();
        let budget = ChaseBudget::unlimited().with_max_steps(100);
        let run = |workers| {
            let mut trace = TraceObserver::new();
            let out = Chase::semi_oblivious(&p.dependencies)
                .workers(workers)
                .with_budget(budget)
                .run_observed(&p.database, &mut trace);
            (
                out.instance().unwrap().sorted_facts(),
                out.stats().clone(),
                out.exhausted_limit(),
                trace.steps,
                trace.rounds,
                trace.round_null_counts,
            )
        };
        let two = run(2);
        for workers in [3, 4, 8] {
            assert_eq!(two, run(workers), "worker count {workers} diverged");
        }
    }

    #[test]
    fn budget_trip_is_deterministic_across_worker_counts() {
        let p = parse_program(
            r#"
            r: C(?x) -> exists ?y: R(?x, ?y).
            c: R(?x, ?y) -> C(?y).
            C(a).
            "#,
        )
        .unwrap();
        let budget = ChaseBudget::unlimited().with_max_steps(37);
        let sequential = Chase::semi_oblivious(&p.dependencies)
            .with_budget(budget)
            .run(&p.database);
        assert!(sequential.is_budget_exhausted());
        let base = Chase::semi_oblivious(&p.dependencies)
            .workers(2)
            .with_budget(budget)
            .run(&p.database);
        assert_eq!(base.exhausted_limit(), sequential.exhausted_limit());
        assert_eq!(base.stats().steps, sequential.stats().steps);
        for workers in [4, 8] {
            let out = Chase::semi_oblivious(&p.dependencies)
                .workers(workers)
                .with_budget(budget)
                .run(&p.database);
            assert_eq!(out.exhausted_limit(), base.exhausted_limit());
            assert_eq!(out.stats(), base.stats());
            assert_eq!(
                out.instance().unwrap().sorted_facts(),
                base.instance().unwrap().sorted_facts()
            );
        }
    }

    #[test]
    fn egd_bearing_sets_fall_back_to_the_sequential_runner() {
        // With an EGD in Σ, `workers(8)` must behave exactly like the sequential
        // session (the documented fallback), not just isomorphically.
        let p = parse_program(
            r#"
            r1: Emp(?x) -> exists ?d: Works(?x, ?d).
            k: Works(?x, ?d1), Works(?x, ?d2) -> ?d1 = ?d2.
            Emp(e1). Works(e1, d0). Dept(d0).
            "#,
        )
        .unwrap();
        for variant in [ObliviousVariant::Oblivious, ObliviousVariant::SemiOblivious] {
            let sequential = Chase::oblivious(&p.dependencies, variant).run(&p.database);
            let parallel = Chase::oblivious(&p.dependencies, variant)
                .workers(8)
                .run(&p.database);
            assert_eq!(sequential, parallel, "{variant:?}");
        }
    }

    #[test]
    fn semi_oblivious_example6_parallel() {
        // Example 6: one step, the second trigger shares the frontier key.
        let p = parse_program("r: E(?x, ?y) -> exists ?z: E(?x, ?z). E(a, b).").unwrap();
        let out = Chase::semi_oblivious(&p.dependencies)
            .workers(4)
            .run(&p.database);
        assert!(out.is_terminating());
        assert_eq!(out.stats().steps, 1);
        assert_eq!(out.instance().unwrap().len(), 2);
    }
}
