//! Models, universal models and homomorphic equivalence.

use chase_core::homomorphism::instance_homomorphism;
use chase_core::satisfaction::satisfies_all;
use chase_core::{DependencySet, Instance};

/// Returns `true` iff `j` is a model of `(database, sigma)`: it contains the database
/// and satisfies every dependency.
pub fn is_model(j: &Instance, database: &Instance, sigma: &DependencySet) -> bool {
    database.is_subinstance_of(j) && satisfies_all(j, sigma)
}

/// Returns `true` iff there is a homomorphism from `from` to `to` (constants fixed).
pub fn maps_into(from: &Instance, to: &Instance) -> bool {
    instance_homomorphism(from, to).is_some()
}

/// Returns `true` iff the two instances are homomorphically equivalent.
pub fn homomorphically_equivalent(a: &Instance, b: &Instance) -> bool {
    maps_into(a, b) && maps_into(b, a)
}

/// Checks that `candidate` is a universal model *among the given models*: it is a model
/// of `(database, sigma)` and maps homomorphically into every instance of `others`.
///
/// Deciding universality against *all* models is not finitely checkable directly; this
/// helper is used by tests and experiments that compare against an explicit set of
/// alternative models (e.g. the models of Example 3 of the paper).
pub fn is_universal_model_among(
    candidate: &Instance,
    database: &Instance,
    sigma: &DependencySet,
    others: &[Instance],
) -> bool {
    is_model(candidate, database, sigma) && others.iter().all(|j| maps_into(candidate, j))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::parser::parse_program;
    use chase_core::term::{Constant, GroundTerm, NullValue};
    use chase_core::Fact;

    fn gc(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }
    fn gn(i: u64) -> GroundTerm {
        GroundTerm::Null(NullValue(i))
    }

    #[test]
    fn example3_universal_and_non_universal_models() {
        let p = parse_program(
            r#"
            r1: P(?x, ?y) -> exists ?z: E(?x, ?z).
            r2: Q(?x, ?y) -> exists ?z: E(?z, ?y).
            P(a, b). Q(c, d).
            "#,
        )
        .unwrap();
        let d = &p.database;
        let j1 = d.union(&Instance::from_facts(vec![
            Fact::from_parts("E", vec![gc("a"), gn(1)]),
            Fact::from_parts("E", vec![gn(2), gc("d")]),
        ]));
        let j2 = d.union(&Instance::from_facts(vec![Fact::from_parts(
            "E",
            vec![gc("a"), gc("d")],
        )]));
        assert!(is_model(&j1, d, &p.dependencies));
        assert!(is_model(&j2, d, &p.dependencies));
        // J1 is universal among {J1, J2}; J2 is not (no homomorphism J2 → J1).
        assert!(is_universal_model_among(
            &j1,
            d,
            &p.dependencies,
            std::slice::from_ref(&j2)
        ));
        assert!(!is_universal_model_among(
            &j2,
            d,
            &p.dependencies,
            std::slice::from_ref(&j1)
        ));
        assert!(maps_into(&j1, &j2));
        assert!(!maps_into(&j2, &j1));
        assert!(!homomorphically_equivalent(&j1, &j2));
    }

    #[test]
    fn model_requires_database_inclusion() {
        let p = parse_program("r: A(?x) -> B(?x). A(a).").unwrap();
        let j = Instance::from_facts(vec![
            Fact::from_parts("A", vec![gc("a")]),
            Fact::from_parts("B", vec![gc("a")]),
        ]);
        assert!(is_model(&j, &p.database, &p.dependencies));
        let missing_db = Instance::from_facts(vec![Fact::from_parts("B", vec![gc("a")])]);
        assert!(!is_model(&missing_db, &p.database, &p.dependencies));
    }

    #[test]
    fn chase_result_is_universal_among_hand_built_models() {
        use crate::session::Chase;
        let p = parse_program(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> ?x = ?y.
            N(a).
            "#,
        )
        .unwrap();
        let out = Chase::standard(&p.dependencies).run(&p.database);
        let canonical = out.instance().unwrap().clone();
        // Another model: {N(a), E(a, a), N(b), E(b, b)}.
        let bigger = canonical.union(&Instance::from_facts(vec![
            Fact::from_parts("N", vec![gc("b")]),
            Fact::from_parts("E", vec![gc("b"), gc("b")]),
        ]));
        assert!(is_universal_model_among(
            &canonical,
            &p.database,
            &p.dependencies,
            &[bigger]
        ));
    }

    #[test]
    fn homomorphic_equivalence_is_reflexive() {
        let j = Instance::from_facts(vec![Fact::from_parts("E", vec![gc("a"), gn(1)])]);
        assert!(homomorphically_equivalent(&j, &j));
    }
}
