//! Pluggable observation of chase runs.
//!
//! A [`ChaseObserver`] receives structured events while a chase executes:
//! step-applied, nulls-created, EGD-collapse and (for the core chase) round-completed
//! events. It subsumes the legacy `run_with_trace` closures and gives benchmarks,
//! loggers and future metrics a single hook into every variant.
//!
//! Event streams per variant:
//!
//! * **standard** and **(semi-)oblivious** (sequential): [`ChaseObserver::step_applied`]
//!   after every applied step (including the failing one), plus
//!   [`ChaseObserver::nulls_created`] / [`ChaseObserver::egd_collapsed`] for the
//!   steps that invent nulls or apply a substitution;
//! * **core**: [`ChaseObserver::round_completed`] after every round, with
//!   [`ChaseObserver::nulls_created`] and [`ChaseObserver::egd_collapsed`] for the
//!   round's aggregate effects (the core chase applies all triggers in parallel, so
//!   there is no meaningful per-step event);
//! * **round-parallel (semi-)oblivious** ([`Chase::workers`](crate::Chase::workers)
//!   `> 1`): the per-step events of the sequential runners *and* the round pair
//!   after each completed round.
//!
//! ## Round-event order (pinned)
//!
//! Every runner that reports rounds emits, per round, the same order:
//! all of the round's [`ChaseObserver::nulls_created`] /
//! [`ChaseObserver::egd_collapsed`] (and, for step-granular runners,
//! [`ChaseObserver::step_applied`]) events first, then
//! [`ChaseObserver::round_completed`] **immediately followed by**
//! [`ChaseObserver::round_nulls`] as an adjacent pair. Within a round that both
//! creates and collapses nulls, the aggregate `nulls_created` precedes the
//! round's `egd_collapsed` events (core chase). A round cut short by a failure
//! or a tripped budget emits the events of the work actually done but no round
//! pair. `tests/api_redesign.rs` pins this contract for both round-emitting
//! runners.

use crate::result::{ChaseStats, EgdViolation};
use crate::step::{StepEffect, Trigger};
use chase_core::substitution::NullSubstitution;
use chase_core::DependencySet;

/// Receives events during a chase run. All methods default to no-ops, so an observer
/// implements only what it cares about.
pub trait ChaseObserver {
    /// A chase step was applied (or failed): the trigger and its effect.
    fn step_applied(&mut self, trigger: &Trigger, effect: &StepEffect) {
        let _ = (trigger, effect);
    }

    /// `count` fresh labeled nulls were invented by the latest step (or round).
    fn nulls_created(&mut self, count: usize) {
        let _ = count;
    }

    /// An EGD step collapsed a labeled null: the substitution `γ` that was applied.
    fn egd_collapsed(&mut self, gamma: &NullSubstitution) {
        let _ = gamma;
    }

    /// A core-chase round completed, leaving `facts` facts in the (cored) instance.
    fn round_completed(&mut self, round: usize, facts: usize) {
        let _ = (round, facts);
    }

    /// A round completed, leaving `nulls` distinct labeled nulls in the instance
    /// (for the core chase: the cored instance). Always emitted immediately after
    /// [`ChaseObserver::round_completed`] (see the module docs for the pinned
    /// order); unlike the [`ChaseObserver::nulls_created`] /
    /// [`ChaseObserver::egd_collapsed`] stream, this accounts for nulls folded
    /// away by core computation, so peak-liveness trackers should use it.
    fn round_nulls(&mut self, nulls: usize) {
        let _ = nulls;
    }
}

/// Records one applied step's effect into the run statistics and the observer
/// stream — shared by the standard (incremental and naive) and (semi-)oblivious
/// runners so the per-effect bookkeeping cannot drift between loops. Returns the
/// violation for failing steps. Callers must handle [`StepEffect::NotApplicable`]
/// themselves (its semantics differ per variant) and never pass it here.
pub(crate) fn record_step_effect(
    sigma: &DependencySet,
    trigger: &Trigger,
    effect: &StepEffect,
    stats: &mut ChaseStats,
    observer: &mut dyn ChaseObserver,
) -> Option<EgdViolation> {
    stats.steps += 1;
    match effect {
        StepEffect::AddedFacts { facts, fresh_nulls } => {
            stats.facts_added += facts.len();
            stats.nulls_created += fresh_nulls;
            if *fresh_nulls > 0 {
                observer.nulls_created(*fresh_nulls);
            }
        }
        StepEffect::Substituted { gamma } => {
            stats.null_replacements += 1;
            observer.egd_collapsed(gamma);
        }
        StepEffect::Failure => {
            observer.step_applied(trigger, effect);
            return Some(EgdViolation::from_trigger(sigma, trigger));
        }
        StepEffect::NotApplicable => {
            unreachable!("callers filter NotApplicable before recording")
        }
    }
    observer.step_applied(trigger, effect);
    None
}

/// The do-nothing observer used by plain `run` calls.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl ChaseObserver for NoopObserver {}

/// An observer that records every step (trigger and effect) in order — the
/// replacement for the legacy `run_with_trace` entry points.
#[derive(Clone, Debug, Default)]
pub struct TraceObserver {
    /// The recorded steps, in application order.
    pub steps: Vec<(Trigger, StepEffect)>,
    /// The EGD substitutions applied, in order.
    pub collapses: Vec<NullSubstitution>,
    /// Total fresh nulls reported.
    pub nulls: usize,
    /// Rounds completed, as `(round, facts)` (core chase and the round-parallel
    /// runner; empty for sequential step-based variants).
    pub rounds: Vec<(usize, usize)>,
    /// Per-round live-null counts ([`ChaseObserver::round_nulls`]), parallel to
    /// [`TraceObserver::rounds`]. Previously this event was silently dropped by
    /// the trace, making round streams of different runners incomparable.
    pub round_null_counts: Vec<usize>,
}

impl TraceObserver {
    /// A fresh, empty trace.
    pub fn new() -> Self {
        TraceObserver::default()
    }
}

impl ChaseObserver for TraceObserver {
    fn step_applied(&mut self, trigger: &Trigger, effect: &StepEffect) {
        self.steps.push((trigger.clone(), effect.clone()));
    }

    fn nulls_created(&mut self, count: usize) {
        self.nulls += count;
    }

    fn egd_collapsed(&mut self, gamma: &NullSubstitution) {
        self.collapses.push(gamma.clone());
    }

    fn round_completed(&mut self, round: usize, facts: usize) {
        self.rounds.push((round, facts));
    }

    fn round_nulls(&mut self, nulls: usize) {
        self.round_null_counts.push(nulls);
    }
}

/// Adapts a `FnMut(&Trigger, &StepEffect)` closure into a [`ChaseObserver`] (used by
/// the deprecated `run_with_trace` shims).
pub struct FnObserver<F>(pub F);

impl<F: FnMut(&Trigger, &StepEffect)> ChaseObserver for FnObserver<F> {
    fn step_applied(&mut self, trigger: &Trigger, effect: &StepEffect) {
        (self.0)(trigger, effect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::Assignment;
    use chase_core::DepId;

    #[test]
    fn trace_observer_records_steps_and_collapses() {
        let mut obs = TraceObserver::new();
        let trigger = Trigger {
            dep: DepId(0),
            assignment: Assignment::new(),
        };
        obs.step_applied(
            &trigger,
            &StepEffect::AddedFacts {
                facts: vec![],
                fresh_nulls: 2,
            },
        );
        obs.nulls_created(2);
        obs.round_completed(1, 10);
        assert_eq!(obs.steps.len(), 1);
        assert_eq!(obs.nulls, 2);
        assert_eq!(obs.rounds, vec![(1, 10)]);
    }

    #[test]
    fn fn_observer_forwards_steps() {
        let mut count = 0;
        {
            let mut obs = FnObserver(|_: &Trigger, _: &StepEffect| count += 1);
            let trigger = Trigger {
                dep: DepId(3),
                assignment: Assignment::new(),
            };
            obs.step_applied(&trigger, &StepEffect::Failure);
        }
        assert_eq!(count, 1);
    }
}
