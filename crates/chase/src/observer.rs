//! Pluggable observation of chase runs.
//!
//! A [`ChaseObserver`] receives structured events while a chase executes:
//! step-applied, nulls-created, EGD-collapse and (for the core chase) round-completed
//! events. It subsumes the legacy `run_with_trace` closures and gives benchmarks,
//! loggers and future metrics a single hook into every variant.
//!
//! Event streams per variant:
//!
//! * **standard** and **(semi-)oblivious** (sequential): [`ChaseObserver::step_applied`]
//!   after every applied step (including the failing one), plus
//!   [`ChaseObserver::nulls_created`] / [`ChaseObserver::egd_collapsed`] for the
//!   steps that invent nulls or apply a substitution;
//! * **core**: [`ChaseObserver::round_completed`] after every round, with
//!   [`ChaseObserver::nulls_created`] and [`ChaseObserver::egd_collapsed`] for the
//!   round's aggregate effects (the core chase applies all triggers in parallel, so
//!   there is no meaningful per-step event);
//! * **round-parallel (semi-)oblivious** ([`Chase::workers`](crate::Chase::workers)
//!   `> 1`): the per-step events of the sequential runners *and* the round pair
//!   after each completed round.
//!
//! ## Round-event order (pinned)
//!
//! Every runner that reports rounds emits, per round, the same order:
//! all of the round's [`ChaseObserver::nulls_created`] /
//! [`ChaseObserver::egd_collapsed`] (and, for step-granular runners,
//! [`ChaseObserver::step_applied`]) events first, then
//! [`ChaseObserver::round_completed`] **immediately followed by**
//! [`ChaseObserver::round_nulls`] as an adjacent pair. Within a round that both
//! creates and collapses nulls, the aggregate `nulls_created` precedes the
//! round's `egd_collapsed` events (core chase). A round cut short by a failure
//! or a tripped budget emits the events of the work actually done but no round
//! pair. `tests/api_redesign.rs` pins this contract for both round-emitting
//! runners.
//!
//! ## Phase events (opt-in)
//!
//! Observers that return `true` from [`ChaseObserver::observes_phases`]
//! additionally receive **phase-boundary events**, which carry wall-clock
//! measurements and slot into the pinned order without disturbing it:
//!
//! * [`ChaseObserver::discovery_completed`] — a trigger-discovery batch
//!   finished, with per-worker [`ShardStats`](chase_core::ShardStats)
//!   (fact ids scanned, triggers found, shard wall-clock). Emitted **before**
//!   the step events of the triggers it discovered. Sequential runners report
//!   a single worker-0 shard per discovery call; the round-parallel runner
//!   reports one shard per worker per round.
//! * [`ChaseObserver::merge_completed`] — the round-parallel runner finished
//!   deduplicating and canonically sorting a round's candidate batch; emitted
//!   between the round's `discovery_completed` and its step events. Sequential
//!   runners never emit it.
//! * [`ChaseObserver::budget_checked`] — the runner consulted the budget
//!   clock; carries the tripped limit when the check failed. Emitted at every
//!   per-step/per-round check, so it
//!   may appear anywhere relative to the events above.
//!
//! When `observes_phases` is `false` (the default, and in particular for
//! [`NoopObserver`]) the runners skip both the events **and the clock reads
//! behind them** — instrumentation is pay-for-what-you-use, and the
//! deterministic event-stream contracts above hold unchanged because phase
//! events are separate defaulted methods that existing observers never see.

use crate::budget::BudgetLimit;
use crate::result::{ChaseStats, EgdViolation};
use crate::step::{StepEffect, Trigger};
use chase_core::substitution::NullSubstitution;
use chase_core::{DepId, DependencySet, DiscoveryStats, FactId, GroundTerm};
use std::time::Duration;

/// Receives events during a chase run. All methods default to no-ops, so an observer
/// implements only what it cares about.
pub trait ChaseObserver {
    /// A chase step was applied (or failed): the trigger and its effect.
    fn step_applied(&mut self, trigger: &Trigger, effect: &StepEffect) {
        let _ = (trigger, effect);
    }

    /// `count` fresh labeled nulls were invented by the latest step (or round).
    fn nulls_created(&mut self, count: usize) {
        let _ = count;
    }

    /// An EGD step collapsed a labeled null: the substitution `γ` that was applied.
    fn egd_collapsed(&mut self, gamma: &NullSubstitution) {
        let _ = gamma;
    }

    /// A core-chase round completed, leaving `facts` facts in the (cored) instance.
    fn round_completed(&mut self, round: usize, facts: usize) {
        let _ = (round, facts);
    }

    /// A round completed, leaving `nulls` distinct labeled nulls in the instance
    /// (for the core chase: the cored instance). Always emitted immediately after
    /// [`ChaseObserver::round_completed`] (see the module docs for the pinned
    /// order); unlike the [`ChaseObserver::nulls_created`] /
    /// [`ChaseObserver::egd_collapsed`] stream, this accounts for nulls folded
    /// away by core computation, so peak-liveness trackers should use it.
    fn round_nulls(&mut self, nulls: usize) {
        let _ = nulls;
    }

    /// Opt-in gate for the phase-boundary events below. Runners consult this
    /// **once per run**; returning `false` (the default) means they emit no
    /// phase events and — more importantly — perform none of the clock reads
    /// and stat snapshots needed to construct them, so plain observers pay
    /// nothing for the instrumentation layer.
    fn observes_phases(&self) -> bool {
        false
    }

    /// A trigger-discovery batch completed, with per-worker shard accounting.
    /// Only emitted when [`ChaseObserver::observes_phases`] returns `true`.
    fn discovery_completed(&mut self, stats: &DiscoveryStats) {
        let _ = stats;
    }

    /// The round-parallel runner merged a round's candidate batch: `candidates`
    /// triggers entered dedup, `deduped` survived into the canonically sorted
    /// round, taking `elapsed` wall-clock. Only emitted when
    /// [`ChaseObserver::observes_phases`] returns `true`.
    fn merge_completed(&mut self, candidates: usize, deduped: usize, elapsed: Duration) {
        let _ = (candidates, deduped, elapsed);
    }

    /// The runner consulted the budget clock; `tripped` names the exhausted
    /// limit when the check failed. Only emitted when
    /// [`ChaseObserver::observes_phases`] returns `true`.
    fn budget_checked(&mut self, tripped: Option<BudgetLimit>) {
        let _ = tripped;
    }

    /// Opt-in gate for the derivation events below
    /// ([`ChaseObserver::fact_derived`], [`ChaseObserver::facts_rewritten`]).
    /// Consulted **once per run**, like [`ChaseObserver::observes_phases`].
    /// Returning `true` makes the (semi-)oblivious runners resolve each step's
    /// body image at the [`FactId`] level and — because derivation logs are
    /// defined per applied step — forces them onto the sequential path even for
    /// EGD-free sets with `workers > 1` (whose parallel outcome is
    /// sequential-equivalent, so only wall-clock changes). The standard and
    /// core chases never emit derivation events: their step semantics are not
    /// monotone in the base, so no support ledger can maintain them (see
    /// [`Chase::materialize`](crate::Chase::materialize)).
    fn observes_derivations(&self) -> bool {
        false
    }

    /// A (semi-)oblivious trigger consumed its fired key: the dependency, the
    /// key (the images of the variant's key variables), the body image (one
    /// interned id per body atom) and — for TGD steps — **all** head fact ids,
    /// pre-existing ones included. Also emitted for EGD triggers that yield no
    /// chase step (`NotApplicable`: equal images) with empty `heads`, because
    /// the key is recorded as fired and a support ledger must know which body
    /// facts that record leans on. Emitted immediately before the step's
    /// standard events. Only when [`ChaseObserver::observes_derivations`] is
    /// `true`.
    fn fact_derived(&mut self, dep: DepId, key: &[GroundTerm], body: &[FactId], heads: &[FactId]) {
        let _ = (dep, key, body, heads);
    }

    /// An EGD substitution step rewrote the instance: `γ` plus the rewritten
    /// `(old, new)` id pairs — emitted right after the step's
    /// [`ChaseObserver::fact_derived`], whose body ids are in the pre-rewrite
    /// id space this delta maps forward. Only when
    /// [`ChaseObserver::observes_derivations`] is `true`.
    fn facts_rewritten(&mut self, gamma: &NullSubstitution, delta: &[(FactId, FactId)]) {
        let _ = (gamma, delta);
    }
}

/// Records one applied step's effect into the run statistics and the observer
/// stream — shared by the standard (incremental and naive) and (semi-)oblivious
/// runners so the per-effect bookkeeping cannot drift between loops. Returns the
/// violation for failing steps. Callers must handle [`StepEffect::NotApplicable`]
/// themselves (its semantics differ per variant) and never pass it here.
pub(crate) fn record_step_effect(
    sigma: &DependencySet,
    trigger: &Trigger,
    effect: &StepEffect,
    stats: &mut ChaseStats,
    observer: &mut dyn ChaseObserver,
) -> Option<EgdViolation> {
    stats.steps += 1;
    match effect {
        StepEffect::AddedFacts { facts, fresh_nulls } => {
            stats.facts_added += facts.len();
            stats.nulls_created += fresh_nulls;
            if *fresh_nulls > 0 {
                observer.nulls_created(*fresh_nulls);
            }
        }
        StepEffect::Substituted { gamma } => {
            stats.null_replacements += 1;
            observer.egd_collapsed(gamma);
        }
        StepEffect::Failure => {
            observer.step_applied(trigger, effect);
            return Some(EgdViolation::from_trigger(sigma, trigger));
        }
        StepEffect::NotApplicable => {
            unreachable!("callers filter NotApplicable before recording")
        }
    }
    observer.step_applied(trigger, effect);
    None
}

/// The do-nothing observer used by plain `run` calls.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopObserver;

impl ChaseObserver for NoopObserver {}

/// An observer that records every step (trigger and effect) in order — the
/// replacement for the legacy `run_with_trace` entry points.
#[derive(Clone, Debug, Default)]
pub struct TraceObserver {
    /// The recorded steps, in application order.
    pub steps: Vec<(Trigger, StepEffect)>,
    /// The EGD substitutions applied, in order.
    pub collapses: Vec<NullSubstitution>,
    /// Total fresh nulls reported.
    pub nulls: usize,
    /// Rounds completed, as `(round, facts)` (core chase and the round-parallel
    /// runner; empty for sequential step-based variants).
    pub rounds: Vec<(usize, usize)>,
    /// Per-round live-null counts ([`ChaseObserver::round_nulls`]), parallel to
    /// [`TraceObserver::rounds`]. Previously this event was silently dropped by
    /// the trace, making round streams of different runners incomparable.
    pub round_null_counts: Vec<usize>,
}

impl TraceObserver {
    /// A fresh, empty trace.
    pub fn new() -> Self {
        TraceObserver::default()
    }
}

impl ChaseObserver for TraceObserver {
    fn step_applied(&mut self, trigger: &Trigger, effect: &StepEffect) {
        self.steps.push((trigger.clone(), effect.clone()));
    }

    fn nulls_created(&mut self, count: usize) {
        self.nulls += count;
    }

    fn egd_collapsed(&mut self, gamma: &NullSubstitution) {
        self.collapses.push(gamma.clone());
    }

    fn round_completed(&mut self, round: usize, facts: usize) {
        self.rounds.push((round, facts));
    }

    fn round_nulls(&mut self, nulls: usize) {
        self.round_null_counts.push(nulls);
    }
}

/// Adapts a `FnMut(&Trigger, &StepEffect)` closure into a [`ChaseObserver`] (used by
/// the deprecated `run_with_trace` shims).
///
/// **This adapter forwards only [`ChaseObserver::step_applied`]** — every
/// other event (`nulls_created`, `egd_collapsed`, the round pair, and all
/// phase events) is silently dropped, exactly matching what the legacy
/// `run_with_trace` closures could see. For a closure that receives the full
/// event stream, use [`EventObserver`].
pub struct FnObserver<F>(pub F);

impl<F: FnMut(&Trigger, &StepEffect)> ChaseObserver for FnObserver<F> {
    fn step_applied(&mut self, trigger: &Trigger, effect: &StepEffect) {
        (self.0)(trigger, effect)
    }
}

/// One chase event in owned form, as delivered to an [`EventObserver`]
/// closure. Variants mirror the [`ChaseObserver`] methods one-to-one.
#[derive(Clone, Debug, PartialEq)]
pub enum ChaseEvent {
    /// A chase step was applied ([`ChaseObserver::step_applied`]).
    StepApplied {
        /// The fired trigger.
        trigger: Trigger,
        /// What the step did.
        effect: StepEffect,
    },
    /// Fresh nulls were invented ([`ChaseObserver::nulls_created`]).
    NullsCreated {
        /// How many.
        count: usize,
    },
    /// An EGD step collapsed a null ([`ChaseObserver::egd_collapsed`]).
    EgdCollapsed {
        /// The applied substitution.
        gamma: NullSubstitution,
    },
    /// A round finished ([`ChaseObserver::round_completed`]).
    RoundCompleted {
        /// 1-based round number.
        round: usize,
        /// Fact count after the round.
        facts: usize,
    },
    /// The post-round live-null count ([`ChaseObserver::round_nulls`]).
    RoundNulls {
        /// Live labeled nulls after the round.
        nulls: usize,
    },
    /// A discovery batch finished ([`ChaseObserver::discovery_completed`]).
    DiscoveryCompleted {
        /// Per-shard and whole-batch statistics.
        stats: DiscoveryStats,
    },
    /// A parallel merge pass finished ([`ChaseObserver::merge_completed`]).
    MergeCompleted {
        /// Triggers entering the merge.
        candidates: usize,
        /// Triggers surviving dedup.
        deduped: usize,
        /// Wall-clock of the merge pass.
        elapsed: Duration,
    },
    /// The budget was checked ([`ChaseObserver::budget_checked`]).
    BudgetChecked {
        /// The limit that tripped, if any.
        tripped: Option<BudgetLimit>,
    },
}

/// Adapts a `FnMut(ChaseEvent)` closure into a [`ChaseObserver`] that receives
/// **every** event — including the phase-boundary events, which it opts into
/// (`observes_phases` is `true`). The complement of [`FnObserver`]: where that
/// adapter keeps the narrow legacy trace contract, this one is the cheap way
/// to tap the full stream without writing an observer type.
pub struct EventObserver<F>(pub F);

impl<F: FnMut(ChaseEvent)> ChaseObserver for EventObserver<F> {
    fn step_applied(&mut self, trigger: &Trigger, effect: &StepEffect) {
        (self.0)(ChaseEvent::StepApplied {
            trigger: trigger.clone(),
            effect: effect.clone(),
        })
    }

    fn nulls_created(&mut self, count: usize) {
        (self.0)(ChaseEvent::NullsCreated { count })
    }

    fn egd_collapsed(&mut self, gamma: &NullSubstitution) {
        (self.0)(ChaseEvent::EgdCollapsed {
            gamma: gamma.clone(),
        })
    }

    fn round_completed(&mut self, round: usize, facts: usize) {
        (self.0)(ChaseEvent::RoundCompleted { round, facts })
    }

    fn round_nulls(&mut self, nulls: usize) {
        (self.0)(ChaseEvent::RoundNulls { nulls })
    }

    fn observes_phases(&self) -> bool {
        true
    }

    fn discovery_completed(&mut self, stats: &DiscoveryStats) {
        (self.0)(ChaseEvent::DiscoveryCompleted {
            stats: stats.clone(),
        })
    }

    fn merge_completed(&mut self, candidates: usize, deduped: usize, elapsed: Duration) {
        (self.0)(ChaseEvent::MergeCompleted {
            candidates,
            deduped,
            elapsed,
        })
    }

    fn budget_checked(&mut self, tripped: Option<BudgetLimit>) {
        (self.0)(ChaseEvent::BudgetChecked { tripped })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::Assignment;
    use chase_core::DepId;

    #[test]
    fn trace_observer_records_steps_and_collapses() {
        let mut obs = TraceObserver::new();
        let trigger = Trigger {
            dep: DepId(0),
            assignment: Assignment::new(),
        };
        let added = StepEffect::AddedFacts {
            facts: vec![],
            fresh_nulls: 2,
        };
        // Round 1: a null-inventing step, then two EGD collapses in order.
        obs.nulls_created(2);
        obs.step_applied(&trigger, &added);
        let gamma_a = NullSubstitution::single(
            chase_core::NullValue(0),
            chase_core::GroundTerm::Null(chase_core::NullValue(1)),
        );
        let gamma_b = NullSubstitution::single(
            chase_core::NullValue(1),
            chase_core::GroundTerm::Const(chase_core::Constant::new("a")),
        );
        obs.egd_collapsed(&gamma_a);
        obs.step_applied(
            &trigger,
            &StepEffect::Substituted {
                gamma: gamma_a.clone(),
            },
        );
        obs.egd_collapsed(&gamma_b);
        obs.step_applied(
            &trigger,
            &StepEffect::Substituted {
                gamma: gamma_b.clone(),
            },
        );
        obs.round_completed(1, 10);
        obs.round_nulls(2);
        // Round 2: no work, smaller live-null count after core folding.
        obs.round_completed(2, 10);
        obs.round_nulls(1);

        // The full recorded stream, pinned: steps in application order …
        assert_eq!(
            obs.steps,
            vec![
                (trigger.clone(), added),
                (
                    trigger.clone(),
                    StepEffect::Substituted {
                        gamma: gamma_a.clone()
                    }
                ),
                (
                    trigger.clone(),
                    StepEffect::Substituted {
                        gamma: gamma_b.clone()
                    }
                ),
            ]
        );
        // … collapses in application order (gamma_a strictly before gamma_b) …
        assert_eq!(obs.collapses, vec![gamma_a, gamma_b]);
        assert_eq!(obs.nulls, 2);
        // … and the round pairs, with round_null_counts parallel to rounds.
        assert_eq!(obs.rounds, vec![(1, 10), (2, 10)]);
        assert_eq!(obs.round_null_counts, vec![2, 1]);
    }

    #[test]
    fn event_observer_receives_the_full_stream_in_order() {
        let mut events = Vec::new();
        {
            let mut obs = EventObserver(|e: ChaseEvent| events.push(e));
            assert!(obs.observes_phases());
            let trigger = Trigger {
                dep: DepId(1),
                assignment: Assignment::new(),
            };
            let stats = chase_core::DiscoveryStats {
                shards: vec![chase_core::ShardStats {
                    worker: 0,
                    facts_scanned: 5,
                    triggers_found: 1,
                    elapsed: Duration::from_micros(7),
                }],
                elapsed: Duration::from_micros(9),
            };
            obs.discovery_completed(&stats);
            obs.merge_completed(3, 1, Duration::from_micros(2));
            obs.budget_checked(None);
            obs.nulls_created(1);
            obs.step_applied(
                &trigger,
                &StepEffect::AddedFacts {
                    facts: vec![],
                    fresh_nulls: 1,
                },
            );
            obs.round_completed(1, 6);
            obs.round_nulls(1);
            obs.budget_checked(Some(BudgetLimit::Steps));
        }
        // Every event arrives, in emission order, with its payload intact —
        // unlike FnObserver, which would only have seen the one step.
        assert_eq!(events.len(), 8);
        assert!(matches!(
            &events[0],
            ChaseEvent::DiscoveryCompleted { stats } if stats.facts_scanned() == 5
        ));
        assert!(matches!(
            events[1],
            ChaseEvent::MergeCompleted {
                candidates: 3,
                deduped: 1,
                ..
            }
        ));
        assert!(matches!(
            events[2],
            ChaseEvent::BudgetChecked { tripped: None }
        ));
        assert!(matches!(events[3], ChaseEvent::NullsCreated { count: 1 }));
        assert!(matches!(events[4], ChaseEvent::StepApplied { .. }));
        assert!(matches!(
            events[5],
            ChaseEvent::RoundCompleted { round: 1, facts: 6 }
        ));
        assert!(matches!(events[6], ChaseEvent::RoundNulls { nulls: 1 }));
        assert!(matches!(
            events[7],
            ChaseEvent::BudgetChecked {
                tripped: Some(BudgetLimit::Steps)
            }
        ));
    }

    #[test]
    fn fn_observer_forwards_steps() {
        let mut count = 0;
        {
            let mut obs = FnObserver(|_: &Trigger, _: &StepEffect| count += 1);
            let trigger = Trigger {
                dep: DepId(3),
                assignment: Assignment::new(),
            };
            obs.step_applied(&trigger, &StepEffect::Failure);
        }
        assert_eq!(count, 1);
    }
}
