//! The chase step of Definition 1 and *naive* trigger enumeration.
//!
//! This module keeps the original re-scan strategy: every call searches for
//! homomorphisms from scratch over the whole instance. It remains the reference
//! implementation (and benchmark baseline) for the delta-driven
//! [`TriggerEngine`](chase_trigger::TriggerEngine), which the chase runners drive
//! by default. Both strategies share the single join engine of
//! [`chase_core::homomorphism`] — the naive path joins through a transient
//! per-query index built per search, the engine through the incrementally
//! maintained indexes of its `FactIndex` — so "naive" here means *no delta
//! tracking and no index maintenance*, not a slower join. The [`Trigger`] and
//! [`StepEffect`] types are shared with the engine and re-exported here.

use chase_core::homomorphism::{exists_homomorphism_extending, Assignment, HomomorphismSearch};
use chase_core::substitution::NullSubstitution;
use chase_core::{DepId, Dependency, DependencySet, GroundTerm, Instance};
use std::ops::ControlFlow;

pub use chase_trigger::{StepEffect, Trigger};

/// Applies the chase step for `dep` under `h` to `instance`, returning the successor
/// instance (if any) and the effect.
///
/// For TGDs this follows Definition 1(1): the homomorphism is extended by mapping every
/// existential variable to a fresh labeled null not occurring in `instance`. For EGDs it
/// follows Definition 1(2).
pub fn apply_step(
    instance: &Instance,
    dep: &Dependency,
    h: &Assignment,
) -> (Option<Instance>, StepEffect) {
    match dep {
        Dependency::Tgd(tgd) => {
            let mut next = instance.clone();
            let mut extended = h.clone();
            let ex = tgd.existential_variables();
            let fresh_nulls = ex.len();
            for v in ex {
                let n = next.fresh_null();
                extended.bind(v, GroundTerm::Null(n));
            }
            let mut added = Vec::new();
            for atom in &tgd.head {
                let fact = extended
                    .apply_atom(atom)
                    .expect("all head variables are bound after extension");
                if next.insert(fact.clone()) {
                    added.push(fact);
                }
            }
            (
                Some(next),
                StepEffect::AddedFacts {
                    facts: added,
                    fresh_nulls,
                },
            )
        }
        Dependency::Egd(egd) => {
            let left = h.get(egd.left).expect("EGD body variables must be bound");
            let right = h.get(egd.right).expect("EGD body variables must be bound");
            if left == right {
                return (None, StepEffect::NotApplicable);
            }
            match (left, right) {
                (GroundTerm::Const(_), GroundTerm::Const(_)) => (None, StepEffect::Failure),
                (GroundTerm::Null(n), other) | (other, GroundTerm::Null(n)) => {
                    let gamma = NullSubstitution::single(n, other);
                    let next = instance.apply_substitution(&gamma);
                    (Some(next), StepEffect::Substituted { gamma })
                }
            }
        }
    }
}

/// Returns `true` iff the trigger `(dep, h)` is *active* in the sense of the standard
/// chase: for a TGD, `h` does not extend to a homomorphism of body ∪ head into the
/// instance; for an EGD, `h` maps the equated variables to distinct terms.
pub fn is_standard_active(instance: &Instance, dep: &Dependency, h: &Assignment) -> bool {
    match dep {
        Dependency::Tgd(tgd) => !exists_homomorphism_extending(&tgd.head, instance, h),
        Dependency::Egd(egd) => h.get(egd.left) != h.get(egd.right),
    }
}

/// Enumerates the active triggers of one dependency, visiting each. The TGD head
/// search is hoisted out of the per-homomorphism loop so its per-query index is
/// built once per enumeration, not once per body match.
fn for_each_active_trigger<B>(
    instance: &Instance,
    dep: &Dependency,
    visit: &mut impl FnMut(&Assignment) -> ControlFlow<B>,
) -> Option<B> {
    let body_search = HomomorphismSearch::new(dep.body(), instance);
    match dep {
        Dependency::Tgd(tgd) => {
            let head_search = HomomorphismSearch::new(&tgd.head, instance);
            body_search.for_each_extending(&Assignment::new(), &mut |h| {
                let satisfied = head_search
                    .for_each_extending::<()>(h, &mut |_| ControlFlow::Break(()))
                    .is_some();
                if satisfied {
                    ControlFlow::Continue(())
                } else {
                    visit(h)
                }
            })
        }
        Dependency::Egd(egd) => body_search.for_each_extending(&Assignment::new(), &mut |h| {
            if h.get(egd.left) != h.get(egd.right) {
                visit(h)
            } else {
                ControlFlow::Continue(())
            }
        }),
    }
}

/// Enumerates all standard-chase-applicable triggers of `sigma` on `instance`, i.e.
/// pairs `(r, h)` such that `h` maps `Body(r)` into the instance and the trigger is
/// active (see [`is_standard_active`]).
pub fn applicable_standard_triggers(instance: &Instance, sigma: &DependencySet) -> Vec<Trigger> {
    let mut out = Vec::new();
    for (id, dep) in sigma.iter() {
        for_each_active_trigger::<()>(instance, dep, &mut |h| {
            out.push(Trigger {
                dep: id,
                assignment: h.clone(),
            });
            ControlFlow::Continue(())
        });
    }
    out
}

/// Finds the first standard-chase-applicable trigger among the dependencies listed in
/// `order` (a sequence of dependency ids), if any.
pub fn first_applicable_trigger(
    instance: &Instance,
    sigma: &DependencySet,
    order: &[DepId],
) -> Option<Trigger> {
    for &id in order {
        let dep = sigma.get(id);
        let found = for_each_active_trigger(instance, dep, &mut |h| {
            ControlFlow::Break(Trigger {
                dep: id,
                assignment: h.clone(),
            })
        });
        if found.is_some() {
            return found;
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::parser::parse_program;
    use chase_core::term::{Constant, NullValue};
    use chase_core::{Fact, Variable};

    fn gc(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }
    fn gn(i: u64) -> GroundTerm {
        GroundTerm::Null(NullValue(i))
    }

    fn sigma1() -> (DependencySet, Instance) {
        let p = parse_program(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> ?x = ?y.
            N(a).
            "#,
        )
        .unwrap();
        (p.dependencies, p.database)
    }

    #[test]
    fn example4_tgd_step() {
        let (sigma, d) = sigma1();
        let h1 = Assignment::from_pairs([(Variable::new("x"), gc("a"))]);
        let (next, effect) = apply_step(&d, sigma.get(DepId(0)), &h1);
        let k2 = next.unwrap();
        assert_eq!(k2.len(), 2);
        match effect {
            StepEffect::AddedFacts { facts, fresh_nulls } => {
                assert_eq!(facts.len(), 1);
                assert_eq!(fresh_nulls, 1);
                assert_eq!(facts[0].predicate.name.as_str(), "E");
                assert!(facts[0].terms[1].is_null());
            }
            other => panic!("expected AddedFacts, got {other:?}"),
        }
    }

    #[test]
    fn example4_egd_step_substitutes_null() {
        let (sigma, _) = sigma1();
        let k2 = Instance::from_facts(vec![
            Fact::from_parts("N", vec![gc("a")]),
            Fact::from_parts("E", vec![gc("a"), gn(1)]),
        ]);
        let h2 =
            Assignment::from_pairs([(Variable::new("x"), gc("a")), (Variable::new("y"), gn(1))]);
        let (next, effect) = apply_step(&k2, sigma.get(DepId(2)), &h2);
        let k3 = next.unwrap();
        assert_eq!(k3.len(), 2);
        assert!(k3.contains(&Fact::from_parts("E", vec![gc("a"), gc("a")])));
        match effect {
            StepEffect::Substituted { gamma } => {
                assert_eq!(gamma.mapping().unwrap().0, NullValue(1));
                assert_eq!(gamma.mapping().unwrap().1, gc("a"));
            }
            other => panic!("expected Substituted, got {other:?}"),
        }
    }

    #[test]
    fn egd_on_two_constants_fails() {
        let sigma = parse_program("e: E(?x, ?y) -> ?x = ?y.")
            .unwrap()
            .dependencies;
        let k = Instance::from_facts(vec![Fact::from_parts("E", vec![gc("a"), gc("b")])]);
        let h =
            Assignment::from_pairs([(Variable::new("x"), gc("a")), (Variable::new("y"), gc("b"))]);
        let (next, effect) = apply_step(&k, sigma.get(DepId(0)), &h);
        assert!(next.is_none());
        assert_eq!(effect, StepEffect::Failure);
    }

    #[test]
    fn egd_already_satisfied_is_not_applicable() {
        let sigma = parse_program("e: E(?x, ?y) -> ?x = ?y.")
            .unwrap()
            .dependencies;
        let k = Instance::from_facts(vec![Fact::from_parts("E", vec![gc("a"), gc("a")])]);
        let h =
            Assignment::from_pairs([(Variable::new("x"), gc("a")), (Variable::new("y"), gc("a"))]);
        let (next, effect) = apply_step(&k, sigma.get(DepId(0)), &h);
        assert!(next.is_none());
        assert_eq!(effect, StepEffect::NotApplicable);
    }

    #[test]
    fn standard_applicability_example1() {
        let (sigma, d) = sigma1();
        let triggers = applicable_standard_triggers(&d, &sigma);
        // Only r1 is applicable on D = {N(a)}.
        assert_eq!(triggers.len(), 1);
        assert_eq!(triggers[0].dep, DepId(0));
    }

    #[test]
    fn standard_applicability_after_first_step() {
        let (sigma, _) = sigma1();
        let k2 = Instance::from_facts(vec![
            Fact::from_parts("N", vec![gc("a")]),
            Fact::from_parts("E", vec![gc("a"), gn(1)]),
        ]);
        let triggers = applicable_standard_triggers(&k2, &sigma);
        // r2 and r3 are both violated; r1 is satisfied (E(a, η1) provides the witness).
        let deps: Vec<DepId> = triggers.iter().map(|t| t.dep).collect();
        assert!(deps.contains(&DepId(1)));
        assert!(deps.contains(&DepId(2)));
        assert!(!deps.contains(&DepId(0)));
    }

    #[test]
    fn example6_standard_not_applicable_on_satisfied_tgd() {
        let p = parse_program("r: E(?x, ?y) -> exists ?z: E(?x, ?z). E(a, b).").unwrap();
        let triggers = applicable_standard_triggers(&p.database, &p.dependencies);
        assert!(triggers.is_empty());
    }

    #[test]
    fn first_applicable_respects_order() {
        let (sigma, _) = sigma1();
        let k2 = Instance::from_facts(vec![
            Fact::from_parts("N", vec![gc("a")]),
            Fact::from_parts("E", vec![gc("a"), gn(1)]),
        ]);
        let t = first_applicable_trigger(&k2, &sigma, &[DepId(2), DepId(1), DepId(0)]).unwrap();
        assert_eq!(t.dep, DepId(2));
        let t = first_applicable_trigger(&k2, &sigma, &[DepId(1), DepId(2), DepId(0)]).unwrap();
        assert_eq!(t.dep, DepId(1));
    }
}
