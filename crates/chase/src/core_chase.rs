//! The core chase: parallel application of all standard chase steps followed by core
//! computation (Deutsch–Nash–Remmel).
//!
//! A core chase step (i) applies *all* applicable standard chase steps in parallel and
//! (ii) replaces the result by its core. This removes the nondeterminism of the
//! standard chase, and the core chase is complete for finding universal models:
//! whenever a universal model of `(D, Σ)` exists, the core chase terminates and
//! produces one.
//!
//! "In parallel" here is the paper's logical notion (all triggers of a round fire
//! against the same instance). Execution-wise, `workers > 1` parallelises the
//! dominant cost — the per-null endomorphism searches of the round's core
//! computation — on the persistent pool ([`chase_core::pool`]), deterministically;
//! the trigger scan and the round's applications stay single-threaded. See
//! [`Chase::workers`](crate::Chase::workers) for the full coverage matrix.

use crate::budget::{BudgetClock, BudgetLimit, ChaseBudget};
use crate::core_of::core_of_with_workers;
use crate::observer::{ChaseObserver, NoopObserver};
use crate::result::{ChaseOutcome, ChaseStats, EgdViolation};
use crate::step::applicable_standard_triggers;
use chase_core::satisfaction::satisfies_all;
use chase_core::substitution::NullSubstitution;
use chase_core::{Dependency, DependencySet, DiscoveryStats, GroundTerm, Instance, ShardStats};
use std::collections::HashMap;
use std::time::Instant;

/// Runs the core chase under `budget`, reporting round-level events to `observer`.
///
/// The budget's `max_rounds` and `max_steps` both bound the rounds (conjunctively —
/// the core chase has no finer step granularity); `max_fresh_nulls`, `max_facts` and
/// `wall_clock` apply as usual.
///
/// `workers > 1` parallelises the round's **core computation** — the per-null
/// endomorphism searches of [`core_of_with_workers`] run on the persistent
/// pool, with the first-shrinking-fold selection kept in ascending null order
/// so the result is bitwise identical at any worker count. The round's trigger
/// scan and applications stay sequential (they are cheap next to the fold
/// search).
pub(crate) fn run_core(
    sigma: &DependencySet,
    budget: &ChaseBudget,
    database: &Instance,
    observer: &mut dyn ChaseObserver,
    workers: usize,
) -> ChaseOutcome {
    let clock = BudgetClock::start(budget);
    let mut current = database.clone();
    let mut stats = ChaseStats::default();
    let phases = observer.observes_phases();
    loop {
        if satisfies_all(&current, sigma) {
            return ChaseOutcome::Terminated {
                instance: current,
                stats,
            };
        }
        let tripped = clock.check_round(&stats, current.len());
        if phases {
            observer.budget_checked(tripped);
        }
        if let Some(limit) = tripped {
            return ChaseOutcome::BudgetExhausted {
                limit,
                instance: current,
                stats,
            };
        }
        stats.steps += 1;
        // (i) apply all standard chase steps in parallel. With phases on, the
        // full trigger scan of the round is one worker-0 discovery shard.
        let search_start = phases.then(Instant::now);
        let triggers = applicable_standard_triggers(&current, sigma);
        if let Some(start) = search_start {
            let elapsed = start.elapsed();
            observer.discovery_completed(&DiscoveryStats {
                shards: vec![ShardStats {
                    worker: 0,
                    facts_scanned: current.len(),
                    triggers_found: triggers.len(),
                    elapsed,
                }],
                elapsed,
            });
        }
        let mut next = current.clone();
        // Union–find over ground terms for the EGD merges of this round.
        let mut merges = UnionFind::new();
        let mut round_nulls = 0usize;
        let mut failure: Option<EgdViolation> = None;
        for trigger in &triggers {
            match sigma.get(trigger.dep) {
                Dependency::Tgd(tgd) => {
                    let mut extended = trigger.assignment.clone();
                    let fresh = tgd.existential_variables();
                    stats.nulls_created += fresh.len();
                    round_nulls += fresh.len();
                    for v in fresh {
                        let n = next.fresh_null();
                        extended.bind(v, GroundTerm::Null(n));
                    }
                    for atom in &tgd.head {
                        let fact = extended
                            .apply_atom(atom)
                            .expect("head variables are bound after extension");
                        if next.insert(fact) {
                            stats.facts_added += 1;
                        }
                    }
                }
                Dependency::Egd(egd) => {
                    let a = trigger.assignment.get(egd.left).expect("bound");
                    let b = trigger.assignment.get(egd.right).expect("bound");
                    if let Err((ra, rb)) = merges.merge(a, b) {
                        // The merge failure is on the class representatives: the
                        // trigger's own images may be nulls already merged into two
                        // distinct constants earlier in the round.
                        let mut violation = EgdViolation::from_trigger(sigma, trigger);
                        violation.left = ra;
                        violation.right = rb;
                        failure = Some(violation);
                        break;
                    }
                }
            }
        }
        // Report the round's nulls even when the round fails, so observer streams
        // stay consistent with `stats` (which already counted them).
        if round_nulls > 0 {
            observer.nulls_created(round_nulls);
        }
        if let Some(violation) = failure {
            return ChaseOutcome::Failed { violation, stats };
        }
        // Apply the merges accumulated this round, rewriting ids in place (no
        // instance rebuild per substitution).
        for (null, target) in merges.substitutions() {
            stats.null_replacements += 1;
            let gamma = NullSubstitution::single(null, target);
            observer.egd_collapsed(&gamma);
            next.substitute_in_place_ids(&gamma);
        }
        // (ii) take the core (fold search parallelised across `workers`).
        let mut cored = core_of_with_workers(&next, workers);
        // Drop the dead arena history this round accumulated (rewritten and
        // folded-away facts), so the next round's clones copy only live facts.
        cored.compact();
        observer.round_completed(stats.steps, cored.len());
        observer.round_nulls(cored.nulls().len());
        if cored == current {
            // No progress is possible: the remaining violations cannot be repaired
            // (this can only happen when the budget semantics interact with core
            // computation). Report the dedicated no-progress marker — raising
            // `max_rounds` would not help, so claiming `Rounds` would mislead.
            return ChaseOutcome::BudgetExhausted {
                limit: BudgetLimit::NoProgress,
                instance: cored,
                stats,
            };
        }
        current = cored;
    }
}

/// Legacy runner for the core chase.
///
/// Superseded by [`Chase::core`](crate::Chase::core); this shim delegates to the same
/// implementation.
#[derive(Clone)]
pub struct CoreChase<'a> {
    sigma: &'a DependencySet,
    max_rounds: usize,
}

impl<'a> CoreChase<'a> {
    /// Creates a core chase runner with a budget of 1 000 rounds.
    #[deprecated(note = "use Chase::core(sigma) with a ChaseBudget instead")]
    pub fn new(sigma: &'a DependencySet) -> Self {
        CoreChase {
            sigma,
            max_rounds: 1_000,
        }
    }

    /// Sets the round budget.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Runs the core chase on `database`.
    pub fn run(&self, database: &Instance) -> ChaseOutcome {
        run_core(
            self.sigma,
            &ChaseBudget::unlimited().with_max_rounds(self.max_rounds),
            database,
            &mut NoopObserver,
            1,
        )
    }
}

/// A small union–find over ground terms in which constants may never be merged with
/// distinct constants, and class representatives prefer constants over nulls.
struct UnionFind {
    parent: HashMap<GroundTerm, GroundTerm>,
}

impl UnionFind {
    fn new() -> Self {
        UnionFind {
            parent: HashMap::new(),
        }
    }

    fn find(&mut self, t: GroundTerm) -> GroundTerm {
        let p = *self.parent.get(&t).unwrap_or(&t);
        if p == t {
            return t;
        }
        let root = self.find(p);
        self.parent.insert(t, root);
        root
    }

    /// Merges the classes of `a` and `b`; fails iff this would equate two distinct
    /// constants (the failure case of the chase), returning the two representatives.
    fn merge(&mut self, a: GroundTerm, b: GroundTerm) -> Result<(), (GroundTerm, GroundTerm)> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return Ok(());
        }
        match (ra, rb) {
            (GroundTerm::Const(_), GroundTerm::Const(_)) => Err((ra, rb)),
            (GroundTerm::Const(_), GroundTerm::Null(_)) => {
                self.parent.insert(rb, ra);
                Ok(())
            }
            (GroundTerm::Null(_), _) => {
                self.parent.insert(ra, rb);
                Ok(())
            }
        }
    }

    /// The substitutions implied by the merges: every null that is not its own
    /// representative maps to its representative.
    fn substitutions(&mut self) -> Vec<(chase_core::NullValue, GroundTerm)> {
        let keys: Vec<GroundTerm> = self.parent.keys().copied().collect();
        let mut out = Vec::new();
        for k in keys {
            let root = self.find(k);
            if let GroundTerm::Null(n) = k {
                if root != k {
                    out.push((n, root));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Chase;
    use chase_core::parser::parse_program;
    use chase_core::{Constant, Fact};

    fn gc(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }

    #[test]
    fn example7_core_chase_is_empty_on_satisfied_set() {
        let p = parse_program("r: E(?x, ?y) -> exists ?z: E(?x, ?z). E(a, b).").unwrap();
        let out = Chase::core(&p.dependencies).run(&p.database);
        assert!(out.is_terminating());
        assert_eq!(out.stats().steps, 0);
        assert_eq!(out.instance().unwrap(), &p.database);
    }

    #[test]
    fn example1_core_chase_terminates_and_finds_the_small_model() {
        // Σ1 has a universal model {N(a), E(a, a)}; the core chase must find it even
        // though some standard sequences diverge.
        let p = parse_program(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> ?x = ?y.
            N(a).
            "#,
        )
        .unwrap();
        let out = Chase::core(&p.dependencies).run(&p.database);
        assert!(out.is_terminating());
        let j = out.instance().unwrap();
        assert!(satisfies_all(j, &p.dependencies));
        assert_eq!(j.len(), 2);
        assert!(j.contains(&Fact::from_parts("E", vec![gc("a"), gc("a")])));
    }

    #[test]
    fn example3_core_chase_builds_the_two_null_model() {
        let p = parse_program(
            r#"
            r1: P(?x, ?y) -> exists ?z: E(?x, ?z).
            r2: Q(?x, ?y) -> exists ?z: E(?z, ?y).
            P(a, b). Q(c, d).
            "#,
        )
        .unwrap();
        let out = Chase::core(&p.dependencies).run(&p.database);
        assert!(out.is_terminating());
        let j = out.instance().unwrap();
        assert_eq!(j.len(), 4);
        assert_eq!(j.nulls().len(), 2);
    }

    #[test]
    fn failing_set_is_detected() {
        let p = parse_program(
            r#"
            k: P(?x, ?y), P(?x, ?z) -> ?y = ?z.
            P(a, b). P(a, c).
            "#,
        )
        .unwrap();
        let out = Chase::core(&p.dependencies).run(&p.database);
        assert!(out.is_failing());
    }

    #[test]
    fn diverging_set_exhausts_budget() {
        // Σ10 has no universal model for D = {N(a)}; the core chase cannot terminate.
        let p = parse_program(
            r#"
            r1: N(?x) -> exists ?y, ?z: E(?x, ?y, ?z).
            r2: E(?x, ?y, ?y) -> N(?y).
            r3: E(?x, ?y, ?z) -> ?y = ?z.
            N(a).
            "#,
        )
        .unwrap();
        let out = Chase::core(&p.dependencies)
            .with_budget(ChaseBudget::unlimited().with_max_rounds(10))
            .run(&p.database);
        assert!(out.is_budget_exhausted());
        assert_eq!(out.exhausted_limit(), Some(BudgetLimit::Rounds));
    }

    #[test]
    fn core_chase_result_is_a_core() {
        use crate::core_of::is_core;
        let p = parse_program(
            r#"
            r1: A(?x) -> exists ?y: R(?x, ?y).
            r2: A(?x) -> R(?x, ?x).
            A(a).
            "#,
        )
        .unwrap();
        let out = Chase::core(&p.dependencies).run(&p.database);
        assert!(out.is_terminating());
        let j = out.instance().unwrap();
        // R(a, η) folds onto R(a, a); the core has no nulls.
        assert!(is_core(j));
        assert!(j.nulls().is_empty());
        assert_eq!(j.len(), 2);
    }

    #[test]
    fn transitive_closure_with_keys() {
        let p = parse_program(
            r#"
            t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z).
            E(a, b). E(b, c).
            "#,
        )
        .unwrap();
        let out = Chase::core(&p.dependencies).run(&p.database);
        assert!(out.is_terminating());
        assert_eq!(out.instance().unwrap().len(), 3);
    }
}
