//! Certain answers to (unions of) conjunctive queries via universal models.
//!
//! The certain answers to a union of conjunctive queries `Q` over `(D, Σ)` can be
//! computed by evaluating `Q` over an arbitrary universal model and keeping only the
//! answer tuples free of labeled nulls (`Q(I)↓`, Section 2 of the paper).

use chase_core::homomorphism::homomorphisms;
use chase_core::{Atom, GroundTerm, Instance, Variable};
use std::collections::BTreeSet;

/// A conjunctive query: a conjunction of atoms plus a tuple of answer variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// The query body.
    pub body: Vec<Atom>,
    /// The answer (head) variables, in output order.
    pub answer_vars: Vec<Variable>,
}

impl ConjunctiveQuery {
    /// Creates a conjunctive query; answer variables must occur in the body.
    pub fn new(body: Vec<Atom>, answer_vars: Vec<Variable>) -> Self {
        ConjunctiveQuery { body, answer_vars }
    }

    /// Evaluates the query over an instance, returning all answer tuples (which may
    /// contain labeled nulls).
    pub fn evaluate(&self, instance: &Instance) -> BTreeSet<Vec<GroundTerm>> {
        homomorphisms(&self.body, instance)
            .into_iter()
            .map(|h| {
                self.answer_vars
                    .iter()
                    .map(|v| h.get(*v).expect("answer variables must occur in the body"))
                    .collect()
            })
            .collect()
    }
}

/// Evaluates a union of conjunctive queries over a universal model and keeps only the
/// null-free answers: `certain(Q, D, Σ) = Q(I)↓`.
pub fn certain_answers(
    queries: &[ConjunctiveQuery],
    universal_model: &Instance,
) -> BTreeSet<Vec<GroundTerm>> {
    queries
        .iter()
        .flat_map(|q| q.evaluate(universal_model))
        .filter(|tuple| tuple.iter().all(GroundTerm::is_const))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Chase;
    use chase_core::builder::{atom, var};
    use chase_core::parser::parse_program;
    use chase_core::Constant;

    fn gc(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }

    #[test]
    fn certain_answers_drop_null_tuples() {
        // Data exchange style: copy employees, invent a department.
        let p = parse_program(
            r#"
            r1: Emp(?e) -> exists ?d: Works(?e, ?d).
            r2: Emp(?e) -> Person(?e).
            Emp(alice). Emp(bob).
            "#,
        )
        .unwrap();
        let out = Chase::standard(&p.dependencies).run(&p.database);
        let model = out.instance().unwrap();

        // Q1(x) :- Person(x): both constants are certain.
        let q1 = ConjunctiveQuery::new(
            vec![atom("Person", vec![var("x")])],
            vec![Variable::new("x")],
        );
        let ans = certain_answers(&[q1], model);
        assert_eq!(ans.len(), 2);
        assert!(ans.contains(&vec![gc("alice")]));

        // Q2(d) :- Works(alice, d): the department is a null, so there is no certain answer.
        let q2 = ConjunctiveQuery::new(
            vec![atom(
                "Works",
                vec![chase_core::builder::cst("alice"), var("d")],
            )],
            vec![Variable::new("d")],
        );
        let ans2 = certain_answers(&[q2], model);
        assert!(ans2.is_empty());

        // Boolean query Q3() :- Works(alice, d): certain (the empty tuple is null-free).
        let q3 = ConjunctiveQuery::new(
            vec![atom(
                "Works",
                vec![chase_core::builder::cst("alice"), var("d")],
            )],
            vec![],
        );
        let ans3 = certain_answers(&[q3], model);
        assert_eq!(ans3.len(), 1);
        assert!(ans3.contains(&vec![]));
    }

    #[test]
    fn union_of_queries() {
        let p = parse_program("A(a). B(b).").unwrap();
        let qa = ConjunctiveQuery::new(vec![atom("A", vec![var("x")])], vec![Variable::new("x")]);
        let qb = ConjunctiveQuery::new(vec![atom("B", vec![var("x")])], vec![Variable::new("x")]);
        let ans = certain_answers(&[qa, qb], &p.database);
        assert_eq!(ans.len(), 2);
    }

    #[test]
    fn evaluation_includes_null_tuples_before_filtering() {
        let p = parse_program(
            r#"
            r1: Emp(?e) -> exists ?d: Works(?e, ?d).
            Emp(alice).
            "#,
        )
        .unwrap();
        let out = Chase::standard(&p.dependencies).run(&p.database);
        let model = out.instance().unwrap();
        let q = ConjunctiveQuery::new(
            vec![atom("Works", vec![var("e"), var("d")])],
            vec![Variable::new("e"), Variable::new("d")],
        );
        let raw = q.evaluate(model);
        assert_eq!(raw.len(), 1);
        let certain = certain_answers(&[q], model);
        assert!(certain.is_empty());
    }
}
