//! The oblivious and semi-oblivious chase.
//!
//! Both variants apply a chase step for a trigger `(r, h)` unless an "equivalent"
//! trigger was already applied earlier in the sequence, where equivalence is judged
//! modulo the EGD substitutions applied in between (`h_i(x) = h_j(x) γ_j · · · γ_{i-1}`
//! in the paper):
//!
//! * the **oblivious** chase compares the images of *all* body variables;
//! * the **semi-oblivious** chase compares only the variables occurring in both the
//!   body and the head (for an EGD: the two equated variables).
//!
//! In particular, a TGD step is applied even when its head is already satisfied
//! (contrast with the standard chase, cf. Example 6 of the paper).
//!
//! The front door is [`Chase::oblivious`](crate::Chase::oblivious) /
//! [`Chase::semi_oblivious`](crate::Chase::semi_oblivious); the [`ObliviousChase`]
//! runner remains as a deprecated shim.

use crate::budget::{BudgetClock, ChaseBudget};
use crate::observer::{record_step_effect, ChaseObserver, FnObserver, NoopObserver};
use crate::result::{ChaseOutcome, ChaseStats};
use crate::step::{StepEffect, Trigger};
use chase_core::substitution::NullSubstitution;
use chase_core::{
    DepId, Dependency, DependencySet, DiscoveryStats, GroundTerm, Instance, ShardStats, Variable,
};
use chase_trigger::TriggerEngine;
use std::collections::HashSet;
use std::time::Instant;

/// Which oblivious variant to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ObliviousVariant {
    /// The oblivious chase (Skolemisation over all body variables).
    Oblivious,
    /// The semi-oblivious chase (Skolemisation over the frontier only).
    SemiOblivious,
}

/// The variables of `dep` that participate in the trigger key for `variant`, in a
/// fixed (sorted) order: all body variables for the oblivious chase; the frontier
/// (TGD) or the two equated variables (EGD) for the semi-oblivious chase.
///
/// Public because incremental maintenance (`chase_ivm`) must compute exactly the
/// keys this module's runner fires, for its own delta repair loop.
pub fn key_variables(variant: ObliviousVariant, dep: &Dependency) -> Vec<Variable> {
    let body_vars = dep.body_variables();
    match variant {
        ObliviousVariant::Oblivious => body_vars.into_iter().collect(),
        ObliviousVariant::SemiOblivious => match dep {
            Dependency::Tgd(t) => {
                let frontier = t.frontier_variables();
                body_vars
                    .into_iter()
                    .filter(|v| frontier.contains(v))
                    .collect()
            }
            Dependency::Egd(e) => body_vars
                .into_iter()
                .filter(|v| *v == e.left || *v == e.right)
                .collect(),
        },
    }
}

/// Runs the (semi-)oblivious chase under `budget`, reporting events to `observer`.
///
/// Trigger discovery is delta-driven: homomorphisms are found once, when the facts
/// completing them appear, and wait in the engine's queues; the fired-key comparison
/// ("`h_i(x) = h_j(x) γ_j · · · γ_{i-1}`") filters them at pop time.
///
/// With `workers > 1` and an EGD-free `sigma`, the run goes through the
/// round-parallel runner ([`crate::parallel`]): snapshot discovery on worker
/// threads, canonical `(DepId, body FactIds)` merge, sequential application.
/// EGD-bearing sets stay on the sequential path below regardless of `workers`,
/// because the fired-key sets are rewritten by every substitution
/// (`h ↦ γ∘h γ_j···γ_{i-1}`): which triggers fire — and how many — then depends
/// on the interleaving of substitutions with TGD steps, so no worker-count-
/// independent merge order can reproduce the sequential semantics.
pub(crate) fn run_oblivious(
    sigma: &DependencySet,
    variant: ObliviousVariant,
    budget: &ChaseBudget,
    database: &Instance,
    observer: &mut dyn ChaseObserver,
    workers: usize,
) -> ChaseOutcome {
    let key_vars: Vec<Vec<Variable>> = sigma
        .iter()
        .map(|(_, dep)| key_variables(variant, dep))
        .collect();
    // Derivation-observed runs stay sequential even when EGD-free: the log is
    // per applied step, and the parallel runner's outcome is sequential-
    // equivalent anyway (only wall-clock would change).
    let derivations = observer.observes_derivations();
    if workers > 1 && sigma.egd_ids().is_empty() && !derivations {
        return crate::parallel::run_oblivious_parallel(
            sigma, &key_vars, budget, database, observer, workers,
        );
    }
    // Fired trigger keys per dependency, kept up to date under EGD substitutions.
    let mut fired: Vec<Vec<Vec<GroundTerm>>> = vec![Vec::new(); sigma.len()];
    let mut fired_lookup: Vec<HashSet<Vec<GroundTerm>>> = vec![HashSet::new(); sigma.len()];
    // Dependencies are tried in the textual order of the set, as before.
    let order: Vec<DepId> = sigma.ids().collect();

    let clock = BudgetClock::start(budget);
    let mut engine = TriggerEngine::with_database(sigma, database);
    let mut stats = ChaseStats::default();
    let phases = observer.observes_phases();
    loop {
        let tripped = clock.check_step(&stats, engine.instance().len());
        if phases {
            observer.budget_checked(tripped);
        }
        if let Some(limit) = tripped {
            return ChaseOutcome::BudgetExhausted {
                limit,
                instance: engine.into_instance(),
                stats,
            };
        }
        // The accept closure computes each candidate's fired key; the key of
        // the accepted trigger is carried out through `accepted_key` so it is
        // not rebuilt after the pop.
        let mut accepted_key: Option<Vec<GroundTerm>> = None;
        let search_start = phases.then(Instant::now);
        let scanned_before = phases.then(|| engine.stats().deltas_processed);
        let found_before = phases.then(|| engine.stats().triggers_discovered);
        let trigger = engine.next_trigger_where(&order, |id, h| {
            let key: Vec<GroundTerm> = key_vars[id.0]
                .iter()
                .map(|v| h.get(*v).expect("body variables are bound"))
                .collect();
            if fired_lookup[id.0].contains(&key) {
                false
            } else {
                accepted_key = Some(key);
                true
            }
        });
        if let Some(start) = search_start {
            // One-shard discovery accounting from the engine-stat deltas of
            // exactly this search (zero when served from the pending queue).
            let elapsed = start.elapsed();
            observer.discovery_completed(&DiscoveryStats {
                shards: vec![ShardStats {
                    worker: 0,
                    facts_scanned: engine.stats().deltas_processed - scanned_before.unwrap(),
                    triggers_found: engine.stats().triggers_discovered - found_before.unwrap(),
                    elapsed,
                }],
                elapsed,
            });
        }
        let trigger = match trigger {
            Some(t) => t,
            None => {
                return ChaseOutcome::Terminated {
                    instance: engine.into_instance(),
                    stats,
                }
            }
        };
        let key = accepted_key.expect("an accepted trigger always sets its key");
        let (effect, log) = if derivations {
            let (effect, log) = engine.apply_trigger_logged(trigger.dep, &trigger.assignment);
            (effect, Some(log))
        } else {
            (engine.apply_trigger(trigger.dep, &trigger.assignment), None)
        };
        // Derivation events precede the step's standard events (pinned order);
        // `fact_derived` fires for NotApplicable EGD triggers too, because
        // their key is recorded below and a support ledger must know which
        // body facts that record leans on.
        if let Some(log) = &log {
            observer.fact_derived(trigger.dep, &key, &log.body, &log.heads);
            if let StepEffect::Substituted { gamma } = &effect {
                observer.facts_rewritten(gamma, &log.rewrites);
            }
        }
        if effect == StepEffect::NotApplicable {
            // An EGD trigger with equal images: Definition 1 yields no chase
            // step. Record the key so we do not reconsider it forever.
            fired[trigger.dep.0].push(key.clone());
            fired_lookup[trigger.dep.0].insert(key);
            continue;
        }
        if let Some(violation) = record_step_effect(sigma, &trigger, &effect, &mut stats, observer)
        {
            return ChaseOutcome::Failed { violation, stats };
        }
        // Record the trigger key, then propagate the substitution (if any) to all
        // recorded keys so that future comparisons are "modulo γ_j · · · γ_{i-1}".
        fired[trigger.dep.0].push(key.clone());
        fired_lookup[trigger.dep.0].insert(key);
        if let StepEffect::Substituted { gamma } = &effect {
            apply_gamma_to_keys(&mut fired, &mut fired_lookup, gamma);
        }
    }
}

/// Legacy runner for the oblivious / semi-oblivious chase.
///
/// Superseded by [`Chase::oblivious`](crate::Chase::oblivious); this shim delegates
/// to the same implementation.
#[derive(Clone)]
pub struct ObliviousChase<'a> {
    sigma: &'a DependencySet,
    variant: ObliviousVariant,
    max_steps: usize,
}

impl<'a> ObliviousChase<'a> {
    /// Creates a runner for the given variant with a budget of 100 000 steps.
    #[deprecated(note = "use Chase::oblivious(sigma, variant) with a ChaseBudget instead")]
    pub fn new(sigma: &'a DependencySet, variant: ObliviousVariant) -> Self {
        ObliviousChase {
            sigma,
            variant,
            max_steps: 100_000,
        }
    }

    /// Sets the step budget.
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Runs the chase on `database`.
    pub fn run(&self, database: &Instance) -> ChaseOutcome {
        run_oblivious(
            self.sigma,
            self.variant,
            &ChaseBudget::unlimited().with_max_steps(self.max_steps),
            database,
            &mut NoopObserver,
            1,
        )
    }

    /// Runs the chase, invoking `observer` after every applied step.
    #[deprecated(
        note = "use Chase::oblivious(sigma, variant).run_observed(db, &mut observer) with a ChaseObserver"
    )]
    pub fn run_with_trace(
        &self,
        database: &Instance,
        observer: impl FnMut(&Trigger, &StepEffect),
    ) -> ChaseOutcome {
        run_oblivious(
            self.sigma,
            self.variant,
            &ChaseBudget::unlimited().with_max_steps(self.max_steps),
            database,
            &mut FnObserver(observer),
            1,
        )
    }
}

/// Rewrites every recorded fired key under an EGD substitution `γ` — the
/// "modulo `γ_j · · · γ_{i-1}`" of the paper's trigger-equivalence — keeping the
/// per-dependency key list and its dedup lookup in lockstep.
///
/// Public for the same reason as [`key_variables`]: the incremental-maintenance
/// repair loop carries the fired-key state across update batches and must
/// rewrite it exactly as the runner would have.
pub fn apply_gamma_to_keys(
    fired: &mut [Vec<Vec<GroundTerm>>],
    fired_lookup: &mut [HashSet<Vec<GroundTerm>>],
    gamma: &NullSubstitution,
) {
    for (keys, lookup) in fired.iter_mut().zip(fired_lookup.iter_mut()) {
        let mut changed = false;
        for key in keys.iter_mut() {
            for t in key.iter_mut() {
                let new = gamma.apply_ground(*t);
                if new != *t {
                    *t = new;
                    changed = true;
                }
            }
        }
        if changed {
            lookup.clear();
            for key in keys.iter() {
                lookup.insert(key.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Chase;
    use chase_core::parser::parse_program;
    use chase_core::satisfaction::satisfies_all;

    #[test]
    fn example6_semi_oblivious_terminates_oblivious_does_not() {
        let p = parse_program("r: E(?x, ?y) -> exists ?z: E(?x, ?z). E(a, b).").unwrap();
        let sobl = Chase::semi_oblivious(&p.dependencies).run(&p.database);
        assert!(sobl.is_terminating());
        // One step: E(a, η1) is added; the trigger with y = η1 has the same frontier
        // image (x = a) and is therefore skipped.
        assert_eq!(sobl.stats().steps, 1);
        assert_eq!(sobl.instance().unwrap().len(), 2);

        let obl = Chase::oblivious(&p.dependencies, ObliviousVariant::Oblivious)
            .with_budget(ChaseBudget::unlimited().with_max_steps(100))
            .run(&p.database);
        assert!(obl.is_budget_exhausted());
    }

    #[test]
    fn example1_oblivious_diverges_even_with_egds() {
        // For Σ1, the oblivious chase keeps re-firing r1 on new nulls regardless of the
        // EGD, so it diverges.
        let p = parse_program(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> ?x = ?y.
            N(a).
            "#,
        )
        .unwrap();
        let obl = Chase::oblivious(&p.dependencies, ObliviousVariant::Oblivious)
            .with_budget(ChaseBudget::unlimited().with_max_steps(300))
            .run(&p.database);
        assert!(!obl.is_terminating());
    }

    #[test]
    fn weakly_acyclic_tgds_terminate_in_all_variants() {
        let p = parse_program(
            r#"
            r1: P(?x, ?y) -> exists ?z: E(?x, ?z).
            r2: E(?x, ?y) -> M(?y).
            P(a, b). P(c, d).
            "#,
        )
        .unwrap();
        for variant in [ObliviousVariant::Oblivious, ObliviousVariant::SemiOblivious] {
            let out = Chase::oblivious(&p.dependencies, variant).run(&p.database);
            assert!(out.is_terminating());
            assert!(satisfies_all(out.instance().unwrap(), &p.dependencies));
        }
    }

    #[test]
    fn egd_failure_is_detected_with_diagnostics() {
        let p = parse_program(
            r#"
            k: P(?x, ?y), P(?x, ?z) -> ?y = ?z.
            P(a, b). P(a, c).
            "#,
        )
        .unwrap();
        let out = Chase::oblivious(&p.dependencies, ObliviousVariant::Oblivious).run(&p.database);
        assert!(out.is_failing());
        let violation = out.violation().unwrap();
        assert_eq!(violation.dep, chase_core::DepId(0));
        assert!(violation.left != violation.right);
    }

    #[test]
    fn egd_triggers_are_not_reapplied_after_substitution() {
        // Functional dependency resolving a null: terminates and satisfies Σ.
        let p = parse_program(
            r#"
            r1: Emp(?x) -> exists ?d: Works(?x, ?d).
            r2: Works(?x, ?d), Dept(?d) -> Ok(?x).
            k: Works(?x, ?d1), Works(?x, ?d2) -> ?d1 = ?d2.
            Emp(e1). Works(e1, d0). Dept(d0).
            "#,
        )
        .unwrap();
        for variant in [ObliviousVariant::Oblivious, ObliviousVariant::SemiOblivious] {
            let out = Chase::oblivious(&p.dependencies, variant).run(&p.database);
            assert!(out.is_terminating(), "variant {variant:?} must terminate");
            let j = out.instance().unwrap();
            assert!(satisfies_all(j, &p.dependencies));
            // The invented department null is merged into d0 by the key EGD.
            assert!(j.nulls().is_empty());
        }
    }

    #[test]
    fn oblivious_step_count_at_least_standard() {
        let p = parse_program(
            r#"
            r1: A(?x) -> exists ?y: B(?x, ?y).
            r2: B(?x, ?y) -> C(?y).
            A(a). A(b).
            "#,
        )
        .unwrap();
        let std_out = Chase::standard(&p.dependencies).run(&p.database);
        let obl_out =
            Chase::oblivious(&p.dependencies, ObliviousVariant::Oblivious).run(&p.database);
        assert!(std_out.is_terminating() && obl_out.is_terminating());
        assert!(obl_out.stats().steps >= std_out.stats().steps);
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_shim_agrees_with_the_session_api() {
        let p = parse_program("r: E(?x, ?y) -> exists ?z: E(?x, ?z). E(a, b).").unwrap();
        let legacy = ObliviousChase::new(&p.dependencies, ObliviousVariant::SemiOblivious)
            .with_max_steps(100)
            .run(&p.database);
        let session = Chase::semi_oblivious(&p.dependencies)
            .with_budget(ChaseBudget::unlimited().with_max_steps(100))
            .run(&p.database);
        assert_eq!(legacy, session);
    }
}
