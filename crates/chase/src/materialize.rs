//! Derivation-recorded chase runs: the handoff from a one-shot chase to an
//! incrementally maintained materialization.
//!
//! [`Chase::materialize`](crate::Chase::materialize) runs a (semi-)oblivious
//! session sequentially with an internal observer that opts into the
//! derivation events ([`ChaseObserver::fact_derived`] /
//! [`ChaseObserver::facts_rewritten`](crate::ChaseObserver::facts_rewritten)),
//! and packages the outcome together with the full derivation log as a
//! [`MaterializedRun`]. The log is **replayable**: every event carries enough
//! information — fired key, body image, head ids, substitution deltas — for a
//! consumer (`chase_ivm::ChaseMaterialization`) to rebuild the run's support
//! structure in a fresh engine without re-running any homomorphism search.
//!
//! ## Why only the (semi-)oblivious variants
//!
//! Maintainability needs the chase's step semantics to be *monotone in the
//! base*: adding base facts may only add fired triggers, and every previously
//! fired key stays fired. The oblivious variants have exactly this property —
//! a trigger fires unless its key already fired, and keys never un-fire. The
//! standard chase's activity check is non-monotone (a step applied against a
//! small instance may be inactive against a larger one, so the maintained
//! model could diverge from every from-scratch run), and the core chase folds
//! facts away entirely. Both are rejected with
//! [`MaterializeError::UnsupportedVariant`].
//!
//! ## Id space
//!
//! All [`chase_core::FactId`]s in the log refer to the run's own engine arena.
//! Because the sequential runner is deterministic, a consumer that replays the
//! log on a fresh engine seeded from the same database reproduces the same
//! arena — but the log is self-describing either way: the final instance's
//! [`chase_core::FactStore`] (arena interning survives EGD rewrites and
//! removals) resolves every id that ever appears.

use crate::budget::BudgetLimit;
use crate::oblivious::ObliviousVariant;
use crate::observer::ChaseObserver;
use crate::result::{ChaseOutcome, EgdViolation};
use chase_core::substitution::NullSubstitution;
use chase_core::{DepId, FactId, GroundTerm, Instance};
use std::fmt;

/// One derivation event of a (semi-)oblivious run, in application order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MaterializeEvent {
    /// A trigger consumed its fired key ([`ChaseObserver::fact_derived`]):
    /// a TGD step (non-empty `heads`), an EGD substitution step (the next
    /// event is the matching [`MaterializeEvent::Rewritten`]) or an EGD
    /// trigger with equal images (no step; empty `heads`, no rewrite).
    Fired {
        /// The dependency that fired.
        dep: DepId,
        /// The fired key: images of the variant's key variables, in order.
        key: Vec<GroundTerm>,
        /// The body image: one interned fact id per body atom, pre-step.
        body: Vec<FactId>,
        /// All head fact ids (TGD steps only), pre-existing ones included.
        heads: Vec<FactId>,
    },
    /// An EGD substitution step rewrote the instance
    /// ([`ChaseObserver::facts_rewritten`](crate::ChaseObserver::facts_rewritten)):
    /// `γ` plus the `(old, new)` id pairs mapping every rewritten fact forward.
    Rewritten {
        /// The applied substitution.
        gamma: NullSubstitution,
        /// The rewritten `(old, new)` id pairs.
        delta: Vec<(FactId, FactId)>,
    },
}

/// A completed, derivation-recorded (semi-)oblivious chase run: the input to
/// incremental view maintenance. Produced by
/// [`Chase::materialize`](crate::Chase::materialize); always wraps a
/// [`ChaseOutcome::Terminated`].
#[derive(Clone, Debug)]
pub struct MaterializedRun {
    /// Which oblivious variant ran (fired-key discipline of the log).
    pub variant: ObliviousVariant,
    /// The base the run chased (consumers re-seed their own engine from it).
    pub database: Instance,
    /// The terminated outcome; its instance's store resolves every logged id.
    pub outcome: ChaseOutcome,
    /// Every derivation event, in application order.
    pub log: Vec<MaterializeEvent>,
}

impl MaterializedRun {
    /// The run's final instance.
    pub fn instance(&self) -> &Instance {
        self.outcome
            .instance()
            .expect("a materialized run is always terminated")
    }
}

/// Why a session could not be materialized.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MaterializeError {
    /// The session's variant has non-monotone step semantics (standard or
    /// core chase) — no support ledger can maintain it (see module docs).
    UnsupportedVariant(&'static str),
    /// The chase failed (`⊥`): there is no model to maintain.
    Failed(EgdViolation),
    /// A budget limit tripped before termination: the partial instance is not
    /// a model, so it cannot be maintained.
    BudgetExhausted(BudgetLimit),
}

impl fmt::Display for MaterializeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaterializeError::UnsupportedVariant(variant) => write!(
                f,
                "the {variant} chase is not maintainable: its step semantics \
                 are not monotone in the base (use Chase::semi_oblivious or \
                 Chase::oblivious)"
            ),
            MaterializeError::Failed(violation) => {
                write!(f, "the chase failed (⊥), nothing to maintain: {violation}")
            }
            MaterializeError::BudgetExhausted(limit) => {
                write!(f, "budget exhausted ({limit}) before termination")
            }
        }
    }
}

impl std::error::Error for MaterializeError {}

/// The internal observer behind [`Chase::materialize`](crate::Chase::materialize):
/// opts into derivation events and records them verbatim.
#[derive(Debug, Default)]
pub(crate) struct DerivationRecorder {
    log: Vec<MaterializeEvent>,
}

impl DerivationRecorder {
    pub(crate) fn into_log(self) -> Vec<MaterializeEvent> {
        self.log
    }
}

impl ChaseObserver for DerivationRecorder {
    fn observes_derivations(&self) -> bool {
        true
    }

    fn fact_derived(&mut self, dep: DepId, key: &[GroundTerm], body: &[FactId], heads: &[FactId]) {
        self.log.push(MaterializeEvent::Fired {
            dep,
            key: key.to_vec(),
            body: body.to_vec(),
            heads: heads.to_vec(),
        });
    }

    fn facts_rewritten(&mut self, gamma: &NullSubstitution, delta: &[(FactId, FactId)]) {
        self.log.push(MaterializeEvent::Rewritten {
            gamma: gamma.clone(),
            delta: delta.to_vec(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Chase;
    use chase_core::parser::parse_program;

    #[test]
    fn standard_and_core_sessions_are_rejected() {
        let p = parse_program("r: E(?x, ?y) -> N(?y). E(a, b).").unwrap();
        assert!(matches!(
            Chase::standard(&p.dependencies).materialize(&p.database),
            Err(MaterializeError::UnsupportedVariant("standard"))
        ));
        assert!(matches!(
            Chase::core(&p.dependencies).materialize(&p.database),
            Err(MaterializeError::UnsupportedVariant("core"))
        ));
    }

    #[test]
    fn failing_runs_are_rejected() {
        let p = parse_program("k: P(?x, ?y), P(?x, ?z) -> ?y = ?z. P(a, b). P(a, c).").unwrap();
        let err = Chase::semi_oblivious(&p.dependencies).materialize(&p.database);
        assert!(matches!(err, Err(MaterializeError::Failed(_))));
    }

    #[test]
    fn the_log_matches_the_run_and_records_egd_rewrites() {
        let p = parse_program(
            r#"
            r1: Emp(?x) -> exists ?d: Works(?x, ?d).
            k: Works(?x, ?d1), Works(?x, ?d2) -> ?d1 = ?d2.
            Emp(e1). Works(e1, d0).
            "#,
        )
        .unwrap();
        let run = Chase::semi_oblivious(&p.dependencies)
            .materialize(&p.database)
            .unwrap();
        assert!(run.outcome.is_terminating());
        // r1 fires (a TGD `Fired` with one head), the key EGD collapses the
        // invented department null onto d0 (a `Fired` immediately followed by
        // its `Rewritten` pair); EGD triggers with equal images appear as
        // head-less `Fired` events.
        let tgd_fires = run
            .log
            .iter()
            .filter(|e| matches!(e, MaterializeEvent::Fired { heads, .. } if !heads.is_empty()))
            .count();
        let rewrites = run
            .log
            .iter()
            .filter(|e| matches!(e, MaterializeEvent::Rewritten { .. }))
            .count();
        assert_eq!(tgd_fires, 1);
        assert_eq!(rewrites, 1);
        assert!(run.instance().nulls().is_empty());
        // The recorded outcome is the same as an unobserved run's.
        let plain = Chase::semi_oblivious(&p.dependencies).run(&p.database);
        assert_eq!(run.outcome, plain);
    }

    #[test]
    fn materialize_forces_the_sequential_path() {
        // workers(4) on an EGD-free set would take the round-parallel runner,
        // which cannot log derivations; materialize must still record every
        // step (one Fired per applied step on a TGD-only program).
        let p = parse_program("t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z). E(a, b). E(b, c). E(c, d).")
            .unwrap();
        let run = Chase::semi_oblivious(&p.dependencies)
            .workers(4)
            .materialize(&p.database)
            .unwrap();
        assert_eq!(run.log.len(), run.outcome.stats().steps);
        assert_eq!(run.instance().len(), 6, "closure of a 4-chain");
        assert_eq!(run.database, p.database);
    }
}
