//! # chase-engine
//!
//! The chase procedure over TGDs and EGDs, in the four variants used by Calautti et
//! al. (PVLDB 2016): **standard**, **oblivious**, **semi-oblivious** and **core**
//! chase, together with core computation, universal-model checks and certain-answer
//! evaluation.
//!
//! The central operation is the *chase step* of Definition 1: enforcing a single
//! dependency under a homomorphism, either by adding facts with fresh labeled nulls
//! (TGDs) or by replacing a labeled null with another term (EGDs), possibly failing
//! when an EGD equates two distinct constants.
//!
//! The front door is the unified [`Chase`] session builder: one constructor per
//! variant, one [`ChaseBudget`] for resource limits (steps, rounds, fresh nulls,
//! facts, wall-clock), one [`ChaseOutcome`] whose failure case carries the violating
//! EGD and trigger and whose budget case names the tripped limit, and a pluggable
//! [`ChaseObserver`] for tracing and metrics. The per-variant runners
//! (`StandardChase`, `ObliviousChase`, `CoreChase`) remain as deprecated shims.
//!
//! Trigger discovery is delta-driven by default: the runners feed each step's
//! added or rewritten facts to the incremental
//! [`TriggerEngine`](chase_trigger::TriggerEngine) instead of re-scanning the
//! whole instance (switch back with
//! [`Chase::with_discovery`]`(`[`TriggerDiscovery::NaiveRescan`]`)`). Step
//! bookkeeping rides the arena-interned `chase_core::FactStore`: deltas travel
//! as dense `FactId`s, the core chase substitutes in place through the id delta,
//! and [`core_of`](crate::core_of::core_of) folds nulls on ids with per-version
//! memoisation.
//!
//! ```
//! use chase_core::parser::parse_program;
//! use chase_engine::{Chase, ChaseBudget, StepOrder};
//!
//! let p = parse_program(
//!     r#"
//!     r1: N(?x) -> exists ?y: E(?x, ?y).
//!     r2: E(?x, ?y) -> N(?y).
//!     r3: E(?x, ?y) -> ?x = ?y.
//!     N(a).
//!     "#,
//! )
//! .unwrap();
//!
//! // Enforcing EGDs eagerly yields the terminating sequence of Example 1.
//! let outcome = Chase::standard(&p.dependencies)
//!     .with_order(StepOrder::EgdsFirst)
//!     .with_budget(ChaseBudget::default().with_max_steps(1_000))
//!     .run(&p.database);
//! assert!(outcome.is_terminating());
//! assert_eq!(outcome.instance().unwrap().len(), 2); // {N(a), E(a, a)}
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod budget;
pub mod certain;
pub mod core_chase;
pub mod core_of;
pub mod materialize;
pub mod metrics;
pub mod oblivious;
pub mod observer;
pub mod parallel;
pub mod result;
pub mod session;
pub mod standard;
pub mod step;
pub mod universal;

pub use budget::{BudgetLimit, ChaseBudget};
pub use certain::{certain_answers, ConjunctiveQuery};
pub use core_chase::CoreChase;
pub use core_of::{core_of, core_of_with_workers, is_core};
pub use materialize::{MaterializeError, MaterializeEvent, MaterializedRun};
pub use metrics::MetricsObserver;
pub use oblivious::{apply_gamma_to_keys, key_variables, ObliviousChase, ObliviousVariant};
pub use observer::{
    ChaseEvent, ChaseObserver, EventObserver, FnObserver, NoopObserver, TraceObserver,
};
pub use result::{ChaseOutcome, ChaseStats, EgdViolation};
pub use session::Chase;
pub use standard::{StandardChase, StepOrder, TriggerDiscovery};
pub use step::{applicable_standard_triggers, apply_step, StepEffect, Trigger};
pub use universal::{homomorphically_equivalent, is_model, is_universal_model_among};

/// Convenience re-exports.
pub mod prelude {
    pub use crate::budget::{BudgetLimit, ChaseBudget};
    pub use crate::certain::{certain_answers, ConjunctiveQuery};
    pub use crate::core_chase::CoreChase;
    pub use crate::core_of::{core_of, is_core};
    pub use crate::metrics::MetricsObserver;
    pub use crate::oblivious::{ObliviousChase, ObliviousVariant};
    pub use crate::observer::{
        ChaseEvent, ChaseObserver, EventObserver, NoopObserver, TraceObserver,
    };
    pub use crate::result::{ChaseOutcome, ChaseStats, EgdViolation};
    pub use crate::session::Chase;
    pub use crate::standard::{StandardChase, StepOrder, TriggerDiscovery};
    pub use crate::universal::{homomorphically_equivalent, is_model};
}
