//! Resource budgets for chase runs.
//!
//! A [`ChaseBudget`] bounds a chase run along every axis that can diverge — steps,
//! rounds (core chase), fresh labeled nulls, instance size and wall-clock time — and
//! replaces the per-variant ad-hoc caps (`with_max_steps` / `with_max_rounds`) of the
//! legacy runners. When a run stops because of a budget, the resulting
//! [`ChaseOutcome::BudgetExhausted`](crate::ChaseOutcome::BudgetExhausted) names the
//! tripped [`BudgetLimit`], so callers can distinguish "diverged past the step cap"
//! from "ran out of time" or "instance grew too large".

use crate::result::ChaseStats;
use std::fmt;
use std::time::{Duration, Instant};

/// Which budget limit stopped a chase run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetLimit {
    /// [`ChaseBudget::max_steps`] was reached.
    Steps,
    /// [`ChaseBudget::max_rounds`] was reached (core chase).
    Rounds,
    /// [`ChaseBudget::max_fresh_nulls`] was reached.
    FreshNulls,
    /// [`ChaseBudget::max_facts`] was reached.
    Facts,
    /// [`ChaseBudget::wall_clock`] elapsed.
    WallClock,
    /// The core chase reached a round that made no progress (the cored result
    /// equals the previous instance) while violations remain. No [`ChaseBudget`]
    /// field tripped — raising budgets will not help this run.
    NoProgress,
}

impl fmt::Display for BudgetLimit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BudgetLimit::Steps => write!(f, "max_steps"),
            BudgetLimit::Rounds => write!(f, "max_rounds"),
            BudgetLimit::FreshNulls => write!(f, "max_fresh_nulls"),
            BudgetLimit::Facts => write!(f, "max_facts"),
            BudgetLimit::WallClock => write!(f, "wall_clock"),
            BudgetLimit::NoProgress => write!(f, "no_progress"),
        }
    }
}

/// A resource budget for one chase run. Every limit is optional; `None` means
/// unlimited along that axis.
///
/// Semantics per variant:
///
/// * step-based variants (standard, (semi-)oblivious) check `max_steps`,
///   `max_fresh_nulls`, `max_facts` and `wall_clock` before every step and ignore
///   `max_rounds`;
/// * the core chase counts **rounds** (one parallel application of all triggers plus
///   a core computation): both `max_rounds` and `max_steps` bound the rounds
///   conjunctively (it has no finer step granularity), together with
///   `max_fresh_nulls`, `max_facts` and `wall_clock`.
///
/// Limits are enforced *before* work is performed, so `stats.steps` never exceeds
/// `max_steps`; counters that can grow by more than one per step (nulls, facts) may
/// overshoot by at most one step's worth before the run stops.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaseBudget {
    /// Maximum number of chase steps (step-based variants).
    pub max_steps: Option<usize>,
    /// Maximum number of rounds (core chase).
    pub max_rounds: Option<usize>,
    /// Maximum number of fresh labeled nulls invented.
    pub max_fresh_nulls: Option<usize>,
    /// Maximum number of facts in the instance.
    pub max_facts: Option<usize>,
    /// Maximum wall-clock duration of the run.
    pub wall_clock: Option<Duration>,
}

impl Default for ChaseBudget {
    /// The defaults of the legacy runners: 100 000 steps, 1 000 rounds, everything
    /// else unlimited.
    fn default() -> Self {
        ChaseBudget {
            max_steps: Some(100_000),
            max_rounds: Some(1_000),
            max_fresh_nulls: None,
            max_facts: None,
            wall_clock: None,
        }
    }
}

impl ChaseBudget {
    /// A budget with no limits at all. Use with care: the chase is not guaranteed to
    /// terminate.
    pub fn unlimited() -> Self {
        ChaseBudget {
            max_steps: None,
            max_rounds: None,
            max_fresh_nulls: None,
            max_facts: None,
            wall_clock: None,
        }
    }

    /// Sets the step limit.
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = Some(max_steps);
        self
    }

    /// Sets the round limit (core chase).
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = Some(max_rounds);
        self
    }

    /// Sets the fresh-null limit.
    pub fn with_max_fresh_nulls(mut self, max_fresh_nulls: usize) -> Self {
        self.max_fresh_nulls = Some(max_fresh_nulls);
        self
    }

    /// Sets the instance-size limit.
    pub fn with_max_facts(mut self, max_facts: usize) -> Self {
        self.max_facts = Some(max_facts);
        self
    }

    /// Sets the wall-clock limit.
    pub fn with_wall_clock(mut self, wall_clock: Duration) -> Self {
        self.wall_clock = Some(wall_clock);
        self
    }
}

/// Internal per-run enforcement state: the budget plus the run's start time.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BudgetClock {
    budget: ChaseBudget,
    started: Instant,
}

impl BudgetClock {
    pub(crate) fn start(budget: &ChaseBudget) -> Self {
        BudgetClock {
            budget: *budget,
            started: Instant::now(),
        }
    }

    /// Checks the step-based limits against the current counters; `facts` is the
    /// current instance size.
    pub(crate) fn check_step(&self, stats: &ChaseStats, facts: usize) -> Option<BudgetLimit> {
        if let Some(n) = self.budget.max_steps {
            if stats.steps >= n {
                return Some(BudgetLimit::Steps);
            }
        }
        self.check_common(stats, facts)
    }

    /// Checks the round-based limits (core chase); `stats.steps` counts rounds.
    /// Both `max_rounds` and `max_steps` bound the rounds conjunctively (whichever
    /// trips first is reported), matching the conjunctive semantics of the other
    /// limits — a core chase has no finer step granularity than its rounds.
    pub(crate) fn check_round(&self, stats: &ChaseStats, facts: usize) -> Option<BudgetLimit> {
        if let Some(n) = self.budget.max_rounds {
            if stats.steps >= n {
                return Some(BudgetLimit::Rounds);
            }
        }
        if let Some(n) = self.budget.max_steps {
            if stats.steps >= n {
                return Some(BudgetLimit::Steps);
            }
        }
        self.check_common(stats, facts)
    }

    fn check_common(&self, stats: &ChaseStats, facts: usize) -> Option<BudgetLimit> {
        if let Some(n) = self.budget.max_fresh_nulls {
            if stats.nulls_created >= n {
                return Some(BudgetLimit::FreshNulls);
            }
        }
        if let Some(n) = self.budget.max_facts {
            if facts >= n {
                return Some(BudgetLimit::Facts);
            }
        }
        if let Some(d) = self.budget.wall_clock {
            if self.started.elapsed() >= d {
                return Some(BudgetLimit::WallClock);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_the_legacy_caps() {
        let b = ChaseBudget::default();
        assert_eq!(b.max_steps, Some(100_000));
        assert_eq!(b.max_rounds, Some(1_000));
        assert_eq!(b.max_fresh_nulls, None);
    }

    #[test]
    fn builders_compose() {
        let b = ChaseBudget::unlimited()
            .with_max_steps(10)
            .with_max_fresh_nulls(3)
            .with_max_facts(100)
            .with_wall_clock(Duration::from_secs(1));
        assert_eq!(b.max_steps, Some(10));
        assert_eq!(b.max_rounds, None);
        assert_eq!(b.max_fresh_nulls, Some(3));
        assert_eq!(b.max_facts, Some(100));
        assert_eq!(b.wall_clock, Some(Duration::from_secs(1)));
    }

    #[test]
    fn clock_trips_the_right_limit() {
        let clock = BudgetClock::start(&ChaseBudget::unlimited().with_max_steps(5));
        let mut stats = ChaseStats::default();
        assert_eq!(clock.check_step(&stats, 0), None);
        stats.steps = 5;
        assert_eq!(clock.check_step(&stats, 0), Some(BudgetLimit::Steps));

        let clock = BudgetClock::start(&ChaseBudget::unlimited().with_max_fresh_nulls(2));
        stats.nulls_created = 2;
        assert_eq!(clock.check_step(&stats, 0), Some(BudgetLimit::FreshNulls));

        let clock = BudgetClock::start(&ChaseBudget::unlimited().with_max_facts(7));
        assert_eq!(clock.check_step(&stats, 7), Some(BudgetLimit::Facts));

        let clock = BudgetClock::start(&ChaseBudget::unlimited().with_wall_clock(Duration::ZERO));
        assert_eq!(clock.check_step(&stats, 0), Some(BudgetLimit::WallClock));
    }

    #[test]
    fn round_checks_enforce_steps_and_rounds_conjunctively() {
        let stats = ChaseStats {
            steps: 4,
            ..Default::default()
        };
        let only_steps = BudgetClock::start(&ChaseBudget::unlimited().with_max_steps(4));
        assert_eq!(only_steps.check_round(&stats, 0), Some(BudgetLimit::Steps));
        // With both limits set, whichever trips first wins — a tight step cap is
        // not silenced by a loose round cap.
        let both = BudgetClock::start(
            &ChaseBudget::unlimited()
                .with_max_steps(4)
                .with_max_rounds(10),
        );
        assert_eq!(both.check_round(&stats, 0), Some(BudgetLimit::Steps));
        let rounds_first = BudgetClock::start(
            &ChaseBudget::unlimited()
                .with_max_steps(10)
                .with_max_rounds(4),
        );
        assert_eq!(
            rounds_first.check_round(&stats, 0),
            Some(BudgetLimit::Rounds)
        );
    }

    #[test]
    fn limit_display() {
        assert_eq!(BudgetLimit::Steps.to_string(), "max_steps");
        assert_eq!(BudgetLimit::WallClock.to_string(), "wall_clock");
    }
}
