//! The standard chase: exhaustive application of *active* triggers.
//!
//! A standard chase sequence applies chase steps only to triggers whose TGD head is not
//! already witnessed (or whose EGD equality does not already hold), and stops when no
//! further step is applicable. Different trigger-selection policies lead to different
//! sequences; [`StepOrder`] controls the policy, which is exactly the nondeterminism
//! the paper exploits (a set may have both terminating and non-terminating sequences,
//! cf. Example 1).
//!
//! The front door is [`Chase::standard`](crate::Chase::standard); the [`StandardChase`]
//! runner remains as a deprecated shim.

use crate::budget::{BudgetClock, ChaseBudget};
use crate::observer::{record_step_effect, ChaseObserver, FnObserver, NoopObserver};
use crate::result::{ChaseOutcome, ChaseStats};
use crate::step::{apply_step, first_applicable_trigger, StepEffect, Trigger};
use chase_core::{DepId, DependencySet, DiscoveryStats, Instance, ShardStats};
use chase_trigger::{ConflictSchedule, TriggerEngine};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;

/// How the runner discovers applicable triggers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TriggerDiscovery {
    /// Delta-driven incremental discovery through [`chase_trigger::TriggerEngine`]
    /// (the default): homomorphism search is seeded only from the facts each step
    /// adds or rewrites.
    Incremental,
    /// The original strategy: a full homomorphism re-scan of the entire instance
    /// before every step, over a plain index-free [`chase_core::Instance`] (the
    /// join itself still runs through the shared engine, on a transient per-query
    /// index). Kept as the reference implementation and benchmark baseline.
    NaiveRescan,
}

/// Trigger-selection policy of the standard chase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOrder {
    /// Consider dependencies in the textual order of the dependency set.
    Textual,
    /// Consider EGDs first, then full TGDs, then existential TGDs.
    ///
    /// This is the policy suggested by the paper's analysis: enforcing EGDs eagerly can
    /// block the firing of existential TGDs (Definition 2 and Example 11).
    EgdsFirst,
    /// Consider all full dependencies (EGDs and full TGDs) before existential TGDs.
    FullFirst,
    /// A fixed pseudo-random order derived from the given seed (useful to sample
    /// different sequences).
    Shuffled(u64),
}

/// The dependency order induced by a [`StepOrder`] policy.
pub(crate) fn dependency_order(sigma: &DependencySet, order: StepOrder) -> Vec<DepId> {
    let mut ids: Vec<DepId> = sigma.ids().collect();
    match order {
        StepOrder::Textual => {}
        StepOrder::EgdsFirst => {
            ids.sort_by_key(|&id| {
                let dep = sigma.get(id);
                if dep.is_egd() {
                    0
                } else if dep.is_full() {
                    1
                } else {
                    2
                }
            });
        }
        StepOrder::FullFirst => {
            ids.sort_by_key(|&id| if sigma.get(id).is_full() { 0 } else { 1 });
        }
        StepOrder::Shuffled(seed) => {
            let mut rng = StdRng::seed_from_u64(seed);
            ids.shuffle(&mut rng);
        }
    }
    ids
}

/// Runs the standard chase under `budget`, reporting events to `observer`.
///
/// `workers > 1` parallelises two read-only phases on the persistent worker
/// pool ([`chase_core::pool`]), keeping the run bitwise-identical to the
/// sequential one:
///
/// * **trigger discovery** — each drain of the delta worklist is sharded with
///   an order-preserving merge ([`TriggerEngine::drain_deltas_parallel`]);
/// * **activity checks** — conflict-aware scheduling
///   ([`chase_trigger::ConflictSchedule`]) pops a conflict-free prefix of the
///   sequential trigger order per batch and evaluates the prefix's activity
///   checks concurrently against the frozen pre-batch instance
///   ([`TriggerEngine::next_active_batch`]); applications themselves stay in
///   the exact sequential order — that order *is* the standard chase's
///   semantics (fresh-null numbering, later activity) and batching it is
///   provably not equivalence-preserving.
///
/// `workers == 0` is normalized to 1. Two documented fallbacks ignore
/// `workers`:
///
/// * **EGD-bearing `sigma`** — substitutions rewrite the pending state between
///   steps and serialize every drain anyway (delta batches are the rewritten
///   facts of a single substitution), and an EGD conflicts with everything in
///   the schedule; the run stays sequential;
/// * **[`TriggerDiscovery::NaiveRescan`]** — the reference baseline is defined as
///   the single-threaded full re-scan and stays that way.
pub(crate) fn run_standard(
    sigma: &DependencySet,
    order: StepOrder,
    discovery: TriggerDiscovery,
    budget: &ChaseBudget,
    database: &Instance,
    observer: &mut dyn ChaseObserver,
    workers: usize,
) -> ChaseOutcome {
    let workers = if sigma.egd_ids().is_empty() {
        workers.max(1)
    } else {
        1
    };
    match discovery {
        TriggerDiscovery::Incremental => {
            run_incremental(sigma, order, budget, database, observer, workers)
        }
        TriggerDiscovery::NaiveRescan => run_naive(sigma, order, budget, database, observer),
    }
}

/// Delta-driven run: the [`TriggerEngine`] owns the instance, discovery is seeded
/// from each step's delta, and steps are applied in place. With `workers > 1` the
/// drains run sharded ([`TriggerEngine::next_active_trigger_parallel`]); the
/// trigger sequence is identical either way.
fn run_incremental(
    sigma: &DependencySet,
    order: StepOrder,
    budget: &ChaseBudget,
    database: &Instance,
    observer: &mut dyn ChaseObserver,
    workers: usize,
) -> ChaseOutcome {
    let order = dependency_order(sigma, order);
    if workers > 1 {
        return run_incremental_batched(sigma, &order, budget, database, observer, workers);
    }
    let clock = BudgetClock::start(budget);
    let mut engine = TriggerEngine::with_database(sigma, database);
    let mut stats = ChaseStats::default();
    let phases = observer.observes_phases();
    loop {
        let tripped = clock.check_step(&stats, engine.instance().len());
        if phases {
            observer.budget_checked(tripped);
        }
        if let Some(limit) = tripped {
            return ChaseOutcome::BudgetExhausted {
                limit,
                instance: engine.into_instance(),
                stats,
            };
        }
        // With phases on, each trigger search is reported as a one-shard
        // discovery event: the engine-stat deltas give the seeds drained and
        // candidates discovered by exactly this call (zero for searches served
        // straight from the already-discovered queue).
        let next = if phases {
            let scanned_before = engine.stats().deltas_processed;
            let found_before = engine.stats().triggers_discovered;
            let start = Instant::now();
            let next = engine.next_active_trigger_parallel(&order, workers);
            let elapsed = start.elapsed();
            observer.discovery_completed(&DiscoveryStats {
                shards: vec![ShardStats {
                    worker: 0,
                    facts_scanned: engine.stats().deltas_processed - scanned_before,
                    triggers_found: engine.stats().triggers_discovered - found_before,
                    elapsed,
                }],
                elapsed,
            });
            next
        } else {
            engine.next_active_trigger_parallel(&order, workers)
        };
        let trigger = match next {
            Some(t) => t,
            None => {
                return ChaseOutcome::Terminated {
                    instance: engine.into_instance(),
                    stats,
                }
            }
        };
        let effect = engine.apply_trigger(trigger.dep, &trigger.assignment);
        if effect == StepEffect::NotApplicable {
            // `next_active_trigger` only returns active triggers, so this
            // cannot happen; treat defensively as a skipped step.
            continue;
        }
        if let Some(violation) = record_step_effect(sigma, &trigger, &effect, &mut stats, observer)
        {
            return ChaseOutcome::Failed { violation, stats };
        }
    }
}

/// The conflict-aware parallel run (`workers > 1`, EGD-free sets only).
///
/// Per batch, [`TriggerEngine::next_active_batch`] pops a conflict-free prefix
/// of the sequential trigger order and evaluates its activity checks in
/// parallel; the applications then replay in the exact sequential interleaving
/// — apply one trigger, drain its deltas (itself sharded on the pool), apply
/// the next — so queue evolution, fresh-null numbering, every `ChaseStats`
/// counter and the budget-check cadence (one check before each step's
/// search-or-apply plus one final) are bitwise identical to the `workers == 1`
/// loop. The only observable difference is phase-event *granularity* with an
/// [`observes_phases`](ChaseObserver::observes_phases) observer: one discovery
/// event per batch instead of per step (totals still agree).
fn run_incremental_batched(
    sigma: &DependencySet,
    order: &[DepId],
    budget: &ChaseBudget,
    database: &Instance,
    observer: &mut dyn ChaseObserver,
    workers: usize,
) -> ChaseOutcome {
    let schedule = ConflictSchedule::new(sigma, order);
    let clock = BudgetClock::start(budget);
    let mut engine = TriggerEngine::with_database(sigma, database);
    let mut stats = ChaseStats::default();
    let phases = observer.observes_phases();
    loop {
        let tripped = clock.check_step(&stats, engine.instance().len());
        if phases {
            observer.budget_checked(tripped);
        }
        if let Some(limit) = tripped {
            return ChaseOutcome::BudgetExhausted {
                limit,
                instance: engine.into_instance(),
                stats,
            };
        }
        // One discovery event per batch: the engine-stat deltas cover every
        // seed drained and candidate discovered while assembling this batch.
        let batch = if phases {
            let scanned_before = engine.stats().deltas_processed;
            let found_before = engine.stats().triggers_discovered;
            let start = Instant::now();
            let batch = engine.next_active_batch(order, &schedule, workers);
            let elapsed = start.elapsed();
            observer.discovery_completed(&DiscoveryStats {
                shards: vec![ShardStats {
                    worker: 0,
                    facts_scanned: engine.stats().deltas_processed - scanned_before,
                    triggers_found: engine.stats().triggers_discovered - found_before,
                    elapsed,
                }],
                elapsed,
            });
            batch
        } else {
            engine.next_active_batch(order, &schedule, workers)
        };
        if batch.is_empty() {
            return ChaseOutcome::Terminated {
                instance: engine.into_instance(),
                stats,
            };
        }
        let mut first = true;
        for trigger in batch {
            // The check before the batch's first apply already ran above (it
            // precedes the search, as in the sequential loop); every later
            // batch member gets its own check between applies.
            if !first {
                let tripped = clock.check_step(&stats, engine.instance().len());
                if phases {
                    observer.budget_checked(tripped);
                }
                if let Some(limit) = tripped {
                    // Remaining batch members are discarded un-applied — the
                    // sequential run would never have popped them.
                    return ChaseOutcome::BudgetExhausted {
                        limit,
                        instance: engine.into_instance(),
                        stats,
                    };
                }
            }
            first = false;
            let effect = engine.apply_trigger(trigger.dep, &trigger.assignment);
            if effect == StepEffect::NotApplicable {
                // Activity was verified against the pre-batch instance and is
                // stable under the batch's earlier writes; defensive skip.
                continue;
            }
            if let Some(violation) =
                record_step_effect(sigma, &trigger, &effect, &mut stats, observer)
            {
                return ChaseOutcome::Failed { violation, stats };
            }
            // Drain immediately, exactly where the sequential loop's next
            // search would: the queues must evolve step-by-step, not
            // batch-by-batch, for the popped order to stay sequential.
            engine.drain_deltas_parallel(workers);
        }
    }
}

/// The original full re-scan loop, kept as reference and benchmark baseline.
fn run_naive(
    sigma: &DependencySet,
    order: StepOrder,
    budget: &ChaseBudget,
    database: &Instance,
    observer: &mut dyn ChaseObserver,
) -> ChaseOutcome {
    let order = dependency_order(sigma, order);
    let clock = BudgetClock::start(budget);
    let mut current = database.clone();
    let mut stats = ChaseStats::default();
    let phases = observer.observes_phases();
    loop {
        let tripped = clock.check_step(&stats, current.len());
        if phases {
            observer.budget_checked(tripped);
        }
        if let Some(limit) = tripped {
            return ChaseOutcome::BudgetExhausted {
                limit,
                instance: current,
                stats,
            };
        }
        // A full re-scan visits the whole instance; report it as one shard.
        let search_start = phases.then(Instant::now);
        let next = first_applicable_trigger(&current, sigma, &order);
        if let Some(start) = search_start {
            let elapsed = start.elapsed();
            observer.discovery_completed(&DiscoveryStats {
                shards: vec![ShardStats {
                    worker: 0,
                    facts_scanned: current.len(),
                    triggers_found: usize::from(next.is_some()),
                    elapsed,
                }],
                elapsed,
            });
        }
        let trigger = match next {
            Some(t) => t,
            None => {
                return ChaseOutcome::Terminated {
                    instance: current,
                    stats,
                }
            }
        };
        let dep = sigma.get(trigger.dep);
        let (next, effect) = apply_step(&current, dep, &trigger.assignment);
        if effect == StepEffect::NotApplicable {
            // `first_applicable_trigger` only returns active triggers, so this
            // cannot happen; treat defensively as termination of the loop body.
            continue;
        }
        if let Some(violation) = record_step_effect(sigma, &trigger, &effect, &mut stats, observer)
        {
            return ChaseOutcome::Failed { violation, stats };
        }
        current = next.expect("non-failing steps produce a successor instance");
    }
}

/// Legacy runner for the standard chase.
///
/// Superseded by [`Chase::standard`](crate::Chase::standard), which adds the full
/// [`ChaseBudget`] and [`ChaseObserver`] machinery; this shim delegates to the same
/// implementation.
#[derive(Clone)]
pub struct StandardChase<'a> {
    sigma: &'a DependencySet,
    order: StepOrder,
    max_steps: usize,
    discovery: TriggerDiscovery,
}

impl<'a> StandardChase<'a> {
    /// Creates a standard chase runner with the default policy
    /// ([`StepOrder::EgdsFirst`]), incremental trigger discovery and a budget of
    /// 100 000 steps.
    #[deprecated(note = "use Chase::standard(sigma) with a ChaseBudget instead")]
    pub fn new(sigma: &'a DependencySet) -> Self {
        StandardChase {
            sigma,
            order: StepOrder::EgdsFirst,
            max_steps: 100_000,
            discovery: TriggerDiscovery::Incremental,
        }
    }

    /// Sets the trigger-selection policy.
    pub fn with_order(mut self, order: StepOrder) -> Self {
        self.order = order;
        self
    }

    /// Enables or disables EGD priority (a shorthand for switching between
    /// [`StepOrder::EgdsFirst`] and [`StepOrder::Textual`]).
    pub fn with_egd_priority(mut self, yes: bool) -> Self {
        self.order = if yes {
            StepOrder::EgdsFirst
        } else {
            StepOrder::Textual
        };
        self
    }

    /// Sets the step budget.
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Sets the trigger-discovery strategy.
    pub fn with_discovery(mut self, discovery: TriggerDiscovery) -> Self {
        self.discovery = discovery;
        self
    }

    /// The dependency order induced by the policy.
    pub fn dependency_order(&self) -> Vec<DepId> {
        dependency_order(self.sigma, self.order)
    }

    /// Runs the chase on `database`, producing an outcome.
    pub fn run(&self, database: &Instance) -> ChaseOutcome {
        run_standard(
            self.sigma,
            self.order,
            self.discovery,
            &ChaseBudget::unlimited().with_max_steps(self.max_steps),
            database,
            &mut NoopObserver,
            1,
        )
    }

    /// Runs the chase, invoking `observer` after every applied step with the trigger
    /// and the effect.
    #[deprecated(
        note = "use Chase::standard(sigma).run_observed(db, &mut observer) with a ChaseObserver"
    )]
    pub fn run_with_trace(
        &self,
        database: &Instance,
        observer: impl FnMut(&Trigger, &StepEffect),
    ) -> ChaseOutcome {
        run_standard(
            self.sigma,
            self.order,
            self.discovery,
            &ChaseBudget::unlimited().with_max_steps(self.max_steps),
            database,
            &mut FnObserver(observer),
            1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observer::TraceObserver;
    use crate::session::Chase;
    use chase_core::parser::parse_program;
    use chase_core::satisfaction::satisfies_all;
    use chase_core::{Fact, GroundTerm};

    fn gc(s: &str) -> GroundTerm {
        GroundTerm::Const(chase_core::Constant::new(s))
    }

    #[test]
    fn example1_terminating_sequence_with_egd_priority() {
        let p = parse_program(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> ?x = ?y.
            N(a).
            "#,
        )
        .unwrap();
        let outcome = Chase::standard(&p.dependencies)
            .with_order(StepOrder::EgdsFirst)
            .run(&p.database);
        assert!(outcome.is_terminating());
        let j = outcome.instance().unwrap();
        assert_eq!(j.len(), 2);
        assert!(j.contains(&Fact::from_parts("N", vec![gc("a")])));
        assert!(j.contains(&Fact::from_parts("E", vec![gc("a"), gc("a")])));
        assert!(satisfies_all(j, &p.dependencies));
        assert_eq!(outcome.stats().steps, 2);
    }

    #[test]
    fn example1_textual_order_does_not_terminate() {
        // Repeatedly enforcing r1 then r2 yields an infinite sequence; with textual
        // order and a small budget the run must exhaust the budget.
        let p = parse_program(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> ?x = ?y.
            N(a).
            "#,
        )
        .unwrap();
        let outcome = Chase::standard(&p.dependencies)
            .with_order(StepOrder::Textual)
            .with_budget(ChaseBudget::unlimited().with_max_steps(200))
            .run(&p.database);
        // With textual order, r1 is always tried first, then r2; r3 would only be
        // reached if neither applies, which never happens, so the run diverges.
        assert!(outcome.is_budget_exhausted());
        assert_eq!(
            outcome.exhausted_limit(),
            Some(crate::budget::BudgetLimit::Steps)
        );
    }

    #[test]
    fn example6_standard_chase_is_empty() {
        let p = parse_program("r: E(?x, ?y) -> exists ?z: E(?x, ?z). E(a, b).").unwrap();
        let outcome = Chase::standard(&p.dependencies).run(&p.database);
        assert!(outcome.is_terminating());
        assert_eq!(outcome.stats().steps, 0);
        assert_eq!(outcome.instance().unwrap(), &p.database);
    }

    #[test]
    fn failing_chase_reports_the_violation() {
        // Key constraint violated by two distinct constants.
        let p = parse_program(
            r#"
            k: P(?x, ?y), P(?x, ?z) -> ?y = ?z.
            P(a, b).
            P(a, c).
            "#,
        )
        .unwrap();
        let outcome = Chase::standard(&p.dependencies).run(&p.database);
        assert!(outcome.is_failing());
        let violation = outcome.violation().expect("failing runs carry a violation");
        assert_eq!(violation.dep, chase_core::DepId(0));
        assert_eq!(violation.label.as_deref(), Some("k"));
        let (mut l, mut r) = (violation.left.to_string(), violation.right.to_string());
        if l > r {
            std::mem::swap(&mut l, &mut r);
        }
        assert_eq!((l.as_str(), r.as_str()), ("b", "c"));
    }

    #[test]
    fn weakly_acyclic_set_terminates_under_any_order() {
        let p = parse_program(
            r#"
            r1: P(?x, ?y) -> exists ?z: E(?x, ?z).
            r2: Q(?x, ?y) -> exists ?z: E(?z, ?y).
            P(a, b).
            Q(c, d).
            "#,
        )
        .unwrap();
        for order in [
            StepOrder::Textual,
            StepOrder::EgdsFirst,
            StepOrder::FullFirst,
            StepOrder::Shuffled(7),
        ] {
            let outcome = Chase::standard(&p.dependencies)
                .with_order(order)
                .run(&p.database);
            assert!(outcome.is_terminating());
            // Example 3: the universal model adds E(a, η1) and E(η2, d).
            assert_eq!(outcome.instance().unwrap().len(), 4);
        }
    }

    #[test]
    fn example10_has_no_terminating_sequence() {
        let p = parse_program(
            r#"
            r1: N(?x) -> exists ?y, ?z: E(?x, ?y, ?z).
            r2: E(?x, ?y, ?y) -> N(?y).
            r3: E(?x, ?y, ?z) -> ?y = ?z.
            N(a).
            "#,
        )
        .unwrap();
        for order in [
            StepOrder::Textual,
            StepOrder::EgdsFirst,
            StepOrder::FullFirst,
        ] {
            let outcome = Chase::standard(&p.dependencies)
                .with_order(order)
                .with_budget(ChaseBudget::unlimited().with_max_steps(500))
                .run(&p.database);
            assert!(
                outcome.is_budget_exhausted(),
                "Σ10 must not terminate under {order:?}"
            );
        }
    }

    #[test]
    fn trace_observer_sees_every_step() {
        let p = parse_program(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r3: E(?x, ?y) -> ?x = ?y.
            N(a).
            "#,
        )
        .unwrap();
        let mut trace = TraceObserver::new();
        let outcome = Chase::standard(&p.dependencies).run_observed(&p.database, &mut trace);
        assert!(outcome.is_terminating());
        assert_eq!(trace.steps.len(), outcome.stats().steps);
        assert_eq!(trace.steps.len(), 2);
        assert_eq!(trace.nulls, outcome.stats().nulls_created);
        assert_eq!(trace.collapses.len(), outcome.stats().null_replacements);
    }

    #[test]
    fn naive_and_incremental_discovery_agree_on_example_1() {
        let p = parse_program(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> ?x = ?y.
            N(a).
            "#,
        )
        .unwrap();
        for order in [
            StepOrder::Textual,
            StepOrder::EgdsFirst,
            StepOrder::FullFirst,
        ] {
            let runner = Chase::standard(&p.dependencies)
                .with_order(order)
                .with_budget(ChaseBudget::unlimited().with_max_steps(200));
            let naive = runner
                .clone()
                .with_discovery(TriggerDiscovery::NaiveRescan)
                .run(&p.database);
            let incremental = runner
                .with_discovery(TriggerDiscovery::Incremental)
                .run(&p.database);
            assert_eq!(
                naive.is_terminating(),
                incremental.is_terminating(),
                "termination disagrees under {order:?}"
            );
            assert_eq!(naive.is_failing(), incremental.is_failing());
            assert_eq!(
                naive.is_budget_exhausted(),
                incremental.is_budget_exhausted()
            );
            if naive.is_terminating() {
                assert_eq!(naive.instance(), incremental.instance());
                assert_eq!(naive.stats(), incremental.stats());
            }
        }
    }

    #[test]
    fn incremental_discovery_is_the_default() {
        let p = parse_program("r: A(?x) -> B(?x). A(a).").unwrap();
        let out = Chase::standard(&p.dependencies).run(&p.database);
        assert!(out.is_terminating());
        assert_eq!(out.instance().unwrap().len(), 2);
    }

    #[test]
    fn full_tgds_compute_transitive_closure() {
        let p = parse_program(
            r#"
            t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z).
            E(a, b). E(b, c). E(c, d).
            "#,
        )
        .unwrap();
        let outcome = Chase::standard(&p.dependencies).run(&p.database);
        assert!(outcome.is_terminating());
        // Closure of a 4-chain has 3 + 2 + 1 = 6 edges.
        assert_eq!(outcome.instance().unwrap().len(), 6);
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_shims_agree_with_the_session_api() {
        let p = parse_program(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> ?x = ?y.
            N(a).
            "#,
        )
        .unwrap();
        let legacy = StandardChase::new(&p.dependencies)
            .with_order(StepOrder::EgdsFirst)
            .with_max_steps(1_000)
            .run(&p.database);
        let session = Chase::standard(&p.dependencies)
            .with_order(StepOrder::EgdsFirst)
            .with_budget(ChaseBudget::unlimited().with_max_steps(1_000))
            .run(&p.database);
        assert_eq!(legacy, session);

        let mut trace = Vec::new();
        let traced = StandardChase::new(&p.dependencies)
            .run_with_trace(&p.database, |t, e| trace.push((t.dep, e.clone())));
        assert!(traced.is_terminating());
        assert_eq!(trace.len(), traced.stats().steps);
    }
}
