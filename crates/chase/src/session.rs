//! The unified chase session API: one builder for every variant.
//!
//! [`Chase`] is the single front door to the four chase variants of the paper. Every
//! session shares the same vocabulary — one [`ChaseBudget`] for resource limits, one
//! [`ChaseOutcome`] with failure diagnostics and tripped-limit reporting, one
//! [`ChaseObserver`] hook for tracing and metrics:
//!
//! ```
//! use chase_core::parser::parse_program;
//! use chase_engine::{Chase, ChaseBudget, StepOrder};
//!
//! let p = parse_program(
//!     r#"
//!     r1: N(?x) -> exists ?y: E(?x, ?y).
//!     r2: E(?x, ?y) -> N(?y).
//!     r3: E(?x, ?y) -> ?x = ?y.
//!     N(a).
//!     "#,
//! )
//! .unwrap();
//!
//! // Enforcing EGDs eagerly yields the terminating sequence of Example 1.
//! let outcome = Chase::standard(&p.dependencies)
//!     .with_order(StepOrder::EgdsFirst)
//!     .with_budget(ChaseBudget::default().with_max_steps(1_000))
//!     .run(&p.database);
//! assert!(outcome.is_terminating());
//! assert_eq!(outcome.instance().unwrap().len(), 2); // {N(a), E(a, a)}
//! ```

use crate::budget::ChaseBudget;
use crate::core_chase::run_core;
use crate::materialize::{DerivationRecorder, MaterializeError, MaterializedRun};
use crate::oblivious::{run_oblivious, ObliviousVariant};
use crate::observer::{ChaseObserver, NoopObserver};
use crate::result::ChaseOutcome;
use crate::standard::{run_standard, StepOrder, TriggerDiscovery};
use chase_core::{DependencySet, Instance};

/// Which chase variant a [`Chase`] session runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Variant {
    Standard,
    Oblivious(ObliviousVariant),
    Core,
}

/// A configured chase session over a dependency set: variant, trigger policy,
/// discovery strategy and resource budget.
///
/// Construct with one of [`Chase::standard`], [`Chase::oblivious`],
/// [`Chase::semi_oblivious`] or [`Chase::core`], refine with the `with_*` builders,
/// then [`run`](Chase::run) it on a database (or
/// [`run_observed`](Chase::run_observed) with a [`ChaseObserver`]).
#[derive(Clone)]
pub struct Chase<'a> {
    sigma: &'a DependencySet,
    variant: Variant,
    order: StepOrder,
    discovery: TriggerDiscovery,
    budget: ChaseBudget,
    workers: usize,
}

impl<'a> Chase<'a> {
    fn new(sigma: &'a DependencySet, variant: Variant) -> Self {
        Chase {
            sigma,
            variant,
            order: StepOrder::EgdsFirst,
            discovery: TriggerDiscovery::Incremental,
            budget: ChaseBudget::default(),
            workers: 1,
        }
    }

    /// A standard chase session (default policy [`StepOrder::EgdsFirst`], incremental
    /// trigger discovery).
    pub fn standard(sigma: &'a DependencySet) -> Self {
        Chase::new(sigma, Variant::Standard)
    }

    /// An oblivious or semi-oblivious chase session, selected by `variant`.
    pub fn oblivious(sigma: &'a DependencySet, variant: ObliviousVariant) -> Self {
        Chase::new(sigma, Variant::Oblivious(variant))
    }

    /// A semi-oblivious chase session (shorthand for
    /// [`Chase::oblivious`]`(sigma, ObliviousVariant::SemiOblivious)`).
    pub fn semi_oblivious(sigma: &'a DependencySet) -> Self {
        Chase::new(sigma, Variant::Oblivious(ObliviousVariant::SemiOblivious))
    }

    /// A core chase session (rounds of parallel steps followed by core computation).
    pub fn core(sigma: &'a DependencySet) -> Self {
        Chase::new(sigma, Variant::Core)
    }

    /// Sets the trigger-selection policy (standard chase only; the oblivious variants
    /// fire in textual order by definition and the core chase fires all triggers in
    /// parallel, so the policy is ignored there).
    pub fn with_order(mut self, order: StepOrder) -> Self {
        self.order = order;
        self
    }

    /// Sets the trigger-discovery strategy (standard chase only).
    pub fn with_discovery(mut self, discovery: TriggerDiscovery) -> Self {
        self.discovery = discovery;
        self
    }

    /// Sets the resource budget.
    pub fn with_budget(mut self, budget: ChaseBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Runs the session with up to `n` lanes of parallelism on the persistent,
    /// process-wide worker pool ([`chase_core::pool`]). `workers(0)` and
    /// `workers(1)` both mean sequential execution (`0` is normalized to 1 —
    /// here and in every layer below, so the guarantee does not depend on any
    /// one guard). The pool's threads are spawned once and reused across
    /// rounds, runs and sessions; repeated runs on one session are
    /// byte-identical (pinned by the pool-reuse suite).
    ///
    /// All parallel phases are read-only against a frozen snapshot, with
    /// deterministic ordering re-imposed before any mutation, so a session is
    /// **deterministic at every worker count**: two runs with the same inputs
    /// and different `n > 1` produce byte-identical instances, statistics,
    /// observer streams and tripped budget limits. Per variant:
    ///
    /// * the **(semi-)oblivious variants** batch whole rounds — sharded
    ///   discovery, triggers sorted by `(DepId, body FactIds)` before a
    ///   sequential apply;
    /// * the **standard chase** shards each discovery drain (order-preserving
    ///   merge) *and* batches activity checks via conflict-aware scheduling
    ///   ([`chase_trigger::ConflictSchedule`]): a conflict-free prefix of the
    ///   sequential trigger order — pairwise disjoint head-writes vs.
    ///   body/head-reads, writes that cannot seed an earlier-ranked queue —
    ///   is checked in parallel against the pre-batch instance, then applied
    ///   in the exact sequential order. Bitwise-identical to `workers(1)`
    ///   (same steps, nulls, stats; phase-event granularity may coarsen to
    ///   one discovery event per batch);
    /// * the **core chase** parallelises its dominant cost, the per-null
    ///   endomorphism fold search of each round's core computation, with
    ///   first-fold selection in ascending null order (bitwise-identical
    ///   results).
    ///
    /// Documented sequential fallbacks (the setting is then ignored):
    ///
    /// * **EGD-bearing** dependency sets — substitutions rewrite pending
    ///   triggers and fired keys in sequence order, so the result would depend
    ///   on the interleaving (see [`crate::parallel`] for the full argument);
    ///   in the conflict schedule an EGD conflicts with everything;
    /// * [`TriggerDiscovery::NaiveRescan`], the single-threaded reference
    ///   baseline.
    ///
    /// ```
    /// use chase_core::parser::parse_program;
    /// use chase_engine::Chase;
    ///
    /// let p = parse_program(
    ///     r#"
    ///     t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z).
    ///     E(a, b). E(b, c). E(c, d). E(d, e).
    ///     "#,
    /// )
    /// .unwrap();
    /// let sequential = Chase::semi_oblivious(&p.dependencies).run(&p.database);
    /// let parallel = Chase::semi_oblivious(&p.dependencies)
    ///     .workers(4)
    ///     .run(&p.database);
    /// // Full TGDs invent no nulls, so the results are outright equal; with
    /// // existential rules they are equal up to a renaming of labeled nulls.
    /// assert_eq!(sequential.instance().unwrap(), parallel.instance().unwrap());
    /// assert_eq!(sequential.stats(), parallel.stats());
    /// ```
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// The session's budget.
    pub fn budget(&self) -> &ChaseBudget {
        &self.budget
    }

    /// The session's worker-thread cap (1 = sequential).
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// Runs the session on `database`.
    pub fn run(&self, database: &Instance) -> ChaseOutcome {
        self.run_observed(database, &mut NoopObserver)
    }

    /// Runs the session on `database`, reporting events to `observer`.
    ///
    /// The returned outcome's [`ChaseStats::elapsed`](crate::ChaseStats) holds
    /// the wall-clock of the whole run, stamped here for every variant (it is
    /// excluded from stats equality, so determinism contracts are unaffected).
    pub fn run_observed(
        &self,
        database: &Instance,
        observer: &mut dyn ChaseObserver,
    ) -> ChaseOutcome {
        let started = std::time::Instant::now();
        let mut outcome = match self.variant {
            Variant::Standard => run_standard(
                self.sigma,
                self.order,
                self.discovery,
                &self.budget,
                database,
                observer,
                self.workers,
            ),
            Variant::Oblivious(variant) => run_oblivious(
                self.sigma,
                variant,
                &self.budget,
                database,
                observer,
                self.workers,
            ),
            Variant::Core => run_core(self.sigma, &self.budget, database, observer, self.workers),
        };
        outcome.stats_mut().elapsed = started.elapsed();
        outcome
    }

    /// Runs the session on `database` while recording every derivation, and
    /// returns the completed, replayable run — the input to incremental view
    /// maintenance (`chase_ivm::ChaseMaterialization`).
    ///
    /// Only the (semi-)oblivious variants are maintainable: their fired-key
    /// step semantics are monotone in the base, so inserted facts can ride the
    /// semi-naive delta path and retractions can be repaired from the recorded
    /// supports. The standard chase (non-monotone activity check) and the core
    /// chase (folds facts away) are rejected with
    /// [`MaterializeError::UnsupportedVariant`]; failing and budget-exhausted
    /// runs are rejected too, since there is no model to maintain. The run is
    /// forced sequential — derivation logs are defined per applied step — which
    /// for EGD-free sets changes only wall-clock, never the outcome.
    pub fn materialize(&self, database: &Instance) -> Result<MaterializedRun, MaterializeError> {
        let variant = match self.variant {
            Variant::Oblivious(v) => v,
            Variant::Standard => return Err(MaterializeError::UnsupportedVariant("standard")),
            Variant::Core => return Err(MaterializeError::UnsupportedVariant("core")),
        };
        let mut recorder = DerivationRecorder::default();
        let mut sequential = self.clone();
        sequential.workers = 1;
        let outcome = sequential.run_observed(database, &mut recorder);
        match outcome {
            ChaseOutcome::Terminated { .. } => Ok(MaterializedRun {
                variant,
                database: database.clone(),
                outcome,
                log: recorder.into_log(),
            }),
            ChaseOutcome::Failed { violation, .. } => Err(MaterializeError::Failed(violation)),
            ChaseOutcome::BudgetExhausted { limit, .. } => {
                Err(MaterializeError::BudgetExhausted(limit))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::BudgetLimit;
    use crate::observer::TraceObserver;
    use chase_core::parser::parse_program;

    fn sigma1() -> chase_core::Program {
        parse_program(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            r3: E(?x, ?y) -> ?x = ?y.
            N(a).
            "#,
        )
        .unwrap()
    }

    #[test]
    fn all_four_variants_run_through_the_same_builder() {
        let p = sigma1();
        let budget = ChaseBudget::default()
            .with_max_steps(300)
            .with_max_rounds(20);
        let std_out = Chase::standard(&p.dependencies)
            .with_budget(budget)
            .run(&p.database);
        assert!(std_out.is_terminating());
        let sobl = Chase::semi_oblivious(&p.dependencies)
            .with_budget(budget)
            .run(&p.database);
        let obl = Chase::oblivious(&p.dependencies, ObliviousVariant::Oblivious)
            .with_budget(budget)
            .run(&p.database);
        // For Σ1 the oblivious chase keeps re-firing r1 on new nulls.
        assert!(!obl.is_terminating());
        assert!(sobl.stats().steps > 0, "the semi-oblivious session ran");
        let core = Chase::core(&p.dependencies)
            .with_budget(budget)
            .run(&p.database);
        assert!(core.is_terminating());
        assert_eq!(core.instance().unwrap().len(), 2);
    }

    #[test]
    fn budget_reports_the_tripped_limit_per_variant() {
        let p = sigma1();
        let steps = Chase::standard(&p.dependencies)
            .with_order(crate::StepOrder::Textual)
            .with_budget(ChaseBudget::unlimited().with_max_steps(50))
            .run(&p.database);
        assert_eq!(steps.exhausted_limit(), Some(BudgetLimit::Steps));

        let nulls = Chase::standard(&p.dependencies)
            .with_order(crate::StepOrder::Textual)
            .with_budget(ChaseBudget::unlimited().with_max_fresh_nulls(5))
            .run(&p.database);
        assert_eq!(nulls.exhausted_limit(), Some(BudgetLimit::FreshNulls));
        assert!(nulls.stats().nulls_created >= 5);

        let facts = Chase::oblivious(&p.dependencies, ObliviousVariant::Oblivious)
            .with_budget(ChaseBudget::unlimited().with_max_facts(8))
            .run(&p.database);
        assert_eq!(facts.exhausted_limit(), Some(BudgetLimit::Facts));
    }

    #[test]
    fn observer_reaches_every_variant() {
        let p = sigma1();
        let mut trace = TraceObserver::new();
        let out = Chase::standard(&p.dependencies).run_observed(&p.database, &mut trace);
        assert_eq!(trace.steps.len(), out.stats().steps);

        let mut core_trace = TraceObserver::new();
        let core = Chase::core(&p.dependencies).run_observed(&p.database, &mut core_trace);
        assert!(core.is_terminating());
        assert_eq!(core_trace.rounds.len(), core.stats().steps);
    }
}
