//! A [`ChaseObserver`] that feeds the [`chase_obs`] metrics layer.
//!
//! [`MetricsObserver`] turns the observer event stream into a
//! [`MetricsRegistry`] of counters and histograms, per-phase wall-clock
//! ([`PhaseTimes`]), the per-round fact/null curve and per-worker discovery
//! shard totals — everything needed to build a [`RunReport`] for the run.
//!
//! Phase attribution works by *marking*: the observer remembers the instant of
//! the previous phase boundary and charges the gap to the phase named by the
//! next event. `discovery_completed` closes a `discovery` span,
//! `merge_completed` a `merge` span, and `step_applied` / `round_completed`
//! charge the remainder to `apply`. Every nanosecond between the first and the
//! last event therefore lands in exactly one named phase, so
//! [`RunReport::attribution`] is 1.0 by construction for the observed window.
//!
//! ```
//! use chase_core::parser::parse_program;
//! use chase_engine::{Chase, MetricsObserver};
//!
//! let p = parse_program(
//!     r#"
//!     t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z).
//!     E(a, b). E(b, c). E(c, d).
//!     "#,
//! )
//! .unwrap();
//! let mut metrics = MetricsObserver::new();
//! let outcome = Chase::semi_oblivious(&p.dependencies)
//!     .run_observed(&p.database, &mut metrics);
//! let report = metrics.report("transitive-closure", &outcome);
//! assert_eq!(report.outcome, "terminated");
//! assert_eq!(report.stats.steps, outcome.stats().steps as u64);
//! assert!(!report.phases.is_empty());
//! ```

use crate::budget::BudgetLimit;
use crate::observer::ChaseObserver;
use crate::result::ChaseOutcome;
use crate::step::{StepEffect, Trigger};
use chase_core::{DiscoveryStats, NullSubstitution};
use chase_obs::{
    duration_ns, MetricsRegistry, PhaseTimes, ReportStats, RoundPoint, RunReport, WorkerReport,
};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Per-worker accumulation across every discovery event of a run.
#[derive(Clone, Copy, Debug, Default)]
struct WorkerAccum {
    batches: u64,
    facts_scanned: u64,
    triggers_found: u64,
    total_ns: u64,
}

/// A [`ChaseObserver`] that collects counters, phase timings, round curves and
/// worker shard totals, and renders them as a [`RunReport`].
///
/// Reports `observes_phases() == true`, so the runners emit the opt-in phase
/// events ([`discovery_completed`](ChaseObserver::discovery_completed),
/// [`merge_completed`](ChaseObserver::merge_completed),
/// [`budget_checked`](ChaseObserver::budget_checked)) when this observer is
/// attached. A fresh observer should be used per run: counters are cumulative.
#[derive(Clone, Debug)]
pub struct MetricsObserver {
    registry: MetricsRegistry,
    phases: PhaseTimes,
    rounds: Vec<RoundPoint>,
    workers: BTreeMap<usize, WorkerAccum>,
    tripped: Option<BudgetLimit>,
    /// The previous phase boundary; gaps between events are charged to the
    /// phase named by the *next* event (see the module docs).
    last_mark: Instant,
}

impl MetricsObserver {
    /// A fresh observer; the attribution clock starts now.
    pub fn new() -> Self {
        MetricsObserver {
            registry: MetricsRegistry::new(),
            phases: PhaseTimes::new(),
            rounds: Vec::new(),
            workers: BTreeMap::new(),
            tripped: None,
            last_mark: Instant::now(),
        }
    }

    /// Closes the span since the previous mark and returns its length.
    fn take_span(&mut self) -> Duration {
        let now = Instant::now();
        let span = now.duration_since(self.last_mark);
        self.last_mark = now;
        span
    }

    /// The collected counters and histograms.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Wall-clock attributed per phase (`discovery`, `merge`, `apply`).
    pub fn phases(&self) -> &PhaseTimes {
        &self.phases
    }

    /// The per-round `(round, facts, nulls)` curve.
    pub fn rounds(&self) -> &[RoundPoint] {
        &self.rounds
    }

    /// The budget limit reported tripped by the run, if any.
    pub fn tripped(&self) -> Option<BudgetLimit> {
        self.tripped
    }

    /// Per-worker discovery totals, one row per worker id seen.
    pub fn worker_reports(&self) -> Vec<WorkerReport> {
        self.workers
            .iter()
            .map(|(&worker, acc)| WorkerReport {
                worker: worker as u64,
                batches: acc.batches,
                facts_scanned: acc.facts_scanned,
                triggers_found: acc.triggers_found,
                total_ns: acc.total_ns,
            })
            .collect()
    }

    /// Renders everything collected, plus the outcome's statistics, as a
    /// [`RunReport`] named `name`. Analyzer verdicts can be appended to the
    /// returned report's `verdicts` afterwards.
    pub fn report(&self, name: impl Into<String>, outcome: &ChaseOutcome) -> RunReport {
        let stats = outcome.stats();
        let mut report = RunReport::new(name);
        report.outcome = match outcome {
            ChaseOutcome::Terminated { .. } => "terminated".to_string(),
            ChaseOutcome::Failed { .. } => "failed".to_string(),
            ChaseOutcome::BudgetExhausted { .. } => "budget_exhausted".to_string(),
        };
        report.tripped = outcome
            .exhausted_limit()
            .or(self.tripped)
            .map(|limit| limit.to_string());
        report.stats = ReportStats {
            steps: stats.steps as u64,
            facts_added: stats.facts_added as u64,
            nulls_created: stats.nulls_created as u64,
            null_replacements: stats.null_replacements as u64,
            elapsed_ns: duration_ns(stats.elapsed),
        };
        report.set_phases(&self.phases);
        report.rounds = self.rounds.clone();
        report.workers = self.worker_reports();
        report
    }
}

impl Default for MetricsObserver {
    fn default() -> Self {
        MetricsObserver::new()
    }
}

impl ChaseObserver for MetricsObserver {
    fn step_applied(&mut self, _trigger: &Trigger, effect: &StepEffect) {
        let span = self.take_span();
        self.phases.add("apply", span);
        self.registry.inc("chase.steps");
        match effect {
            StepEffect::AddedFacts { facts, fresh_nulls } => {
                self.registry.add("chase.facts_added", facts.len() as u64);
                self.registry.add("chase.fresh_nulls", *fresh_nulls as u64);
            }
            StepEffect::Substituted { .. } => self.registry.inc("chase.substitutions"),
            StepEffect::Failure => self.registry.inc("chase.failures"),
            StepEffect::NotApplicable => {}
        }
    }

    fn nulls_created(&mut self, count: usize) {
        self.registry.add("chase.nulls_created", count as u64);
    }

    fn egd_collapsed(&mut self, _gamma: &NullSubstitution) {
        self.registry.inc("chase.collapses");
    }

    fn round_completed(&mut self, round: usize, facts: usize) {
        // Residue since the last step (round bookkeeping, dedup, EGD passes)
        // is charged to `apply` so the round's wall-clock stays fully named.
        let span = self.take_span();
        self.phases.add("apply", span);
        self.registry.inc("chase.rounds");
        self.registry.set_gauge("chase.facts", facts as i64);
        self.rounds.push(RoundPoint {
            round: round as u64,
            facts: facts as u64,
            nulls: 0,
        });
    }

    fn round_nulls(&mut self, nulls: usize) {
        self.registry.set_gauge("chase.nulls", nulls as i64);
        if let Some(point) = self.rounds.last_mut() {
            point.nulls = nulls as u64;
        }
    }

    fn observes_phases(&self) -> bool {
        true
    }

    fn discovery_completed(&mut self, stats: &DiscoveryStats) {
        let span = self.take_span();
        self.phases.add("discovery", span);
        self.registry.record("discovery.batch", stats.elapsed);
        self.registry.inc("discovery.batches");
        self.registry
            .add("discovery.facts_scanned", stats.facts_scanned() as u64);
        self.registry
            .add("discovery.triggers_found", stats.triggers_found() as u64);
        for shard in &stats.shards {
            let acc = self.workers.entry(shard.worker).or_default();
            acc.batches += 1;
            acc.facts_scanned += shard.facts_scanned as u64;
            acc.triggers_found += shard.triggers_found as u64;
            acc.total_ns += duration_ns(shard.elapsed);
        }
    }

    fn merge_completed(&mut self, candidates: usize, deduped: usize, elapsed: Duration) {
        let span = self.take_span();
        self.phases.add("merge", span);
        self.registry.record("merge.pass", elapsed);
        self.registry.add("merge.candidates", candidates as u64);
        self.registry.add("merge.kept", deduped as u64);
        self.registry
            .add("merge.dropped", candidates.saturating_sub(deduped) as u64);
    }

    fn budget_checked(&mut self, tripped: Option<BudgetLimit>) {
        self.registry.inc("budget.checks");
        if let Some(limit) = tripped {
            self.tripped = Some(limit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::budget::ChaseBudget;
    use crate::session::Chase;
    use chase_core::parser::parse_program;

    fn transitive() -> chase_core::Program {
        parse_program(
            r#"
            t: E(?x, ?y), E(?y, ?z) -> E(?x, ?z).
            E(a, b). E(b, c). E(c, d). E(d, e).
            "#,
        )
        .unwrap()
    }

    #[test]
    fn metrics_agree_with_stats_on_a_sequential_run() {
        let p = transitive();
        let mut metrics = MetricsObserver::new();
        let outcome =
            Chase::semi_oblivious(&p.dependencies).run_observed(&p.database, &mut metrics);
        let stats = outcome.stats();
        assert_eq!(
            metrics.registry().counter("chase.steps"),
            stats.steps as u64
        );
        assert_eq!(
            metrics.registry().counter("chase.nulls_created"),
            stats.nulls_created as u64
        );
        assert!(metrics.registry().counter("discovery.batches") > 0);
        assert!(metrics.registry().counter("budget.checks") > 0);
        assert!(metrics.phases().get("discovery").is_some());
        assert!(metrics.phases().get("apply").is_some());
        // Round events come from the round-parallel and core paths only, so a
        // sequential step-at-a-time run has an empty curve.
        assert!(metrics.rounds().is_empty());
        // Sequential runs report their discovery as a single worker-0 shard.
        let workers = metrics.worker_reports();
        assert_eq!(workers.len(), 1);
        assert_eq!(workers[0].worker, 0);
    }

    #[test]
    fn parallel_run_reports_one_shard_row_per_worker() {
        let p = transitive();
        let mut metrics = MetricsObserver::new();
        let outcome = Chase::semi_oblivious(&p.dependencies)
            .workers(3)
            .run_observed(&p.database, &mut metrics);
        assert!(outcome.is_terminating());
        assert!(metrics.phases().get("merge").is_some());
        assert!(
            !metrics.rounds().is_empty(),
            "round-parallel emits the curve"
        );
        let workers = metrics.worker_reports();
        assert!(!workers.is_empty() && workers.len() <= 3);
        let scanned: u64 = workers.iter().map(|w| w.facts_scanned).sum();
        assert_eq!(
            scanned,
            metrics.registry().counter("discovery.facts_scanned")
        );
    }

    #[test]
    fn report_carries_outcome_stats_rounds_and_tripped_limit() {
        let p = parse_program(
            r#"
            r1: N(?x) -> exists ?y: E(?x, ?y).
            r2: E(?x, ?y) -> N(?y).
            N(a).
            "#,
        )
        .unwrap();
        let mut metrics = MetricsObserver::new();
        let outcome = Chase::semi_oblivious(&p.dependencies)
            .with_budget(ChaseBudget::unlimited().with_max_steps(10))
            .run_observed(&p.database, &mut metrics);
        let report = metrics.report("sigma-budget", &outcome);
        assert_eq!(report.name, "sigma-budget");
        assert_eq!(report.outcome, "budget_exhausted");
        assert!(report.tripped.is_some());
        assert_eq!(report.stats.steps, outcome.stats().steps as u64);
        assert_eq!(report.rounds.len(), metrics.rounds().len());
        // The report roundtrips through its JSON schema unchanged.
        let parsed = RunReport::parse(&report.to_json_string()).unwrap();
        assert_eq!(parsed, report);
    }
}
