//! Chase outcomes, statistics and failure diagnostics.

use crate::budget::BudgetLimit;
use crate::step::Trigger;
use chase_core::{DependencySet, GroundTerm, Instance};
use std::fmt;
use std::time::Duration;

/// Statistics collected during a chase run.
#[derive(Clone, Debug, Default, Eq)]
pub struct ChaseStats {
    /// Number of chase steps applied (for the core chase, number of rounds).
    pub steps: usize,
    /// Number of facts added by TGD steps.
    pub facts_added: usize,
    /// Number of EGD steps that replaced a null.
    pub null_replacements: usize,
    /// Number of fresh labeled nulls invented.
    pub nulls_created: usize,
    /// Wall-clock time of the run, stamped by the session dispatchers when the
    /// runner returns. **Excluded from equality**: two runs of the same chase
    /// are `==` whenever their logical effects agree, regardless of timing —
    /// the determinism contracts (sequential vs. round-parallel) compare stats
    /// directly and must not depend on the clock.
    pub elapsed: Duration,
}

/// Equality over the logical counters only; `elapsed` is deliberately ignored
/// (see the field docs).
impl PartialEq for ChaseStats {
    fn eq(&self, other: &Self) -> bool {
        self.steps == other.steps
            && self.facts_added == other.facts_added
            && self.null_replacements == other.null_replacements
            && self.nulls_created == other.nulls_created
    }
}

/// The diagnostic context of a failing chase (`⊥`): which EGD failed, under which
/// trigger, and which two distinct constants it tried to equate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EgdViolation {
    /// The failing EGD.
    pub dep: chase_core::DepId,
    /// The EGD's label, if it has one.
    pub label: Option<String>,
    /// The trigger (dependency and body homomorphism) whose step failed.
    pub trigger: Trigger,
    /// The left-hand value of the equality — a constant distinct from `right`.
    pub left: GroundTerm,
    /// The right-hand value of the equality — a constant distinct from `left`.
    pub right: GroundTerm,
}

impl EgdViolation {
    /// Builds the violation record for a failing trigger: resolves the EGD's equated
    /// variables under the trigger's assignment.
    pub fn from_trigger(sigma: &DependencySet, trigger: &Trigger) -> Self {
        let egd = sigma
            .get(trigger.dep)
            .as_egd()
            .expect("only EGD steps can fail");
        let left = trigger
            .assignment
            .get(egd.left)
            .expect("EGD body variables are bound");
        let right = trigger
            .assignment
            .get(egd.right)
            .expect("EGD body variables are bound");
        EgdViolation {
            dep: trigger.dep,
            label: egd.label.clone(),
            trigger: trigger.clone(),
            left,
            right,
        }
    }
}

impl fmt::Display for EgdViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.label {
            Some(label) => write!(
                f,
                "EGD {label} (#{}) tried to equate {} and {}",
                self.dep.0, self.left, self.right
            ),
            None => write!(
                f,
                "EGD #{} tried to equate {} and {}",
                self.dep.0, self.left, self.right
            ),
        }
    }
}

/// The outcome of running a chase variant on a database with a dependency set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaseOutcome {
    /// The sequence is terminating and successful; the result is a (universal) model.
    Terminated {
        /// The final instance.
        instance: Instance,
        /// Run statistics.
        stats: ChaseStats,
    },
    /// The sequence is failing (`⊥`): an EGD required equating two distinct constants.
    Failed {
        /// The failing EGD, its trigger and the two constants it tried to equate.
        violation: EgdViolation,
        /// Run statistics up to the failing step.
        stats: ChaseStats,
    },
    /// A resource budget was exhausted before the sequence terminated: the run is
    /// inconclusive (the sequence may be infinite).
    BudgetExhausted {
        /// Which budget limit tripped.
        limit: BudgetLimit,
        /// The instance reached when the budget ran out.
        instance: Instance,
        /// Run statistics.
        stats: ChaseStats,
    },
}

impl ChaseOutcome {
    /// Returns `true` iff the chase terminated successfully.
    pub fn is_terminating(&self) -> bool {
        matches!(self, ChaseOutcome::Terminated { .. })
    }

    /// Returns `true` iff the chase failed (`⊥`).
    pub fn is_failing(&self) -> bool {
        matches!(self, ChaseOutcome::Failed { .. })
    }

    /// Returns `true` iff a budget limit was exhausted.
    pub fn is_budget_exhausted(&self) -> bool {
        matches!(self, ChaseOutcome::BudgetExhausted { .. })
    }

    /// The final instance of a terminated run (also available for exhausted runs).
    pub fn instance(&self) -> Option<&Instance> {
        match self {
            ChaseOutcome::Terminated { instance, .. }
            | ChaseOutcome::BudgetExhausted { instance, .. } => Some(instance),
            ChaseOutcome::Failed { .. } => None,
        }
    }

    /// Consumes the outcome, returning the final instance of a terminated run
    /// (also available for exhausted runs) without cloning it — the handoff
    /// used when a run's model becomes a maintained materialization.
    pub fn into_instance(self) -> Option<Instance> {
        match self {
            ChaseOutcome::Terminated { instance, .. }
            | ChaseOutcome::BudgetExhausted { instance, .. } => Some(instance),
            ChaseOutcome::Failed { .. } => None,
        }
    }

    /// The run statistics.
    pub fn stats(&self) -> &ChaseStats {
        match self {
            ChaseOutcome::Terminated { stats, .. }
            | ChaseOutcome::Failed { stats, .. }
            | ChaseOutcome::BudgetExhausted { stats, .. } => stats,
        }
    }

    /// Mutable access for the session dispatchers (wall-clock stamping).
    pub(crate) fn stats_mut(&mut self) -> &mut ChaseStats {
        match self {
            ChaseOutcome::Terminated { stats, .. }
            | ChaseOutcome::Failed { stats, .. }
            | ChaseOutcome::BudgetExhausted { stats, .. } => stats,
        }
    }

    /// The failure diagnostics, if the chase failed.
    pub fn violation(&self) -> Option<&EgdViolation> {
        match self {
            ChaseOutcome::Failed { violation, .. } => Some(violation),
            _ => None,
        }
    }

    /// The tripped budget limit, if a budget was exhausted.
    pub fn exhausted_limit(&self) -> Option<BudgetLimit> {
        match self {
            ChaseOutcome::BudgetExhausted { limit, .. } => Some(*limit),
            _ => None,
        }
    }
}

impl fmt::Display for ChaseOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseOutcome::Terminated { instance, stats } => write!(
                f,
                "terminated after {} steps with {} facts",
                stats.steps,
                instance.len()
            ),
            ChaseOutcome::Failed { violation, stats } => {
                write!(f, "failed (⊥) after {} steps: {violation}", stats.steps)
            }
            ChaseOutcome::BudgetExhausted { limit, stats, .. } => {
                write!(f, "budget exhausted ({limit}) after {} steps", stats.steps)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::parser::parse_program;
    use chase_core::Assignment;

    fn sample_violation() -> EgdViolation {
        let p = parse_program(
            r#"
            k: P(?x, ?y), P(?x, ?z) -> ?y = ?z.
            P(a, b). P(a, c).
            "#,
        )
        .unwrap();
        let egd = p.dependencies.get(chase_core::DepId(0)).as_egd().unwrap();
        let assignment = Assignment::from_pairs([
            (
                chase_core::Variable::new("x"),
                GroundTerm::Const(chase_core::Constant::new("a")),
            ),
            (egd.left, GroundTerm::Const(chase_core::Constant::new("b"))),
            (egd.right, GroundTerm::Const(chase_core::Constant::new("c"))),
        ]);
        EgdViolation::from_trigger(
            &p.dependencies,
            &Trigger {
                dep: chase_core::DepId(0),
                assignment,
            },
        )
    }

    #[test]
    fn outcome_accessors() {
        let t = ChaseOutcome::Terminated {
            instance: Instance::new(),
            stats: ChaseStats::default(),
        };
        assert!(t.is_terminating());
        assert!(!t.is_failing());
        assert!(t.instance().is_some());
        assert!(t.violation().is_none());
        assert!(t.exhausted_limit().is_none());

        let fail = ChaseOutcome::Failed {
            violation: sample_violation(),
            stats: ChaseStats {
                steps: 3,
                ..Default::default()
            },
        };
        assert!(fail.is_failing());
        assert!(fail.instance().is_none());
        assert_eq!(fail.stats().steps, 3);
        assert_eq!(fail.violation().unwrap().dep, chase_core::DepId(0));

        let ex = ChaseOutcome::BudgetExhausted {
            limit: BudgetLimit::Steps,
            instance: Instance::new(),
            stats: ChaseStats::default(),
        };
        assert!(ex.is_budget_exhausted());
        assert!(!ex.is_terminating());
        assert_eq!(ex.exhausted_limit(), Some(BudgetLimit::Steps));
    }

    #[test]
    fn stats_equality_ignores_elapsed() {
        let logical = ChaseStats {
            steps: 2,
            facts_added: 3,
            null_replacements: 0,
            nulls_created: 1,
            elapsed: Duration::ZERO,
        };
        let timed = ChaseStats {
            elapsed: Duration::from_secs(5),
            ..logical.clone()
        };
        assert_eq!(logical, timed);
        let mut different = timed;
        different.steps += 1;
        assert_ne!(logical, different);
    }

    #[test]
    fn violation_display_names_the_egd_and_constants() {
        let v = sample_violation();
        let rendered = v.to_string();
        assert!(rendered.contains('k'), "label rendered: {rendered}");
        assert!(rendered.contains('b') && rendered.contains('c'));

        let fail = ChaseOutcome::Failed {
            violation: v,
            stats: ChaseStats {
                steps: 7,
                ..Default::default()
            },
        };
        let rendered = fail.to_string();
        assert!(rendered.contains('7'));
        assert!(rendered.contains("equate"));
    }

    #[test]
    fn exhausted_display_names_the_limit() {
        let ex = ChaseOutcome::BudgetExhausted {
            limit: BudgetLimit::FreshNulls,
            instance: Instance::new(),
            stats: ChaseStats::default(),
        };
        assert!(ex.to_string().contains("max_fresh_nulls"));
    }
}
