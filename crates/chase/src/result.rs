//! Chase outcomes and statistics.

use chase_core::Instance;
use std::fmt;

/// Statistics collected during a chase run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Number of chase steps applied (for the core chase, number of rounds).
    pub steps: usize,
    /// Number of facts added by TGD steps.
    pub facts_added: usize,
    /// Number of EGD steps that replaced a null.
    pub null_replacements: usize,
    /// Number of fresh labeled nulls invented.
    pub nulls_created: usize,
}

/// The outcome of running a chase variant on a database with a dependency set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaseOutcome {
    /// The sequence is terminating and successful; the result is a (universal) model.
    Terminated {
        /// The final instance.
        instance: Instance,
        /// Run statistics.
        stats: ChaseStats,
    },
    /// The sequence is failing (`⊥`): an EGD required equating two distinct constants.
    Failed {
        /// Run statistics up to the failing step.
        stats: ChaseStats,
    },
    /// The step budget was exhausted before the sequence terminated: the run is
    /// inconclusive (the sequence may be infinite).
    BudgetExhausted {
        /// The instance reached when the budget ran out.
        instance: Instance,
        /// Run statistics.
        stats: ChaseStats,
    },
}

impl ChaseOutcome {
    /// Returns `true` iff the chase terminated successfully.
    pub fn is_terminating(&self) -> bool {
        matches!(self, ChaseOutcome::Terminated { .. })
    }

    /// Returns `true` iff the chase failed (`⊥`).
    pub fn is_failing(&self) -> bool {
        matches!(self, ChaseOutcome::Failed { .. })
    }

    /// Returns `true` iff the step budget was exhausted.
    pub fn is_budget_exhausted(&self) -> bool {
        matches!(self, ChaseOutcome::BudgetExhausted { .. })
    }

    /// The final instance of a terminated run (also available for exhausted runs).
    pub fn instance(&self) -> Option<&Instance> {
        match self {
            ChaseOutcome::Terminated { instance, .. }
            | ChaseOutcome::BudgetExhausted { instance, .. } => Some(instance),
            ChaseOutcome::Failed { .. } => None,
        }
    }

    /// The run statistics.
    pub fn stats(&self) -> &ChaseStats {
        match self {
            ChaseOutcome::Terminated { stats, .. }
            | ChaseOutcome::Failed { stats }
            | ChaseOutcome::BudgetExhausted { stats, .. } => stats,
        }
    }
}

impl fmt::Display for ChaseOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseOutcome::Terminated { instance, stats } => write!(
                f,
                "terminated after {} steps with {} facts",
                stats.steps,
                instance.len()
            ),
            ChaseOutcome::Failed { stats } => {
                write!(f, "failed (⊥) after {} steps", stats.steps)
            }
            ChaseOutcome::BudgetExhausted { stats, .. } => {
                write!(f, "budget exhausted after {} steps", stats.steps)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_accessors() {
        let t = ChaseOutcome::Terminated {
            instance: Instance::new(),
            stats: ChaseStats::default(),
        };
        assert!(t.is_terminating());
        assert!(!t.is_failing());
        assert!(t.instance().is_some());

        let fail = ChaseOutcome::Failed {
            stats: ChaseStats {
                steps: 3,
                ..Default::default()
            },
        };
        assert!(fail.is_failing());
        assert!(fail.instance().is_none());
        assert_eq!(fail.stats().steps, 3);

        let ex = ChaseOutcome::BudgetExhausted {
            instance: Instance::new(),
            stats: ChaseStats::default(),
        };
        assert!(ex.is_budget_exhausted());
        assert!(!ex.is_terminating());
    }

    #[test]
    fn display_mentions_steps() {
        let fail = ChaseOutcome::Failed {
            stats: ChaseStats {
                steps: 7,
                ..Default::default()
            },
        };
        assert!(fail.to_string().contains('7'));
    }
}
