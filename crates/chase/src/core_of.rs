//! Core computation: the smallest retract of an instance.
//!
//! A subset `C ⊆ J` is a core of `J` if there is a homomorphism from `J` to `C` but
//! none from `J` to a proper subset of `C`. Cores are unique up to isomorphism. The
//! algorithm used here folds labeled nulls one at a time: it repeatedly searches for an
//! endomorphism that maps some null to a different term while keeping every other null
//! fixed, and replaces the instance by its image. This is the classical retract
//! computation used by core-chase prototypes; it is exact on the instances produced in
//! this workspace (see DESIGN.md §4 for the discussion).

use chase_core::homomorphism::{find_homomorphism_extending, Assignment};
use chase_core::{Atom, Fact, GroundTerm, Instance, NullValue, Term, Variable};

fn null_var(n: NullValue) -> Variable {
    Variable::new(&format!("__fold_{}", n.0))
}

/// Converts the facts of an instance into atoms in which every labeled null is replaced
/// by a designated variable, so that an endomorphism search can move nulls.
fn atoms_with_null_vars(instance: &Instance) -> Vec<Atom> {
    instance
        .facts()
        .map(|f| {
            f.to_atom().map_terms(|t| match t {
                Term::Null(n) => Term::Var(null_var(*n)),
                other => *other,
            })
        })
        .collect()
}

/// Tries to fold away a single null: find an endomorphism `h : J → J` with
/// `h(target) ≠ target` (other nulls are free to move as well) whose image is strictly
/// smaller than `J`, measured lexicographically by `(#facts, #nulls)`.
fn fold_null(instance: &Instance, target: NullValue) -> Option<Instance> {
    let atoms = atoms_with_null_vars(instance);
    // Candidate images for the folded null: any ground term of the instance except the
    // null itself. We try constants first (more likely to reach the core quickly).
    let mut candidates: Vec<GroundTerm> = instance
        .constants()
        .into_iter()
        .map(GroundTerm::Const)
        .collect();
    candidates.extend(
        instance
            .nulls()
            .into_iter()
            .filter(|&n| n != target)
            .map(GroundTerm::Null),
    );
    for image in candidates {
        let mut attempt = Assignment::new();
        attempt.bind(null_var(target), image);
        if let Some(h) = find_homomorphism_extending(&atoms, instance, &attempt) {
            // The endomorphism exists: apply it to obtain the image.
            let mut folded = Instance::new();
            for fact in instance.facts() {
                let new_terms: Vec<GroundTerm> = fact
                    .terms
                    .iter()
                    .map(|t| match t {
                        GroundTerm::Null(n) => h
                            .get(null_var(*n))
                            .expect("every null variable is bound by the endomorphism"),
                        other => *other,
                    })
                    .collect();
                folded.insert(Fact {
                    predicate: fact.predicate,
                    terms: new_terms,
                });
            }
            let shrinks = folded.len() < instance.len()
                || (folded.len() == instance.len()
                    && folded.nulls().len() < instance.nulls().len());
            if shrinks {
                return Some(folded);
            }
        }
    }
    None
}

/// Computes the core of an instance by iterated null folding.
pub fn core_of(instance: &Instance) -> Instance {
    let mut current = instance.clone();
    loop {
        let nulls = current.nulls();
        let mut progressed = false;
        for n in nulls {
            if let Some(folded) = fold_null(&current, n) {
                current = folded;
                progressed = true;
                break;
            }
        }
        if !progressed {
            return current;
        }
    }
}

/// Returns `true` iff the instance is its own core (no null can be folded away).
pub fn is_core(instance: &Instance) -> bool {
    instance
        .nulls()
        .into_iter()
        .all(|n| fold_null(instance, n).is_none())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::Constant;

    fn gc(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }
    fn gn(i: u64) -> GroundTerm {
        GroundTerm::Null(NullValue(i))
    }

    #[test]
    fn database_is_its_own_core() {
        let d = Instance::from_facts(vec![
            Fact::from_parts("E", vec![gc("a"), gc("b")]),
            Fact::from_parts("E", vec![gc("b"), gc("c")]),
        ]);
        assert!(is_core(&d));
        assert_eq!(core_of(&d), d);
    }

    #[test]
    fn redundant_null_fact_is_folded_away() {
        // {E(a, b), E(a, η1)}: η1 folds onto b, core is {E(a, b)}.
        let j = Instance::from_facts(vec![
            Fact::from_parts("E", vec![gc("a"), gc("b")]),
            Fact::from_parts("E", vec![gc("a"), gn(1)]),
        ]);
        let core = core_of(&j);
        assert_eq!(core.len(), 1);
        assert!(core.contains(&Fact::from_parts("E", vec![gc("a"), gc("b")])));
        assert!(!is_core(&j));
    }

    #[test]
    fn example3_universal_model_is_a_core() {
        // J1 = {P(a,b), Q(c,d), E(a, η1), E(η2, d)} is a core: η1 cannot fold onto d
        // (that would require E(a, d) to be present), η2 cannot fold onto a.
        let j1 = Instance::from_facts(vec![
            Fact::from_parts("P", vec![gc("a"), gc("b")]),
            Fact::from_parts("Q", vec![gc("c"), gc("d")]),
            Fact::from_parts("E", vec![gc("a"), gn(1)]),
            Fact::from_parts("E", vec![gn(2), gc("d")]),
        ]);
        assert!(is_core(&j1));
        assert_eq!(core_of(&j1), j1);
    }

    #[test]
    fn chain_of_nulls_collapses_onto_constants() {
        // {E(a, η1), E(η1, η2), E(a, b), E(b, c)}: η1 → b, then η2 → c.
        let j = Instance::from_facts(vec![
            Fact::from_parts("E", vec![gc("a"), gn(1)]),
            Fact::from_parts("E", vec![gn(1), gn(2)]),
            Fact::from_parts("E", vec![gc("a"), gc("b")]),
            Fact::from_parts("E", vec![gc("b"), gc("c")]),
        ]);
        let core = core_of(&j);
        assert_eq!(core.len(), 2);
        assert!(core.nulls().is_empty());
    }

    #[test]
    fn nulls_that_carry_information_are_kept() {
        // {E(a, η1)} alone: η1 has nothing to fold onto, the instance is a core.
        let j = Instance::from_facts(vec![Fact::from_parts("E", vec![gc("a"), gn(1)])]);
        assert!(is_core(&j));
    }

    #[test]
    fn symmetric_pair_of_nulls_folds_to_one_fact() {
        // {R(η1, η2), R(η2, η1)}: the core is a single fact R(η, η)?  No — folding
        // η1 ↦ η2 requires R(η2, η2) to be present, which it is not, so both facts stay.
        let j = Instance::from_facts(vec![
            Fact::from_parts("R", vec![gn(1), gn(2)]),
            Fact::from_parts("R", vec![gn(2), gn(1)]),
        ]);
        assert!(is_core(&j));
        // Adding the loop R(η3, η3) makes everything fold onto it.
        let mut j2 = j.clone();
        j2.insert(Fact::from_parts("R", vec![gn(3), gn(3)]));
        let core = core_of(&j2);
        assert_eq!(core.len(), 1);
    }

    #[test]
    fn empty_instance_core() {
        let e = Instance::new();
        assert!(is_core(&e));
        assert!(core_of(&e).is_empty());
    }
}
