//! Core computation: the smallest retract of an instance, by id-based null folding.
//!
//! A subset `C ⊆ J` is a core of `J` if there is a homomorphism from `J` to `C` but
//! none from `J` to a proper subset of `C`. Cores are unique up to isomorphism. The
//! algorithm used here folds labeled nulls one at a time: it repeatedly searches for an
//! endomorphism that maps some null to a different term while keeping the instance's
//! constants fixed, and replaces the instance by its image. This is the classical
//! retract computation used by core-chase prototypes; it is exact on the instances
//! produced in this workspace.
//!
//! ## Incremental folding over the fact store
//!
//! The folding loop works on [`FactId`]s over the instance's arena and memoises
//! everything that is a function of the instance *version* (the state between two
//! successful folds) instead of recomputing it per fold attempt:
//!
//! * the null-variable atom list and the endomorphism search (with its transient
//!   per-(predicate, position) candidate index) are built **once per version** and
//!   reused across every `(null, candidate-image)` attempt — previously each attempt
//!   re-derived the atoms and re-indexed the whole instance;
//! * the fold candidates (constants first, then nulls) and the per-null occurrence
//!   lists are computed **once per version**;
//! * when an endomorphism is found, the image is constructed **incrementally**: only
//!   the facts that mention a *moved* null (located through the occurrence lists) are
//!   rewritten and re-interned; all other facts keep their ids. The shrink test
//!   compares id-set sizes and the null counts follow from the endomorphism itself —
//!   no full instance is ever re-materialised per attempt.

use chase_core::homomorphism::Assignment;
use chase_core::pool::{self, ScopedJob};
use chase_core::{
    Atom, FactId, GroundTerm, HomomorphismSearch, Instance, NullValue, Predicate, Term, Variable,
};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::ops::ControlFlow;

fn null_var(n: NullValue) -> Variable {
    Variable::new(&format!("__fold_{}", n.0))
}

/// Everything about the current instance version the fold attempts share: the
/// null-variable atoms, the sorted null list, the per-null occurrence lists and the
/// candidate images. Rebuilt only after a successful fold.
struct FoldVersion {
    /// The instance's facts as atoms in which every labeled null is replaced by its
    /// designated `__fold_k` variable (deterministic sorted-fact order).
    atoms: Vec<Atom>,
    /// The nulls of the instance, ascending.
    nulls: Vec<NullValue>,
    /// For each null, the ids of the live facts mentioning it.
    occurrences: HashMap<NullValue, Vec<FactId>>,
    /// Candidate images for a folded null: constants first (more likely to reach
    /// the core quickly), then nulls. The target itself is skipped per attempt.
    candidates: Vec<GroundTerm>,
}

impl FoldVersion {
    fn build(instance: &Instance) -> FoldVersion {
        let store = instance.store();
        let mut atoms = Vec::with_capacity(instance.len());
        let mut occurrences: HashMap<NullValue, Vec<FactId>> = HashMap::new();
        for id in instance.sorted_fact_ids() {
            let mut seen_in_fact: Vec<NullValue> = Vec::new();
            atoms.push(Atom {
                predicate: store.predicate_of(id),
                terms: store
                    .terms(id)
                    .iter()
                    .map(|t| match t {
                        GroundTerm::Null(n) => {
                            if !seen_in_fact.contains(&n) {
                                seen_in_fact.push(n);
                                occurrences.entry(n).or_default().push(id);
                            }
                            Term::Var(null_var(n))
                        }
                        GroundTerm::Const(c) => Term::Const(c),
                    })
                    .collect(),
            });
        }
        let nulls: Vec<NullValue> = occurrences
            .keys()
            .copied()
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut candidates: Vec<GroundTerm> = instance
            .constants()
            .into_iter()
            .map(GroundTerm::Const)
            .collect();
        candidates.extend(nulls.iter().copied().map(GroundTerm::Null));
        FoldVersion {
            atoms,
            nulls,
            occurrences,
            candidates,
        }
    }
}

/// The committed outcome of a successful, shrinking fold: the affected fact ids to
/// drop and the rewritten images to insert. Only facts mentioning a moved null are
/// materialised — everything else keeps its id.
struct FoldPlan {
    affected: Vec<FactId>,
    images: Vec<(Predicate, Vec<GroundTerm>)>,
}

/// Tries to fold away `target` within the given version: find an endomorphism
/// `h : J → J` with `h(target) ≠ target` (other nulls are free to move as well)
/// whose image is strictly smaller than `J`, measured lexicographically by
/// `(#facts, #nulls)`. Returns the incremental plan for the first candidate image
/// that shrinks.
fn try_fold(
    instance: &Instance,
    version: &FoldVersion,
    search: &HomomorphismSearch<'_>,
    target: NullValue,
) -> Option<FoldPlan> {
    for &image in &version.candidates {
        if image == GroundTerm::Null(target) {
            continue;
        }
        let mut attempt = Assignment::new();
        attempt.bind(null_var(target), image);
        let Some(h) = search.for_each_extending(&attempt, &mut |h| ControlFlow::Break(h.clone()))
        else {
            continue;
        };
        // The endomorphism maps every null; collect where each one goes and which
        // ones actually move.
        let mapping: HashMap<NullValue, GroundTerm> = version
            .nulls
            .iter()
            .map(|&n| {
                let img = h
                    .get(null_var(n))
                    .expect("every null variable is bound by the endomorphism");
                (n, img)
            })
            .collect();
        let moved: Vec<NullValue> = version
            .nulls
            .iter()
            .copied()
            .filter(|&n| mapping[&n] != GroundTerm::Null(n))
            .collect();
        // Shrink test on nulls: the image's nulls are exactly the null-valued
        // h-images of the current nulls.
        let new_null_count = version
            .nulls
            .iter()
            .filter_map(|&n| mapping[&n].as_null())
            .collect::<HashSet<_>>()
            .len();
        // Incremental image: only facts mentioning a moved null change.
        let mut affected_set: HashSet<FactId> = HashSet::new();
        for n in &moved {
            if let Some(ids) = version.occurrences.get(n) {
                affected_set.extend(ids.iter().copied());
            }
        }
        let mut affected: Vec<FactId> = affected_set.iter().copied().collect();
        affected.sort_unstable();
        let store = instance.store();
        let mut images: Vec<(Predicate, Vec<GroundTerm>)> = Vec::with_capacity(affected.len());
        // Count how many image facts are genuinely new w.r.t. the surviving
        // (unaffected) facts, deduplicating images among themselves.
        let mut fresh = 0usize;
        let mut seen_images: HashSet<(Predicate, Vec<GroundTerm>)> = HashSet::new();
        for &id in &affected {
            let predicate = store.predicate_of(id);
            let terms: Vec<GroundTerm> = store
                .terms(id)
                .iter()
                .map(|t| match t {
                    GroundTerm::Null(n) => mapping[&n],
                    c => c,
                })
                .collect();
            let survives_elsewhere = match store.lookup(predicate, &terms) {
                Some(img_id) => instance.contains_id(img_id) && !affected_set.contains(&img_id),
                None => false,
            };
            if !survives_elsewhere && seen_images.insert((predicate, terms.clone())) {
                fresh += 1;
            }
            images.push((predicate, terms));
        }
        let new_len = instance.len() - affected.len() + fresh;
        let shrinks = new_len < instance.len()
            || (new_len == instance.len() && new_null_count < version.nulls.len());
        if shrinks {
            return Some(FoldPlan { affected, images });
        }
    }
    None
}

/// Finds the first shrinking fold of this version: the per-null candidate
/// sweeps are independent read-only searches, so with `workers > 1` they run
/// concurrently on the persistent pool ([`chase_core::pool`]) in **waves** of
/// `workers` nulls, ascending. The wave's results are inspected in null order
/// and the first success wins — exactly the null the sequential sweep would
/// have chosen — so the applied plan (and therefore the whole core) is
/// bitwise identical at every worker count.
fn find_first_fold(
    instance: &Instance,
    version: &FoldVersion,
    search: &HomomorphismSearch<'_>,
    workers: usize,
) -> Option<FoldPlan> {
    let workers = workers.max(1);
    if workers == 1 || version.nulls.len() < 2 {
        for &target in &version.nulls {
            if let Some(plan) = try_fold(instance, version, search, target) {
                return Some(plan);
            }
        }
        return None;
    }
    for wave in version.nulls.chunks(workers) {
        let jobs: Vec<ScopedJob<'_, Option<FoldPlan>>> = wave
            .iter()
            .map(|&target| {
                Box::new(move || try_fold(instance, version, search, target))
                    as ScopedJob<'_, Option<FoldPlan>>
            })
            .collect();
        for plan in pool::with_workers(workers).run_jobs(jobs) {
            if plan.is_some() {
                return plan;
            }
        }
    }
    None
}

/// Runs one fold pass over the instance: tries every null in ascending order and
/// applies the first shrinking fold in place. Returns `true` iff a fold was applied.
fn fold_once(current: &mut Instance, workers: usize) -> bool {
    let version = FoldVersion::build(current);
    if version.nulls.is_empty() {
        return false;
    }
    let plan = {
        // One search (and one transient candidate index) serves every
        // (null, candidate) attempt of this version, across all workers.
        let search = HomomorphismSearch::new(&version.atoms, current);
        find_first_fold(current, &version, &search, workers)
    };
    match plan {
        Some(FoldPlan { affected, images }) => {
            for id in affected {
                current.remove_id(id);
            }
            for (predicate, terms) in images {
                current.insert_parts(predicate, &terms);
            }
            true
        }
        None => false,
    }
}

/// Computes the core of an instance by iterated, memoised null folding.
pub fn core_of(instance: &Instance) -> Instance {
    core_of_with_workers(instance, 1)
}

/// [`core_of`] with the endomorphism search over per-null fold candidates
/// parallelised across up to `workers` pool threads (see [`find_first_fold`]
/// for why the result is identical at every worker count; `workers == 0` is
/// normalized to 1).
pub fn core_of_with_workers(instance: &Instance, workers: usize) -> Instance {
    let mut current = instance.clone();
    while fold_once(&mut current, workers) {}
    current
}

/// Returns `true` iff the instance is its own core (no null can be folded away).
pub fn is_core(instance: &Instance) -> bool {
    let version = FoldVersion::build(instance);
    if version.nulls.is_empty() {
        return true;
    }
    let search = HomomorphismSearch::new(&version.atoms, instance);
    version
        .nulls
        .iter()
        .all(|&n| try_fold(instance, &version, &search, n).is_none())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::{Constant, Fact};

    fn gc(s: &str) -> GroundTerm {
        GroundTerm::Const(Constant::new(s))
    }
    fn gn(i: u64) -> GroundTerm {
        GroundTerm::Null(NullValue(i))
    }

    #[test]
    fn database_is_its_own_core() {
        let d = Instance::from_facts(vec![
            Fact::from_parts("E", vec![gc("a"), gc("b")]),
            Fact::from_parts("E", vec![gc("b"), gc("c")]),
        ]);
        assert!(is_core(&d));
        assert_eq!(core_of(&d), d);
    }

    #[test]
    fn redundant_null_fact_is_folded_away() {
        // {E(a, b), E(a, η1)}: η1 folds onto b, core is {E(a, b)}.
        let j = Instance::from_facts(vec![
            Fact::from_parts("E", vec![gc("a"), gc("b")]),
            Fact::from_parts("E", vec![gc("a"), gn(1)]),
        ]);
        let core = core_of(&j);
        assert_eq!(core.len(), 1);
        assert!(core.contains(&Fact::from_parts("E", vec![gc("a"), gc("b")])));
        assert!(!is_core(&j));
    }

    #[test]
    fn example3_universal_model_is_a_core() {
        // J1 = {P(a,b), Q(c,d), E(a, η1), E(η2, d)} is a core: η1 cannot fold onto d
        // (that would require E(a, d) to be present), η2 cannot fold onto a.
        let j1 = Instance::from_facts(vec![
            Fact::from_parts("P", vec![gc("a"), gc("b")]),
            Fact::from_parts("Q", vec![gc("c"), gc("d")]),
            Fact::from_parts("E", vec![gc("a"), gn(1)]),
            Fact::from_parts("E", vec![gn(2), gc("d")]),
        ]);
        assert!(is_core(&j1));
        assert_eq!(core_of(&j1), j1);
    }

    #[test]
    fn chain_of_nulls_collapses_onto_constants() {
        // {E(a, η1), E(η1, η2), E(a, b), E(b, c)}: η1 → b, then η2 → c.
        let j = Instance::from_facts(vec![
            Fact::from_parts("E", vec![gc("a"), gn(1)]),
            Fact::from_parts("E", vec![gn(1), gn(2)]),
            Fact::from_parts("E", vec![gc("a"), gc("b")]),
            Fact::from_parts("E", vec![gc("b"), gc("c")]),
        ]);
        let core = core_of(&j);
        assert_eq!(core.len(), 2);
        assert!(core.nulls().is_empty());
    }

    #[test]
    fn nulls_that_carry_information_are_kept() {
        // {E(a, η1)} alone: η1 has nothing to fold onto, the instance is a core.
        let j = Instance::from_facts(vec![Fact::from_parts("E", vec![gc("a"), gn(1)])]);
        assert!(is_core(&j));
    }

    #[test]
    fn symmetric_pair_of_nulls_folds_to_one_fact() {
        // {R(η1, η2), R(η2, η1)}: the core is a single fact R(η, η)?  No — folding
        // η1 ↦ η2 requires R(η2, η2) to be present, which it is not, so both facts stay.
        let j = Instance::from_facts(vec![
            Fact::from_parts("R", vec![gn(1), gn(2)]),
            Fact::from_parts("R", vec![gn(2), gn(1)]),
        ]);
        assert!(is_core(&j));
        // Adding the loop R(η3, η3) makes everything fold onto it.
        let mut j2 = j.clone();
        j2.insert(Fact::from_parts("R", vec![gn(3), gn(3)]));
        let core = core_of(&j2);
        assert_eq!(core.len(), 1);
    }

    #[test]
    fn empty_instance_core() {
        let e = Instance::new();
        assert!(is_core(&e));
        assert!(core_of(&e).is_empty());
    }

    #[test]
    fn repeated_nulls_within_a_fact_fold_correctly() {
        // {R(η1, η1), R(a, a)}: η1 folds onto a.
        let j = Instance::from_facts(vec![
            Fact::from_parts("R", vec![gn(1), gn(1)]),
            Fact::from_parts("R", vec![gc("a"), gc("a")]),
        ]);
        let core = core_of(&j);
        assert_eq!(core.len(), 1);
        assert!(core.nulls().is_empty());
    }

    #[test]
    fn simultaneous_multi_null_moves_are_handled() {
        // {E(η1, η2), E(a, b)}: the single endomorphism η1 → a, η2 → b moves two
        // nulls at once; both facts mentioning them fold onto the constant fact.
        let j = Instance::from_facts(vec![
            Fact::from_parts("E", vec![gn(1), gn(2)]),
            Fact::from_parts("E", vec![gc("a"), gc("b")]),
        ]);
        let core = core_of(&j);
        assert_eq!(core.len(), 1);
        assert!(core.nulls().is_empty());
        assert!(core.contains(&Fact::from_parts("E", vec![gc("a"), gc("b")])));
    }

    #[test]
    fn parallel_fold_search_is_byte_identical_at_every_worker_count() {
        // Several foldable nulls plus kept ones: the wave-parallel search must
        // pick the same fold at every worker count (first success in ascending
        // null order), so the cores are equal as instances *and* fold history
        // (same surviving ids → same sorted fact order).
        let j = Instance::from_facts(vec![
            Fact::from_parts("E", vec![gc("a"), gc("b")]),
            Fact::from_parts("E", vec![gc("a"), gn(1)]),
            Fact::from_parts("E", vec![gn(2), gn(3)]),
            Fact::from_parts("E", vec![gc("b"), gc("c")]),
            Fact::from_parts("R", vec![gn(4), gn(5)]),
            Fact::from_parts("R", vec![gn(5), gn(4)]),
        ]);
        let sequential = core_of(&j);
        assert!(sequential.nulls().len() < j.nulls().len());
        // `workers(0)` is defined as sequential.
        for workers in [0, 2, 3, 4, 7] {
            let parallel = core_of_with_workers(&j, workers);
            assert_eq!(sequential, parallel, "core diverged at {workers} workers");
            assert_eq!(
                sequential.sorted_fact_ids(),
                parallel.sorted_fact_ids(),
                "fold history diverged at {workers} workers"
            );
        }
    }

    #[test]
    fn core_is_reached_regardless_of_store_history() {
        // Insert/remove churn before folding must not affect the result: the live
        // set, not the arena history, defines the instance.
        let mut j = Instance::new();
        j.insert(Fact::from_parts("E", vec![gc("a"), gc("b")]));
        j.insert(Fact::from_parts("E", vec![gc("x"), gc("y")]));
        j.remove(&Fact::from_parts("E", vec![gc("x"), gc("y")]));
        j.insert(Fact::from_parts("E", vec![gc("a"), gn(1)]));
        let core = core_of(&j);
        assert_eq!(core.len(), 1);
        assert!(core.contains(&Fact::from_parts("E", vec![gc("a"), gc("b")])));
    }
}
