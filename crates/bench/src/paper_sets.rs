//! The dependency sets used as running examples in the paper, shared by the experiment
//! binaries and the integration tests.

use chase_core::parser::{parse_database, parse_dependencies};
use chase_core::{DependencySet, Instance};

/// Σ1 of Example 1: the motivating set — only some standard chase sequences terminate.
pub fn sigma1() -> DependencySet {
    parse_dependencies(
        r#"
        r1: N(?x) -> exists ?y: E(?x, ?y).
        r2: E(?x, ?y) -> N(?y).
        r3: E(?x, ?y) -> ?x = ?y.
        "#,
    )
    .expect("Σ1 parses")
}

/// The database `D = {N(a)}` of Example 1.
pub fn sigma1_database() -> Instance {
    parse_database("N(a).").expect("database parses")
}

/// Σ3 of Example 3: two existential TGDs with a two-null universal model.
pub fn sigma3() -> DependencySet {
    parse_dependencies(
        r#"
        r1: P(?x, ?y) -> exists ?z: E(?x, ?z).
        r2: Q(?x, ?y) -> exists ?z: E(?z, ?y).
        "#,
    )
    .expect("Σ3 parses")
}

/// The database of Example 3.
pub fn sigma3_database() -> Instance {
    parse_database("P(a, b). Q(c, d).").expect("database parses")
}

/// Σ6 of Example 6: standard chase is empty, semi-oblivious terminates, oblivious
/// diverges.
pub fn sigma6() -> DependencySet {
    parse_dependencies("r: E(?x, ?y) -> exists ?z: E(?x, ?z).").expect("Σ6 parses")
}

/// The database of Example 6.
pub fn sigma6_database() -> Instance {
    parse_database("E(a, b).").expect("database parses")
}

/// Σ8 of Example 8: in `CT_∀`, but every EGD→TGD simulation of it diverges (Theorem 2).
pub fn sigma8() -> DependencySet {
    parse_dependencies(
        r#"
        r1: A(?x), B(?x) -> C(?x).
        r2: C(?x) -> exists ?y: A(?x), B(?y).
        r3: C(?x) -> exists ?y: A(?y), B(?x).
        r4: A(?x), A(?y) -> ?x = ?y.
        r5: B(?x), B(?y) -> ?x = ?y.
        "#,
    )
    .expect("Σ8 parses")
}

/// A small database exercising Σ8.
pub fn sigma8_database() -> Instance {
    parse_database("C(a).").expect("database parses")
}

/// Σ10 of Example 10: the TGDs alone terminate, adding the EGD destroys termination.
pub fn sigma10() -> DependencySet {
    parse_dependencies(
        r#"
        r1: N(?x) -> exists ?y, ?z: E(?x, ?y, ?z).
        r2: E(?x, ?y, ?y) -> N(?y).
        r3: E(?x, ?y, ?z) -> ?y = ?z.
        "#,
    )
    .expect("Σ10 parses")
}

/// The database of Example 10.
pub fn sigma10_database() -> Instance {
    parse_database("N(a).").expect("database parses")
}

/// Σ11 of Example 11: semi-stratified but not stratified (Figure 1).
pub fn sigma11() -> DependencySet {
    parse_dependencies(
        r#"
        r1: N(?x) -> exists ?y: E(?x, ?y).
        r2: E(?x, ?y) -> N(?y).
        r3: E(?x, ?y) -> E(?y, ?x).
        "#,
    )
    .expect("Σ11 parses")
}

/// The database used for Σ11 in Example 11.
pub fn sigma11_database() -> Instance {
    parse_database("N(a).").expect("database parses")
}

/// All named paper sets with human-readable identifiers.
pub fn all_named_sets() -> Vec<(&'static str, DependencySet)> {
    vec![
        ("Σ1 (Ex.1)", sigma1()),
        ("Σ3 (Ex.3)", sigma3()),
        ("Σ6 (Ex.6)", sigma6()),
        ("Σ8 (Ex.8)", sigma8()),
        ("Σ10 (Ex.10)", sigma10()),
        ("Σ11 (Ex.11)", sigma11()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_paper_sets_parse_with_expected_sizes() {
        assert_eq!(sigma1().len(), 3);
        assert_eq!(sigma3().len(), 2);
        assert_eq!(sigma6().len(), 1);
        assert_eq!(sigma8().len(), 5);
        assert_eq!(sigma10().len(), 3);
        assert_eq!(sigma11().len(), 3);
        assert_eq!(all_named_sets().len(), 6);
    }

    #[test]
    fn databases_are_ground() {
        for db in [
            sigma1_database(),
            sigma3_database(),
            sigma6_database(),
            sigma8_database(),
            sigma10_database(),
            sigma11_database(),
        ] {
            assert!(db.is_database());
            assert!(!db.is_empty());
        }
    }
}
