//! # chase-bench
//!
//! Shared infrastructure for the experiment binaries that regenerate every table and
//! figure of Calautti et al. (PVLDB 2016) — see `EXPERIMENTS.md` at the workspace root
//! for the experiment index — plus the Criterion micro-benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod paper_sets;

use chase_core::DependencySet;
use chase_engine::{Chase, ChaseBudget, ChaseOutcome, StepOrder};
use chase_ontology::generator::generate_database;
use std::time::{Duration, Instant};

/// Command-line options shared by the experiment binaries.
#[derive(Clone, Debug)]
pub struct ExperimentOptions {
    /// RNG seed for corpus generation.
    pub seed: u64,
    /// Scale factor applied to the corpus sizes of Table 2(a).
    pub scale: f64,
    /// Fraction of generated ontologies that receive a non-terminating gadget.
    pub cyclic_fraction: f64,
    /// Step budget of the ground-truth standard chase (stands in for the paper's
    /// 24-hour timeout).
    pub chase_budget: usize,
    /// Number of database facts used for the ground-truth chase.
    pub database_facts: usize,
    /// Worker threads for the chase sessions (`Chase::workers`; 1 = sequential).
    /// EGD-bearing sets and the core chase fall back to sequential regardless.
    pub workers: usize,
    /// Emit machine-readable output (`chase_obs` [`RunReport`](chase_obs::RunReport)
    /// JSON) instead of, or alongside, the text tables.
    pub json: bool,
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions {
            seed: 20160396,
            scale: 0.01,
            cyclic_fraction: 0.55,
            chase_budget: 1_500,
            database_facts: 8,
            workers: 1,
            json: false,
        }
    }
}

impl ExperimentOptions {
    /// Parses `--seed N`, `--scale X`, `--cyclic-fraction X`, `--budget N`,
    /// `--facts N`, `--workers N` and the boolean `--json` from the process
    /// arguments; unknown arguments are ignored.
    pub fn from_args() -> Self {
        Self::from_arg_slice(&std::env::args().skip(1).collect::<Vec<String>>())
    }

    /// [`from_args`](ExperimentOptions::from_args) over an explicit argument
    /// slice (exposed for tests).
    pub fn from_arg_slice(args: &[String]) -> Self {
        let mut opts = ExperimentOptions::default();
        let mut i = 0;
        while i < args.len() {
            // `--json` is a bare flag; every other option consumes a value.
            if args[i] == "--json" {
                opts.json = true;
                i += 1;
                continue;
            }
            let Some(value) = args.get(i + 1) else { break };
            match args[i].as_str() {
                "--seed" => opts.seed = value.parse().unwrap_or(opts.seed),
                "--scale" => opts.scale = value.parse().unwrap_or(opts.scale),
                "--cyclic-fraction" => {
                    opts.cyclic_fraction = value.parse().unwrap_or(opts.cyclic_fraction)
                }
                "--budget" => opts.chase_budget = value.parse().unwrap_or(opts.chase_budget),
                "--facts" => opts.database_facts = value.parse().unwrap_or(opts.database_facts),
                "--workers" => opts.workers = value.parse::<usize>().unwrap_or(opts.workers).max(1),
                _ => {
                    i += 1;
                    continue;
                }
            }
            i += 2;
        }
        opts
    }
}

/// Ground-truth verdict for one dependency set: did a standard chase sequence
/// (EGD-first policy) terminate within the step budget on a generated database?
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaseGroundTruth {
    /// The chase halted (successfully or with a hard EGD failure).
    Halted,
    /// The step budget was exhausted (the paper's "did not halt within 24 hours").
    DidNotHalt,
}

/// Runs the ground-truth chase for `sigma`.
///
/// The database is the *critical instance* of the set (one fact per predicate over a
/// single constant) extended with a few random facts: every rule of the set is thereby
/// exercised, so a set with a genuine null-propagation cycle reliably shows up as
/// non-halting, mirroring the paper's per-ontology 24-hour chase runs.
pub fn chase_ground_truth(
    sigma: &DependencySet,
    opts: &ExperimentOptions,
    seed: u64,
) -> ChaseGroundTruth {
    let db = chase_ontology::generator::critical_database(sigma).union(&generate_database(
        sigma,
        opts.database_facts,
        seed,
    ));
    let outcome = Chase::standard(sigma)
        .with_order(StepOrder::EgdsFirst)
        .with_budget(ChaseBudget::unlimited().with_max_steps(opts.chase_budget))
        .run(&db);
    match outcome {
        ChaseOutcome::Terminated { .. } | ChaseOutcome::Failed { .. } => ChaseGroundTruth::Halted,
        ChaseOutcome::BudgetExhausted { .. } => ChaseGroundTruth::DidNotHalt,
    }
}

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Renders a simple aligned text table (header + rows) for the experiment binaries.
pub fn render_table(title: &str, header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(8)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chase_core::parser::parse_dependencies;

    #[test]
    fn render_table_aligns_columns() {
        let s = render_table(
            "demo",
            &["a", "bbbb"],
            &[
                vec!["xx".into(), "y".into()],
                vec!["1".into(), "22222".into()],
            ],
        );
        assert!(s.contains("== demo =="));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn ground_truth_detects_halting_and_non_halting_sets() {
        let opts = ExperimentOptions {
            chase_budget: 300,
            database_facts: 4,
            ..ExperimentOptions::default()
        };
        let halting = parse_dependencies("r: A(?x) -> B(?x).").unwrap();
        assert_eq!(
            chase_ground_truth(&halting, &opts, 1),
            ChaseGroundTruth::Halted
        );
        let diverging =
            parse_dependencies("r1: C0(?x) -> exists ?y: R0(?x, ?y). r2: R0(?x, ?y) -> C0(?y).")
                .unwrap();
        assert_eq!(
            chase_ground_truth(&diverging, &opts, 1),
            ChaseGroundTruth::DidNotHalt
        );
    }

    #[test]
    fn default_options_are_sensible() {
        let opts = ExperimentOptions::default();
        assert!(opts.scale > 0.0 && opts.scale <= 1.0);
        assert!(opts.chase_budget > 0);
        assert!(!opts.json);
    }

    #[test]
    fn json_flag_parses_without_a_value() {
        let args: Vec<String> = ["--json", "--workers", "4", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = ExperimentOptions::from_arg_slice(&args);
        assert!(opts.json);
        assert_eq!(opts.workers, 4);
        assert_eq!(opts.seed, 7);
        // Flag order does not matter, including `--json` last.
        let args: Vec<String> = ["--budget", "99", "--json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = ExperimentOptions::from_arg_slice(&args);
        assert!(opts.json);
        assert_eq!(opts.chase_budget, 99);
    }
}
