//! Experiment E7 — expressivity comparison (Theorems 5, 9, 10, 11): every criterion in
//! the workspace evaluated on the paper's running examples and on purpose-built
//! witnesses, printed as an acceptance matrix.

use chase_bench::paper_sets::all_named_sets;
use chase_bench::render_table;
use chase_core::parser::parse_dependencies;
use chase_core::DependencySet;
use chase_criteria::criterion::TerminationCriterion;
use chase_termination::combined::all_criteria;

fn witnesses() -> Vec<(String, DependencySet)> {
    let mut sets: Vec<(String, DependencySet)> = all_named_sets()
        .into_iter()
        .map(|(n, s)| (n.to_string(), s))
        .collect();
    sets.push((
        "WA chain".into(),
        parse_dependencies("r1: A(?x) -> exists ?y: B(?x, ?y). r2: B(?x, ?y) -> C(?y).").unwrap(),
    ));
    sets.push((
        "SwA repeated-var".into(),
        parse_dependencies("r1: S(?x) -> exists ?y: E(?x, ?y). r2: E(?x, ?x) -> S(?x).").unwrap(),
    ));
    sets.push((
        "self-feeding rule".into(),
        parse_dependencies("r: E(?x, ?y) -> exists ?z: E(?y, ?z).").unwrap(),
    ));
    sets
}

fn main() {
    let criteria = all_criteria();
    let header: Vec<String> = std::iter::once("set".to_string())
        .chain(criteria.iter().map(|c| c.name.to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();

    let mut rows = Vec::new();
    for (name, sigma) in witnesses() {
        let mut row = vec![name.clone()];
        for criterion in &criteria {
            row.push(
                if criterion.accepts(&sigma) {
                    "yes"
                } else {
                    "no"
                }
                .to_string(),
            );
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table("Criterion acceptance matrix", &header_refs, &rows)
    );
    println!("Readings:");
    println!("  * Σ1 and Σ11 are accepted only by the paper's EGD-aware criteria (SAC, and S-Str for Σ11),");
    println!("    illustrating Theorems 5 and 9 and the gap left by WA/SC/SwA/MFA.");
    println!("  * Σ8 is rejected by every simulation-based criterion although all of its chase sequences");
    println!("    terminate (Theorem 2): the EGD→TGD simulation loses the EGD semantics.");
    println!(
        "  * Σ10 is rejected by every criterion, as it has no terminating chase sequence at all."
    );
    println!("  * The Adn-* columns are the Adn∃-C combinations of Theorems 10–11: they accept everything");
    println!("    their base criterion accepts.");
}
