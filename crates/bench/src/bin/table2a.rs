//! Experiment E2 — Table 2(a): the corpus statistics (eight classes indexed by the
//! number of existential TGDs and the number of EGDs, with the number of ontologies
//! and the average dependency-set size per class).
//!
//! The corpus is synthetic (see DESIGN.md §3); by default it is generated at
//! `--scale 0.02` of the paper's sizes so the whole pipeline runs in seconds. Use
//! `--scale 1.0` to generate at the paper's sizes.

use chase_bench::{render_table, ExperimentOptions};
use chase_ontology::corpus::{paper_classes, scaled_paper_corpus};

fn main() {
    let opts = ExperimentOptions::from_args();
    let corpus = scaled_paper_corpus(opts.seed, opts.cyclic_fraction, opts.scale);
    let classes = paper_classes();

    let mut rows = Vec::new();
    for (i, class) in classes.iter().enumerate() {
        let members: Vec<_> = corpus.iter().filter(|o| o.class_index == i).collect();
        let avg_size = members.iter().map(|o| o.sigma.len()).sum::<usize>() as f64
            / members.len().max(1) as f64;
        let avg_ex = members
            .iter()
            .map(|o| o.sigma.existential_ids().len())
            .sum::<usize>() as f64
            / members.len().max(1) as f64;
        let avg_egd = members
            .iter()
            .map(|o| o.sigma.egd_ids().len())
            .sum::<usize>() as f64
            / members.len().max(1) as f64;
        rows.push(vec![
            class.id(),
            format!("{}", members.len()),
            format!("{avg_size:.0}"),
            format!("{avg_ex:.1}"),
            format!("{avg_egd:.1}"),
            format!("{}", class.tests),
            format!("{}", class.average_size),
        ]);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Table 2(a) — corpus statistics (seed {}, scale {})",
                opts.seed, opts.scale
            ),
            &[
                "class",
                "#tests",
                "|Σ| avg (generated)",
                "|Σ∃| avg",
                "|Σegd| avg",
                "#tests (paper)",
                "|Σ| (paper)",
            ],
            &rows,
        )
    );
    println!(
        "Total ontologies generated: {} (paper: 178). Generated sizes are the paper's sizes × scale.",
        corpus.len()
    );
}
