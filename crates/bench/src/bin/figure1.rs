//! Experiment E5 — Figure 1: the chase graph (left) and the firing graph (right) of
//! Σ11 from Example 11, together with the resulting Str / S-Str verdicts.

use chase_bench::paper_sets::sigma11;
use chase_criteria::criterion::TerminationCriterion;
use chase_criteria::firing::{chase_graph, FiringConfig};
use chase_criteria::stratification::Stratification;
use chase_termination::firing::firing_graph;
use chase_termination::semi_stratification::SemiStratification;

fn main() {
    let sigma = sigma11();
    let labels: Vec<String> = sigma
        .iter()
        .map(|(i, d)| {
            d.label()
                .map(str::to_owned)
                .unwrap_or(format!("r{}", i.0 + 1))
        })
        .collect();

    println!("Σ11 (Example 11):");
    for (_, d) in sigma.iter() {
        println!("  {d}.");
    }
    println!();

    let g = chase_graph(&sigma, &FiringConfig::default());
    println!("Chase graph G(Σ11) (Figure 1, left):");
    for (f, t, _) in g.edges() {
        println!("  {} -> {}", labels[f], labels[t]);
    }
    println!();

    let gf = firing_graph(&sigma);
    println!("Firing graph Gf(Σ11) (Figure 1, right):");
    for (f, t, _) in gf.edges() {
        println!("  {} -> {}", labels[f], labels[t]);
    }
    println!();

    println!(
        "stratified (Str):        {}",
        if Stratification.accepts(&sigma) {
            "yes"
        } else {
            "no"
        }
    );
    println!(
        "semi-stratified (S-Str): {}",
        if SemiStratification::default().accepts(&sigma) {
            "yes"
        } else {
            "no"
        }
    );
    println!();
    println!("As in the paper, the edge r2 -> r1 is present in the chase graph but absent from");
    println!("the firing graph (enforcing r3 first blocks the re-firing of r1), which is what");
    println!("makes Σ11 semi-stratified although it is not stratified.");
}
