//! Experiment E3 — Table 2(b): cost of the adornment algorithm per corpus class — the
//! average ratio `|Σµ|/|Σ|` and the average wall-clock time of `Adn∃`.

use chase_bench::{render_table, timed, ExperimentOptions};
use chase_ontology::corpus::{paper_classes, scaled_paper_corpus};
use chase_termination::adornment::{adorn_with, AdnConfig, FireableMode};

fn main() {
    let opts = ExperimentOptions::from_args();
    let corpus = scaled_paper_corpus(opts.seed, opts.cyclic_fraction, opts.scale);
    let classes = paper_classes();
    let config = AdnConfig {
        fireable_mode: FireableMode::Auto,
        ..AdnConfig::default()
    };

    let mut rows = Vec::new();
    for (i, class) in classes.iter().enumerate() {
        let members: Vec<_> = corpus.iter().filter(|o| o.class_index == i).collect();
        let mut total_ratio = 0.0;
        let mut total_time_ms = 0.0;
        for ont in &members {
            let (result, elapsed) = timed(|| adorn_with(&ont.sigma, &config));
            total_ratio += result.size_ratio(&ont.sigma);
            total_time_ms += elapsed.as_secs_f64() * 1_000.0;
        }
        let n = members.len().max(1) as f64;
        rows.push(vec![
            class.id(),
            format!("{}", members.len()),
            format!("{:.2}", total_ratio / n),
            format!("{:.1}", total_time_ms / n),
        ]);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Table 2(b) — |Σµ|/|Σ| and Adn∃ running time (seed {}, scale {})",
                opts.seed, opts.scale
            ),
            &["class", "#tests", "|Σµ|/|Σ| avg", "time ms avg"],
            &rows,
        )
    );
    println!("Paper reference values: ratios between 2.4 and 6.2; times mostly below one second.");
}
