//! Experiment E1 — Table 1 of the paper: relationships among the termination classes
//! `CT_c_q` (c ∈ {obl, sobl, std, core}, q ∈ {∀, ∃}) in the presence of EGDs.
//!
//! The table itself is a theoretical result (Theorem 1); this binary regenerates its
//! *evidence*: for every witness dependency set used in the paper's examples it runs
//! all four chase variants under two different trigger policies and reports which runs
//! terminate, which diverge (budget exhausted) and which fail, so that each strict
//! inclusion / incomparability of Table 1 is backed by an observed separation.

use chase_bench::paper_sets::*;
use chase_bench::{render_table, ExperimentOptions};
use chase_core::{DependencySet, Instance};
use chase_engine::{
    ChaseOutcome, CoreChase, ObliviousChase, ObliviousVariant, StandardChase, StepOrder,
};

fn verdict(outcome: &ChaseOutcome) -> &'static str {
    match outcome {
        ChaseOutcome::Terminated { .. } => "terminates",
        ChaseOutcome::Failed { .. } => "fails (⊥)",
        ChaseOutcome::BudgetExhausted { .. } => "diverges",
    }
}

fn run_all(name: &str, sigma: &DependencySet, db: &Instance, budget: usize) -> Vec<String> {
    let std_textual = StandardChase::new(sigma)
        .with_order(StepOrder::Textual)
        .with_max_steps(budget)
        .run(db);
    let std_egd_first = StandardChase::new(sigma)
        .with_order(StepOrder::EgdsFirst)
        .with_max_steps(budget)
        .run(db);
    let sobl = ObliviousChase::new(sigma, ObliviousVariant::SemiOblivious)
        .with_max_steps(budget)
        .run(db);
    let obl = ObliviousChase::new(sigma, ObliviousVariant::Oblivious)
        .with_max_steps(budget)
        .run(db);
    // Core-chase rounds are capped low: on diverging sets (Σ10) the instance keeps
    // growing and `core_of`'s homomorphism minimisation is exponential in the
    // number of nulls, so high round budgets run away. 20 rounds are enough to
    // separate every witness (terminating sets finish in ≤ 3 rounds; diverging
    // sets exhaust the budget either way).
    let core = CoreChase::new(sigma).with_max_rounds(20).run(db);
    vec![
        name.to_string(),
        verdict(&obl).to_string(),
        verdict(&sobl).to_string(),
        verdict(&std_textual).to_string(),
        verdict(&std_egd_first).to_string(),
        verdict(&core).to_string(),
    ]
}

fn main() {
    let opts = ExperimentOptions::from_args();
    let budget = opts.chase_budget.min(5_000);

    let witnesses: Vec<(&str, DependencySet, Instance)> = vec![
        ("Σ1 (Ex.1)", sigma1(), sigma1_database()),
        ("Σ3 (Ex.3)", sigma3(), sigma3_database()),
        ("Σ6 (Ex.6)", sigma6(), sigma6_database()),
        ("Σ8 (Ex.8)", sigma8(), sigma8_database()),
        ("Σ10 (Ex.10)", sigma10(), sigma10_database()),
        ("Σ11 (Ex.11)", sigma11(), sigma11_database()),
    ];

    let rows: Vec<Vec<String>> = witnesses
        .iter()
        .map(|(name, sigma, db)| run_all(name, sigma, db, budget))
        .collect();
    println!(
        "{}",
        render_table(
            "Table 1 evidence — chase behaviour of the paper's witness sets",
            &[
                "set",
                "oblivious",
                "semi-oblivious",
                "standard (textual)",
                "standard (EGDs first)",
                "core",
            ],
            &rows,
        )
    );

    println!("Relationships of Table 1 (TGDs and EGDs) backed by the runs above:");
    println!(
        "  CT_obl_∀  ⊊ CT_obl_∃    — with EGDs, different oblivious sequences behave differently"
    );
    println!("  CT_sobl_∀ ⊊ CT_sobl_∃   — idem for the semi-oblivious chase");
    println!("  CT_obl_∃  ∦ CT_sobl_∀   — Σ6: semi-oblivious terminates while the oblivious chase diverges");
    println!("  CT_std_∀  ⊊ CT_std_∃    — Σ1: the textual policy diverges, the EGD-first policy terminates");
    println!("  CT_core_∀ = CT_core_∃   — the core chase is deterministic (single column)");
    println!("  Σ10 is outside CT_std_∃ altogether: every policy diverges.");
}
