//! Experiment E1 — Table 1 of the paper: relationships among the termination classes
//! `CT_c_q` (c ∈ {obl, sobl, std, core}, q ∈ {∀, ∃}) in the presence of EGDs.
//!
//! The table itself is a theoretical result (Theorem 1); this binary regenerates its
//! *evidence*: for every witness dependency set used in the paper's examples it runs
//! all four chase variants under two different trigger policies and reports which runs
//! terminate, which fail, and which exhaust their budget — naming the tripped limit
//! (`max_steps`, `max_rounds`, …) rather than silently treating every exhaustion as
//! divergence. A final column shows the `TerminationAnalyzer`'s static verdict so the
//! dynamic evidence and the criteria hierarchy can be compared at a glance.
//!
//! `--json` additionally emits one `chase_obs` [`RunReport`] per witness set (a JSON
//! array on stdout, after the text table): metrics and phase timings come from a
//! [`MetricsObserver`]-instrumented EGD-first standard run, the analyzer's verdict
//! table rides in `verdicts`, and the per-variant table cells ride in `annotations`.

use chase_bench::paper_sets::*;
use chase_bench::{render_table, ExperimentOptions};
use chase_core::{DependencySet, Instance};
use chase_engine::{
    Chase, ChaseBudget, ChaseObserver, ChaseOutcome, MetricsObserver, ObliviousVariant, StepOrder,
};
use chase_obs::{JsonValue, RunReport};
use chase_termination::TerminationAnalyzer;

fn verdict(outcome: &ChaseOutcome) -> String {
    match outcome {
        ChaseOutcome::Terminated { .. } => "terminates".to_string(),
        ChaseOutcome::Failed { .. } => "fails (⊥)".to_string(),
        ChaseOutcome::BudgetExhausted { limit, .. } => format!("budget ({limit})"),
    }
}

/// Tracks the peak post-round fact and live-null counts of a core-chase run from
/// the `ChaseObserver` event stream: `round_completed` carries the cored fact
/// count, `round_nulls` the cored live-null count (the created/collapsed event
/// tally would overcount, since nulls folded away by core computation emit no
/// collapse event).
#[derive(Default)]
struct PeakObserver {
    peak_facts: usize,
    peak_nulls: usize,
}

impl ChaseObserver for PeakObserver {
    fn round_completed(&mut self, _round: usize, facts: usize) {
        self.peak_facts = self.peak_facts.max(facts);
    }

    fn round_nulls(&mut self, nulls: usize) {
        self.peak_nulls = self.peak_nulls.max(nulls);
    }
}

fn run_all(
    name: &str,
    sigma: &DependencySet,
    db: &Instance,
    budget: &ChaseBudget,
    core_budget: &ChaseBudget,
    analyzer: &TerminationAnalyzer,
    workers: usize,
) -> Vec<String> {
    // `--workers N` rides the session builder. Σ3 and Σ6 are EGD-free, so
    // their (semi-)oblivious runs go round-parallel at N > 1 — including Σ6's
    // diverging oblivious column, which exercises the budget path; the
    // EGD-bearing sets take the documented sequential fallback. Either way the
    // verdicts are identical at any worker count.
    let std_textual = Chase::standard(sigma)
        .with_order(StepOrder::Textual)
        .with_budget(*budget)
        .workers(workers)
        .run(db);
    let std_egd_first = Chase::standard(sigma)
        .with_order(StepOrder::EgdsFirst)
        .with_budget(*budget)
        .workers(workers)
        .run(db);
    let sobl = Chase::semi_oblivious(sigma)
        .with_budget(*budget)
        .workers(workers)
        .run(db);
    let obl = Chase::oblivious(sigma, ObliviousVariant::Oblivious)
        .with_budget(*budget)
        .workers(workers)
        .run(db);
    let mut peaks = PeakObserver::default();
    let core = Chase::core(sigma)
        .with_budget(*core_budget)
        .run_observed(db, &mut peaks);
    vec![
        name.to_string(),
        verdict(&obl),
        verdict(&sobl),
        verdict(&std_textual),
        verdict(&std_egd_first),
        verdict(&core),
        format!("{}/{}", peaks.peak_facts, peaks.peak_nulls),
        analyzer.analyze(sigma).summary(),
    ]
}

/// Builds the `--json` RunReport for one witness set: an instrumented EGD-first
/// standard run supplies stats, phases and round curves; the analyzer's verdict
/// table and the text table's per-variant cells ride along.
fn json_report(
    name: &str,
    sigma: &DependencySet,
    db: &Instance,
    budget: &ChaseBudget,
    analyzer: &TerminationAnalyzer,
    workers: usize,
    (header, row): (&[&str], &[String]),
) -> RunReport {
    let mut metrics = MetricsObserver::new();
    let outcome = Chase::standard(sigma)
        .with_order(StepOrder::EgdsFirst)
        .with_budget(*budget)
        .workers(workers)
        .run_observed(db, &mut metrics);
    let mut report = metrics.report(name, &outcome);
    let analysis = analyzer.analyze(sigma);
    report.verdicts = analysis.verdict_rows();
    // Skip the leading "set" column: the set name is already the report name.
    report.annotations = header
        .iter()
        .zip(row.iter())
        .skip(1)
        .map(|(column, cell)| (column.to_string(), cell.clone()))
        .collect();
    // Machine-readable key for the settling criterion, so consumers don't have
    // to parse the display-name summary in the "analyzer" cell.
    report.annotations.push((
        "accepted_criterion_id".to_string(),
        analysis
            .accepted()
            .map(|v| v.criterion_id().to_string())
            .unwrap_or_else(|| "none".to_string()),
    ));
    report
}

fn main() {
    let opts = ExperimentOptions::from_args();
    let budget = ChaseBudget::unlimited().with_max_steps(opts.chase_budget.min(5_000));
    // Core-chase rounds: with `core_of`'s memoised, id-based folding (one
    // endomorphism search per instance version, incremental image construction)
    // the diverging sets (Σ10) sustain 60 rounds in well under a second — 3× the
    // previous cap of 20, which the old per-attempt re-materialising fold could
    // not afford. Terminating sets finish in ≤ 3 rounds either way.
    let core_budget = ChaseBudget::unlimited().with_max_rounds(60);
    let analyzer = TerminationAnalyzer::new();

    let witnesses: Vec<(&str, DependencySet, Instance)> = vec![
        ("Σ1 (Ex.1)", sigma1(), sigma1_database()),
        ("Σ3 (Ex.3)", sigma3(), sigma3_database()),
        ("Σ6 (Ex.6)", sigma6(), sigma6_database()),
        ("Σ8 (Ex.8)", sigma8(), sigma8_database()),
        ("Σ10 (Ex.10)", sigma10(), sigma10_database()),
        ("Σ11 (Ex.11)", sigma11(), sigma11_database()),
    ];

    let header = [
        "set",
        "oblivious",
        "semi-oblivious",
        "standard (textual)",
        "standard (EGDs first)",
        "core",
        "core peak facts/nulls",
        "analyzer",
    ];
    let rows: Vec<Vec<String>> = witnesses
        .iter()
        .map(|(name, sigma, db)| {
            run_all(
                name,
                sigma,
                db,
                &budget,
                &core_budget,
                &analyzer,
                opts.workers,
            )
        })
        .collect();
    // In `--json` mode stdout carries nothing but the report array, so the
    // output pipes straight into any JSON consumer; the text table's cells
    // still ride along as per-report annotations.
    if opts.json {
        let reports: Vec<JsonValue> = witnesses
            .iter()
            .zip(rows.iter())
            .map(|((name, sigma, db), row)| {
                json_report(
                    name,
                    sigma,
                    db,
                    &budget,
                    &analyzer,
                    opts.workers,
                    (&header, row),
                )
                .to_json()
            })
            .collect();
        println!("{}", JsonValue::Array(reports).to_pretty_string());
        return;
    }

    println!(
        "{}",
        render_table(
            "Table 1 evidence — chase behaviour of the paper's witness sets",
            &header,
            &rows,
        )
    );

    // The full analyzer report for the motivating set, witnesses included.
    println!("TerminationAnalyzer report for Σ1:");
    print!("{}", analyzer.analyze(&sigma1()));
    println!();

    println!("Relationships of Table 1 (TGDs and EGDs) backed by the runs above:");
    println!(
        "  CT_obl_∀  ⊊ CT_obl_∃    — with EGDs, different oblivious sequences behave differently"
    );
    println!("  CT_sobl_∀ ⊊ CT_sobl_∃   — idem for the semi-oblivious chase");
    println!("  CT_obl_∃  ∦ CT_sobl_∀   — Σ6: semi-oblivious terminates while the oblivious chase diverges");
    println!("  CT_std_∀  ⊊ CT_std_∃    — Σ1: the textual policy diverges, the EGD-first policy terminates");
    println!("  CT_core_∀ = CT_core_∃   — the core chase is deterministic (single column)");
    println!("  Σ10 is outside CT_std_∃ altogether: every policy diverges.");
}
