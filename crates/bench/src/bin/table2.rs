//! The termination-criteria **atlas**: the full `TerminationAnalyzer` portfolio
//! swept over the named corpus families of `chase_ontology::families`, at a
//! range of sizes, with per-criterion wall-clock and witness sizes recorded —
//! and, crucially, a *soundness oracle*: every program any criterion accepts is
//! chased (standard chase, EGDs first, over the critical database) under a
//! generous budget, and a budget trip on an accepted program — or an acceptance
//! of a family that is non-terminating by construction — is a hard failure
//! (non-zero exit). This is the harness that would have caught the historical
//! `adorn_with` soundness gap, and keeps that bug class fenced off.
//!
//! Output: a criterion × family admission matrix as a text table, plus
//! machine-readable artifacts on request:
//!
//! - `--json-out PATH` — a `chase_atlas/v1` document: the matrix, the soundness
//!   failures and one `chase_obs` [`RunReport`] per program (the analyzer's
//!   verdict table rides in `verdicts`, keyed by `criterion_id`; family, size
//!   and oracle outcome ride in `annotations`).
//! - `--csv-out PATH` — one row per (family, size, criterion) with status,
//!   elapsed nanoseconds and witness length.
//!
//! Other flags: `--sizes 12,60,240` (per-family size sweep), `--no-oracle`
//! (skip the chase), and the shared `--seed`/`--budget`/`--workers` options.

use chase_bench::{render_table, ExperimentOptions};
use chase_engine::{Chase, ChaseBudget, ChaseOutcome, MetricsObserver, StepOrder};
use chase_obs::{JsonValue, RunReport};
use chase_ontology::families::{atlas_corpus, families, AtlasProgram};
use chase_ontology::generator::critical_database;
use chase_termination::TerminationAnalyzer;
use std::collections::BTreeMap;

/// Atlas-specific flags (the shared ones ride on [`ExperimentOptions`]).
struct AtlasOptions {
    sizes: Vec<usize>,
    oracle: bool,
    json_out: Option<String>,
    csv_out: Option<String>,
}

impl AtlasOptions {
    fn from_arg_slice(args: &[String]) -> Self {
        let mut opts = AtlasOptions {
            sizes: vec![12, 60, 240],
            oracle: true,
            json_out: None,
            csv_out: None,
        };
        let mut i = 0;
        while i < args.len() {
            if args[i] == "--no-oracle" {
                opts.oracle = false;
                i += 1;
                continue;
            }
            let Some(value) = args.get(i + 1) else { break };
            match args[i].as_str() {
                "--sizes" => {
                    let sizes: Vec<usize> = value
                        .split(',')
                        .filter_map(|s| s.trim().parse().ok())
                        .collect();
                    if !sizes.is_empty() {
                        opts.sizes = sizes;
                    }
                }
                "--json-out" => opts.json_out = Some(value.clone()),
                "--csv-out" => opts.csv_out = Some(value.clone()),
                _ => {
                    i += 1;
                    continue;
                }
            }
            i += 2;
        }
        opts
    }
}

/// One soundness-oracle violation: a program some criterion accepted that the
/// ground truth or the chase contradicts.
struct SoundnessFailure {
    program: String,
    accepted_by: String,
    detail: String,
}

fn oracle_outcome_string(outcome: &ChaseOutcome) -> &'static str {
    match outcome {
        ChaseOutcome::Terminated { .. } => "terminated",
        ChaseOutcome::Failed { .. } => "failed",
        ChaseOutcome::BudgetExhausted { .. } => "budget_exhausted",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = ExperimentOptions::from_arg_slice(&args);
    let atlas = AtlasOptions::from_arg_slice(&args);
    // The oracle budget is deliberately generous: it stands in for the paper's
    // experiment timeout, and tripping it on an *accepted* program is treated as
    // a soundness failure, not an inconclusive run.
    let budget = ChaseBudget::unlimited().with_max_steps(opts.chase_budget.max(50_000));
    let analyzer = TerminationAnalyzer::exhaustive();

    let programs = atlas_corpus(&atlas.sizes, opts.seed);
    // matrix[(criterion_id, family)] = (accepted, total); criterion display
    // names ride along for the text table.
    let mut matrix: BTreeMap<(String, &'static str), (usize, usize)> = BTreeMap::new();
    let mut criterion_names: Vec<(String, String)> = Vec::new();
    let mut failures: Vec<SoundnessFailure> = Vec::new();
    let mut csv = String::from(
        "family,size,dependencies,criterion,criterion_id,status,elapsed_ns,witness_len\n",
    );
    let mut reports: Vec<RunReport> = Vec::new();

    for AtlasProgram {
        family,
        size,
        expected_terminating,
        sigma,
    } in &programs
    {
        let name = format!("atlas/{family}/{size}");
        let analysis = analyzer.analyze(sigma);
        let rows = analysis.verdict_rows();
        let accepted_ids: Vec<String> = rows
            .iter()
            .filter(|r| r.status == "accepts")
            .map(|r| r.criterion_id.clone())
            .collect();

        for row in &rows {
            let key = (row.criterion_id.clone(), *family);
            let cell = matrix.entry(key).or_insert((0, 0));
            cell.1 += 1;
            if row.status == "accepts" {
                cell.0 += 1;
            }
            if !criterion_names
                .iter()
                .any(|(id, _)| *id == row.criterion_id)
            {
                criterion_names.push((row.criterion_id.clone(), row.criterion.clone()));
            }
            csv.push_str(&format!(
                "{family},{size},{deps},{criterion},{id},{status},{elapsed},{witness}\n",
                deps = sigma.len(),
                criterion = row.criterion,
                id = row.criterion_id,
                status = row.status,
                elapsed = row.elapsed_ns,
                witness = row.witness.len(),
            ));
        }

        if !accepted_ids.is_empty() && !expected_terminating {
            failures.push(SoundnessFailure {
                program: name.clone(),
                accepted_by: accepted_ids.join(" "),
                detail: "family is non-terminating by construction".to_string(),
            });
        }

        // The oracle: accepted ⇒ the standard chase (EGDs first, over the
        // critical database) must reach a verdict within the generous budget.
        let mut report = if atlas.oracle && !accepted_ids.is_empty() {
            let db = critical_database(sigma);
            let mut metrics = MetricsObserver::new();
            let outcome = Chase::standard(sigma)
                .with_order(StepOrder::EgdsFirst)
                .with_budget(budget)
                .workers(opts.workers)
                .run_observed(&db, &mut metrics);
            if matches!(outcome, ChaseOutcome::BudgetExhausted { .. }) {
                failures.push(SoundnessFailure {
                    program: name.clone(),
                    accepted_by: accepted_ids.join(" "),
                    detail: format!(
                        "accepted but the oracle chase tripped its {}-step budget",
                        opts.chase_budget.max(50_000)
                    ),
                });
            }
            let mut report = metrics.report(&name, &outcome);
            report.annotations.push((
                "oracle".to_string(),
                oracle_outcome_string(&outcome).to_string(),
            ));
            report
        } else {
            let mut report = RunReport::new(&name);
            report.outcome = "not_run".to_string();
            report.annotations.push((
                "oracle".to_string(),
                if atlas.oracle { "skipped" } else { "disabled" }.to_string(),
            ));
            report
        };
        report.verdicts = rows;
        report
            .annotations
            .push(("family".to_string(), family.to_string()));
        report
            .annotations
            .push(("size".to_string(), size.to_string()));
        report
            .annotations
            .push(("dependencies".to_string(), sigma.len().to_string()));
        report.annotations.push((
            "expected_terminating".to_string(),
            expected_terminating.to_string(),
        ));
        report
            .annotations
            .push(("accepted_by".to_string(), accepted_ids.join(" ")));
        reports.push(report);
    }

    // Text admission matrix: per-family acceptance counts per criterion.
    let family_names: Vec<&'static str> = families().iter().map(|f| f.name).collect();
    let mut header: Vec<&str> = vec!["criterion"];
    header.extend(family_names.iter().copied());
    let table_rows: Vec<Vec<String>> = criterion_names
        .iter()
        .map(|(id, display)| {
            let mut row = vec![format!("{display} ({id})")];
            for family in &family_names {
                let (accepted, total) = matrix
                    .get(&(id.clone(), *family))
                    .copied()
                    .unwrap_or((0, 0));
                row.push(format!("{accepted}/{total}"));
            }
            row
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Atlas — criterion × family admission matrix (accepted/programs)",
            &header,
            &table_rows,
        )
    );

    if let Some(path) = &atlas.csv_out {
        std::fs::write(path, &csv).expect("write CSV atlas");
        println!("CSV atlas written to {path}");
    }
    if let Some(path) = &atlas.json_out {
        let matrix_json = JsonValue::Object(
            criterion_names
                .iter()
                .map(|(id, _)| {
                    (
                        id.clone(),
                        JsonValue::Object(
                            family_names
                                .iter()
                                .map(|family| {
                                    let (accepted, total) = matrix
                                        .get(&(id.clone(), *family))
                                        .copied()
                                        .unwrap_or((0, 0));
                                    (
                                        family.to_string(),
                                        JsonValue::Object(vec![
                                            (
                                                "accepted".to_string(),
                                                JsonValue::Int(accepted as i64),
                                            ),
                                            ("total".to_string(), JsonValue::Int(total as i64)),
                                        ]),
                                    )
                                })
                                .collect(),
                        ),
                    )
                })
                .collect(),
        );
        let failures_json = JsonValue::Array(
            failures
                .iter()
                .map(|f| {
                    JsonValue::Object(vec![
                        ("program".to_string(), JsonValue::Str(f.program.clone())),
                        (
                            "accepted_by".to_string(),
                            JsonValue::Str(f.accepted_by.clone()),
                        ),
                        ("detail".to_string(), JsonValue::Str(f.detail.clone())),
                    ])
                })
                .collect(),
        );
        let doc = JsonValue::Object(vec![
            (
                "schema".to_string(),
                JsonValue::Str("chase_atlas/v1".to_string()),
            ),
            ("seed".to_string(), JsonValue::Int(opts.seed as i64)),
            (
                "sizes".to_string(),
                JsonValue::Array(
                    atlas
                        .sizes
                        .iter()
                        .map(|s| JsonValue::Int(*s as i64))
                        .collect(),
                ),
            ),
            ("matrix".to_string(), matrix_json),
            ("soundness_failures".to_string(), failures_json),
            (
                "reports".to_string(),
                JsonValue::Array(reports.iter().map(RunReport::to_json).collect()),
            ),
        ]);
        std::fs::write(path, doc.to_pretty_string()).expect("write JSON atlas");
        println!("JSON atlas written to {path}");
    }

    if failures.is_empty() {
        println!(
            "Soundness oracle: 0 violations across {} programs ({} families × sizes {:?}).",
            programs.len(),
            family_names.len(),
            atlas.sizes
        );
    } else {
        eprintln!("Soundness oracle: {} violation(s):", failures.len());
        for f in &failures {
            eprintln!(
                "  {} accepted by [{}]: {}",
                f.program, f.accepted_by, f.detail
            );
        }
        std::process::exit(1);
    }
}
