//! Experiment E4 — Table 2(c): expressivity of semi-acyclicity on the corpus.
//!
//! For every generated ontology the binary computes (i) the SAC verdict of the
//! adornment algorithm and (ii) a ground-truth signal: does the standard chase
//! (EGD-first policy) halt within the step budget on a generated database? Per class it
//! then reports, following the paper's layout, `A + NT` — the number of semi-acyclic
//! ontologies plus the number of ontologies that are not semi-acyclic and whose chase
//! did not halt — and `FN`, the false negatives (not semi-acyclic although the chase
//! halted).

use chase_bench::{chase_ground_truth, render_table, ChaseGroundTruth, ExperimentOptions};
use chase_ontology::corpus::{paper_classes, scaled_paper_corpus};
use chase_termination::adornment::{adorn_with, AdnConfig, FireableMode};

fn main() {
    let opts = ExperimentOptions::from_args();
    let corpus = scaled_paper_corpus(opts.seed, opts.cyclic_fraction, opts.scale);
    let classes = paper_classes();
    let config = AdnConfig {
        fireable_mode: FireableMode::Auto,
        ..AdnConfig::default()
    };

    let mut rows = Vec::new();
    let mut total_halted = 0usize;
    let mut total_fn = 0usize;
    for (i, class) in classes.iter().enumerate() {
        let members: Vec<_> = corpus.iter().filter(|o| o.class_index == i).collect();
        let mut accepted = 0usize;
        let mut not_acc_not_halting = 0usize;
        let mut false_negatives = 0usize;
        for ont in &members {
            let sac = adorn_with(&ont.sigma, &config).acyclic;
            let truth = chase_ground_truth(&ont.sigma, &opts, ont.profile.seed);
            if truth == ChaseGroundTruth::Halted {
                total_halted += 1;
            }
            match (sac, truth) {
                (true, _) => accepted += 1,
                (false, ChaseGroundTruth::DidNotHalt) => not_acc_not_halting += 1,
                (false, ChaseGroundTruth::Halted) => false_negatives += 1,
            }
        }
        total_fn += false_negatives;
        rows.push(vec![
            class.id(),
            format!("{}", members.len()),
            format!(
                "{}[{}+{}]",
                accepted + not_acc_not_halting,
                accepted,
                not_acc_not_halting
            ),
            format!("{false_negatives}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &format!(
                "Table 2(c) — expressivity (seed {}, scale {}, budget {})",
                opts.seed, opts.scale, opts.chase_budget
            ),
            &["class", "#tests", "A+NT [A + NT]", "FN"],
            &rows,
        )
    );
    println!(
        "Ontologies whose chase halted within the budget: {total_halted}; false negatives among them: {total_fn}."
    );
    println!("Paper reference: among 76 ontologies with a terminating chase, only 2 were not semi-acyclic.");
}
