//! Incremental-maintenance benchmark: `chase_ivm` repair vs. from-scratch
//! re-chase, swept over delta sizes of 1%, 5% and 20% of the base, in
//! insert-only, retract-only and mixed modes, on two workloads:
//!
//! - **closure** — right-linear transitive closure over disjoint chains. The
//!   classic IVM stress: one retracted edge tears down a quadratic cone of
//!   derived reachability facts, one inserted edge welds two chain halves
//!   together.
//! - **ontology** — a TGD-only acyclic ontology from the seeded generator
//!   (`OntologyProfile`), chased over a large seeded database.
//!
//! For every `(workload, delta, mode)` cell the harness materializes the
//! pre-update base, applies the delta through
//! [`chase_ivm::ChaseMaterialization::update`], and separately re-chases the
//! post-update base from scratch; it records wall-clock and trigger counts for
//! both sides. Two gates make this an experiment and not just a report, and
//! either failing exits non-zero:
//!
//! 1. repair must fire strictly fewer triggers than the re-chase, in every
//!    cell (the semi-naive/DRed machinery must actually localize work), and
//! 2. at `--sizes full`, every 1%-delta cell must repair at least 10× faster
//!    than the re-chase.
//!
//! Output: a text table, plus a `chase_incremental/v1` JSON document written
//! to `--out` (default `BENCH_incremental.json`). `--sizes small` shrinks the
//! workloads for CI smoke runs; `--sizes full` (the default) runs the closure
//! workload at ≥100k base facts.

use chase_core::builder::{atom, var};
use chase_core::{Constant, Dependency, DependencySet, Fact, GroundTerm, Instance, Tgd};
use chase_engine::{Chase, ChaseBudget, ObliviousVariant};
use chase_ivm::ChaseMaterialization;
use chase_obs::JsonValue;
use chase_ontology::{generate, generate_database, OntologyProfile};
use std::collections::HashSet;
use std::time::Instant;

struct Options {
    small: bool,
    out: String,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        small: false,
        out: "BENCH_incremental.json".to_string(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--sizes" => {
                match args.get(i + 1).map(String::as_str) {
                    Some("small") => opts.small = true,
                    Some("full") => opts.small = false,
                    other => {
                        eprintln!("--sizes expects small|full, got {other:?}");
                        std::process::exit(2);
                    }
                }
                i += 2;
            }
            "--out" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("--out expects a path");
                    std::process::exit(2);
                };
                opts.out = path.clone();
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other} (flags: --sizes small|full, --out PATH)");
                std::process::exit(2);
            }
        }
    }
    opts
}

/// The right-linear closure program: `E(x,y) → R(x,y)`, `R(x,y), E(y,z) → R(x,z)`.
fn closure_sigma() -> DependencySet {
    let deps = vec![
        Dependency::Tgd(
            Tgd::new(
                Some("copy".to_string()),
                vec![atom("E", vec![var("x"), var("y")])],
                vec![atom("R", vec![var("x"), var("y")])],
            )
            .expect("well-formed"),
        ),
        Dependency::Tgd(
            Tgd::new(
                Some("step".to_string()),
                vec![
                    atom("R", vec![var("x"), var("y")]),
                    atom("E", vec![var("y"), var("z")]),
                ],
                vec![atom("R", vec![var("x"), var("z")])],
            )
            .expect("well-formed"),
        ),
    ];
    DependencySet::from_vec(deps)
}

/// `chains` disjoint chains of `len` edges each: `E(c{i}_{j}, c{i}_{j+1})`.
fn chain_edges(chains: usize, len: usize) -> Vec<Fact> {
    let mut edges = Vec::with_capacity(chains * len);
    for i in 0..chains {
        for j in 0..len {
            edges.push(Fact {
                predicate: chase_core::Predicate::new("E", 2),
                terms: vec![
                    GroundTerm::Const(Constant::new(&format!("c{i}_{j}"))),
                    GroundTerm::Const(Constant::new(&format!("c{i}_{}", j + 1))),
                ],
            });
        }
    }
    edges
}

/// Every `k`-th element, spread evenly, exactly `count` of them.
fn spread_sample(facts: &[Fact], count: usize) -> Vec<Fact> {
    let count = count.min(facts.len()).max(1);
    (0..count)
        .map(|i| facts[i * facts.len() / count].clone())
        .collect()
}

struct Workload {
    name: &'static str,
    sigma: DependencySet,
    /// The post-update base every mode converges to.
    full_base: Vec<Fact>,
}

struct Row {
    workload: &'static str,
    delta_pct: usize,
    mode: &'static str,
    base_facts: usize,
    derived_facts: usize,
    delta_size: usize,
    repair_ns: u128,
    repair_triggers: usize,
    rechase_ns: u128,
    rechase_triggers: usize,
}

impl Row {
    fn speedup(&self) -> f64 {
        if self.repair_ns == 0 {
            f64::INFINITY
        } else {
            self.rechase_ns as f64 / self.repair_ns as f64
        }
    }
}

fn budget() -> ChaseBudget {
    ChaseBudget::default().with_max_steps(50_000_000)
}

/// Runs one `(workload, delta_pct, mode)` cell. The delta is carved out of
/// `full_base` deterministically; the pre-update base and the applied batch
/// are chosen so the maintained instance always ends at `full_base`'s model.
fn run_cell(w: &Workload, delta_pct: usize, mode: &'static str) -> Row {
    let delta_size = (w.full_base.len() * delta_pct / 100).max(1);
    let delta = spread_sample(&w.full_base, delta_size);
    // Which of the delta is inserted late (withheld from the starting base)
    // vs. retracted-then-reinserted… each mode converges to the same end
    // state the re-chase sees, so the comparison is apples-to-apples:
    //   insert:  start = full \ delta,  update = +delta
    //   retract: start = full,          update = -delta, then compare against
    //            the re-chase of full \ delta
    //   mixed:   start = full \ ins,    update = (+ins, -ret), compare against
    //            full \ ret
    let (inserts, retracts): (Vec<Fact>, Vec<Fact>) = match mode {
        "insert" => (delta.clone(), Vec::new()),
        "retract" => (Vec::new(), delta.clone()),
        _ => {
            let half = delta.len() / 2;
            (delta[..half].to_vec(), delta[half..].to_vec())
        }
    };
    let insert_set: HashSet<&Fact> = inserts.iter().collect();
    let retract_set: HashSet<&Fact> = retracts.iter().collect();
    let start: Vec<Fact> = w
        .full_base
        .iter()
        .filter(|f| !insert_set.contains(f))
        .cloned()
        .collect();
    let end: Vec<Fact> = {
        let mut v: Vec<Fact> = start
            .iter()
            .filter(|f| !retract_set.contains(f))
            .cloned()
            .collect();
        v.extend(inserts.iter().cloned());
        v
    };

    let start_instance = Instance::from_facts(start.iter().cloned());
    let run = Chase::oblivious(&w.sigma, ObliviousVariant::SemiOblivious)
        .with_budget(budget())
        .materialize(&start_instance)
        .expect("workload chase terminates");
    let mut live =
        ChaseMaterialization::from_run(&w.sigma, run).expect("replay reconstructs the run");
    let derived_facts = live.instance().len() - live.base_len();

    let t = Instant::now();
    let stats = live
        .update(inserts, retracts)
        .expect("TGD-only workloads never fail");
    let repair_ns = t.elapsed().as_nanos();

    let end_instance = Instance::from_facts(end.iter().cloned());
    let t = Instant::now();
    let outcome = Chase::oblivious(&w.sigma, ObliviousVariant::SemiOblivious)
        .with_budget(budget())
        .run(&end_instance);
    let rechase_ns = t.elapsed().as_nanos();
    let rechase_triggers = outcome.stats().steps;
    let fresh = outcome.into_instance().expect("workload chase terminates");
    assert_eq!(
        live.instance().len(),
        fresh.len(),
        "{} {delta_pct}% {mode}: repaired instance size diverged from the re-chase",
        w.name
    );

    Row {
        workload: w.name,
        delta_pct,
        mode,
        base_facts: w.full_base.len(),
        derived_facts,
        delta_size: delta.len(),
        repair_ns,
        repair_triggers: stats.triggers_fired,
        rechase_ns,
        rechase_triggers,
    }
}

fn main() {
    let opts = parse_args();
    let (chains, chain_len, onto_facts) = if opts.small {
        (120, 10, 2_000)
    } else {
        (7_000, 15, 100_000)
    };

    let onto_profile = OntologyProfile {
        existential: 5,
        full: 10,
        egds: 0,
        cyclic: false,
        seed: 41,
    };
    let onto_sigma = generate(&onto_profile);
    let onto_base: Vec<Fact> = {
        let db = generate_database(&onto_sigma, onto_facts, 0x1_dead);
        db.sorted_facts()
    };
    let workloads = [
        Workload {
            name: "closure",
            sigma: closure_sigma(),
            full_base: chain_edges(chains, chain_len),
        },
        Workload {
            name: "ontology",
            sigma: onto_sigma,
            full_base: onto_base,
        },
    ];

    let mut rows = Vec::new();
    for w in &workloads {
        for &delta_pct in &[1usize, 5, 20] {
            for mode in ["insert", "retract", "mixed"] {
                let row = run_cell(w, delta_pct, mode);
                println!(
                    "{:<9} {:>3}% {:<8} base={:<7} derived={:<8} delta={:<6} \
                     repair={:>10.3}ms ({:>7} triggers)  rechase={:>10.3}ms ({:>8} triggers)  speedup={:>7.1}x",
                    row.workload,
                    row.delta_pct,
                    row.mode,
                    row.base_facts,
                    row.derived_facts,
                    row.delta_size,
                    row.repair_ns as f64 / 1e6,
                    row.repair_triggers,
                    row.rechase_ns as f64 / 1e6,
                    row.rechase_triggers,
                    row.speedup(),
                );
                rows.push(row);
            }
        }
    }

    // Gates.
    let mut failures = Vec::new();
    for row in &rows {
        if row.repair_triggers >= row.rechase_triggers {
            failures.push(format!(
                "{} {}% {}: repair fired {} triggers, re-chase only {}",
                row.workload, row.delta_pct, row.mode, row.repair_triggers, row.rechase_triggers
            ));
        }
        if !opts.small && row.delta_pct == 1 && row.speedup() < 10.0 {
            failures.push(format!(
                "{} {}% {}: speedup {:.1}x is below the 10x bar",
                row.workload,
                row.delta_pct,
                row.mode,
                row.speedup()
            ));
        }
    }

    let json = JsonValue::Object(vec![
        (
            "schema".into(),
            JsonValue::Str("chase_incremental/v1".into()),
        ),
        (
            "size".into(),
            JsonValue::Str(if opts.small { "small" } else { "full" }.into()),
        ),
        (
            "rows".into(),
            JsonValue::Array(
                rows.iter()
                    .map(|r| {
                        JsonValue::Object(vec![
                            ("workload".into(), JsonValue::Str(r.workload.into())),
                            ("delta_pct".into(), JsonValue::Int(r.delta_pct as i64)),
                            ("mode".into(), JsonValue::Str(r.mode.into())),
                            ("base_facts".into(), JsonValue::Int(r.base_facts as i64)),
                            (
                                "derived_facts".into(),
                                JsonValue::Int(r.derived_facts as i64),
                            ),
                            ("delta_size".into(), JsonValue::Int(r.delta_size as i64)),
                            ("repair_ns".into(), JsonValue::Int(r.repair_ns as i64)),
                            (
                                "repair_triggers".into(),
                                JsonValue::Int(r.repair_triggers as i64),
                            ),
                            ("rechase_ns".into(), JsonValue::Int(r.rechase_ns as i64)),
                            (
                                "rechase_triggers".into(),
                                JsonValue::Int(r.rechase_triggers as i64),
                            ),
                            ("speedup".into(), JsonValue::Float(r.speedup())),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "gates".into(),
            JsonValue::Object(vec![
                (
                    "repair_fires_fewer_triggers".into(),
                    JsonValue::Bool(rows.iter().all(|r| r.repair_triggers < r.rechase_triggers)),
                ),
                (
                    "ten_x_on_one_percent".into(),
                    JsonValue::Bool(
                        rows.iter()
                            .filter(|r| r.delta_pct == 1)
                            .all(|r| r.speedup() >= 10.0),
                    ),
                ),
            ]),
        ),
    ]);
    if let Err(e) = std::fs::write(&opts.out, json.to_pretty_string()) {
        eprintln!("failed to write {}: {e}", opts.out);
        std::process::exit(1);
    }
    println!("wrote {}", opts.out);

    if !failures.is_empty() {
        eprintln!("incremental-maintenance gates FAILED:");
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!("all incremental-maintenance gates passed");
}
